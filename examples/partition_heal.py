"""Partition and heal: federated discovery riding out a network fault.

Run with::

    python examples/partition_heal.py

Runs the ``partitioned_campus`` scenario from the catalog: a federated
campus whose far gateway is cut off mid-run (its backbone link cut, the
gateway host detached) while the client's own uplink runs at 5% frame
loss.  The walkthrough shows the three robustness mechanisms of the
adversity layer working together:

* the probe issued **during** the partition is answered from the edge
  gateway's gossiped cache — discovery does not depend on the (gone)
  service leaf;
* gossip's silent-peer **catch-up escalation** pushes full deltas at the
  returning member instead of waiting out digest round-trips;
* the whole run is **deterministic**: same seed, same fault schedule,
  byte-identical outcome (CI's chaos-smoke step runs exactly this twice
  and diffs).

The fault schedule is plain data in the spec's workload — ``Fault`` and
``Heal`` steps between ``Run`` and ``Probe`` steps — so
``python -m repro.world validate`` checks it like everything else.
"""

from repro.world import Fault, Heal, run_world
from repro.world.scenarios import partitioned_campus_spec


def main() -> None:
    spec = partitioned_campus_spec(segments=4, nodes=60)
    spec.validate()

    print("workload (fault schedule is part of the spec):")
    for step in spec.workload:
        if isinstance(step, (Fault, Heal)):
            print(f"  {step}")
    print()

    outcome = run_world(spec, seed=3)
    extras = outcome.extras

    for phase, label in (
        ("pre", "before the partition (direct federation)"),
        ("during", "mid-partition (edge cache, lossy uplink)"),
        ("post", "after heal (federation re-converged)"),
    ):
        results = extras[f"{phase}_results"]
        latency = extras[f"{phase}_latency_us"]
        shown = f"{latency / 1000:.2f} ms" if latency is not None else "n/a"
        print(f"probe {phase:7s} {label}: {results} result(s), {shown}")
        assert results >= 1, f"discovery failed in phase {phase!r}"

    gossip = extras["gossip"]
    print()
    print(f"gossip rounds:            {gossip['rounds']}")
    print(f"catch-up escalations:     {gossip['catchup_escalations']}")
    print(f"election flaps:           {extras['election_flaps']}")
    print(f"translations over cycle:  {extras['cycle_translations']}")
    assert gossip["catchup_escalations"] >= 1, "catch-up never fired"

    print()
    print("discovery survived the partition/heal cycle.")


if __name__ == "__main__":
    main()

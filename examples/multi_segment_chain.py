"""A discovery hopping two INDISS gateways across three LAN segments.

Run with::

    PYTHONPATH=src python examples/multi_segment_chain.py

Builds an internetwork of three segments (A - B - C).  An ordinary SLP
client lives on A, an ordinary UPnP clock device on C, and two INDISS
gateway hosts are each bridged across one boundary (A+B and B+C) with the
``gateway-forward`` dispatch policy.  The client's multicast SrvRqst never
leaves segment A — the gateways re-issue the request natively on every LAN
they are homed on, and the answers unwind back down the chain.
"""

from repro import Indiss, IndissConfig, Network
from repro.sdp.slp import SlpConfig, UserAgent
from repro.sdp.upnp import make_clock_device


def gateway_config(seed: int) -> IndissConfig:
    return IndissConfig(
        units=("slp", "upnp"),
        deployment="gateway",
        dispatch="gateway-forward",
        upnp_wait_us=300_000,
        slp_wait_us=350_000,
        seed=seed,
    )


def main() -> None:
    net = Network(capture=True)
    seg_a = net.default_segment
    seg_b = net.add_segment("segB")
    seg_c = net.add_segment("segC")
    net.link(seg_a, seg_b)
    net.link(seg_b, seg_c)

    client_node = net.add_node("client", segment=seg_a)
    service_node = net.add_node("service", segment=seg_c)

    gw_ab = net.add_node("gw-ab", segment=seg_a)
    net.bridge(gw_ab, seg_b)
    gw_bc = net.add_node("gw-bc", segment=seg_b)
    net.bridge(gw_bc, seg_c)

    client = UserAgent(client_node, config=SlpConfig(wait_us=400_000, retries=0))
    make_clock_device(service_node)
    indiss_ab = Indiss(gw_ab, gateway_config(seed=1))
    indiss_bc = Indiss(gw_bc, gateway_config(seed=2))

    searches = []
    client.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=3_000_000)

    search = searches[0]
    print("SLP client on segment A searched for 'service:clock' and received:")
    for entry in search.results:
        print(f"  {entry.url}")
    print(f"first answer after {search.first_latency_us / 1000:.2f} ms (virtual)")
    print()

    for label, indiss in (("A+B", indiss_ab), ("B+C", indiss_bc)):
        print(f"gateway {label}: {indiss.describe()}")
    print()

    print("multicast confinement (frames per segment):")
    for name, segment in net.segments.items():
        slp = segment.traffic.port(427).multicast_messages
        ssdp = segment.traffic.port(1900).multicast_messages
        print(f"  {name:6s} SLP multicast={slp:2d}  SSDP multicast={ssdp:2d}")
    client_leaks = [
        r
        for r in net.trace
        if r.source.host == client_node.address
        and r.destination.is_multicast
        and r.segment != seg_a.name
    ]
    print(f"client multicast frames seen outside segment A: {len(client_leaks)}")


if __name__ == "__main__":
    main()

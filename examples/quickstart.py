"""Quickstart: an SLP client discovering a UPnP device through INDISS.

Run with::

    python examples/quickstart.py

Declares the smallest useful world as a :class:`~repro.world.WorldSpec` —
one SLP client host, one UPnP clock device host carrying INDISS — then
compiles it with ``World.build`` and drives one translated discovery
through the run-control surface (``run_until`` + a named probe).

The spec is pure data: validate it, print it, or sweep its parameters
without touching the simulator (``python -m repro.world`` does exactly
that for the whole scenario catalog).
"""

from repro.world import (
    ClockDevice,
    HostSpec,
    IndissApp,
    Probe,
    SlpClient,
    World,
    WorldSpec,
)

#: A simulated 10 Mb/s home LAN: two hosts on the default segment.  The
#: client runs a completely ordinary SLP user agent; the service host runs
#: a stock UPnP clock device plus INDISS (paper Fig. 8 deployment).
#: Neither endpoint knows anything about INDISS.
QUICKSTART = WorldSpec(
    name="quickstart",
    description="SLP client -> [SLP-UPnP] INDISS -> UPnP clock device",
    elements=(
        HostSpec("client", apps=(SlpClient(),)),
        HostSpec(
            "service",
            apps=(ClockDevice(), IndissApp(deployment="service")),
        ),
    ),
    workload=(
        Probe("clock", "service:clock", host="client", headline=True),
    ),
)


def main() -> None:
    QUICKSTART.validate()
    world = World.build(QUICKSTART, seed=0)

    # Issue the probe, then run just until the answer arrives (run-control:
    # a predicate over the live world, not a fixed horizon).
    world.run_workload()
    world.run_until(lambda w: w.probe("clock").completed, horizon_us=2_000_000)

    probe = world.probe("clock")
    search = probe.search
    print("SLP client searched for 'service:clock' and received:")
    for entry in search.results:
        print(f"  {entry.url}  (lifetime {entry.lifetime_s}s)")
    print(f"first answer after {probe.latency_us / 1000:.2f} ms (virtual)")
    print()
    print("What INDISS did:")
    indiss = world.instances[0]
    for session in indiss.sessions:
        for step in session.steps:
            print(f"  - {step}")
    print()
    print(indiss.describe())


if __name__ == "__main__":
    main()

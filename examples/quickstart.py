"""Quickstart: an SLP client discovering a UPnP device through INDISS.

Run with::

    python examples/quickstart.py

Builds the smallest useful world — one SLP client host, one UPnP clock
device host carrying INDISS — and performs one translated discovery, then
prints what happened.
"""

from repro import Indiss, IndissConfig, Network
from repro.sdp.slp import UserAgent
from repro.sdp.upnp import make_clock_device


def main() -> None:
    # A simulated 10 Mb/s home LAN.
    net = Network()
    client_node = net.add_node("client")
    service_node = net.add_node("service")

    # A completely ordinary SLP client and UPnP device: neither knows
    # anything about INDISS.
    client = UserAgent(client_node)
    device = make_clock_device(service_node)

    # INDISS rides along on the service host (paper Fig. 8 deployment).
    indiss = Indiss(
        service_node,
        IndissConfig(units=("slp", "upnp"), deployment="service"),
    )

    searches = []
    client.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=2_000_000)

    search = searches[0]
    print("SLP client searched for 'service:clock' and received:")
    for entry in search.results:
        print(f"  {entry.url}  (lifetime {entry.lifetime_s}s)")
    print(f"first answer after {search.first_latency_us / 1000:.2f} ms (virtual)")
    print()
    print("What INDISS did:")
    for session in indiss.sessions:
        for step in session.steps:
            print(f"  - {step}")
    print()
    print(indiss.describe())


if __name__ == "__main__":
    main()

"""Self-adaptation demo: the paper's Figure 6 passive/passive scenario.

A passive SLP client (listens for SAAdvert, never requests) shares the
home network with a passive UPnP clock (multicasts NOTIFY, never answers
what it cannot hear).  Without INDISS adaptation the two can never meet.
The adaptation manager watches segment utilization and switches INDISS to
the active model when the network is quiet - and back to passive when
background traffic picks up.

Run with::

    python examples/adaptive_home.py
"""

from repro import AdaptationManager, Indiss, IndissConfig, Network
from repro.net import Endpoint
from repro.sdp.slp import UserAgent
from repro.sdp.upnp import make_clock_device


def main() -> None:
    net = Network()
    client_node = net.add_node("client")
    service_node = net.add_node("service")

    client = UserAgent(client_node, passive=True)
    heard = []
    client.on_advert = lambda advert: heard.append((net.scheduler.now_ms, advert.url))

    make_clock_device(service_node, advertise=True)
    indiss = Indiss(service_node, IndissConfig(units=("slp", "upnp"), deployment="service"))
    manager = AdaptationManager(indiss, threshold=0.05, check_period_us=250_000)

    print("phase 1: quiet network -> INDISS should go active and translate")
    net.run(duration_us=4_000_000)
    print(f"  mode: {'ACTIVE' if manager.active else 'passive'}")
    print(f"  SAAdverts heard by the passive SLP client: {len(heard)}")
    if heard:
        at_ms, url = heard[0]
        print(f"  first translated advert at t={at_ms:.0f} ms: {url}")

    print()
    print("phase 2: heavy background traffic -> INDISS should back off")
    blaster_a, blaster_b = net.add_node("ba"), net.add_node("bb")
    blaster_b.udp.socket().bind(9000)
    blast_socket = blaster_a.udp.socket().bind(9001)
    blaster = blaster_a.every(
        2_000, lambda: blast_socket.sendto(b"x" * 1200, Endpoint(blaster_b.address, 9000))
    )
    net.run(duration_us=3_000_000)
    print(f"  utilization now: {manager.current_utilization():.1%}")
    print(f"  mode: {'ACTIVE' if manager.active else 'passive'}")

    print()
    print("phase 3: traffic stops -> INDISS reactivates")
    blaster.stop()
    net.run(duration_us=3_000_000)
    print(f"  mode: {'ACTIVE' if manager.active else 'passive'}")

    print()
    print("mode-flip history:")
    for event in manager.history:
        mode = "ACTIVE" if event.active else "passive"
        print(
            f"  t={event.time_us / 1000:8.0f} ms -> {mode:7s}"
            f" (utilization {event.utilization:.1%})"
        )
    manager.stop()


if __name__ == "__main__":
    main()

"""The paper's Figure 4 walkthrough, reproduced message-for-message.

An SLP client searches for a clock service; the clock is a UPnP device.
This script captures every wire message and every semantic event stream of
the translation session and prints them in the three steps of the paper's
figure: (1) SLP request -> events -> composed M-SEARCH; (2) SSDP response
-> events -> recursive GET; (3) description XML -> parser switch ->
SDP_RES_ATTR events -> composed SrvRply.

Run with::

    python examples/slp_to_upnp_clock.py
"""

from repro import Indiss, IndissConfig, Network
from repro.sdp.slp import UserAgent, decode as slp_decode, SrvRply
from repro.sdp.upnp import make_clock_device


def print_wire(title: str, payload: bytes) -> None:
    print(f"  [{title}]")
    text = payload.decode("latin-1", errors="replace")
    for line in text.splitlines()[:12]:
        print(f"    | {line}")
    if payload.count(b"\n") > 12:
        print("    | ...")


def main() -> None:
    net = Network(capture=True)
    client_node = net.add_node("client")
    service_node = net.add_node("service")

    ua = UserAgent(client_node)
    make_clock_device(service_node)
    indiss = Indiss(service_node, IndissConfig(units=("slp", "upnp"), deployment="service"))

    # Application-layer listener: trace every parsed event stream in real
    # time (paper §2.3's debugging/visualization hook).
    captured_streams = []
    indiss.stream_listeners.append(
        lambda sdp, stream, meta: captured_streams.append((sdp, stream))
    )

    searches = []
    ua.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=2_000_000)

    print("=" * 72)
    print("Step 1 - the SLP search request becomes a stream of events")
    print("=" * 72)
    sdp, stream = captured_streams[0]
    print(f"  parsed by the {sdp.upper()} unit's parser:")
    for event in stream:
        print(f"    {event}")

    print()
    print("=" * 72)
    print("Step 2 - the UPnP unit's composed M-SEARCH and the device's answer")
    print("=" * 72)
    msearch = [r for r in net.trace if b"M-SEARCH" in r.payload]
    if msearch:
        print_wire("composed UPnP search request", msearch[0].payload)
    responses = [r for r in net.trace if r.payload.startswith(b"HTTP/1.1 200") and b"ST:" in r.payload]
    if responses:
        print_wire("UPnP search answer (LOCATION, no service URL yet)", responses[0].payload)

    print()
    print("=" * 72)
    print("Step 3 - recursive GET, parser switch, and the final SLP reply")
    print("=" * 72)
    for session in indiss.sessions:
        for step in session.steps:
            print(f"  - {step}")
    replies = []
    for record in net.trace:
        if record.transport != "udp":
            continue
        try:
            message = slp_decode(record.payload)
        except Exception:
            continue
        if isinstance(message, SrvRply) and message.url_entries:
            replies.append(message)
    if replies:
        reply = replies[0]
        print()
        print("  [final SrvRply delivered to the SLP client]")
        for entry in reply.url_entries:
            print(f"    SrvRply: {entry.url}")

    print()
    search = searches[0]
    print(f"client-observed latency: {search.first_latency_us / 1000:.2f} ms (virtual)")


if __name__ == "__main__":
    main()

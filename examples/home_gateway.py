"""A networked home with three SDP islands bridged by a gateway INDISS.

The paper's motivating scenario (§1): home devices from different
manufacturers advertise with different SDPs and cannot see each other.
This example builds:

* an SLP island - a printer registered with a service agent;
* a UPnP island - the clock device;
* a Jini island - a media server registered with a lookup service;
* one gateway node running INDISS with all three units (the paper's
  Fig. 5a configuration, parsed from the actual specification text).

Then clients from each island search for services hosted in the others.

Run with::

    python examples/home_gateway.py
"""

from repro import Indiss, Network, parse_spec
from repro.core.config import PAPER_SPEC, build_indiss_config
from repro.sdp.jini import LookupService, ServiceItem
from repro.sdp.slp import ServiceAgent, ServiceType, SlpRegistration, UserAgent
from repro.sdp.upnp import CLOCK_DEVICE_TYPE, UpnpControlPoint, make_clock_device


def main() -> None:
    net = Network()

    # --- the SLP island -------------------------------------------------
    slp_node = net.add_node("slp-printer")
    printer_agent = ServiceAgent(slp_node)
    printer_agent.register(
        SlpRegistration(
            url=f"service:printer:lpr://{slp_node.address}/queue",
            service_type=ServiceType.parse("service:printer:lpr"),
            attributes={"friendlyName": "Hall Printer", "color": "true"},
        )
    )

    # --- the UPnP island --------------------------------------------------
    upnp_node = net.add_node("upnp-clock")
    make_clock_device(upnp_node)

    # --- the Jini island ---------------------------------------------------
    jini_node = net.add_node("jini-media")
    registrar = LookupService(jini_node)
    registrar.registry["sid-media"] = ServiceItem(
        service_id="sid-media",
        class_names=("org.amigo.Mediaserver",),
        attributes={"friendlyName": "Living-room Media Server"},
        endpoint_url=f"jini://{jini_node.address}:4161/media",
    )

    # --- the gateway, configured from the paper's own specification text ----
    gateway_node = net.add_node("gateway")
    spec = parse_spec(PAPER_SPEC)
    config = build_indiss_config(spec, deployment="gateway")
    indiss = Indiss(gateway_node, config)
    print("gateway configuration parsed from the paper's Fig. 5a spec:")
    print(f"  units: {', '.join(config.units)}")
    print()

    # Let the gateway hear the Jini registrar's announcements first.
    net.run(duration_us=1_500_000)

    # --- cross-protocol searches ----------------------------------------------
    slp_client = UserAgent(net.add_node("slp-client"))
    upnp_client = UpnpControlPoint(net.add_node("upnp-client"))

    outcomes = {}

    slp_client.find_services(
        "service:clock", on_complete=lambda s: outcomes.update(slp_finds_clock=s)
    )
    net.run(duration_us=1_000_000)

    slp_client.find_services(
        "service:mediaserver", on_complete=lambda s: outcomes.update(slp_finds_media=s)
    )
    net.run(duration_us=1_000_000)

    upnp_client.search(
        CLOCK_DEVICE_TYPE,
        wait_us=300_000,
        on_complete=lambda s: outcomes.update(upnp_native=s),
    )
    net.run(duration_us=1_000_000)

    upnp_client.search(
        "urn:schemas-upnp-org:device:printer:1",
        wait_us=300_000,
        on_complete=lambda s: outcomes.update(upnp_finds_printer=s),
    )
    net.run(duration_us=1_000_000)

    print("SLP client -> UPnP clock (translated by the gateway):")
    for entry in outcomes["slp_finds_clock"].results:
        print(f"  {entry.url}")
    print()
    print("SLP client -> Jini media server (translated by the gateway):")
    for entry in outcomes["slp_finds_media"].results:
        print(f"  {entry.url}")
    print()
    print("UPnP client -> UPnP clock (native path, untouched):")
    for response in outcomes["upnp_native"].responses:
        print(f"  {response.usn} @ {response.location}")
    print()
    print("UPnP client -> SLP printer (translated by the gateway):")
    for response in outcomes["upnp_finds_printer"].responses:
        print(f"  {response.usn} @ {response.location}")
    print()
    print(indiss.describe())


if __name__ == "__main__":
    main()

"""Crash and recover: a gateway fleet healing itself after a crash-stop.

Run with::

    python examples/crash_recovery.py

Runs the ``crash_recovery`` scenario from the catalog: a federated
campus whose service-side gateway crash-stops mid-run — its process
dies, its volatile state (cache, sessions, TCP connections) dies with
it, and crucially *nobody is told*.  The walkthrough shows the
self-healing chain end to end:

* the **failure detector** notices from missed gossip rounds alone
  (digests double as heartbeats — zero extra wire messages): the victim
  goes ``suspect`` then ``dead`` within the deterministic bound
  ``(suspect_after + dead_after) * gossip_period``;
* on ``dead`` the **ring repairs itself**: only the corpse's vnodes
  rebalance, elections are invalidated, and the probe issued during the
  outage is answered from the surviving members' gossiped caches;
* the gateway **restarts cold** with ``bootstrap=True``: one
  state-transfer exchange refills its cache (tombstones and absolute
  expiries included) instead of waiting out anti-entropy, and the
  post-recovery probe confirms the fleet is whole.

The crash schedule is plain data in the spec's workload — ``Crash`` and
``Restart`` steps between ``Run`` and ``Probe`` steps — so the run is
deterministic: same seed, byte-identical outcome (CI's chaos-smoke step
runs a seeded schedule twice and diffs).
"""

from repro.world import Crash, Restart, run_world
from repro.world.scenarios import crash_recovery_spec


def main() -> None:
    spec = crash_recovery_spec(segments=4, nodes=60)
    spec.validate()

    print("workload (crash schedule is part of the spec):")
    for step in spec.workload:
        if isinstance(step, (Crash, Restart)):
            print(f"  {step}")
    print()

    outcome = run_world(spec, seed=3)
    extras = outcome.extras
    victim = extras["crashed_member"]

    for phase, label in (
        ("pre", "before the crash (direct federation)"),
        ("during", "mid-outage (survivors' gossiped caches)"),
        ("post", "after restart + bootstrap (fleet whole again)"),
    ):
        results = extras[f"{phase}_results"]
        latency = extras[f"{phase}_latency_us"]
        shown = f"{latency / 1000:.2f} ms" if latency is not None else "n/a"
        print(f"probe {phase:7s} {label}: {results} result(s), {shown}")
        assert results >= 1, f"discovery failed in phase {phase!r}"

    health = extras["health"]
    transitions = {
        status: t for t, member, status in health["detector_transitions"]
    }
    print()
    print(f"crashed member:           {victim}")
    print(f"suspected at (virtual):   {transitions['suspect'] / 1e6:.3f} s")
    print(f"declared dead at:         {transitions['dead'] / 1e6:.3f} s")
    print(f"detection bound:          {extras['detect_bound_us'] / 1e6:.3f} s "
          "after the crash")
    repair_at, repaired = health["ring_repairs"][0]
    print(f"ring repaired at:         {repair_at / 1e6:.3f} s "
          f"(only {repaired}'s vnodes moved)")
    for member, at in health["bootstrap_completed_at"].items():
        print(f"cache bootstrap done at:  {at / 1e6:.3f} s ({member})")
    print(f"translations over cycle:  {extras['cycle_translations']}")
    assert health["dead_now"] == [], "the restart should clear the verdict"
    assert health["bootstrap_completed_at"], "bootstrap never completed"

    print()
    print("the fleet detected, repaired, and re-absorbed the crashed "
          "gateway on its own.")


if __name__ == "__main__":
    main()

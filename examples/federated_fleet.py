"""A federated fleet of INDISS gateways on a campus backbone.

Run with::

    PYTHONPATH=src python examples/federated_fleet.py

Builds a backbone with three leaf LANs, one bridged INDISS gateway per
leaf, and joins the gateways into a :class:`~repro.federation.GatewayFleet`
running the ``shard-ring`` dispatch policy:

1. a UPnP clock device in the *last* leaf announces itself at boot; its
   leaf gateway caches the advertisement and the fleet's anti-entropy
   gossip replicates the record to every member;
2. an SLP client in the *first* leaf then searches for ``service:clock``:
   its leaf gateway translates once, the consistent-hash ring owner
   performs the only backbone translation, and the responder elected from
   per-segment utilization answers from the gossiped cache — no per-leaf
   re-discovery;
3. a repeat query is answered straight from the edge gateway's cache.
"""

from repro import Indiss, IndissConfig, Network
from repro.federation import GatewayFleet
from repro.sdp.slp import SlpConfig, UserAgent
from repro.sdp.upnp import make_clock_device


def gateway_config(seed: int) -> IndissConfig:
    return IndissConfig(
        units=("slp", "upnp"),
        deployment="gateway",
        dispatch="shard-ring",
        upnp_wait_us=300_000,
        slp_wait_us=350_000,
        seed=seed,
    )


def main() -> None:
    net = Network()
    backbone = net.default_segment
    leaves, instances = [], []
    for i in range(3):
        leaf = net.add_segment(f"leaf{i}")
        net.link(backbone, leaf)
        leaves.append(leaf)
        gateway_node = net.add_node(f"gateway{i}", segment=leaf)
        net.bridge(gateway_node, backbone)
        instances.append(Indiss(gateway_node, gateway_config(seed=i)))

    fleet = GatewayFleet(net, backbone)
    for instance in instances:
        fleet.join(instance, gossip_period_us=200_000)

    client_node = net.add_node("client", segment=leaves[0])
    service_node = net.add_node("service", segment=leaves[-1])
    client = UserAgent(client_node, config=SlpConfig(wait_us=400_000, retries=0))
    make_clock_device(service_node, advertise=True)

    # Phase 1: the boot announcement reaches one gateway; gossip spreads it.
    net.run(duration_us=1_500_000)
    warmed = sum(1 for i in instances if len(i.cache) > 0)
    gossip = fleet.aggregate_gossip_stats()
    print(f"gossip warmed {warmed}/{len(instances)} gateways "
          f"({gossip['records_applied']} record transfers over "
          f"{gossip['rounds']} rounds; steady-state rounds move no data)")

    # Phase 2: one discovery across the federated fleet.
    searches = []
    client.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=1_500_000)
    search = searches[0]
    print("\nSLP client on leaf0 searched for 'service:clock' and received:")
    for entry in search.results:
        print(f"  {entry.url}")
    print(f"first answer after {search.first_latency_us / 1000:.2f} ms (virtual)")

    stats = fleet.aggregate_stats()
    print(f"fleet translations: {fleet.translated_total()} "
          f"(edge {stats['edge_translations']}, owner {stats['owner_translations']}; "
          f"{stats['shard_suppressed']} suppressed by the shard ring, "
          f"{stats['elected_cache_answers']} answered by the elected responder)")
    owner = fleet.ring.owner("clock")
    elected = fleet.elector.responder("clock")
    print(f"ring owner of 'clock': {owner}; elected responder: {elected}")

    # Phase 3: the repeat query never leaves the edge gateway.
    repeat = []
    client.find_services("service:clock", on_complete=repeat.append)
    net.run(duration_us=1_000_000)
    again = repeat[0]
    print(f"\nrepeat query answered from cache in "
          f"{again.first_latency_us / 1000:.2f} ms with no new translation")


if __name__ == "__main__":
    main()

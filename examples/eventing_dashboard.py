"""Discovery plus *use*: an SLP-centric dashboard for a UPnP home.

The paper's §1 motivation ends at discovery, but a home dashboard needs
the next step too: after INDISS hands the SLP client a direct SOAP
reference, the application invokes the clock's ``GetTime`` action, and a
native UPnP monitor subscribes to the device's GENA events to track state
changes.

Run with::

    python examples/eventing_dashboard.py
"""

from repro import Indiss, IndissConfig, Network
from repro.sdp.slp import UserAgent
from repro.sdp.upnp import (
    CLOCK_SERVICE_TYPE,
    Headers,
    build_request,
    make_clock_device,
    parse_response,
    soap_action_header,
)
from repro.sdp.upnp.clock import CLOCK_EVENT_PATH
from repro.sdp.upnp.gena import EventSubscriber
from repro.sdp.upnp.httpclient import http_post


def main() -> None:
    net = Network()
    dashboard_node = net.add_node("dashboard")  # speaks SLP only
    monitor_node = net.add_node("monitor")      # speaks UPnP natively
    device_node = net.add_node("clock")

    dashboard = UserAgent(dashboard_node)
    device = make_clock_device(device_node)
    Indiss(device_node, IndissConfig(units=("slp", "upnp"), deployment="service"))

    # 1. The SLP-only dashboard discovers the UPnP clock through INDISS.
    searches = []
    dashboard.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=1_000_000)
    url = searches[0].results[0].url
    print(f"dashboard discovered: {url}")

    # 2. ... and invokes the SOAP action at the returned endpoint.
    soap_url = "http://" + url.split("://", 1)[1]
    body = build_request(CLOCK_SERVICE_TYPE, "GetTime").encode()
    headers = Headers(
        [
            ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
            ("SOAPACTION", soap_action_header(CLOCK_SERVICE_TYPE, "GetTime")),
        ]
    )
    results = []
    http_post(dashboard_node, soap_url, body, headers=headers,
              on_response=lambda r: results.append(parse_response(r.body)))
    net.run(duration_us=500_000)
    print(f"GetTime -> {results[0].arguments['CurrentTime']} (virtual seconds)")

    # 3. Meanwhile a native UPnP monitor subscribes to GENA events.
    subscriber = EventSubscriber(monitor_node)
    events = []
    subscriber.on_event = lambda sid, props: events.append(props)
    event_url = f"http://{device_node.address}:{device.http_port}{CLOCK_EVENT_PATH}"
    subscriber.subscribe(event_url, on_subscribed=lambda sid: print(f"subscribed: {sid}"))
    net.run(duration_us=200_000)

    # The device ticks three times; each tick notifies subscribers.
    for tick in ("08:15:00", "08:15:01", "08:15:02"):
        device.notify_state_change({"Time": tick})
        net.run(duration_us=100_000)

    print("GENA notifications received by the monitor:")
    for properties in events:
        print(f"  Time = {properties['Time']}")


if __name__ == "__main__":
    main()

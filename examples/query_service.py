"""Discovery-as-a-service: querying the federated cache over the wire.

Run with::

    PYTHONPATH=src python examples/query_service.py

Two INDISS gateways federate over a campus backbone; each also runs a
:class:`~repro.serving.QueryFrontend` — a tiny UDP RPC service that
answers discovery queries straight from the gateway's gossip-replicated
cache, stamping every reply with how stale the answer might be:

1. a UPnP thermostat behind gateway1 announces itself; gossip replicates
   the record so *gateway0* can answer for it without any translation;
2. a client asks gateway0 by exact type, by type prefix, by attribute
   predicate, and asks "which districts have one?";
3. a query for a service nobody announced misses — the frontend falls
   back to a fleet translation, and the repeat query hits;
4. the backbone partitions: the staleness stamp on gateway0's answers
   grows with the true gossip lag, then collapses after the heal.
"""

from repro.net.udp import Endpoint
from repro.serving import wire
from repro.world import (
    BridgeSpec,
    Fault,
    FleetSpec,
    Heal,
    HostSpec,
    IndissApp,
    QueryFrontendApp,
    SegmentSpec,
    TypedDevice,
    World,
    WorldSpec,
)

GOSSIP_US = 150_000
NOTIFY_US = 400_000


def build_world() -> World:
    elements = (
        SegmentSpec("leaf0", seed_offset=1, link_to="lan0"),
        SegmentSpec("leaf1", seed_offset=2, link_to="lan0"),
        HostSpec("gateway0", segment="leaf0"),
        BridgeSpec("gateway0", ("lan0",)),
        IndissApp(host="gateway0", profile="fleet", seed_offset=0),
        HostSpec("gateway1", segment="leaf1"),
        BridgeSpec("gateway1", ("lan0",)),
        IndissApp(host="gateway1", profile="fleet", seed_offset=1),
        FleetSpec("fleet", "lan0", ("gateway0", "gateway1"), GOSSIP_US),
        QueryFrontendApp(host="gateway0", stale_after_us=600_000),
        QueryFrontendApp(host="gateway1"),
        HostSpec("thermostat-host", segment="leaf1"),
        TypedDevice("thermostat", host="thermostat-host", advertise=True,
                    notify_period_us=NOTIFY_US),
        HostSpec("printer-host", segment="leaf0"),
        TypedDevice("printer", host="printer-host", advertise=False),
        HostSpec("client", segment="leaf0"),
    )
    return World.build(WorldSpec(name="query_service", elements=elements),
                       seed=0)


class QueryClient:
    """One UDP socket on the client host; `ask` runs the sim until the
    single expected reply lands."""

    def __init__(self, world: World):
        self.world = world
        self.replies = []
        self.sock = world.hosts["client"].udp.socket()
        self.sock.on_datagram(
            lambda d: self.replies.append(wire.decode(d.payload)))

    def ask(self, gateway: str, message: dict, wait_us: int = 200_000) -> dict:
        target = self.world.hosts[gateway]
        self.sock.sendto(wire.encode(message),
                         Endpoint(target.address, wire.SERVING_PORT))
        seen = len(self.replies)
        self.world.run(wait_us)
        return self.replies[seen]


def main() -> None:
    world = build_world()
    world.run(1_000_000)  # boot announcements + a few gossip rounds
    client = QueryClient(world)

    # Phase 1+2: gateway0 answers for a device it only knows via gossip.
    reply = client.ask("gateway0", wire.request("type", 1,
                                                st="service:thermostat"))
    print(f"lookup service:thermostat at gateway0 -> {reply['status']}, "
          f"{len(reply['records'])} record(s), "
          f"staleness {reply['staleness_us'] / 1000:.1f} ms")
    print(f"  url: {reply['records'][0]['u']}")

    prefix = client.ask("gateway0", wire.request("type", 2, st="service:therm",
                                                 prefix=True))
    print(f"prefix 'service:therm' -> {reply['status']}, "
          f"types {sorted({r['t'] for r in prefix['records']})}")

    attr = client.ask("gateway0", wire.request(
        "type", 3, st="service:thermostat",
        where={"friendlyName": "Sensor thermostat"}))
    print(f"attribute friendlyName='Sensor thermostat' -> {attr['status']}")

    districts = client.ask("gateway0", wire.request("districts", 4,
                                                    st="thermostat"))
    print(f"districts holding a thermostat record: {districts['districts']}")

    # Phase 3: a cold service misses, the frontend translates, then hits.
    miss = client.ask("gateway0", wire.request("type", 5, st="service:printer"))
    print(f"\nlookup service:printer -> {miss['status']} "
          f"(frontend kicked off a fleet translation)")
    world.run(800_000)
    hit = client.ask("gateway0", wire.request("type", 6, st="service:printer"))
    print(f"repeat lookup service:printer -> {hit['status']}")

    # Phase 4: honesty under partition.
    world._apply_step(Fault("detach", host="gateway1"))
    world.run(1_200_000)
    mid = client.ask("gateway0", wire.request("type", 7,
                                              st="service:thermostat"))
    print(f"\nmid-partition staleness stamp: {mid['staleness_us'] / 1000:.1f} ms"
          f" (stale flag: {mid.get('stale', False)})")

    world._apply_step(Heal("attach", host="gateway1"))
    world.run(NOTIFY_US + 3 * GOSSIP_US + 300_000)
    healed = client.ask("gateway0", wire.request("type", 8,
                                                 st="service:thermostat"))
    print(f"post-heal staleness stamp: {healed['staleness_us'] / 1000:.1f} ms")
    print("the stamp tracked the true gossip lag and collapsed after the heal")


if __name__ == "__main__":
    main()

"""Legacy-compatible install shim.

The execution environment has no network and no `wheel` package, so PEP 660
editable installs cannot build; `pip install -e .` takes the classic
`setup.py develop` path instead.  All metadata lives in pyproject.toml
(read by setuptools >= 61).
"""
from setuptools import setup

setup()

"""Federation benchmarks: gossiped caches + sharded dispatch across a fleet.

Measures what the federation subsystem buys over PR 1's independent
gateways on the same topology:

* ``federated_campus`` vs its unfederated baseline — fleet-wide duplicate
  translations per backbone request (the headline: ~1 owner + elected
  responder instead of one per leaf gateway), repeat-query cache answers,
  and the warm-edge latency for a service the edge gateway never
  discovered itself;
* ``sharded_backbone`` — many service types partitioned across the ring
  (warm types answered from the gossiped cache by the elected responder,
  cold types translated exactly once by their owner);
* a fleet-size sweep showing cache hit rate and translation suppression as
  the fleet grows;
* a chaos tier: a seeded crash/restart schedule over a live fleet, reporting
  time-to-detect (failure detector), time-to-repair (ring), and discovery
  availability before / during / after each outage, gated against the
  ``(suspect_after + dead_after) * gossip_period`` detection bound.

Results are also written to ``BENCH_federation.json`` (CI uploads it so the
perf trajectory accumulates across commits).

Run directly (``PYTHONPATH=src python benchmarks/bench_federation.py``)
for a quick smoke with few trials, or through pytest with the rest of the
benchmark suite.
"""

from __future__ import annotations

import json
import random
import statistics
import sys
from pathlib import Path

from repro.bench.scenarios import (
    crash_recovery,
    federated_campus,
    partitioned_campus,
    sharded_backbone,
)

RESULT_FILE = "BENCH_federation.json"
CHAOS_RESULT_FILE = "BENCH_chaos_sweep.json"


def _median(values) -> float | None:
    values = [v for v in values if v is not None]
    return statistics.median(values) if values else None


def _fmt(value, spec: str = "8.2f", scale: float = 1.0) -> str:
    """Format a possibly-missing measurement without crashing the report."""
    return format(value * scale, spec) if value is not None else "n/a"


def _cache_hit_rate(extras: dict) -> float:
    hits, misses = extras["cache_hits"], extras["cache_misses"]
    return hits / (hits + misses) if hits + misses else 0.0


def run_campus(trials: int = 3, segments: int = 6, nodes: int = 500) -> dict:
    """Federated campus vs the unfederated baseline on the same topology."""
    results: dict[str, dict] = {}
    for label, federated in (("federated", True), ("baseline", False)):
        latencies, translations, repeat_cache, repeat_trans, warm_lat, hit_rates = (
            [], [], [], [], [], []
        )
        for seed in range(trials):
            outcome = federated_campus(
                seed=seed, segments=segments, nodes=nodes, federated=federated
            )
            extras = outcome.extras
            latencies.append(outcome.latency_ms)
            translations.append(extras["query_translations"])
            repeat_cache.append(extras["repeat_cache_answers"])
            repeat_trans.append(extras["repeat_translations"])
            warm_lat.append(extras["warm_edge_latency_us"])
            hit_rates.append(_cache_hit_rate(extras))
        results[label] = {
            "median_latency_ms": _median(latencies),
            "median_query_translations": _median(translations),
            "median_repeat_cache_answers": _median(repeat_cache),
            "median_repeat_translations": _median(repeat_trans),
            "median_warm_edge_latency_us": _median(warm_lat),
            "median_cache_hit_rate": _median(hit_rates),
            "trials": trials,
            "segments": segments,
            "nodes": nodes,
        }
    return results


def run_backbone(trials: int = 3, members: int = 6, nodes: int = 800,
                 service_types: int = 4) -> dict:
    """Sharded dispatch over one backbone: warm + cold type families."""
    warm_lat, cold_lat, translations, elected, found = [], [], [], [], []
    for seed in range(trials):
        outcome = sharded_backbone(
            seed=seed, members=members, nodes=nodes, service_types=service_types
        )
        extras = outcome.extras
        per_type = extras["per_type"]
        warm_lat.extend(
            t["latency_us"] for t in per_type.values() if t["warm"]
        )
        cold_lat.extend(
            t["latency_us"] for t in per_type.values() if not t["warm"]
        )
        translations.append(extras["query_translations"])
        elected.append(extras["federation"]["elected_cache_answers"])
        found.append(all(t["results"] >= 1 for t in per_type.values()))
    return {
        "median_warm_latency_us": _median(warm_lat),
        "median_cold_latency_us": _median(cold_lat),
        "median_query_translations": _median(translations),
        "median_elected_cache_answers": _median(elected),
        "all_types_found": all(found),
        "trials": trials,
        "members": members,
        "nodes": nodes,
        "service_types": service_types,
    }


def run_fleet_sweep(sizes=(4, 6, 8), nodes: int = 500, seed: int = 0) -> dict:
    """Duplicate suppression and cache hit rate as the fleet grows."""
    sweep = {}
    for segments in sizes:
        outcome = federated_campus(seed=seed, segments=segments, nodes=nodes)
        extras = outcome.extras
        sweep[str(segments - 1)] = {
            "query_translations": extras["query_translations"],
            "cache_hit_rate": _cache_hit_rate(extras),
            "warm_members_after_gossip": extras["warm_members_after_gossip"],
            "gossip_records_applied": extras["gossip"]["records_applied"],
            "latency_ms": outcome.latency_ms,
        }
    return sweep


# -- adversity tier ---------------------------------------------------------------


def _build_lossy_fleet(members: int, loss_rate: float, loss_model: str,
                       seed: int, gossip_period_us: int, catchup_after: int):
    """A backbone fleet whose shared segment drops gossip frames at
    ``loss_rate`` (dedicated per-edge RNG stream, so runs are seeded)."""
    from repro import Indiss, IndissConfig, Network
    from repro.federation import GatewayFleet
    from repro.net import make_loss_model

    net = Network()
    backbone = net.default_segment
    instances = []
    for i in range(members):
        leaf = net.add_segment(f"leaf{i}")
        net.link(backbone, leaf)
        gateway = net.add_node(f"gateway{i}", segment=leaf)
        net.bridge(gateway, backbone)
        config = IndissConfig(
            units=("slp", "upnp"), deployment="gateway",
            dispatch="shard-ring", seed=seed + i,
        )
        instances.append(Indiss(gateway, config))
    fleet = GatewayFleet(net, backbone, wire_utilization=True)
    for instance in instances:
        fleet.join(
            instance,
            gossip_period_us=gossip_period_us,
            catchup_after=catchup_after,
        )
    if loss_rate > 0:
        net.set_segment_loss(
            backbone,
            make_loss_model(loss_model, loss_rate, seed, backbone.name),
        )
    return net, fleet, instances


def run_loss_sweep(loss_rates=(0.0, 0.05, 0.2), members: int = 4, seed: int = 0,
                   gossip_period_us: int = 100_000, catchup_after: int = 2,
                   horizon_rounds: int = 400) -> dict:
    """Gossip rounds-to-convergence and catch-up traffic vs loss rate.

    Each member starts holding one distinct record; the fleet has
    converged when every cache holds all of them.  The per-edge loss RNG
    is seeded, so a sweep is reproducible run to run.
    """
    from repro import ServiceRecord

    rows: dict[str, dict] = {}
    for rate in loss_rates:
        net, fleet, instances = _build_lossy_fleet(
            members, rate, "bernoulli", seed, gossip_period_us, catchup_after
        )
        for i, instance in enumerate(instances):
            instance.cache.store(ServiceRecord(
                service_type=f"svc{i}", url=f"http://10.0.{i}.1/ctl",
                lifetime_s=3600, source_sdp="upnp",
            ))
        rounds = None
        for r in range(1, horizon_rounds + 1):
            net.run(duration_us=gossip_period_us)
            if all(len(instance.cache) == members for instance in instances):
                rounds = r
                break
        gossip = fleet.aggregate_gossip_stats()
        rows[f"{rate:g}"] = {
            "converged": rounds is not None,
            "rounds_to_convergence": rounds,
            "digests_sent": gossip.get("digests_sent", 0),
            "catchup_escalations": gossip.get("catchup_escalations", 0),
            "catchup_bytes": gossip.get("catchup_bytes", 0),
            "frames_dropped": sum(
                row["dropped"] for row in net.loss_report().values()
            ),
            "members": members,
        }
    return rows


def run_partition_cycle(trials: int = 2, segments: int = 4, nodes: int = 80) -> dict:
    """Discovery success and election flapping across one scripted
    partition/heal cycle of the federated campus (every adversity knob
    on: lossy gossip link, catch-up, wire-carried elections)."""
    phases = {"pre": [], "during": [], "post": []}
    catchups, flaps, latencies = [], [], []
    for seed in range(trials):
        outcome = partitioned_campus(seed=seed, segments=segments, nodes=nodes)
        extras = outcome.extras
        for phase, hits in phases.items():
            hits.append(extras[f"{phase}_results"] >= 1)
        catchups.append(extras["gossip"]["catchup_escalations"])
        flaps.append(extras["election_flaps"])
        latencies.append(outcome.latency_ms)
    return {
        "discovery_success_rate": {
            phase: sum(hits) / len(hits) for phase, hits in phases.items()
        },
        "median_catchup_escalations": _median(catchups),
        "median_election_flaps": _median(flaps),
        "median_latency_ms": _median(latencies),
        "trials": trials,
        "segments": segments,
        "nodes": nodes,
    }


def run_adversity(trials: int = 2) -> dict:
    return {
        "loss_sweep": run_loss_sweep(),
        "partition_cycle": run_partition_cycle(trials=trials),
    }


# -- chaos tier: crash faults and self-healing ------------------------------------


def _build_chaos_fleet(members: int, seed: int, gossip_period_us: int,
                       suspect_after: int | None, dead_after: int | None):
    """A backbone fleet with the failure detector armed, one SLP client on
    the first leaf and one UPnP clock device on the last: the probe the
    sweep repeats to measure discovery availability."""
    from repro import Indiss, IndissConfig, Network
    from repro.federation import GatewayFleet
    from repro.sdp.slp import SlpConfig, UserAgent
    from repro.sdp.upnp import make_clock_device

    net = Network()
    backbone = net.default_segment
    leaves, instances = [], []
    for i in range(members):
        leaf = net.add_segment(f"leaf{i}")
        net.link(backbone, leaf)
        leaves.append(leaf)
        gateway = net.add_node(f"gateway{i}", segment=leaf)
        net.bridge(gateway, backbone)
        config = IndissConfig(
            units=("slp", "upnp"), deployment="gateway",
            dispatch="shard-ring", answer_from_cache=True, seed=seed + i,
        )
        instances.append(Indiss(gateway, config))
    fleet = GatewayFleet(
        net, backbone, suspect_after=suspect_after, dead_after=dead_after
    )
    for instance in instances:
        fleet.join(instance, gossip_period_us=gossip_period_us)
    client = UserAgent(
        net.add_node("client", segment=leaves[0]),
        config=SlpConfig(wait_us=400_000, retries=0),
    )
    make_clock_device(
        net.add_node("service", segment=leaves[-1]), advertise=True
    )
    return net, fleet, instances, client


def _probe(client, net, wait_us: int = 600_000) -> int:
    """One SLP search for the clock; returns how many URLs came back."""
    searches = []
    client.find_services("service:clock", on_complete=searches.append)
    net.run(duration_us=wait_us)
    return len(searches[0].results) if searches else 0


def _chaos_parity(members: int, seed: int, gossip_period_us: int,
                  warmup_us: int) -> bool:
    """Armed-but-unfired parity: the detector reads existing gossip traffic
    and adds nothing to the wire, so a crash-free run with the detector on
    must match the detector-off run stat for stat."""
    outcomes = []
    for armed in (False, True):
        net, fleet, _, client = _build_chaos_fleet(
            members, seed, gossip_period_us,
            suspect_after=6 if armed else None,
            dead_after=4 if armed else None,
        )
        net.run(duration_us=warmup_us)
        outcomes.append({
            "results": _probe(client, net),
            "now_us": net.scheduler.now_us,
            "gossip": fleet.aggregate_gossip_stats(),
            "federation": fleet.aggregate_stats(),
            "transitions": list(fleet.health.transitions),
        })
    # The armed run must also have stayed silent (no spurious suspicions).
    return outcomes[0] == outcomes[1] and not outcomes[1]["transitions"]


def run_chaos_sweep(cycles: int = 2, members: int = 4, seed: int = 0,
                    gossip_period_us: int = 200_000, suspect_after: int = 6,
                    dead_after: int = 4, warmup_us: int = 1_500_000) -> dict:
    """Seeded crash/restart schedule over one live fleet.

    ``random.Random(seed)`` draws the schedule only — which gateway dies,
    how long it stays down, how long the fleet recovers; the simulation
    itself consumes nothing from this RNG, so one seed is one schedule and
    the run is bit-reproducible.  Per cycle the sweep records:

    * ``time_to_detect_us`` — crash to the detector's DEAD transition,
      gated against ``detect_bound_us = (suspect_after + dead_after) *
      gossip_period``;
    * ``time_to_repair_us`` — crash to the ring repair that rebalances the
      dead member's vnodes;
    * discovery availability — an SLP probe during the outage and after
      the restart + bootstrap (post-repair availability must return to 1.0).
    """
    rng = random.Random(seed)
    net, fleet, instances, client = _build_chaos_fleet(
        members, seed, gossip_period_us, suspect_after, dead_after
    )
    bound = fleet.health.detect_bound_us(gossip_period_us)
    net.run(duration_us=warmup_us)
    pre_results = _probe(client, net)

    rows, during_hits, post_hits = [], [], []
    for _ in range(cycles):
        victim = instances[rng.randrange(len(instances))]
        address = victim.node.address
        down_us = bound + rng.randrange(500_000, 1_500_000)
        recover_us = rng.randrange(2_000_000, 3_000_000)

        crash_at = net.scheduler.now_us
        fleet.crash_member(address)
        victim.crash()
        net.crash_node(victim.node)
        net.run(duration_us=down_us)
        during_results = _probe(client, net)

        net.restart_node(net.crashed_node(address))
        victim.restart()
        handle = fleet.restart_member(
            victim, gossip_period_us=gossip_period_us, bootstrap=True
        )
        restart_at = net.scheduler.now_us
        net.run(duration_us=recover_us)
        post_results = _probe(client, net)

        dead_at = next(
            (t for t, m, s in fleet.health.transitions
             if m == address and s == "dead" and t >= crash_at), None,
        )
        repair_at = next(
            (t for t, m in fleet.repairs if m == address and t >= crash_at),
            None,
        )
        boot_at = handle.gossiper.bootstrap_completed_at if handle.gossiper else None
        rows.append({
            "victim": address,
            "down_us": down_us,
            "time_to_detect_us": None if dead_at is None else dead_at - crash_at,
            "time_to_repair_us": None if repair_at is None else repair_at - crash_at,
            "bootstrap_after_restart_us":
                None if boot_at is None else boot_at - restart_at,
            "during_results": during_results,
            "post_results": post_results,
        })
        during_hits.append(during_results >= 1)
        post_hits.append(post_results >= 1)

    detects = [row["time_to_detect_us"] for row in rows]
    return {
        "cycles": rows,
        "availability": {
            "pre": 1.0 if pre_results >= 1 else 0.0,
            "during": sum(during_hits) / len(during_hits) if during_hits else None,
            "post": sum(post_hits) / len(post_hits) if post_hits else None,
        },
        "median_time_to_detect_us": _median(detects),
        "median_time_to_repair_us": _median(
            [row["time_to_repair_us"] for row in rows]
        ),
        "detect_bound_us": bound,
        "detect_within_bound": all(d is not None and d <= bound for d in detects),
        "parity_armed_vs_off": _chaos_parity(
            members, seed, gossip_period_us, warmup_us
        ),
        "members": members,
        "seed": seed,
        "gossip_period_us": gossip_period_us,
        "suspect_after": suspect_after,
        "dead_after": dead_after,
    }


def run(trials: int = 3, nodes: int = 500) -> dict:
    return {
        "campus": run_campus(trials=trials, nodes=nodes),
        "backbone": run_backbone(trials=trials, nodes=max(nodes, 500)),
        "fleet_sweep": run_fleet_sweep(nodes=nodes),
        "adversity": run_adversity(trials=min(trials, 2)),
        "chaos": run_chaos_sweep(cycles=min(trials, 3)),
    }


def write_results(results: dict, path: str = RESULT_FILE) -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True))


# -- pytest entry points ---------------------------------------------------------


def test_federation_smoke():
    """The acceptance criteria, measured: duplicate translations collapse
    to <= 1 owner + elected responder, repeat queries come from cache."""
    results = run_campus(trials=2, segments=5, nodes=200)
    federated, baseline = results["federated"], results["baseline"]
    # Every phase must have produced an answer before comparing medians.
    for label, row in results.items():
        for metric, value in row.items():
            assert value is not None, f"{label}.{metric} has no measurement"
    # <=1 owner translation + the edge gateway's own entry translation.
    assert federated["median_query_translations"] <= 2
    assert (
        federated["median_query_translations"]
        < baseline["median_query_translations"]
    )
    # Gossip-warmed gateway answers the repeat query without re-discovery.
    assert federated["median_repeat_cache_answers"] >= 1
    assert federated["median_repeat_translations"] == 0
    assert federated["median_warm_edge_latency_us"] < 5_000

    backbone = run_backbone(trials=2, members=4, nodes=200, service_types=4)
    assert backbone["all_types_found"]
    # Two cold types, each translated exactly once by its ring owner.
    assert backbone["median_query_translations"] <= 2
    assert backbone["median_elected_cache_answers"] >= 1


def test_adversity_convergence():
    """Gossip genuinely converges at every tested loss rate, and the
    partition/heal cycle never loses discovery."""
    sweep = run_loss_sweep(loss_rates=(0.0, 0.05, 0.2), members=4)
    for rate, row in sweep.items():
        assert row["converged"], f"gossip never converged at loss {rate}"
        assert row["rounds_to_convergence"] >= 1
    # Loss actually happened at the lossy rates, and the lossless run
    # never escalated (peers are heard inside the catch-up window).
    assert sweep["0"]["frames_dropped"] == 0
    assert sweep["0.2"]["frames_dropped"] > 0
    assert sweep["0.2"]["catchup_bytes"] >= sweep["0"]["catchup_bytes"]

    cycle = run_partition_cycle(trials=2, segments=4, nodes=60)
    for phase, rate in cycle["discovery_success_rate"].items():
        assert rate == 1.0, f"discovery failed in the {phase!r} phase"
    assert cycle["median_catchup_escalations"] >= 1


def test_adversity_determinism():
    """Same seed + same fault plan => identical ScenarioOutcome, twice."""
    runs = [
        partitioned_campus(seed=11, segments=4, nodes=60) for _ in range(2)
    ]
    first, second = runs
    assert first.latency_ms == second.latency_ms
    assert first.results == second.results
    assert first.extras == second.extras


def test_crash_chaos_gates():
    """The ISSUE's chaos gates: every crash detected within the bound,
    ring repaired, and post-repair discovery availability back to 1.0."""
    sweep = run_chaos_sweep(cycles=2, members=4, seed=0)
    assert sweep["parity_armed_vs_off"], (
        "armed-but-unfired detector changed a crash-free run"
    )
    for cycle in sweep["cycles"]:
        assert cycle["time_to_detect_us"] is not None, f"undetected: {cycle}"
        assert cycle["time_to_repair_us"] is not None, f"unrepaired: {cycle}"
        assert cycle["bootstrap_after_restart_us"] is not None, (
            f"bootstrap never completed: {cycle}"
        )
    assert sweep["detect_within_bound"]
    assert sweep["availability"]["pre"] == 1.0
    assert sweep["availability"]["post"] == 1.0


def chaos_smoke() -> int:
    """The CI chaos gate: a seeded lossy partition/heal run and a seeded
    crash/restart schedule, each twice, must produce byte-identical
    outcomes; the crash sweep must also pass its detection/availability
    gates.  Writes the sweep to ``BENCH_chaos_sweep.json``."""
    rows = []
    for attempt in range(2):
        outcome = partitioned_campus(seed=3, segments=4, nodes=80)
        rows.append({
            "latency_ms": outcome.latency_ms,
            "results": outcome.results,
            "extras": outcome.extras,
        })
    if rows[0] != rows[1]:
        print("chaos smoke FAILED: two identically seeded lossy runs diverged")
        for key in rows[0]:
            if rows[0][key] != rows[1][key]:
                print(f"  {key}: {rows[0][key]!r} != {rows[1][key]!r}")
        return 1
    extras = rows[0]["extras"]
    print("chaos smoke: two seeded partition/heal runs are identical")
    print(f"  pre/during/post results: {extras['pre_results']}/"
          f"{extras['during_results']}/{extras['post_results']}")
    print(f"  gossip catch-up escalations: "
          f"{extras['gossip']['catchup_escalations']}, "
          f"election flaps: {extras['election_flaps']}")

    # Crash/restart schedule: same seed, twice, compared byte for byte.
    sweeps = [
        json.dumps(run_chaos_sweep(cycles=2, members=4, seed=7),
                   sort_keys=True)
        for attempt in range(2)
    ]
    if sweeps[0] != sweeps[1]:
        print("chaos smoke FAILED: two identically seeded crash/restart "
              "sweeps diverged")
        return 1
    scenario_rows = [
        crash_recovery(seed=5, segments=4, nodes=80).extras for _ in range(2)
    ]
    if scenario_rows[0] != scenario_rows[1]:
        print("chaos smoke FAILED: two identically seeded crash_recovery "
              "scenario runs diverged")
        return 1
    sweep = json.loads(sweeps[0])
    Path(CHAOS_RESULT_FILE).write_text(json.dumps(sweep, indent=2,
                                                  sort_keys=True))
    print("chaos smoke: two seeded crash/restart sweeps are identical")
    print(f"  median time-to-detect "
          f"{_fmt(sweep['median_time_to_detect_us'], '.0f', 1 / 1000)} ms "
          f"(bound {sweep['detect_bound_us'] // 1000} ms), "
          f"time-to-repair "
          f"{_fmt(sweep['median_time_to_repair_us'], '.0f', 1 / 1000)} ms")
    availability = sweep["availability"]
    print(f"  availability pre {availability['pre']:.2f} / during "
          f"{availability['during']:.2f} / post {availability['post']:.2f}")
    if not sweep["detect_within_bound"]:
        print("chaos smoke FAILED: a crash went undetected within the bound")
        return 1
    if availability["post"] != 1.0:
        print("chaos smoke FAILED: discovery did not return to full "
              "availability after repair")
        return 1
    if not sweep["parity_armed_vs_off"]:
        print("chaos smoke FAILED: armed-but-unfired detector changed a "
              "crash-free run")
        return 1
    print(f"wrote {CHAOS_RESULT_FILE}")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) > 1 and argv[1] == "--chaos-smoke":
        return chaos_smoke()
    try:
        trials = int(argv[1]) if len(argv) > 1 else 3
        nodes = int(argv[2]) if len(argv) > 2 else 500
    except ValueError:
        print(f"usage: {argv[0]} [trials] [nodes]", file=sys.stderr)
        return 2
    if trials < 1 or nodes < 0:
        print("trials must be >= 1 and nodes >= 0", file=sys.stderr)
        return 2
    results = run(trials=trials, nodes=nodes)
    write_results(results)

    campus = results["campus"]
    print(f"federated campus ({campus['federated']['segments'] - 1} gateways, "
          f"{campus['federated']['nodes']} nodes, median of {trials} trials)")
    for label in ("baseline", "federated"):
        row = campus[label]
        print(f"  {label:10s} latency {_fmt(row['median_latency_ms'])} ms   "
              f"query translations {_fmt(row['median_query_translations'], '.0f')}   "
              f"cache hit rate {_fmt(row['median_cache_hit_rate'], '.2f')}")
    federated = campus["federated"]
    print(f"  repeat query: {_fmt(federated['median_repeat_cache_answers'], '.0f')} "
          f"cache answer(s), "
          f"{_fmt(federated['median_repeat_translations'], '.0f')} translations")
    print(f"  warm edge   : "
          f"{_fmt(federated['median_warm_edge_latency_us'], '.2f', 1 / 1000)} ms "
          "from the gossip-replicated record")

    backbone = results["backbone"]
    print(f"sharded backbone ({backbone['members']} members, "
          f"{backbone['service_types']} types, {backbone['nodes']} nodes)")
    print(f"  warm types  {_fmt(backbone['median_warm_latency_us'], '8.2f', 1 / 1000)} ms "
          "(elected responder, gossiped cache)")
    print(f"  cold types  {_fmt(backbone['median_cold_latency_us'], '8.2f', 1 / 1000)} ms "
          "(single owner translation)")
    print(f"  fleet translations {_fmt(backbone['median_query_translations'], '.0f')} "
          f"(all types found: {backbone['all_types_found']})")

    print("fleet-size sweep (gateways -> translations / cache hit rate):")
    for size, row in results["fleet_sweep"].items():
        print(f"  {size:>2s} gateways: {row['query_translations']} translation(s), "
              f"hit rate {row['cache_hit_rate']:.2f}, "
              f"{row['warm_members_after_gossip']} members gossip-warmed")

    adversity = results["adversity"]
    print("adversity: gossip convergence vs backbone loss rate:")
    for rate, row in adversity["loss_sweep"].items():
        rounds = row["rounds_to_convergence"]
        print(f"  loss {rate:>4s}: "
              f"{'converged in ' + str(rounds) + ' round(s)' if row['converged'] else 'DID NOT CONVERGE'}, "
              f"{row['catchup_escalations']} catch-up(s) "
              f"({row['catchup_bytes']} bytes), "
              f"{row['frames_dropped']} frame(s) dropped")
    cycle = adversity["partition_cycle"]
    success = cycle["discovery_success_rate"]
    print(f"adversity: partition/heal cycle discovery success "
          f"pre {success['pre']:.2f} / during {success['during']:.2f} / "
          f"post {success['post']:.2f}, "
          f"{_fmt(cycle['median_election_flaps'], '.0f')} election flap(s)")

    chaos = results["chaos"]
    availability = chaos["availability"]
    print(f"chaos: {len(chaos['cycles'])} seeded crash/restart cycle(s) over "
          f"{chaos['members']} gateways")
    print(f"  time-to-detect "
          f"{_fmt(chaos['median_time_to_detect_us'], '.0f', 1 / 1000)} ms "
          f"(bound {chaos['detect_bound_us'] // 1000} ms, "
          f"within: {chaos['detect_within_bound']}), time-to-repair "
          f"{_fmt(chaos['median_time_to_repair_us'], '.0f', 1 / 1000)} ms")
    print(f"  availability pre {availability['pre']:.2f} / during "
          f"{availability['during']:.2f} / post {availability['post']:.2f}, "
          f"armed-but-unfired parity: {chaos['parity_armed_vs_off']}")
    print(f"wrote {RESULT_FILE}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Figure 9: INDISS deployed on the client side.

Paper: [SLP-UPnP] -> UPnP 80 ms ("corresponds globally to two native UPnP
responses"; +15 ms over the service-side case because the UPnP traffic now
crosses the network); [UPnP-SLP] -> SLP 0.12 ms (the best case: only local
UPnP traffic plus an already-known answer — see DESIGN.md's note on why
the paper's figure implies a warm cache).
"""

import pytest

from conftest import report
from repro.bench import (
    format_measurements,
    measure,
    run_trials,
    slp_to_upnp_client_side,
    upnp_to_slp_client_side,
)
import statistics


@pytest.fixture(scope="module")
def medians():
    return {
        "native_slp": measure("fig7_native_slp"),
        "native_upnp": measure("fig7_native_upnp"),
        "service_side": measure("fig8_slp_to_upnp_service_side"),
        "slp_to_upnp": measure("fig9_slp_to_upnp_client_side"),
        "upnp_to_slp_warm": measure("fig9_upnp_to_slp_client_side"),
    }


@pytest.fixture(scope="module")
def cold_median_ms():
    latencies = run_trials(upnp_to_slp_client_side, trials=10, warm_cache=False)
    return statistics.median(latencies)


def test_slp_client_side_search(benchmark, medians):
    outcome = benchmark(lambda: slp_to_upnp_client_side(seed=1))
    assert outcome.results == 1
    # "+15 ms": the two UPnP requests now cross the network.
    delta_ms = medians["slp_to_upnp"].median_ms - medians["service_side"].median_ms
    assert 5.0 < delta_ms < 25.0


def test_upnp_client_side_search_warm(benchmark, medians, cold_median_ms):
    outcome = benchmark(lambda: upnp_to_slp_client_side(seed=1, warm_cache=True))
    assert outcome.results == 1
    # The best case: faster even than a native SLP search (paper: 0.12 ms).
    assert medians["upnp_to_slp_warm"].median_ms < medians["native_slp"].median_ms
    block = format_measurements(
        [medians["slp_to_upnp"], medians["upnp_to_slp_warm"]],
        "Figure 9: INDISS on the client side",
    )
    block += f"\n(cold-cache variant of UPnP->SLP: {cold_median_ms:.3f} ms)"
    report(block)


class TestFigure9Shape:
    def test_client_side_costs_more_than_service_side(self, medians):
        """The paper's +15 ms: the two UPnP requests cross the network."""
        delta_ms = medians["slp_to_upnp"].median_ms - medians["service_side"].median_ms
        assert 5.0 < delta_ms < 25.0  # paper: 15 ms

    def test_client_side_is_about_two_native_upnp(self, medians):
        """Paper: "corresponds globally to two native UPnP responses"."""
        ratio = medians["slp_to_upnp"].median_ms / medians["native_upnp"].median_ms
        assert 1.5 < ratio < 2.5

    def test_warm_upnp_to_slp_is_best_case(self, medians):
        """Paper: 0.12 ms — faster even than a native SLP search."""
        assert medians["upnp_to_slp_warm"].median_ms < medians["native_slp"].median_ms
        assert medians["upnp_to_slp_warm"].median_ms < 0.5

    def test_cold_variant_documented(self, medians, cold_median_ms):
        """Cold cache pays a network SLP exchange plus the responder-delay
        exemption; it sits between the warm case and native UPnP."""
        assert cold_median_ms > medians["upnp_to_slp_warm"].median_ms
        assert cold_median_ms < medians["native_upnp"].median_ms

    def test_within_25_percent_of_paper(self, medians):
        assert 0.75 < medians["slp_to_upnp"].ratio_to_paper < 1.25
        # 9b tolerates a wider band: the paper's 0.12 ms is itself at the
        # resolution limit of its measurement method.
        assert 0.5 < medians["upnp_to_slp_warm"].ratio_to_paper < 1.5

    def test_report(self, medians, cold_median_ms):
        block = format_measurements(
            [medians["slp_to_upnp"], medians["upnp_to_slp_warm"]],
            "Figure 9: INDISS on the client side",
        )
        block += f"\n(cold-cache variant of UPnP->SLP: {cold_median_ms:.3f} ms)"
        report(block)

"""Ablation: INDISS placement (client vs service vs gateway).

Paper §4.2 argues placement interacts with the discovery models; §4.3
quantifies client vs service side.  The gateway case ("INDISS may be
deployed on a dedicated networked node") is described but not measured —
this ablation fills in the number: a gateway pays the network on *both*
legs, so it should cost at least as much as the client-side placement.
"""

import pytest

from conftest import report
from repro.bench import (
    format_measurements,
    measure,
)


@pytest.fixture(scope="module")
def medians():
    return {
        "service": measure("fig8_slp_to_upnp_service_side"),
        "client": measure("fig9_slp_to_upnp_client_side"),
        "gateway": measure("gateway_slp_to_upnp"),
    }


def test_gateway_translation(benchmark, medians):
    from repro.bench import slp_to_upnp_gateway

    outcome = benchmark(lambda: slp_to_upnp_gateway(seed=1))
    assert outcome.results == 1
    assert medians["service"].median_ms < medians["gateway"].median_ms
    report(
        format_measurements(
            [medians["service"], medians["client"], medians["gateway"]],
            "Ablation: placement of INDISS (SLP client -> UPnP service)",
        )
    )


class TestPlacementShape:
    def test_service_side_is_cheapest(self, medians):
        assert medians["service"].median_ms < medians["client"].median_ms
        assert medians["service"].median_ms < medians["gateway"].median_ms

    def test_gateway_close_to_client_side(self, medians):
        """Both pay network UPnP legs; the gateway adds an SLP network leg."""
        ratio = medians["gateway"].median_ms / medians["client"].median_ms
        assert 0.9 < ratio < 1.3

    def test_report(self, medians):
        report(
            format_measurements(
                [medians["service"], medians["client"], medians["gateway"]],
                "Ablation: placement of INDISS (SLP client -> UPnP service)",
            )
        )

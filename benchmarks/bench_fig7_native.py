"""Figure 7: native client/service response times (the baselines).

Paper: SLP -> SLP 0.7 ms; UPnP -> UPnP 40 ms (medians of 30).  The shape
to reproduce: UPnP discovery is roughly two orders of magnitude slower
than SLP, because the SSDP responder window dominates while SLP is two
small UDP messages.
"""

import statistics

import pytest

from conftest import report
from repro.bench import (
    Measurement,
    format_measurements,
    measure,
    native_slp,
    native_upnp,
)


@pytest.fixture(scope="module")
def medians():
    return {
        "slp": measure("fig7_native_slp"),
        "upnp": measure("fig7_native_upnp"),
    }


def test_native_slp_search(benchmark, medians):
    """One full native SLP discovery in the simulated world."""
    outcome = benchmark(lambda: native_slp(seed=1))
    assert outcome.results == 1
    assert medians["slp"].median_ms < 1.0  # paper: 0.7 ms


def test_native_upnp_search(benchmark, medians):
    """One full native UPnP discovery in the simulated world."""
    outcome = benchmark(lambda: native_upnp(seed=1))
    assert outcome.results == 1
    # The headline shape: UPnP is orders of magnitude slower than SLP.
    assert medians["upnp"].median_ms / medians["slp"].median_ms > 20
    report(format_measurements(list(medians.values()), "Figure 7: native baselines"))


class TestFigure7Shape:
    def test_slp_is_sub_millisecond(self, medians):
        assert medians["slp"].median_ms < 1.0

    def test_upnp_is_tens_of_milliseconds(self, medians):
        assert 20.0 < medians["upnp"].median_ms < 80.0

    def test_upnp_much_slower_than_slp(self, medians):
        """The headline: "using SLP is much more efficient than UPnP"."""
        ratio = medians["upnp"].median_ms / medians["slp"].median_ms
        assert ratio > 20  # paper's ratio is ~57x

    def test_within_25_percent_of_paper(self, medians):
        for m in medians.values():
            assert m.ratio_to_paper is not None
            assert 0.75 < m.ratio_to_paper < 1.25

    def test_report(self, medians):
        report(format_measurements(list(medians.values()), "Figure 7: native baselines"))

"""Figure 8: INDISS deployed on the service side.

Paper: SLP -> [SLP-UPnP] 65 ms (the translated search needs two local UPnP
requests, so it costs more than one native UPnP cycle but the UPnP legs
stay on the loopback); UPnP -> [UPnP-SLP] 40 ms ("corresponds exactly to a
search request ... from a native UPnP client to a native UPnP service"
because the local SLP exchange is negligible).
"""

import pytest

from conftest import report
from repro.bench import (
    format_measurements,
    measure,
    slp_to_upnp_service_side,
    upnp_to_slp_service_side,
)


@pytest.fixture(scope="module")
def medians():
    return {
        "native_upnp": measure("fig7_native_upnp"),
        "slp_to_upnp": measure("fig8_slp_to_upnp_service_side"),
        "upnp_to_slp": measure("fig8_upnp_to_slp_service_side"),
    }


def test_slp_client_to_upnp_service(benchmark, medians):
    outcome = benchmark(lambda: slp_to_upnp_service_side(seed=1))
    assert outcome.results == 1
    # Two local UPnP requests instead of one SSDP cycle (paper: 65 vs 40).
    ratio = medians["slp_to_upnp"].median_ms / medians["native_upnp"].median_ms
    assert 1.2 < ratio < 2.5


def test_upnp_client_to_slp_service(benchmark, medians):
    outcome = benchmark(lambda: upnp_to_slp_service_side(seed=1))
    assert outcome.results == 1
    # "Corresponds exactly to a ... native UPnP" exchange (paper: 40 ms).
    ratio = medians["upnp_to_slp"].median_ms / medians["native_upnp"].median_ms
    assert 0.9 < ratio < 1.15
    report(
        format_measurements(
            [medians["slp_to_upnp"], medians["upnp_to_slp"]],
            "Figure 8: INDISS on the service side",
        )
    )


class TestFigure8Shape:
    def test_slp_to_upnp_costs_more_than_native_upnp(self, medians):
        """Two local UPnP requests instead of one SSDP cycle."""
        assert medians["slp_to_upnp"].median_ms > medians["native_upnp"].median_ms
        ratio = medians["slp_to_upnp"].median_ms / medians["native_upnp"].median_ms
        assert 1.2 < ratio < 2.5  # paper: 65/40 = 1.63

    def test_upnp_to_slp_matches_native_upnp(self, medians):
        """Paper: "it corresponds exactly to a search request generated on
        the network from a native UPnP client to a native UPnP service"."""
        ratio = medians["upnp_to_slp"].median_ms / medians["native_upnp"].median_ms
        assert 0.9 < ratio < 1.15

    def test_within_25_percent_of_paper(self, medians):
        for key in ("slp_to_upnp", "upnp_to_slp"):
            assert 0.75 < medians[key].ratio_to_paper < 1.25

    def test_report(self, medians):
        report(
            format_measurements(
                [medians["slp_to_upnp"], medians["upnp_to_slp"]],
                "Figure 8: INDISS on the service side",
            )
        )

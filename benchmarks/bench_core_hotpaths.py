"""Core hot-path benchmarks: scheduler, routing, and receive-path work.

Measures raw simulator throughput (scheduler events per second of wall
time) under sustained discovery load, plus the efficiency counters of the
three engineered hot paths:

* ``sharded_backbone`` with background chatter at 500 and 2000 nodes —
  the fleet workload the ROADMAP's "profile the scheduler heap" item
  pointed at;
* ``metro_backbone`` at 5000 nodes — chained district backbones, per
  district fleets, inter-district gateways, and per-leaf query chatter;
  the scale workload the compacting wheel scheduler, route-plan cache,
  and parse-once receive path exist for;
* ``media_city`` at 3000 nodes — the UPnP-dominated parse-once workload
  (device fleets, control-point and GENA chatter, SLP islands, a Jini
  corner), measured twice: with the frame memo on, and with
  ``parse_once=False`` so the speedup and the per-protocol
  ``parse_dedup_rate_*`` attribution stay auditable side by side;
* ``district_grid`` at 20000+ nodes — the genuinely multi-district world
  (unbridged chained backbones), measured four ways: single-threaded
  wheel, the district-sharded partitioned engine in-process, the same
  single-wheel run with the flight recorder on (the ``_traced`` row,
  whose ``overhead_vs_untraced`` keeps the recording cost auditable),
  and the forked one-process-per-district backend.  The single and
  partitioned rows are the gated A/B pair; the ``_mp`` row reports the
  fork backend's wall time for the record (on a single-CPU runner it can
  only lose — parallel speedup needs cores).

Results go to ``BENCH_core.json``.  ``--check`` compares the measured
events/sec against every committed gate (``gate`` plus the ``gates`` list
in the baseline file) and exits non-zero on a >20% regression (the CI
perf gate).  ``--profile`` reruns each tier under cProfile and writes the
top-25 cumulative lines to ``BENCH_core.profile.<tier>.txt`` next to the
JSON.  The committed pre-optimization baseline lives in
``benchmarks/BENCH_core.baseline.json`` so the speedup trajectory stays
auditable.

Run directly (``PYTHONPATH=src python benchmarks/bench_core_hotpaths.py``)
or through pytest for the smoke test.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
import sys
import time
from pathlib import Path

from repro.bench.scenarios import (
    district_grid,
    media_city,
    metro_backbone,
    sharded_backbone,
)
from repro.world.engine import run_world_mp
from repro.world.scenarios import district_grid_spec

RESULT_FILE = "BENCH_core.json"
BASELINE_FILE = Path(__file__).parent / "BENCH_core.baseline.json"

#: CI fails when events/sec at the gate workload drops below this fraction
#: of the committed gate value.
GATE_FRACTION = 0.8
GATE_KEY = "sharded_backbone_2000_chatter16"

#: ``--profile`` flips this on: every named tier gets one extra run under
#: cProfile, with the top cumulative lines written next to the JSON.
PROFILE = False
PROFILE_LINES = 25


def _profile_tier(name: str, fn, **kwargs) -> None:
    profiler = cProfile.Profile()
    profiler.enable()
    fn(**kwargs)
    profiler.disable()
    sink = io.StringIO()
    stats = pstats.Stats(profiler, stream=sink)
    stats.sort_stats("cumulative").print_stats(PROFILE_LINES)
    path = Path(f"BENCH_core.profile.{name}.txt")
    path.write_text(sink.getvalue())
    print(f"profiled {name} -> {path}")


def _machine_ref_score(loops: int = 400_000) -> float:
    """Throughput of a fixed pure-Python workload (iterations/second).

    CI runners and dev machines differ ~2x in single-thread speed, so the
    perf gate compares *normalized* events/sec (measured / this score)
    rather than absolute numbers.  The reference is deliberately
    independent of the repository's code, so a simulator regression
    cannot hide inside the reference.
    """
    best = None
    for _ in range(3):
        bucket = {}
        acc = 0
        start = time.perf_counter()
        for i in range(loops):
            bucket[i & 1023] = i
            acc += i ^ (i >> 3)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return loops / best


def _measure(fn, runs: int = 3, name: str | None = None, **kwargs) -> dict:
    """Run one scenario ``runs`` times, reporting the best run.

    Virtual-time behaviour is deterministic (identical events fired every
    run); only wall time varies with host noise, so best-of-N is the
    stable estimator of what the code costs.  Under ``--profile``, a tier
    that was given a ``name`` gets one extra profiled run.
    """
    if PROFILE and name:
        _profile_tier(name, fn, **kwargs)
    best_wall = None
    outcome = None
    for _ in range(max(1, runs)):
        start = time.perf_counter()
        outcome = fn(**kwargs)
        wall_s = time.perf_counter() - start
        if best_wall is None or wall_s < best_wall:
            best_wall = wall_s
    wall_s = best_wall
    hotpaths = outcome.extras.get("hotpaths", {})
    events = hotpaths.get("events_fired", outcome.world.scheduler.events_fired)
    row = {
        "wall_s": round(wall_s, 4),
        "events_fired": events,
        "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
        "runs": max(1, runs),
        "nodes": len(outcome.world.nodes),
        "latency_ms": outcome.latency_ms,
        "results": outcome.results,
    }
    for key in (
        "sched_compactions",
        "route_cache_hit_rate",
        "parse_dedup_rate",
        "streams_parsed",
        "streams_shared",
        "route_cache_hits",
        "route_cache_misses",
    ):
        if key in hotpaths:
            row[key] = hotpaths[key]
    # Per-protocol decode attribution (parse_decoded/shared/seeded plus
    # parse_dedup_rate_<proto>), whatever protocols the scenario ran.
    for key, value in sorted(hotpaths.items()):
        if key.startswith("parse_") and key not in row:
            row[key] = value
    for key in (
        "chatter_searches_completed",
        "chatter_found_rate",
        "cp_searches_completed",
        "cp_found_rate",
        "ping_sent",
        "ping_received",
    ):
        if key in outcome.extras:
            row[key] = outcome.extras[key]
    return row


def run_backbone_sizes(sizes=(500, 2000), chatter_per_leaf: int = 8) -> dict:
    results = {}
    for nodes in sizes:
        key = f"sharded_backbone_{nodes}"
        results[key] = _measure(
            sharded_backbone, seed=0, nodes=nodes,
            chatter_per_leaf=chatter_per_leaf, name=key,
        )
    # The perf-gate workload: dense edge chatter, where the pre-overhaul
    # core degraded super-linearly (per-receiver re-parse of every frame).
    results[GATE_KEY] = _measure(
        sharded_backbone, seed=0, nodes=2000, chatter_per_leaf=16, name=GATE_KEY
    )
    return results


def run_metro(nodes: int = 5000) -> dict:
    key = f"metro_backbone_{nodes}"
    return {key: _measure(metro_backbone, seed=0, nodes=nodes, runs=2, name=key)}


def run_media_city(nodes: int = 3000) -> dict:
    """The UPnP-dominated workload, memo on and (for the record) off.

    The ``_noshare`` row runs the byte-identical scenario with
    ``parse_once=False`` — its events_fired must match the main row (the
    memo removes host CPU, not simulated behaviour) and the events/sec
    ratio is the measured price of per-receiver re-parsing.
    """
    key = f"media_city_{nodes}"
    return {
        key: _measure(media_city, seed=0, nodes=nodes, runs=2, name=key),
        f"{key}_noshare": _measure(
            media_city, seed=0, nodes=nodes, runs=2, parse_once=False
        ),
    }


#: The district_grid tier's shape: dense enough load that throughput
#: tracks event processing rather than the one-time 20k-node build.
DISTRICT_GRID_PARAMS = dict(
    districts=8,
    leaves_per_district=6,
    chatter_per_leaf=4,
    chatter_period_us=150_000,
    ping_period_us=50_000,
    run_us=5_000_000,
)


def run_district_grid(nodes: int = 20_000) -> dict:
    """The partitioned-engine A/B tier on the multi-district world.

    Three rows over the identical spec: the single-threaded wheel, the
    in-process district-sharded engine (both gated — they fire identical
    schedules, so the delta is pure engine overhead), and the forked
    one-worker-per-district backend, reported for the record with the
    driver's own wall clock (build + fork + barriers + merge).
    """
    key = f"district_grid_{nodes}"
    # One unmeasured warm-up at full scale: the tier's first 20k-node
    # build pays allocator/page-cache costs the later rows don't, which
    # would otherwise bias the traced-vs-untraced delta below.
    district_grid(seed=0, nodes=nodes, **DISTRICT_GRID_PARAMS)
    results = {
        key: _measure(
            district_grid, seed=0, nodes=nodes, name=key, runs=2,
            **DISTRICT_GRID_PARAMS,
        ),
    }
    # The flight-recorder A/B row: the identical single-wheel run with
    # metrics + trace recording on, measured back-to-back with the
    # untraced baseline so host drift doesn't pollute the delta.
    # ``overhead_vs_untraced`` is the fractional wall-time cost of
    # recording (the ISSUE budget is <=10%).
    traced = _measure(
        district_grid, seed=0, nodes=nodes, record=True, runs=2,
        **DISTRICT_GRID_PARAMS,
    )
    traced["recording"] = True
    base_wall = results[key]["wall_s"]
    traced["overhead_vs_untraced"] = (
        round(traced["wall_s"] / base_wall - 1.0, 4) if base_wall else None
    )
    results[f"{key}_traced"] = traced
    results[f"{key}_partitioned"] = _measure(
        district_grid, seed=0, nodes=nodes, engine="partitioned", runs=2,
        name=f"{key}_partitioned", **DISTRICT_GRID_PARAMS,
    )
    mp = run_world_mp(district_grid_spec(nodes=nodes, **DISTRICT_GRID_PARAMS), seed=0)
    results[f"{key}_mp"] = {
        "wall_s": mp["wall_s"],
        "events_fired": mp["events_fired"],
        "events_per_sec": round(mp["events_fired"] / mp["wall_s"]) if mp["wall_s"] else 0,
        "runs": 1,
        "backend": mp["backend"],
        "processes": mp["processes"],
        "partitions": mp["partitions"],
        "lookahead_us": mp["lookahead_us"],
        "barrier_windows": mp["windows"],
        "ping_sent": mp["extras"].get("ping_sent"),
        "ping_received": mp["extras"].get("ping_received"),
        "chatter_searches_completed": mp["extras"].get("chatter_searches_completed"),
        "note": "wall includes the shared build + fork + barrier exchange; "
        "speedup over the partitioned row needs one core per district",
    }
    return results


def run(metro_nodes: int = 5000, media_nodes: int = 3000,
        grid_nodes: int = 20_000) -> dict:
    results = run_backbone_sizes()
    results.update(run_metro(nodes=metro_nodes))
    results.update(run_media_city(nodes=media_nodes))
    results.update(run_district_grid(nodes=grid_nodes))
    results["machine_ref_score"] = round(_machine_ref_score())
    return results


def write_results(results: dict, path: str = RESULT_FILE) -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True))


def check_baseline(results: dict, baseline_path: Path = BASELINE_FILE) -> list[str]:
    """Regression messages (empty when the perf gate passes).

    The baseline file keeps the measured **pre-overhaul** rows for the
    record (the PR's speedup claims divide against them) plus blessed
    post-overhaul throughputs: the legacy single ``gate`` object and/or a
    ``gates`` list — every entry is checked, and CI fails when any
    measured gate workload falls below ``GATE_FRACTION`` of its committed
    value.
    """
    if not baseline_path.exists():
        return [f"baseline file {baseline_path} missing"]
    baseline = json.loads(baseline_path.read_text())
    gates = list(baseline.get("gates", ()))
    if baseline.get("gate"):
        gates.insert(0, baseline["gate"])
    if not gates:
        return ["no gate entries in baseline"]
    problems = []
    measured_ref = results.get("machine_ref_score")
    for gate in gates:
        key = gate.get("key", GATE_KEY)
        measured = results.get(key)
        if "events_per_sec" not in gate or not measured:
            problems.append(f"gate key {key!r} missing from baseline or results")
            continue
        # Normalize both sides by their machine reference score so the gate
        # tracks the *code*, not the runner the job landed on.
        gate_ref = gate.get("machine_ref_score")
        if gate_ref and measured_ref:
            gate_value = gate["events_per_sec"] / gate_ref
            measured_value = measured["events_per_sec"] / measured_ref
            unit = "normalized events/sec (events per reference-iteration)"
        else:
            gate_value = gate["events_per_sec"]
            measured_value = measured["events_per_sec"]
            unit = "events/sec"
        if measured_value < gate_value * GATE_FRACTION:
            problems.append(
                f"{key}: {measured_value:.6f} {unit} is below "
                f"{GATE_FRACTION:.0%} of the committed gate value "
                f"({gate_value:.6f})"
            )
    return problems


# -- pytest entry point ----------------------------------------------------------


def test_core_hotpaths_smoke():
    """Small-scale sanity: the scale scenarios run, chatter gets answers,
    and the hot-path counters are present and sane."""
    row = _measure(sharded_backbone, seed=0, nodes=300, chatter_per_leaf=2)
    assert row["events_fired"] > 500
    assert row["chatter_searches_completed"] >= 5
    assert row["chatter_found_rate"] > 0.8
    metro = _measure(
        metro_backbone,
        seed=0,
        districts=2,
        leaves_per_district=3,
        nodes=400,
        chatter_per_leaf=2,
        run_us=2_000_000,
    )
    assert metro["results"] >= 1, "intra-district probe found nothing"
    assert metro["chatter_found_rate"] > 0.5
    media = _measure(
        media_city,
        seed=0,
        districts=2,
        leaves_per_district=3,
        nodes=250,
        devices_per_leaf=3,
        cp_per_leaf=2,
        run_us=2_000_000,
        runs=1,
    )
    assert media["results"] >= 1, "control-point probe found nothing"
    assert media["parse_dedup_rate"] >= 0.6
    assert media["parse_dedup_rate_upnp"] >= 0.6
    # The A/B variant fires the identical virtual-time schedule.
    noshare = _measure(
        media_city,
        seed=0,
        districts=2,
        leaves_per_district=3,
        nodes=250,
        devices_per_leaf=3,
        cp_per_leaf=2,
        run_us=2_000_000,
        runs=1,
        parse_once=False,
    )
    assert noshare["events_fired"] == media["events_fired"]
    assert noshare["parse_dedup_rate"] == 0.0
    # The partitioned engine fires the identical schedule on the
    # multi-district world (the full parity suite lives in tests/world).
    grid_params = dict(districts=3, leaves_per_district=2, run_us=2_000_000)
    single = _measure(district_grid, seed=0, runs=1, **grid_params)
    sharded = _measure(
        district_grid, seed=0, runs=1, engine="partitioned", **grid_params
    )
    assert single["events_fired"] == sharded["events_fired"]
    assert single["ping_received"] == sharded["ping_received"] > 0
    assert single["chatter_found_rate"] > 0.8


def main(argv: list[str]) -> int:
    global PROFILE
    args = list(argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    if "--profile" in args:
        args.remove("--profile")
        PROFILE = True
    try:
        metro_nodes = int(args[0]) if args else 5000
    except ValueError:
        print(f"usage: {argv[0]} [--check] [--profile] [metro_nodes]", file=sys.stderr)
        return 2
    results = run(metro_nodes=metro_nodes)
    write_results(results)

    for name, row in sorted(results.items()):
        if not isinstance(row, dict):
            print(f"{name:24s} {row}")
            continue
        print(
            f"{name:24s} {row['wall_s']:7.2f}s wall  "
            f"{row['events_fired']:>8d} events  "
            f"{row['events_per_sec']:>9,d} ev/s  "
            f"route-cache {row.get('route_cache_hit_rate', 0.0):.2f}  "
            f"parse-dedup {row.get('parse_dedup_rate', 0.0):.2f}  "
            f"compactions {row.get('sched_compactions', 0)}"
        )
    print(f"wrote {RESULT_FILE}")

    if check:
        problems = check_baseline(results)
        for problem in problems:
            print(f"PERF REGRESSION: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"perf gate ok (>= {GATE_FRACTION:.0%} of committed baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

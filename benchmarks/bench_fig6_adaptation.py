"""Figure 6 (behavioural): passive/passive deadlock and threshold adaptation.

The paper's Figure 6 shows that with a passive client and a passive
service, INDISS on the service host sees nothing to translate ("the client
does not understand anything") until it switches to the active model —
which it may only do "when the network traffic is low".  This benchmark
measures the time for a passive SLP client to learn about a passive UPnP
service under the adaptation manager, and verifies the blocked case.
"""

import statistics

import pytest

from conftest import report
from repro.bench import PAPER_TESTBED
from repro.core import AdaptationManager, Indiss, IndissConfig
from repro.net import Network
from repro.sdp.slp import SlpConfig, UserAgent
from repro.sdp.upnp import make_clock_device


def passive_passive_world(seed: int, with_adaptation: bool, threshold: float = 0.5):
    costs = PAPER_TESTBED
    net = Network(latency=costs.latency_model(seed))
    client_node, service_node = net.add_node("client"), net.add_node("service")
    ua = UserAgent(client_node, config=SlpConfig(timings=costs.slp), passive=True)
    make_clock_device(service_node, timings=costs.upnp, seed=seed, advertise=True)
    indiss = Indiss(
        service_node,
        IndissConfig(units=("slp", "upnp"), deployment="service", timings=costs.indiss,
                     seed=seed),
    )
    manager = None
    if with_adaptation:
        manager = AdaptationManager(indiss, threshold=threshold, check_period_us=250_000)
    return net, ua, indiss, manager


def time_to_first_advert(seed: int, with_adaptation: bool) -> float | None:
    """Virtual ms until the passive client hears a translated SAAdvert."""
    net, ua, indiss, manager = passive_passive_world(seed, with_adaptation)
    first: list[int] = []
    ua.on_advert = lambda advert: first.append(net.scheduler.now_us) if not first else None
    net.run(duration_us=10_000_000)
    if manager is not None:
        manager.stop()
    return first[0] / 1000.0 if first else None


@pytest.fixture(scope="module")
def results():
    adapted = [time_to_first_advert(seed, True) for seed in range(5)]
    blocked = [time_to_first_advert(seed, False) for seed in range(3)]
    return adapted, blocked


def test_adaptation_discovery_time(benchmark, results):
    latency = benchmark(lambda: time_to_first_advert(0, True))
    assert latency is not None
    adapted, blocked = results
    assert all(value is None for value in blocked)  # Fig. 6's blocked case
    assert all(value is not None for value in adapted)
    report(
        "Figure 6: passive/passive adaptation\n"
        "====================================\n"
        "without adaptation : client never discovers (paper: 'blocked situation')\n"
        f"with adaptation    : first translated advert after "
        f"{statistics.median(adapted):.0f} ms (threshold switch + readvertisement)"
    )


class TestFigure6Shape:
    def test_blocked_without_adaptation(self, results):
        adapted, blocked = results
        assert all(value is None for value in blocked)

    def test_unblocked_with_adaptation(self, results):
        adapted, blocked = results
        assert all(value is not None for value in adapted)

    def test_report(self, results):
        adapted, blocked = results
        median = statistics.median(adapted)
        report(
            "Figure 6: passive/passive adaptation\n"
            "====================================\n"
            f"without adaptation : client never discovers (paper: 'blocked situation')\n"
            f"with adaptation    : first translated advert after {median:.0f} ms "
            f"(threshold switch + readvertisement)"
        )


class TestThresholdBehaviour:
    def test_busy_network_defers_activation(self):
        """High utilization keeps INDISS passive (paper: only switch when
        the network traffic is low)."""
        costs = PAPER_TESTBED
        net = Network(latency=costs.latency_model(0))
        client_node, service_node = net.add_node("client"), net.add_node("service")
        blaster_a, blaster_b = net.add_node("ba"), net.add_node("bb")
        UserAgent(client_node, config=SlpConfig(timings=costs.slp), passive=True)
        make_clock_device(service_node, timings=costs.upnp, advertise=True)
        indiss = Indiss(
            service_node, IndissConfig(units=("slp", "upnp"), timings=costs.indiss)
        )
        manager = AdaptationManager(indiss, threshold=0.001, check_period_us=250_000)
        from repro.net import Endpoint

        blaster_b.udp.socket().bind(9000)
        blast = blaster_a.udp.socket().bind(9001)
        blaster_a.every(
            3_000, lambda: blast.sendto(b"x" * 1200, Endpoint(blaster_b.address, 9000))
        )
        net.run(duration_us=3_000_000)
        manager.stop()
        assert not manager.active

"""Ablation: translation cost tracks the *target* protocol's profile.

The same SLP client, the same question ("find me a clock"), three
different hosting protocols.  The paper's §4.3 point — INDISS adds little
and the native stacks dominate — predicts translated latency should be
set almost entirely by the target protocol's native behaviour: UPnP pays
its responder window and description fetch; Jini pays only a registrar TCP
lookup.
"""

import statistics

import pytest

from conftest import report
from repro.bench import (
    measure,
    run_trials,
    slp_to_jini_gateway,
    slp_to_upnp_gateway,
)


@pytest.fixture(scope="module")
def medians():
    return {
        "native_slp": measure("fig7_native_slp"),
        "to_upnp": statistics.median(run_trials(slp_to_upnp_gateway, trials=15)),
        "to_jini": statistics.median(run_trials(slp_to_jini_gateway, trials=15)),
    }


def test_slp_to_jini_gateway(benchmark, medians):
    outcome = benchmark(lambda: slp_to_jini_gateway(seed=1))
    assert outcome.results == 1
    # Jini has no responder-delay semantics: the translated path is a TCP
    # lookup and lands well under one UPnP cycle.
    assert medians["to_jini"] < medians["to_upnp"] / 10
    # ... but a translated search can never beat the native protocol.
    assert medians["to_jini"] > medians["native_slp"].median_ms
    report(
        "Ablation: target protocol determines translated latency (gateway)\n"
        "==================================================================\n"
        f"SLP -> SLP (native)          : {medians['native_slp'].median_ms:8.3f} ms\n"
        f"SLP -> Jini registrar lookup : {medians['to_jini']:8.3f} ms\n"
        f"SLP -> UPnP device           : {medians['to_upnp']:8.3f} ms\n"
        "(the target stack's native behaviour dominates, as §4.3 argues)"
    )

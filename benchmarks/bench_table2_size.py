"""Table 2: size requirements of INDISS vs the native libraries.

Regenerates the paper's KB / classes / NCSS table over this repository and
checks the qualitative claims that carry over to Python (see
EXPERIMENTS.md for the full discussion of which absolute numbers cannot
carry across languages).
"""

import pytest

from conftest import report
from repro.bench import (
    format_table2,
    indiss_size_reports,
    interop_sizing,
)


@pytest.fixture(scope="module")
def reports():
    return indiss_size_reports()


def test_table2_report(benchmark, reports):
    """Benchmark the static analysis itself and print the table."""
    measured = benchmark(indiss_size_reports)
    interop = interop_sizing(measured)
    report(format_table2(measured, interop))


class TestTable2Shapes:
    """Qualitative claims of §4.1 that must hold in any language."""

    def test_slp_unit_smaller_than_upnp_unit(self, reports):
        # Paper: 49 KB / 606 NCSS vs 125 KB / 1515 NCSS.
        assert reports["slp_unit"].ncss < reports["upnp_unit"].ncss
        assert reports["slp_unit"].bytes < reports["upnp_unit"].bytes

    def test_units_much_smaller_than_native_stacks(self, reports):
        """Adding one SDP via a unit is far cheaper than adding its stack."""
        assert reports["slp_unit"].ncss * 2 < reports["openslp"].ncss
        assert reports["upnp_unit"].ncss * 2 < reports["cyberlink"].ncss

    def test_every_component_is_nonempty(self, reports):
        for name, component in reports.items():
            assert component.ncss > 0, name
            assert component.files > 0, name

    def test_upnp_stack_larger_than_slp_stack(self, reports):
        # Paper: CyberLink 372 KB vs OpenSLP 126 KB; UPnP is the heavier
        # protocol in any implementation (SSDP + HTTP + XML + SOAP).
        assert reports["cyberlink"].bytes > reports["openslp"].bytes

    def test_classes_counted(self, reports):
        assert reports["indiss_total"].classes >= 10


class TestPerServiceScaling:
    """Paper §4.1: "the size requirements of an interoperable middleware
    without INDISS increases faster than the one equipped with INDISS"
    because every added service must otherwise be developed per-SDP."""

    #: Footprint of one service implementation per SDP (KB); measured from
    #: our example clock implementations (device + agent registration).
    SERVICE_KB_PER_SDP = 6.0

    def test_indiss_wins_as_services_grow(self, reports):
        interop = interop_sizing(reports)
        for services in (1, 5, 10, 50):
            with_indiss = interop.slp_with_indiss_kb + services * self.SERVICE_KB_PER_SDP
            without = interop.dual_stack_kb + services * 2 * self.SERVICE_KB_PER_SDP
            if services >= 50:
                assert with_indiss < without

"""Ablation: how much of the translated latency is INDISS itself?

Paper §4.3's framing is that the translated response time is dominated by
the native stacks ("on the service side ... we cannot interfere on the
native time taken to get UPnP response from the service").  This ablation
quantifies that: the same scenario with INDISS's own processing charges
zeroed out isolates the share attributable to event parsing, composition,
dispatch and XML handling.
"""

import dataclasses
import statistics

import pytest

from conftest import report
from repro.bench import CostModel, PAPER_TESTBED, run_trials, slp_to_upnp_service_side
from repro.core.unit import IndissTimings


def free_indiss_costs() -> CostModel:
    return dataclasses.replace(
        PAPER_TESTBED,
        indiss=IndissTimings(
            parse_us=0, compose_us=0, dispatch_us=0, xml_parse_us=0, cache_lookup_us=0
        ),
    )


@pytest.fixture(scope="module")
def medians():
    calibrated = statistics.median(run_trials(slp_to_upnp_service_side, trials=15))
    free = statistics.median(
        run_trials(slp_to_upnp_service_side, trials=15, costs=free_indiss_costs())
    )
    return calibrated, free


def test_indiss_overhead(benchmark, medians):
    outcome = benchmark(lambda: slp_to_upnp_service_side(seed=1, costs=free_indiss_costs()))
    assert outcome.results == 1
    calibrated, free = medians
    overhead_ms = calibrated - free
    share = overhead_ms / calibrated
    # INDISS's own processing is a small fraction of the translated path.
    assert share < 0.05
    report(
        "Ablation: INDISS's own processing share (SLP->UPnP, service side)\n"
        "=================================================================\n"
        f"calibrated INDISS costs : {calibrated:8.3f} ms\n"
        f"zeroed INDISS costs     : {free:8.3f} ms\n"
        f"INDISS contribution     : {overhead_ms:8.3f} ms ({share:.1%} of the total)\n"
        "(the native UPnP stack dominates, as the paper argues)"
    )

"""Ablation: real (wall-clock) micro-costs of the INDISS machinery.

The virtual-time scenarios charge *modelled* costs; this file benchmarks
the actual Python execution speed of the hot paths — codec round trips,
event-stream parsing, FSM feeding, detection — so a downstream user knows
what the library itself costs, independent of the calibrated testbed.
"""

import pytest

from repro.core.events import Event, SDP_SERVICE_REQUEST, bracket
from repro.core.fsm import StateMachine
from repro.core.parser import NetworkMeta
from repro.core.registry import default_registry
from repro.core.session import TranslationSession
from repro.net import Endpoint
from repro.sdp.slp import (
    Flags,
    FunctionId,
    Header,
    SrvRqst,
    decode,
    encode,
)
from repro.sdp.upnp import build_msearch, build_search_response, parse_ssdp
from repro.units.slp_unit import SlpEventComposer, SlpEventParser
from repro.units.upnp_unit import SsdpEventParser, XmlDescriptionParser


REQUEST = SrvRqst(
    header=Header(FunctionId.SRVRQST, xid=7, flags=Flags.REQUEST_MCAST),
    service_type="service:clock",
    scopes=("DEFAULT",),
    predicate="(model=Cyber*)",
)
REQUEST_BYTES = encode(REQUEST)
MSEARCH_BYTES = build_msearch("urn:schemas-upnp-org:device:clock:1")
RESPONSE_BYTES = build_search_response(
    st="urn:schemas-upnp-org:device:clock:1",
    usn="uuid:ClockDevice::urn:schemas-upnp-org:device:clock:1",
    location="http://192.168.1.2:4004/description.xml",
)
META = NetworkMeta(
    source=Endpoint("192.168.1.9", 427),
    destination=Endpoint("239.255.255.253", 427),
    multicast=True,
)


def test_slp_wire_round_trip(benchmark):
    result = benchmark(lambda: decode(encode(REQUEST)))
    assert result == REQUEST


def test_ssdp_parse(benchmark):
    message = benchmark(lambda: parse_ssdp(RESPONSE_BYTES))
    assert message.usn.startswith("uuid:ClockDevice")


def test_slp_event_parsing(benchmark):
    parser = SlpEventParser()
    stream = benchmark(lambda: parser.parse(REQUEST_BYTES, META))
    assert stream[0].name == "SDP_C_START"


def test_ssdp_event_parsing(benchmark):
    parser = SsdpEventParser()
    stream = benchmark(lambda: parser.parse(MSEARCH_BYTES, META))
    assert any(e.type is SDP_SERVICE_REQUEST for e in stream)


def test_xml_description_event_parsing(benchmark):
    from repro.sdp.upnp import clock_description

    parser = XmlDescriptionParser()
    parser.base_url = "http://h:4004/description.xml"
    document = clock_description("h").to_xml().encode()
    stream = benchmark(lambda: parser.parse(document, META))
    assert any(e.name == "SDP_RES_SERV_URL" for e in stream)


def test_slp_compose_request(benchmark):
    composer = SlpEventComposer()
    parser = SlpEventParser()
    stream = parser.parse(REQUEST_BYTES, META)

    def compose():
        session = TranslationSession("upnp", None)
        session.vars["native_xid"] = 9
        return composer.compose(stream, session)

    messages = benchmark(compose)
    assert len(messages) == 1


def test_fsm_feed_stream(benchmark):
    from repro.units.slp_unit import _target_fsm

    stream = bracket([Event.of(SDP_SERVICE_REQUEST)], sdp="slp")

    def run():
        machine = StateMachine(_target_fsm())
        machine.bind_action("record_type", lambda e, m: None)
        machine.bind_action("send_request", lambda e, m: None)
        return machine.feed_all(stream)

    fired = benchmark(run)
    assert fired == 1


def test_port_detection_lookup(benchmark):
    """The paper's claim: detection cost is "reduced to a minimum"."""
    registry = default_registry()
    sdp = benchmark(lambda: registry.sdp_for_port(1900))
    assert sdp == "upnp"

"""Shared benchmark infrastructure.

Benchmarks register paper-vs-measured tables with :func:`report`; a
terminal-summary hook prints them after the pytest-benchmark tables so the
reproduction numbers appear in ``bench_output.txt`` regardless of capture
settings.
"""

from __future__ import annotations

_REPORTS: list[str] = []


def report(text: str) -> None:
    """Queue a formatted table for the end-of-run summary."""
    _REPORTS.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("INDISS reproduction: paper vs measured")
    for block in _REPORTS:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")

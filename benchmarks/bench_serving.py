"""Serving-tier benchmark: the query frontend under open-loop load.

Drives the ``serving_backbone`` scenario — federated campus gateways,
gossip-warmed caches, a :class:`~repro.serving.frontend.QueryFrontend`
per gateway — with an open-loop ``QueryLoad`` population sized to offer
>= 10^4 queries, and reports the serving tier's headline numbers:

* per-query latency percentiles (``p50_us`` / ``p95_us`` / ``p99_us``,
  from the flight recorder's histogram buckets);
* warm hit rate (the ``--check`` gate requires >= ``WARM_HIT_GATE``);
* staleness of served answers (mean / max honesty stamps, stale count);
* miss-fallback traffic, and simulator throughput for the perf gate.

The headline tier runs **twice with the same seed** and the row digests
(canonical JSON over the client rows plus the serving counters) must be
byte-identical — ``--check`` fails otherwise, which is the CI
reproducibility gate.  A small ``serving_grid`` pair additionally pins
the single-threaded and inline-partitioned engines to identical query
row streams.

Results go to ``BENCH_serving.json``.  ``--check`` also compares
machine-normalized events/sec against every entry in the committed
``benchmarks/BENCH_serving.baseline.json`` (>20% regression fails, the
same contract as ``bench_core_hotpaths``).

Run directly (``PYTHONPATH=src python benchmarks/bench_serving.py``) or
through pytest for the smoke test.
"""

from __future__ import annotations

import hashlib
import json
import sys
import time
from pathlib import Path

from repro.world import World, run_world_partitioned
from repro.world.scenarios import serving_backbone_spec, serving_grid_spec

RESULT_FILE = "BENCH_serving.json"
BASELINE_FILE = Path(__file__).parent / "BENCH_serving.baseline.json"

#: CI fails when normalized events/sec drops below this fraction of the
#: committed gate value.  Wider than the core bench's 0.8: the headline
#: run is short (~1.5s), so the normalized metric is noisier than the
#: core gates' 10s+ workloads.
GATE_FRACTION = 0.7
#: ... or when the warm-cache hit rate falls below the ISSUE's floor.
WARM_HIT_GATE = 0.9
#: ... or when fewer open-loop queries than this were actually answered.
MIN_QUERIES = 10_000

#: The headline tier: 4 fleet gateways x 4 leaves x 5 clients x 600
#: queries = 12,000 offered queries, one type in four served cold so the
#: miss -> fallback -> gossip path stays exercised at scale.
BACKBONE_PARAMS = dict(
    members=4,
    nodes=200,
    service_types=4,
    cold_types=1,
    clients_per_leaf=5,
    queries_per_client=600,
    mean_interval_us=5_000,
    run_us=4_500_000,
)

GATE_KEY = "serving_backbone_12000"


def _machine_ref_score(loops: int = 400_000) -> float:
    """Throughput of a fixed pure-Python workload (iterations/second);
    the perf gate compares events/sec normalized by this score so it
    tracks the code, not the runner (same reference as the core bench)."""
    best = None
    for _ in range(3):
        bucket = {}
        acc = 0
        start = time.perf_counter()
        for i in range(loops):
            bucket[i & 1023] = i
            acc += i ^ (i >> 3)
        wall = time.perf_counter() - start
        if best is None or wall < best:
            best = wall
    return loops / best


def _digest(world, outcome) -> str:
    """Canonical digest of everything the serving tier produced: the
    per-client query rows plus the frontend counters.  Byte-identical
    across runs of the same spec + seed, on any engine."""
    rows = world.load_groups.get("query", [])
    counters = {
        key: value
        for key, value in sorted(outcome.extras.items())
        if key.startswith(("query_", "serving_", "queries_"))
    }
    payload = json.dumps([rows, counters], sort_keys=True).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def _serving_row(world, outcome, wall_s: float) -> dict:
    extras = outcome.extras
    answered = extras.get("query_responses", 0)
    rows = world.load_groups.get("query", [])
    lat_sum = sum(row.get("lat_sum", 0) for row in rows)
    lat_count = sum(row.get("lat_count", 0) for row in rows)
    return {
        # Exact mean over every answered query; the percentiles below
        # come from the recorder's histogram buckets, so they quantize
        # to bucket edges.
        "latency_mean_us": round(lat_sum / lat_count) if lat_count else 0,
        "wall_s": round(wall_s, 4),
        "events_fired": outcome.world.scheduler.events_fired,
        "events_per_sec": (
            round(outcome.world.scheduler.events_fired / wall_s) if wall_s else 0
        ),
        "nodes": len(outcome.world.nodes),
        "queries_offered": extras.get("queries_offered", 0),
        "queries_sent": extras.get("queries_sent", 0),
        "responses": answered,
        "hit_rate": extras.get("query_hit_rate", 0.0),
        "p50_us": extras.get("query_latency_p50_us", 0),
        "p95_us": extras.get("query_latency_p95_us", 0),
        "p99_us": extras.get("query_latency_p99_us", 0),
        "stale_answers": extras.get("serving_stale_answers", 0),
        "staleness_mean_us": extras.get("serving_staleness_mean_us", 0),
        "staleness_max_us": extras.get("serving_staleness_max_us", 0),
        "fallbacks": extras.get("serving_fallbacks", 0),
        "decode_errors": extras.get("query_decode_errors", 0),
        "warm_members": extras.get("warm_members_after_gossip", 0),
        "frontends": extras.get("serving_frontends", 0),
    }


def run_backbone(seed: int = 0, **overrides) -> dict:
    """The headline tier, run twice at the same seed for the digest pair."""
    params = dict(BACKBONE_PARAMS)
    params.update(overrides)
    spec = serving_backbone_spec(**params)
    rows = {}
    digests = []
    best = None
    for attempt in range(2):
        start = time.perf_counter()
        world = World.build(spec, seed=seed, record=True)
        world.run_workload()
        outcome = world.outcome()
        wall_s = time.perf_counter() - start
        digests.append(_digest(world, outcome))
        if best is None or wall_s < best["wall_s"]:
            best = _serving_row(world, outcome, wall_s)
    best["digest"] = digests[0]
    best["reproducible"] = digests[0] == digests[1]
    rows[GATE_KEY] = best
    return rows


def run_grid_parity(seed: int = 0) -> dict:
    """Single-threaded vs inline-partitioned engines on ``serving_grid``:
    identical query rows, reported with both wall clocks.  (The full
    three-engine suite, multiprocess included, lives in tests/world.)"""
    spec = serving_grid_spec(
        districts=3, leaves_per_district=2, clients_per_leaf=2,
        queries_per_client=25, mean_interval_us=40_000, run_us=2_500_000,
    )
    start = time.perf_counter()
    single = World.build(spec, seed=seed)
    single.run_workload()
    single_wall = time.perf_counter() - start
    partitioned = run_world_partitioned(spec, seed=seed)
    single_rows = [dict(row) for row in single.load_groups.get("query", [])]
    part_rows = partitioned["load_groups"].get("query", [])
    return {
        "serving_grid_parity": {
            "wall_s": round(single_wall, 4),
            "partitioned_wall_s": partitioned["wall_s"],
            "partitions": partitioned["partitions"],
            "queries_sent": sum(r["sent"] for r in single_rows),
            "responses": sum(r["responses"] for r in single_rows),
            "engines_agree": single_rows == part_rows,
        }
    }


def run(seed: int = 0) -> dict:
    results = run_backbone(seed=seed)
    results.update(run_grid_parity(seed=seed))
    results["machine_ref_score"] = round(_machine_ref_score())
    return results


def write_results(results: dict, path: str = RESULT_FILE) -> None:
    Path(path).write_text(json.dumps(results, indent=2, sort_keys=True))


def check_results(results: dict, baseline_path: Path = BASELINE_FILE) -> list[str]:
    """Gate messages (empty when everything passes): functional gates on
    the measured run itself, plus the machine-normalized perf gates from
    the committed baseline."""
    problems = []
    headline = results.get(GATE_KEY, {})
    if headline.get("responses", 0) < MIN_QUERIES:
        problems.append(
            f"{GATE_KEY}: only {headline.get('responses', 0)} queries answered "
            f"(gate requires >= {MIN_QUERIES})"
        )
    if headline.get("hit_rate", 0.0) < WARM_HIT_GATE:
        problems.append(
            f"{GATE_KEY}: warm hit rate {headline.get('hit_rate', 0.0):.4f} "
            f"below the {WARM_HIT_GATE} gate"
        )
    if not headline.get("reproducible"):
        problems.append(
            f"{GATE_KEY}: two same-seed runs produced different row digests"
        )
    parity = results.get("serving_grid_parity", {})
    if not parity.get("engines_agree"):
        problems.append(
            "serving_grid_parity: single and partitioned engines disagree"
        )
    if not baseline_path.exists():
        problems.append(f"baseline file {baseline_path} missing")
        return problems
    baseline = json.loads(baseline_path.read_text())
    measured_ref = results.get("machine_ref_score")
    for gate in baseline.get("gates", ()):
        key = gate.get("key", GATE_KEY)
        measured = results.get(key)
        if "events_per_sec" not in gate or not measured:
            problems.append(f"gate key {key!r} missing from baseline or results")
            continue
        gate_ref = gate.get("machine_ref_score")
        if gate_ref and measured_ref:
            gate_value = gate["events_per_sec"] / gate_ref
            measured_value = measured["events_per_sec"] / measured_ref
            unit = "normalized events/sec (events per reference-iteration)"
        else:
            gate_value = gate["events_per_sec"]
            measured_value = measured["events_per_sec"]
            unit = "events/sec"
        if measured_value < gate_value * GATE_FRACTION:
            problems.append(
                f"{key}: {measured_value:.6f} {unit} is below "
                f"{GATE_FRACTION:.0%} of the committed gate value "
                f"({gate_value:.6f})"
            )
    return problems


# -- pytest entry point ----------------------------------------------------------


def test_serving_bench_smoke():
    """Small-scale sanity: the headline tier answers with a warm cache,
    reports latency percentiles, and is byte-reproducible per seed."""
    rows = run_backbone(
        seed=0, nodes=40, clients_per_leaf=1, queries_per_client=30,
        mean_interval_us=20_000, run_us=2_500_000,
    )
    row = rows[GATE_KEY]
    assert row["responses"] == row["queries_sent"] > 0
    assert row["hit_rate"] > 0.7
    assert row["p99_us"] >= row["p50_us"] > 0
    assert row["reproducible"], "same-seed runs diverged"
    assert row["warm_members"] >= 4
    parity = run_grid_parity(seed=0)["serving_grid_parity"]
    assert parity["engines_agree"]
    assert parity["responses"] > 0


def main(argv: list[str]) -> int:
    args = list(argv[1:])
    check = "--check" in args
    if check:
        args.remove("--check")
    try:
        seed = int(args[0]) if args else 0
    except ValueError:
        print(f"usage: {argv[0]} [--check] [seed]", file=sys.stderr)
        return 2
    results = run(seed=seed)
    write_results(results)

    for name, row in sorted(results.items()):
        if not isinstance(row, dict):
            print(f"{name:24s} {row}")
            continue
        if name == "serving_grid_parity":
            print(
                f"{name:24s} {row['wall_s']:7.2f}s wall  "
                f"{row['responses']:>6d} answered  "
                f"engines_agree={row['engines_agree']}"
            )
            continue
        print(
            f"{name:24s} {row['wall_s']:7.2f}s wall  "
            f"{row['responses']:>6d} answered  hit {row['hit_rate']:.4f}  "
            f"p50 {row['p50_us']}us  p99 {row['p99_us']}us  "
            f"stale_max {row['staleness_max_us']}us  "
            f"reproducible={row['reproducible']}"
        )
    print(f"wrote {RESULT_FILE}")

    if check:
        problems = check_results(results)
        for problem in problems:
            print(f"SERVING GATE: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(
            f"serving gates ok (hit rate >= {WARM_HIT_GATE}, >= {MIN_QUERIES} "
            f"queries, reproducible, perf >= {GATE_FRACTION:.0%} of baseline)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

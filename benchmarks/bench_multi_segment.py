"""Multi-segment internetwork benchmarks: discovery across INDISS gateways.

Measures first-answer latency for the segment/bridge/router scenario family
(no paper reference values exist for these — they are our scaling ablation):

* ``multi_segment_home`` — 2 segments, 1 bridged gateway, 50 hosts;
* ``gateway_chain``      — 3 segments, 2 chained gateways;
* ``campus_fanout``      — backbone + 5 leaves, 5 gateways, 120 hosts.

Run directly (``PYTHONPATH=src python benchmarks/bench_multi_segment.py``)
for a quick smoke with few trials, or through pytest with the rest of the
benchmark suite.
"""

from __future__ import annotations

import statistics
import sys

from repro.bench.harness import run_trials
from repro.bench.scenarios import SCENARIOS

MULTI_SEGMENT_SCENARIOS = ("multi_segment_home", "gateway_chain", "campus_fanout")


def run(trials: int = 5) -> dict[str, float]:
    medians: dict[str, float] = {}
    for name in MULTI_SEGMENT_SCENARIOS:
        latencies = run_trials(SCENARIOS[name], trials=trials)
        medians[name] = statistics.median(latencies)
    return medians


def test_multi_segment_smoke():
    """One small trial set per scenario; every trial must find the service
    and gateway hops must cost more than a single bridged gateway."""
    medians = run(trials=3)
    assert set(medians) == set(MULTI_SEGMENT_SCENARIOS)
    for name, median in medians.items():
        assert median > 0, name
    # Two gateway translations (chain) dominate one (home).
    assert medians["gateway_chain"] > medians["multi_segment_home"]


def main(argv: list[str]) -> int:
    try:
        trials = int(argv[1]) if len(argv) > 1 else 5
    except ValueError:
        print(f"usage: {argv[0]} [trials]", file=sys.stderr)
        return 2
    if trials < 1:
        print("trials must be >= 1", file=sys.stderr)
        return 2
    print(f"multi-segment scenarios, median of {trials} trials")
    for name, median in run(trials=trials).items():
        print(f"  {name:24s} {median:8.2f} ms")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

"""Per-port traffic accounting for the simulated segment.

INDISS's adaptation manager (paper §4.2, Figure 6) switches a passively
deployed instance to active advertisement only "when the network traffic is
low"; this module provides the utilization measurements that decision needs,
plus the per-port counters used by tests and benchmark reports.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import NamedTuple


@dataclass
class PortCounters:
    """Cumulative counters for one UDP/TCP port."""

    messages: int = 0
    bytes: int = 0
    multicast_messages: int = 0
    last_seen_us: int = -1


class TrafficSample(NamedTuple):
    # A NamedTuple, not a dataclass: two samples are allocated per
    # delivered frame (network-wide plus per-segment), so construction
    # cost is a measurable slice of the delivery hot path.
    time_us: int
    port: int
    size: int
    transport: str
    multicast: bool


class TrafficMonitor:
    """Counts every message the network delivers or attempts to deliver.

    The monitor keeps cumulative per-port counters forever and a sliding
    window of recent samples for utilization queries.  ``window_us`` bounds
    how far back :meth:`utilization` can look.
    """

    def __init__(self, bandwidth_bps: int | None, window_us: int = 5_000_000):
        self._bandwidth_bps = bandwidth_bps
        self._window_us = window_us
        self._per_port: dict[int, PortCounters] = defaultdict(PortCounters)
        self._recent: deque[TrafficSample] = deque()
        self.total_messages = 0
        self.total_bytes = 0

    def record(self, time_us: int, port: int, size: int, transport: str, multicast: bool) -> None:
        counters = self._per_port[port]
        counters.messages += 1
        counters.bytes += size
        counters.last_seen_us = time_us
        if multicast:
            counters.multicast_messages += 1
        self.total_messages += 1
        self.total_bytes += size
        self._recent.append(TrafficSample(time_us, port, size, transport, multicast))
        self._evict(time_us)

    def _evict(self, now_us: int) -> None:
        horizon = now_us - self._window_us
        while self._recent and self._recent[0].time_us < horizon:
            self._recent.popleft()

    def port(self, port: int) -> PortCounters:
        """Counters for ``port`` (zeros if never seen)."""
        return self._per_port.get(port, PortCounters())

    def ports_seen(self) -> list[int]:
        return sorted(p for p, c in self._per_port.items() if c.messages)

    def bytes_in_window(self, now_us: int, window_us: int) -> int:
        """Bytes observed during the last ``window_us`` of virtual time."""
        if window_us > self._window_us:
            raise ValueError(
                f"window {window_us} exceeds monitor retention {self._window_us}"
            )
        horizon = now_us - window_us
        return sum(s.size for s in self._recent if s.time_us >= horizon)

    def utilization(self, now_us: int, window_us: int = 1_000_000) -> float:
        """Fraction of segment bandwidth consumed over the trailing window.

        Returns 0.0 when the model has infinite bandwidth.
        """
        if not self._bandwidth_bps:
            return 0.0
        if window_us <= 0:
            raise ValueError("window_us must be positive")
        bits = self.bytes_in_window(now_us, min(window_us, self._window_us)) * 8
        capacity_bits = self._bandwidth_bps * window_us / 1_000_000
        return min(bits / capacity_bits, 1.0) if capacity_bits else 0.0


__all__ = ["TrafficMonitor", "PortCounters", "TrafficSample"]

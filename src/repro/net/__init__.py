"""Simulated network substrate (S1 in DESIGN.md).

A deterministic, virtual-time LAN with UDP + multicast + simplified TCP,
standing in for the paper's real 10 Mb/s segment.  See DESIGN.md §2 for the
substitution rationale.
"""

from .addressing import (
    ANY,
    BROADCAST,
    Endpoint,
    LOOPBACK,
    is_multicast,
    is_valid_ipv4,
    validate_port,
)
from .errors import (
    AddressError,
    ConnectionRefusedError,
    NetworkError,
    NoRouteError,
    NotBoundError,
    PortInUseError,
    SocketClosedError,
)
from .faults import FaultEvent, FaultPlan, execute_fault
from .latency import (
    GilbertElliottLoss,
    LatencyModel,
    LossModel,
    edge_seed,
    make_loss_model,
)
from .network import Network, TraceRecord
from .node import Node
from .segment import Bridge, DEFAULT_LINK_LATENCY_US, Link, Router, Segment
from .simclock import (
    MILLISECOND,
    SECOND,
    EventHandle,
    PeriodicTask,
    Scheduler,
    Timer,
    ms_to_us,
    us_to_ms,
)
from .tcp import TcpConnection, TcpListener, TcpStack
from .tracefmt import classify_payload, format_trace
from .traffic import TrafficMonitor
from .udp import (
    Datagram,
    FrameMemo,
    MEMO_MISS,
    NULL_MEMO,
    NullFrameMemo,
    ParseCounter,
    UdpSocket,
    UdpStack,
    shared_decode,
)

__all__ = [
    "ANY",
    "BROADCAST",
    "LOOPBACK",
    "MILLISECOND",
    "SECOND",
    "AddressError",
    "Bridge",
    "ConnectionRefusedError",
    "DEFAULT_LINK_LATENCY_US",
    "Datagram",
    "FrameMemo",
    "MEMO_MISS",
    "NULL_MEMO",
    "NullFrameMemo",
    "ParseCounter",
    "shared_decode",
    "Endpoint",
    "EventHandle",
    "FaultEvent",
    "FaultPlan",
    "GilbertElliottLoss",
    "LatencyModel",
    "Link",
    "LossModel",
    "Network",
    "NetworkError",
    "NoRouteError",
    "Node",
    "NotBoundError",
    "PeriodicTask",
    "PortInUseError",
    "Router",
    "Scheduler",
    "Segment",
    "SocketClosedError",
    "TcpConnection",
    "TcpListener",
    "TcpStack",
    "Timer",
    "TraceRecord",
    "TrafficMonitor",
    "UdpSocket",
    "UdpStack",
    "classify_payload",
    "edge_seed",
    "execute_fault",
    "format_trace",
    "make_loss_model",
    "is_multicast",
    "is_valid_ipv4",
    "ms_to_us",
    "us_to_ms",
    "validate_port",
]

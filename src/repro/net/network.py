"""The simulated LAN segment: node attachment and datagram delivery.

One :class:`Network` models the paper's single 10 Mb/s home-LAN segment.
Unicast datagrams route by destination address; multicast datagrams fan out
to every socket that joined the group and bound the destination port —
including sockets on the sending host (``IP_MULTICAST_LOOP`` behaviour),
which is how a co-located INDISS instance sees its host's own traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .addressing import (
    AddressAllocator,
    Endpoint,
    LOOPBACK,
    is_broadcast,
    is_loopback,
    is_multicast,
    parse_ipv4,
)
from .errors import AddressError
from .latency import LatencyModel, LossModel
from .node import Node
from .simclock import Scheduler
from .traffic import TrafficMonitor
from .udp import Datagram


@dataclass
class TraceRecord:
    """One captured wire message (for debugging and behavioural tests)."""

    time_us: int
    transport: str
    source: Endpoint
    destination: Endpoint
    size: int
    payload: bytes


class Network:
    """A single simulated LAN segment."""

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        latency: LatencyModel | None = None,
        loss: LossModel | None = None,
        subnet: str = "192.168.1",
        capture: bool = False,
    ):
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.latency = latency if latency is not None else LatencyModel()
        self.loss = loss
        self._allocator = AddressAllocator(subnet)
        self._nodes: dict[str, Node] = {}
        self.traffic = TrafficMonitor(self.latency.bandwidth_bps)
        self._capture = capture
        self.trace: list[TraceRecord] = []
        #: Unicast datagrams with no destination node (silently dropped).
        self.unrouted = 0

    # -- topology -----------------------------------------------------------

    def add_node(self, name: str, address: str | None = None) -> Node:
        """Attach a host; the address is allocated from the subnet if omitted."""
        if address is None:
            address = self._allocator.allocate()
        else:
            parse_ipv4(address)
        if address in self._nodes:
            raise AddressError(f"address {address} already attached")
        node = Node(self, name, address)
        self._nodes[address] = node
        return node

    def node_at(self, address: str) -> Optional[Node]:
        return self._nodes.get(address)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    # -- capture --------------------------------------------------------------

    def start_capture(self) -> None:
        self._capture = True

    def stop_capture(self) -> None:
        self._capture = False

    def trace_message(
        self, transport: str, source: Endpoint, destination: Endpoint, payload: bytes
    ) -> None:
        if self._capture:
            self.trace.append(
                TraceRecord(
                    self.scheduler.now_us, transport, source, destination, len(payload), payload
                )
            )

    # -- datagram delivery -----------------------------------------------------

    def send_datagram(
        self, sender: Node, source: Endpoint, destination: Endpoint, payload: bytes
    ) -> None:
        """Route one UDP datagram (unicast, multicast, or broadcast)."""
        size = len(payload)
        self.traffic.record(
            self.scheduler.now_us,
            destination.port,
            size,
            "udp",
            multicast=is_multicast(destination.host),
        )
        self.trace_message("udp", source, destination, payload)
        datagram = Datagram(payload=payload, source=source, destination=destination)

        if is_multicast(destination.host):
            self._deliver_multicast(sender, datagram)
        elif is_broadcast(destination.host):
            self._deliver_broadcast(sender, datagram)
        else:
            self._deliver_unicast(sender, datagram)

    def _deliver_unicast(self, sender: Node, datagram: Datagram) -> None:
        destination = datagram.destination
        if is_loopback(destination.host):
            target: Optional[Node] = sender
        else:
            target = self._nodes.get(destination.host)
        if target is None:
            self.unrouted += 1
            return
        loopback = target is sender
        self._schedule_delivery(target, datagram, loopback)

    def _deliver_multicast(self, sender: Node, datagram: Datagram) -> None:
        """Fan a datagram out to the group.

        Group membership resolves at *delivery* time (a socket that joins
        while the frame is in flight still receives it), matching a shared
        segment where every NIC sees the frame simultaneously.  The sender
        host's own members receive a loopback copy sooner.
        """
        group = datagram.destination.host
        port = datagram.destination.port
        lan_delay = self.latency.delay_us(len(datagram.payload), loopback=False)
        loop_delay = self.latency.delay_us(len(datagram.payload), loopback=True)
        drop = self.loss is not None and self.loss.should_drop()

        def deliver_lan() -> None:
            if drop:
                return
            for node in self._nodes.values():
                if node is sender:
                    continue
                for sock in node.udp.sockets_for_group(group, port):
                    sock.deliver(datagram)

        def deliver_loopback() -> None:
            for sock in sender.udp.sockets_for_group(group, port):
                sock.deliver(datagram)

        self.scheduler.schedule(lan_delay, deliver_lan, label="udp-mcast")
        self.scheduler.schedule(loop_delay, deliver_loopback, label="udp-mcast-loop")

    def _deliver_broadcast(self, sender: Node, datagram: Datagram) -> None:
        port = datagram.destination.port
        for node in self._nodes.values():
            for sock in node.udp.sockets_for(port):
                self._schedule_socket_delivery(node, sock, datagram, node is sender)

    def _schedule_delivery(self, node: Node, datagram: Datagram, loopback: bool) -> None:
        for sock in node.udp.sockets_for(datagram.destination.port):
            self._schedule_socket_delivery(node, sock, datagram, loopback)

    def _schedule_socket_delivery(
        self, node: Node, sock, datagram: Datagram, loopback: bool
    ) -> None:
        if self.loss is not None and not loopback and self.loss.should_drop():
            return
        delay = self.latency.delay_us(len(datagram.payload), loopback=loopback)
        self.scheduler.schedule(delay, lambda: sock.deliver(datagram), label="udp-delivery")

    # -- run helpers ------------------------------------------------------------

    def run(self, duration_us: int | None = None) -> None:
        """Run the simulation until idle (or for a bounded window)."""
        if duration_us is None:
            self.scheduler.run_until_idle()
        else:
            self.scheduler.run_until(self.scheduler.now_us + duration_us)


__all__ = ["Network", "TraceRecord", "LOOPBACK"]

"""The simulated internetwork: segments, routing, and datagram delivery.

Historically this modelled the paper's single 10 Mb/s home-LAN segment; it
now composes one or more :class:`~repro.net.segment.Segment` objects into a
multi-segment internetwork (see ``segment.py`` for the scoping rules).  A
``Network`` constructed the old way — no explicit segments — is exactly the
old single-LAN model: every node lands on the default segment, multicast
reaches everyone, and no routing happens.

Delivery rules:

* unicast datagrams route by destination address — directly when sender
  and target share a segment, through the :class:`Router`'s link path
  otherwise (each traversed segment and link charges its latency);
* multicast datagrams fan out to every socket that joined the group and
  bound the destination port on each segment the *sender* is attached to —
  including sockets on the sending host (``IP_MULTICAST_LOOP`` behaviour),
  which is how a co-located INDISS instance sees its host's own traffic;
* broadcast behaves like multicast: confined to the sender's segments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .addressing import (
    Endpoint,
    LOOPBACK,
    is_broadcast,
    is_loopback,
    is_multicast,
    parse_ipv4,
)
from .errors import AddressError, NetworkError
from .latency import LatencyModel, LossModel
from .node import Node
from ..obs import NULL_RECORDING
from .parallel import CROSS_LABEL, CrossFrame
from .partition import PartitionMap
from .segment import Bridge, DEFAULT_LINK_LATENCY_US, Link, Router, Segment
from .simclock import Scheduler
from .traffic import TrafficMonitor
from .udp import Datagram, NULL_MEMO, ParseCounter

if TYPE_CHECKING:  # pragma: no cover
    from .parallel import ShardedScheduler

#: Base of each district's session-id block under a partitioned topology:
#: district ``p`` allocates ids from ``(p + 1) * SESSION_ID_BLOCK``.
SESSION_ID_BLOCK = 10**8

#: Block index the first crash-recovery restart mints session ids from
#: (the n-th restart fleet-wide uses ``RESTART_SESSION_BLOCK + n``).  Far
#: above any realistic district count, so restarted instances can never
#: collide with a district block *or* with their own pre-crash ids.
RESTART_SESSION_BLOCK = 1000


@dataclass
class TraceRecord:
    """One captured wire message (for debugging and behavioural tests)."""

    time_us: int
    transport: str
    source: Endpoint
    destination: Endpoint
    size: int
    payload: bytes
    #: Segment the frame appeared on ("" for pre-segment captures).
    segment: str = ""


class Network:
    """An internetwork of LAN segments (a single segment by default)."""

    #: Name of the segment nodes land on when none is specified.
    DEFAULT_SEGMENT = "lan0"

    def __init__(
        self,
        scheduler: Scheduler | None = None,
        latency: LatencyModel | None = None,
        loss: LossModel | None = None,
        subnet: str = "192.168.1",
        capture: bool = False,
        parse_once: bool = True,
    ):
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.latency = latency if latency is not None else LatencyModel()
        self.loss = loss
        self.router = Router()
        self.segments: dict[str, Segment] = {}
        self._nodes: dict[str, Node] = {}
        self._next_auto_subnet = 2
        self.traffic = TrafficMonitor(self.latency.bandwidth_bps)
        self._capture = capture
        self.trace: list[TraceRecord] = []
        #: Unicast datagrams with no destination node or no route (dropped).
        self.unrouted = 0
        #: Precomputed delivery plans keyed by (sender, target) address:
        #: the traversed segments plus the link-latency prefix.  Steady-state
        #: unicast costs one dict hit instead of a segment-pair product and
        #: list assembly; any topology change flushes the memo (see
        #: :meth:`_note_topology_change`) and :class:`Router` link changes
        #: are caught through its ``topology_version``.
        self._route_plans: dict = {}
        self._route_plans_version = 0
        self.route_cache_hits = 0
        self.route_cache_misses = 0
        self.route_cache_invalidations = 0
        #: ``False`` attaches the no-op :data:`NULL_MEMO` to every frame,
        #: disabling all decode sharing and send-side seeding — the A/B
        #: knob the benchmarks price the parse-once machinery with.
        self.parse_once = parse_once
        #: Per-protocol decode accounting (protocol id -> counter); every
        #: memo-aware receive path registers its decode/share here through
        #: :meth:`parse_counter`.
        self.parse_stats: dict[str, ParseCounter] = {}
        #: Attached :class:`~repro.net.parallel.ShardedScheduler`, if the
        #: world was built for the partitioned engine (``scheduler`` is then
        #: the same object).  ``None`` means classic single-wheel execution.
        self.engine: "ShardedScheduler | None" = None
        #: Partition map frozen at build completion by partition-aware
        #: builders (both engines; see :meth:`freeze_partitions`).  ``None``
        #: on hand-built networks: all partition semantics stay off and
        #: behaviour is exactly the classic single-district model.
        self._pmap: PartitionMap | None = None
        #: Per-district session-id counters (only when the frozen map has
        #: more than one district); see :meth:`session_id_source`.
        self._session_counters: list | None = None
        #: Instrumentation bundle (:class:`repro.obs.Recording`).  Defaults
        #: to the shared disabled singleton, so every recording site costs
        #: one attribute load and a falsy ``obs.on`` check until a builder
        #: swaps in a live recording (``World.build(record=True)``).
        self.obs = NULL_RECORDING
        #: Per-segment (frames, bytes) counter cache for the recorder's
        #: hottest site; see :meth:`_obs_count_frame`.
        self._obs_frame_counters: dict = {}
        #: Adversity layer (all off by default; see :meth:`enable_faults`).
        #: Per-link loss models keyed by canonical segment pair, cut
        #: timestamps for fault-window spans, and the sticky flag that
        #: switches multi-hop unicast onto the fault-aware trunk path.
        self._link_loss: dict[tuple[str, str], object] = {}
        self._cut_times: dict[tuple[str, str], int] = {}
        self._adversity = False
        #: Crash-stopped hosts: address -> (node, home segments at crash
        #: time).  Entries live from :meth:`crash_node` to
        #: :meth:`restart_node`.
        self._crash_info: dict[str, tuple[Node, list[Segment]]] = {}
        #: Per-node session-id counters minted by :meth:`restart_node`
        #: (a restarted instance allocates from a fresh block so it can
        #: never reuse a pre-crash session id).
        self._node_session_counters: dict = {}
        #: Fleet-wide restart ordinal; grows in workload-step order, which
        #: is identical on every engine, so restart blocks are deterministic.
        self._restart_count = 0
        self.default_segment = self.add_segment(
            self.DEFAULT_SEGMENT, subnet=subnet, latency=self.latency
        )

    # -- topology -----------------------------------------------------------

    def add_segment(
        self,
        name: str,
        subnet: str | None = None,
        latency: LatencyModel | None = None,
    ) -> Segment:
        """Create a new LAN segment; the subnet is auto-allocated if omitted."""
        if name in self.segments:
            raise NetworkError(f"segment {name!r} already exists")
        if self.engine is not None and name not in self.engine.pmap.pid_of:
            raise NetworkError(
                f"segment {name!r} is not in the frozen partition map; the "
                "partitioned engine cannot grow new districts mid-run"
            )
        if subnet is None:
            used = {s.subnet for s in self.segments.values()}
            while f"192.168.{self._next_auto_subnet}" in used:
                self._next_auto_subnet += 1
            subnet = f"192.168.{self._next_auto_subnet}"
            self._next_auto_subnet += 1
        segment = Segment(self, name, subnet=subnet, latency=latency)
        self.segments[name] = segment
        self._note_topology_change()
        return segment

    def segment(self, name: str) -> Segment:
        try:
            return self.segments[name]
        except KeyError:
            raise NetworkError(f"no segment named {name!r}") from None

    def _resolve_segment(self, segment: Segment | str | None) -> Segment:
        if segment is None:
            return self.default_segment
        if isinstance(segment, Segment):
            return segment
        return self.segment(segment)

    def link(
        self,
        a: Segment | str,
        b: Segment | str,
        latency_us: int = DEFAULT_LINK_LATENCY_US,
    ) -> Link:
        """Connect two segments with a routed point-to-point link."""
        seg_a, seg_b = self._resolve_segment(a), self._resolve_segment(b)
        engine = self.engine
        if engine is not None:
            pmap = engine.pmap
            lookahead = pmap.lookahead_us
            if (
                pmap.pid_of.get(seg_a.name) != pmap.pid_of.get(seg_b.name)
                and lookahead is not None
                and latency_us < lookahead
            ):
                raise NetworkError(
                    f"link {seg_a.name}-{seg_b.name} ({latency_us} us) is "
                    f"faster than the engine's lookahead ({lookahead} us)"
                )
        return self.router.connect(seg_a.name, seg_b.name, latency_us)

    def add_node(
        self,
        name: str,
        address: str | None = None,
        segment: Segment | str | None = None,
    ) -> Node:
        """Attach a host; the address is allocated from the segment's subnet
        if omitted."""
        seg = self._resolve_segment(segment)
        if address is None:
            address = seg.allocate_address()
        else:
            parse_ipv4(address)
        if address in self._nodes:
            raise AddressError(f"address {address} already attached")
        node = Node(self, name, address)
        self._nodes[address] = node
        seg.attach(node)
        return node

    def bridge(self, node: Node, *segments: Segment | str) -> Bridge:
        """Multi-home ``node`` onto additional segments (gateway placement)."""
        resolved = [self._resolve_segment(s) for s in segments]
        if self.engine is not None:
            pmap = self.engine.pmap
            pids = {
                pmap.pid_of[seg.name]
                for seg in [*node.segments, *resolved]
                if seg.name in pmap.pid_of
            }
            if len(pids) > 1:
                raise NetworkError(
                    f"bridging {node.name!r} across districts {sorted(pids)} "
                    "would merge partitions the engine already sharded"
                )
        return Bridge(node, *resolved)

    def detach_node(self, node: Node) -> None:
        """Remove a host from every segment it is attached to.

        Pending in-flight deliveries to its sockets still land (frames
        already on the wire); new unicasts to the address drop as
        unrouted, and cached delivery plans involving the node expire.
        A detached host's own sends drop silently (NIC down), so its
        periodic tasks may keep firing while it is off the network —
        the membership-churn workloads rely on both properties.
        """
        for segment in list(node.segments):
            segment.detach(node)
        self._nodes.pop(node.address, None)
        self._note_topology_change()

    def reattach_node(self, node: Node, segments=None) -> None:
        """Re-attach a previously detached host (fleet churn rejoin).

        The node keeps its address and sockets; every multicast group
        membership is re-indexed on the segments it returns to, and all
        cached delivery plans are flushed.  ``segments`` defaults to the
        network's default segment; pass the detach-time list to restore a
        gateway's bridged placement.
        """
        if node.address in self._nodes:
            raise AddressError(f"address {node.address} already attached")
        if node.segments:
            raise NetworkError(f"node {node.name!r} is still attached")
        targets = [
            self._resolve_segment(s)
            for s in (segments if segments else [self.default_segment])
        ]
        if self.engine is not None and node._pid is not None:
            pmap = self.engine.pmap
            for segment in targets:
                pid = pmap.pid_of.get(segment.name)
                if pid is not None and pid != node._pid:
                    raise NetworkError(
                        f"cannot reattach {node.name!r} to district {pid}: its "
                        f"timers live on district {node._pid}'s wheel"
                    )
        self._nodes[node.address] = node
        for segment in targets:
            segment.attach(node)

    # -- crash faults (crash-stop / crash-recovery) -----------------------------

    def is_crashed(self, node_or_address) -> bool:
        address = (
            node_or_address
            if isinstance(node_or_address, str)
            else node_or_address.address
        )
        return address in self._crash_info

    def crashed_node(self, address: str) -> Optional[Node]:
        """The crash-stopped node at ``address`` (it left ``node_at``'s
        table when it crashed), or None."""
        info = self._crash_info.get(address)
        return info[0] if info is not None else None

    def crash_node(self, node: Node) -> None:
        """Crash-stop a host: the process dies mid-flight.

        Differs from :meth:`detach_node` (NIC down) in exactly the ways a
        dead process differs from an unplugged cable:

        * **in-flight frames addressed to the host drop exactly once** —
          its sockets close, so deliveries already scheduled are swallowed
          by the closed-socket guard and can never land on a post-restart
          successor socket;
        * **volatile transport state is lost** — the UDP port table and
          every TCP connection die (no FIN: peers only notice through
          their own timeouts), and the stacks are reset so a restart
          starts from nothing;
        * sends from stale timers that still hold a dead socket vanish
          silently instead of raising into the surviving event loop.

        Like detach, a crashed host keeps its home district: its (now
        inert) timers stay on the same wheel, so the partitioned engines
        schedule identically.  No RNG is drawn anywhere on this path — a
        crash armed but never fired stays bit-identical to a crash-free
        run.
        """
        address = node.address
        if address in self._crash_info:
            raise NetworkError(f"node {node.name!r} is already crashed")
        home = list(node.segments)
        # Close sockets while still attached so multicast memberships
        # unindex from the segments that indexed them.
        if node._udp is not None:
            node._udp.crash()
        if node._tcp is not None:
            node._tcp.crash()
        node._udp = None
        node._tcp = None
        for segment in home:
            segment.detach(node)
        self._nodes.pop(address, None)
        self._crash_info[address] = (node, home)
        self._note_topology_change()
        obs = self.obs
        if obs.on:
            pid = self.partition_of_node(node)
            pmap = self.partition_map
            if pmap is None or obs.owns(pid):
                obs.trace.instant(
                    "net.node.crash", self.scheduler_for(node).now_us, pid,
                    cat="fault", args={"host": node.name},
                )
                obs.metrics.counter("net.node.crashes", host=node.name).inc()

    def restart_node(self, node: Node, segments=None) -> None:
        """Crash-recovery: bring a crashed host back with empty stacks.

        ``segments`` defaults to the host's crash-time placement.  The
        same district guard as :meth:`reattach_node` applies — a restarted
        host's timers still live on its home wheel.  The restarted
        instance mints session ids from a fresh block
        (``(RESTART_SESSION_BLOCK + n) * SESSION_ID_BLOCK`` for the n-th
        restart), so no session id is ever reused across the crash; the
        ordinal grows in workload-step order, identical on every engine.
        """
        info = self._crash_info.get(node.address)
        if info is None:
            raise NetworkError(f"node {node.name!r} is not crashed")
        _, home = info
        targets = [
            self._resolve_segment(s) for s in (segments if segments else home)
        ]
        if not targets:
            targets = [self.default_segment]
        if self.engine is not None and node._pid is not None:
            pmap = self.engine.pmap
            for segment in targets:
                pid = pmap.pid_of.get(segment.name)
                if pid is not None and pid != node._pid:
                    raise NetworkError(
                        f"cannot restart {node.name!r} on district {pid}: its "
                        f"timers live on district {node._pid}'s wheel"
                    )
        del self._crash_info[node.address]
        self._nodes[node.address] = node
        for segment in targets:
            segment.attach(node)
        self._restart_count += 1
        base = (RESTART_SESSION_BLOCK + self._restart_count) * SESSION_ID_BLOCK
        self._node_session_counters[node.address] = itertools.count(base)
        self._note_topology_change()
        obs = self.obs
        if obs.on:
            pid = self.partition_of_node(node)
            pmap = self.partition_map
            if pmap is None or obs.owns(pid):
                obs.trace.instant(
                    "net.node.restart", self.scheduler_for(node).now_us, pid,
                    cat="fault", args={"host": node.name},
                )
                obs.metrics.counter("net.node.restarts", host=node.name).inc()

    # -- adversity: loss models and fault injection ----------------------------

    def enable_faults(self) -> None:
        """Arm the adversity layer: multi-hop unicast switches to the
        fault-aware *trunk* delivery event (one event at the pre-final-hop
        delay that re-checks link state and draws link loss at delivery
        time), so frames in flight on a cut link drop instead of landing.

        Sticky for the run.  Never armed implicitly: lossless worlds keep
        the classic send-time scheduling shape and stay bit-identical to
        the golden traces.  Builders arm it when a spec carries ``Fault``/
        ``Heal`` steps; direct API users should arm it before sending
        traffic they want in-flight cut semantics for.
        """
        self._adversity = True

    def set_segment_loss(self, segment: Segment | str, model) -> None:
        """Install (or clear, with ``None``) a per-segment loss model.

        Drops are drawn per receiver at delivery-event time from the
        model's own RNG stream, so they replay identically on the single,
        inline, and multiprocess engines.  Loopback copies never drop.
        """
        self._resolve_segment(segment).loss = model
        if model is not None:
            self._adversity = True

    def set_link_loss(self, a: Segment | str, b: Segment | str, model) -> None:
        """Install (or clear, with ``None``) a loss model on link ``a``-``b``.

        Link loss draws once per frame (not per receiver) at the trunk
        delivery event.  Under the partitioned engine only intra-district
        links may be lossy; see :meth:`attach_engine`.
        """
        seg_a, seg_b = self._resolve_segment(a), self._resolve_segment(b)
        if not any(
            link.other(seg_a.name) == seg_b.name
            for link in self.router._adjacency.get(seg_a.name, ())
        ):
            raise NetworkError(
                f"no link between segments {seg_a.name!r} and {seg_b.name!r}"
            )
        pair = Router.pair(seg_a.name, seg_b.name)
        if model is None:
            self._link_loss.pop(pair, None)
            return
        if self.engine is not None:
            pmap = self.engine.pmap
            if pmap.pid_of.get(pair[0]) != pmap.pid_of.get(pair[1]):
                raise NetworkError(
                    f"cross-district link {pair[0]}-{pair[1]} cannot carry a "
                    "loss model under the partitioned engine: its drop draws "
                    "would make one district's RNG depend on another "
                    "district's traffic"
                )
        self._link_loss[pair] = model
        self._adversity = True

    def cut_link(self, a: Segment | str, b: Segment | str) -> bool:
        """Administratively cut link ``a``-``b``; True when state changed.

        Routing immediately excludes the link (cached delivery plans
        expire through ``topology_version``); with faults armed, frames
        already in flight across it drop at their trunk event.
        """
        seg_a, seg_b = self._resolve_segment(a), self._resolve_segment(b)
        self._adversity = True
        changed = self.router.set_link_state(seg_a.name, seg_b.name, up=False)
        if changed:
            pair = Router.pair(seg_a.name, seg_b.name)
            self._cut_times[pair] = self.scheduler.now_us
            self._obs_link_state(pair, up=False)
        return changed

    def heal_link(self, a: Segment | str, b: Segment | str) -> bool:
        """Bring link ``a``-``b`` back up; True when state changed."""
        seg_a, seg_b = self._resolve_segment(a), self._resolve_segment(b)
        changed = self.router.set_link_state(seg_a.name, seg_b.name, up=True)
        if changed:
            pair = Router.pair(seg_a.name, seg_b.name)
            self._obs_link_state(pair, up=True, cut_at=self._cut_times.pop(pair, None))
        return changed

    def isolate_segment(self, segment: Segment | str) -> list[tuple[str, str]]:
        """Cut every up link incident to ``segment`` (network partition).

        Returns the canonical pairs cut, for a later selective heal.
        Multicast stays segment-scoped as always; this only severs routed
        unicast in and out of the segment.
        """
        seg = self._resolve_segment(segment)
        cut: list[tuple[str, str]] = []
        for a, b, _latency in self.router.links():
            if seg.name in (a, b) and self.router.link_is_up(a, b):
                self.cut_link(a, b)
                cut.append(Router.pair(a, b))
        return cut

    def heal_segment(self, segment: Segment | str) -> None:
        """Heal every down link incident to ``segment``."""
        seg = self._resolve_segment(segment)
        for a, b, _latency in self.router.links():
            if seg.name in (a, b) and not self.router.link_is_up(a, b):
                self.heal_link(a, b)

    def loss_report(self) -> dict[str, dict[str, int]]:
        """Dropped/delivered totals per lossy edge (bench + test probe)."""
        report: dict[str, dict[str, int]] = {}
        for name, seg in sorted(self.segments.items()):
            if seg.loss is not None:
                report[f"segment:{name}"] = {
                    "dropped": seg.loss.dropped, "delivered": seg.loss.delivered
                }
        for (a, b), model in sorted(self._link_loss.items()):
            report[f"link:{a}-{b}"] = {
                "dropped": model.dropped, "delivered": model.delivered
            }
        if self.loss is not None:
            report["global"] = {
                "dropped": self.loss.dropped, "delivered": self.loss.delivered
            }
        return report

    def _obs_loss_drop(self, edge: str, segment_name: str, kind: str = "drops") -> None:
        """Count one adversity drop, gated by district ownership like
        :meth:`_obs_count_frame` (drops draw on the owning shard only)."""
        obs = self.obs
        if not obs.on:
            return
        pmap = self.partition_map
        pid = pmap.pid_of.get(segment_name, 0) if pmap is not None else 0
        if obs.owns(pid):
            obs.metrics.counter(f"net.loss.{kind}", edge=edge).inc()

    def _obs_link_state(
        self, pair: tuple[str, str], up: bool, cut_at: int | None = None
    ) -> None:
        """Gauge + fault-window span for one link state flip."""
        obs = self.obs
        if not obs.on:
            return
        pmap = self.partition_map
        pid = pmap.pid_of.get(pair[0], 0) if pmap is not None else 0
        if not obs.owns(pid):
            return
        name = f"{pair[0]}-{pair[1]}"
        now = self.scheduler.now_us
        obs.metrics.gauge("net.link.state", link=name).set(1 if up else 0)
        if up:
            if cut_at is not None:
                obs.trace.span(
                    "net.fault.window", cut_at, now - cut_at, pid,
                    cat="fault", args={"link": name},
                )
        else:
            obs.trace.instant(
                "net.link.cut", now, pid, cat="fault", args={"link": name}
            )

    # -- partitions & the parallel engine -------------------------------------

    def freeze_partitions(self, pmap: PartitionMap) -> None:
        """Fix the district map for the rest of the run (both engines).

        Partition-aware builders call this once the topology is complete.
        The map is deliberately *not* recomputed on later attach/detach:
        a churned-out gateway must keep its home district (its timers keep
        firing on the same wheel, and the single-threaded oracle must make
        identical delay decisions), so membership is a build-time property.

        Multi-district maps also switch session-id allocation to disjoint
        per-district blocks, so the single, inline, and multiprocess
        backends all mint identical ids (a global counter's values would
        depend on cross-district interleaving).
        """
        self._pmap = pmap
        if pmap.count > 1:
            self._session_counters = [
                itertools.count((pid + 1) * SESSION_ID_BLOCK)
                for pid in range(pmap.count)
            ]

    def attach_engine(self, engine: "ShardedScheduler") -> None:
        """Bind a partitioned engine (its façade is ``self.scheduler``).

        Loss is allowed under the engine only where its draws stay inside
        one district's event order: a *global* loss model (one RNG drawn
        across districts) and *cross-district* lossy links are rejected;
        intra-district segment and link loss models are fine because their
        drops are drawn at delivery-event time on the owning shard.
        """
        if self.loss is not None:
            raise NetworkError(
                "the partitioned engine does not support a global loss "
                "model: one shared RNG drawn across districts is not "
                "reproducible across shards — use set_segment_loss or "
                "set_link_loss on intra-district edges instead"
            )
        pmap = engine.pmap
        for a, b in self._link_loss:
            if pmap.pid_of.get(a) != pmap.pid_of.get(b):
                raise NetworkError(
                    f"cross-district link {a}-{b} cannot carry a loss model "
                    "under the partitioned engine: its drop draws would make "
                    "one district's RNG depend on another district's traffic"
                )
        self.engine = engine
        engine.bind(self)
        self.freeze_partitions(engine.pmap)

    @property
    def partition_map(self) -> PartitionMap | None:
        return self.engine.pmap if self.engine is not None else self._pmap

    def partition_of_node(self, node: Node) -> int:
        """The district a node belongs to (0 on partition-unaware networks).

        A detached node (fleet churn) keeps its last known district.
        """
        pmap = self.partition_map
        if pmap is None:
            return 0
        if node.segments:
            pid = pmap.pid_of.get(node.segments[0].name)
            if pid is None:
                return node._pid or 0
            node._pid = pid
            return pid
        return node._pid or 0

    def scheduler_for(self, node: Node) -> Scheduler:
        """The wheel a node's events belong on: its district's shard under
        the partitioned engine, the shared scheduler otherwise.  Every
        node-level scheduling convenience routes through here."""
        engine = self.engine
        if engine is None:
            return self.scheduler
        return engine.shards[self.partition_of_node(node)]

    def session_id_source(self, node: Node) -> Callable[[], int] | None:
        """Per-district session-id allocator, or ``None`` for the classic
        global counter (single-district topologies are unchanged).

        A host that came back through :meth:`restart_node` allocates from
        its own fresh restart block instead — on any topology — so a
        restarted instance can never mint a pre-crash session id.
        """
        override = self._node_session_counters.get(node.address)
        if override is not None:
            return lambda: next(override)
        counters = self._session_counters
        if counters is None:
            return None
        counter = counters[self.partition_of_node(node)]
        return lambda: next(counter)

    def node_at(self, address: str) -> Optional[Node]:
        return self._nodes.get(address)

    @property
    def nodes(self) -> list[Node]:
        return list(self._nodes.values())

    # -- capture --------------------------------------------------------------

    def start_capture(self) -> None:
        self._capture = True

    def stop_capture(self) -> None:
        self._capture = False

    def trace_message(
        self,
        transport: str,
        source: Endpoint,
        destination: Endpoint,
        payload: bytes,
        segment: str = "",
    ) -> None:
        if self._capture:
            self.trace.append(
                TraceRecord(
                    self.scheduler.now_us,
                    transport,
                    source,
                    destination,
                    len(payload),
                    payload,
                    segment=segment,
                )
            )

    # -- routing ---------------------------------------------------------------

    def _note_topology_change(self) -> None:
        """Drop every cached delivery plan (segment/link/bridge/detach)."""
        if self._route_plans:
            self._route_plans.clear()
            self.route_cache_invalidations += 1

    def _route_segments(
        self, sender: Node, target: Node
    ) -> Optional[tuple[tuple[Segment, ...], int, tuple[tuple[str, str], ...]]]:
        """Delivery plan for a unicast frame: traversed segments, total
        link latency, and the canonical pairs of the links crossed (empty
        for same-segment delivery).  Returns None when no path exists.

        Plans are memoized per (sender, target) address pair — steady-state
        traffic between two hosts costs one dict hit.  The memo is flushed
        on any attach/detach (:meth:`_note_topology_change`) and expires
        wholesale when the router's link topology version moves.
        """
        if self._route_plans_version != self.router.topology_version:
            self._route_plans.clear()
            self._route_plans_version = self.router.topology_version
        key = (sender.address, target.address)
        try:
            plan = self._route_plans[key]
        except KeyError:
            pass
        else:
            self.route_cache_hits += 1
            return plan
        self.route_cache_misses += 1
        plan = self._compute_route(sender, target)
        self._route_plans[key] = plan
        return plan

    def _compute_route(
        self, sender: Node, target: Node
    ) -> Optional[tuple[tuple[Segment, ...], int, tuple[tuple[str, str], ...]]]:
        """Uncached plan assembly: direct delivery or the router's path."""
        for seg in sender.segments:
            if target in seg:
                return (seg,), 0, ()
        best = self.router.route(
            (s.name for s in sender.segments), (s.name for s in target.segments)
        )
        if best is None:
            return None
        source_name, hops = best
        traversed = [self.segments[source_name]]
        link_pairs = []
        cursor = source_name
        link_latency = 0
        for hop in hops:
            cursor = hop.other(cursor)
            traversed.append(self.segments[cursor])
            link_pairs.append(Router.pair(hop.a, hop.b))
            link_latency += hop.latency_us
        return tuple(traversed), link_latency, tuple(link_pairs)

    def unicast_delay_us(
        self, sender: Node, remote_host: str, size_bytes: int, loopback: bool = False
    ) -> Optional[int]:
        """One-way unicast delay from ``sender`` to ``remote_host``.

        Used by the UDP and TCP paths alike; returns None when the host is
        unknown or unreachable across the segment graph.
        """
        if loopback or is_loopback(remote_host) or remote_host == sender.address:
            if not sender.segments:  # detached host: loopback still works
                return self.latency.delay_us(size_bytes, loopback=True)
            return sender.segment.delay_us(size_bytes, loopback=True)
        if not sender.segments:
            return None  # detached host: nothing reaches the wire
        target = self._nodes.get(remote_host)
        if target is None:
            return None
        route = self._route_segments(sender, target)
        if route is None:
            return None
        traversed, link_latency, _pairs = route
        return sum(seg.delay_us(size_bytes) for seg in traversed) + link_latency

    # -- decode accounting -----------------------------------------------------

    def parse_counter(self, protocol: str) -> ParseCounter:
        """The decode counter for ``protocol``, created on first use.

        Receive paths fetch this once at construction time and increment
        ``decoded``/``shared`` per frame; send paths count ``seeded``.
        """
        counter = self.parse_stats.get(protocol)
        if counter is None:
            # With parse_once off, decode hints are dropped before they
            # reach any frame, so seed notes are suppressed too.
            counter = ParseCounter(count_seeds=self.parse_once)
            self.parse_stats[protocol] = counter
        return counter

    # -- datagram delivery -----------------------------------------------------

    def send_datagram(
        self,
        sender: Node,
        source: Endpoint,
        destination: Endpoint,
        payload: bytes,
        decode_hint: tuple | None = None,
    ) -> None:
        """Route one UDP datagram (unicast, multicast, or broadcast).

        ``decode_hint`` pre-seeds the frame's decode memo with the sender's
        structured form of the payload (see :meth:`UdpSocket.sendto`).
        """
        if not sender.segments:
            # A detached host (fleet churn) has no NIC: the send drops.
            self.unrouted += 1
            return
        size = len(payload)
        self.traffic.record(
            self.scheduler.now_us,
            destination.port,
            size,
            "udp",
            multicast=is_multicast(destination.host),
        )
        if self.parse_once:
            datagram = Datagram(payload=payload, source=source, destination=destination)
            if decode_hint is not None:
                datagram.ensure_memo().store(decode_hint[0], payload, decode_hint[1])
        else:
            # A/B mode: the shared null memo swallows stores and misses
            # every lookup, so each receiver pays its own decode.
            datagram = Datagram(
                payload=payload, source=source, destination=destination, memo=NULL_MEMO
            )

        if is_multicast(destination.host):
            self._deliver_multicast(sender, datagram)
        elif is_broadcast(destination.host):
            self._deliver_broadcast(sender, datagram)
        else:
            self._deliver_unicast(sender, datagram)

    def _obs_count_frame(self, segment: Segment, nbytes: int) -> None:
        """Per-segment frame/byte counters (recording enabled only).

        Guarded by district ownership: workload-time sends replay in every
        forked worker, so only the district that owns the segment counts
        the frame — which is what makes worker snapshots sum exactly to
        the single-process totals.

        This is the recorder's hottest site (every frame on every
        segment), so the ownership check and the labeled-key build run
        once per segment: the resolved (frames, bytes) counter pair is
        cached, an unowned segment caches the empty tuple.  Workers clear
        the cache when they restrict ownership post-fork.
        """
        pair = self._obs_frame_counters.get(segment.name)
        if pair is None:
            obs = self.obs
            pmap = self.partition_map
            pid = pmap.pid_of.get(segment.name, 0) if pmap is not None else 0
            if obs.owns(pid):
                metrics = obs.metrics
                pair = (
                    metrics.counter("net.segment.frames", segment=segment.name),
                    metrics.counter("net.segment.bytes", segment=segment.name),
                )
            else:
                pair = ()
            self._obs_frame_counters[segment.name] = pair
        if pair:
            pair[0].inc()
            pair[1].inc(nbytes)

    def _record_on_segment(
        self, segment: Segment, datagram: Datagram, multicast: bool
    ) -> None:
        if self.obs.on:
            self._obs_count_frame(segment, len(datagram.payload))
        segment.traffic.record(
            self.scheduler.now_us,
            datagram.destination.port,
            len(datagram.payload),
            "udp",
            multicast=multicast,
        )
        self.trace_message(
            "udp",
            datagram.source,
            datagram.destination,
            datagram.payload,
            segment=segment.name,
        )

    def _deliver_unicast(self, sender: Node, datagram: Datagram) -> None:
        destination = datagram.destination
        size = len(datagram.payload)
        if is_loopback(destination.host) or destination.host == sender.address:
            self._record_on_segment(sender.segment, datagram, multicast=False)
            self._schedule_delivery(sender, datagram, True, sender.segment)
            return
        target = self._nodes.get(destination.host)
        if target is None:
            self._record_on_segment(sender.segment, datagram, multicast=False)
            self.unrouted += 1
            return
        route = self._route_segments(sender, target)
        if route is None:
            self._record_on_segment(sender.segment, datagram, multicast=False)
            self.unrouted += 1
            return
        traversed, link_latency, link_pairs = route
        pmap = self.partition_map
        if pmap is not None and len(traversed) > 1:
            src_pid = pmap.pid_of.get(traversed[0].name)
            dst_pid = pmap.pid_of.get(traversed[-1].name)
            if src_pid is not None and dst_pid is not None and src_pid != dst_pid:
                # Cross-district frames are exempt from per-edge loss in
                # both engines: a delivery-time draw on the far side would
                # make the destination district's RNG order depend on the
                # source district's traffic interleaving.
                self._deliver_cross(
                    sender, datagram, traversed, link_latency, src_pid, dst_pid
                )
                return
        for segment in traversed:
            self._record_on_segment(segment, datagram, multicast=False)
        if link_pairs and self._adversity:
            self._deliver_trunk(target, datagram, traversed, link_latency, link_pairs)
            return
        # Upstream (pre-final-hop) cost is drawn once; the final-segment
        # delay is drawn per receiving socket, like local delivery.
        prefix = sum(s.delay_us(size) for s in traversed[:-1]) + link_latency
        self._schedule_delivery(target, datagram, False, traversed[-1], prefix)

    def _deliver_trunk(
        self,
        target: Node,
        datagram: Datagram,
        traversed: tuple[Segment, ...],
        link_latency: int,
        link_pairs: tuple[tuple[str, str], ...],
    ) -> None:
        """Fault-aware multi-hop unicast (faults armed only).

        One *trunk* event fires after the upstream cost; at that moment —
        not at send time — it re-checks link state (a frame in flight on a
        freshly cut link drops, never duplicates) and draws each lossy
        link's model once per frame, then hands off to the normal
        final-segment per-socket delivery.  All draws happen in delivery
        event order on the district that owns the path, so seeded fault
        runs replay identically on every engine backend.
        """
        size = len(datagram.payload)
        prefix = sum(s.delay_us(size) for s in traversed[:-1]) + link_latency
        final = traversed[-1]
        router = self.router

        def on_trunk() -> None:
            if router.any_down(link_pairs):
                self._obs_loss_drop(
                    f"{link_pairs[0][0]}-{link_pairs[0][1]}",
                    final.name,
                    kind="inflight_dropped",
                )
                return
            for pair in link_pairs:
                model = self._link_loss.get(pair)
                if model is not None and model.should_drop():
                    self._obs_loss_drop(f"{pair[0]}-{pair[1]}", final.name)
                    return
            self._schedule_delivery(target, datagram, False, final, 0)

        self.scheduler_for(target).post(prefix, on_trunk, label="udp-trunk")

    def _deliver_cross(
        self,
        sender: Node,
        datagram: Datagram,
        traversed: tuple[Segment, ...],
        link_latency: int,
        src_pid: int,
        dst_pid: int,
    ) -> None:
        """Unicast across a district boundary — identical in both engines.

        Rules that keep the single-threaded oracle and the partitioned
        backends bit-compatible:

        * the delay is the *deterministic* per-segment cost plus the link
          latency — no jitter draws, so the sender district's RNG stream
          does not depend on cross-district traffic interleaving;
        * one event delivers to every bound socket of the target (instead
          of one event per socket), so ``events_fired`` is backend-free;
        * the frame is rebuilt without the sender's decode seed — the
          multiprocess backend ships wire bytes only, so the in-process
          paths must re-decode on the far side too;
        * the target is resolved by address *at delivery time*: a host
          that churned out while the frame crossed the link drops it.

        Only sender-district segments (and the final, target-district one)
        record traffic: a multiprocess worker never sees transit districts.
        """
        size = len(datagram.payload)
        final = traversed[-1]
        pid_of = self.partition_map.pid_of
        for segment in traversed:
            if pid_of.get(segment.name) == src_pid:
                self._record_on_segment(segment, datagram, multicast=False)
        delay = (
            sum(s.det_delay_us(size) for s in traversed[:-1])
            + link_latency
            + final.det_delay_us(size)
        )
        engine = self.engine
        send_time = self.scheduler_for(sender).now_us
        destination = datagram.destination
        if engine is not None:
            engine.enqueue_cross(
                CrossFrame(
                    due_us=send_time + delay,
                    src_pid=src_pid,
                    seq=engine.next_cross_seq(src_pid),
                    dst_pid=dst_pid,
                    payload=datagram.payload,
                    source_host=datagram.source.host,
                    source_port=datagram.source.port,
                    dest_host=destination.host,
                    dest_port=destination.port,
                    final_segment=final.name,
                    send_time_us=send_time,
                )
            )
            return
        # Single-threaded oracle: same delay, same single event, but the
        # frame never leaves the process.  Loss (forbidden under the
        # engine) draws once per frame here.
        if self.loss is not None and self.loss.should_drop():
            return
        self._record_on_segment(final, datagram, multicast=False)
        fresh = self._cross_datagram(datagram.payload, datagram.source, destination)
        self.scheduler.post(
            delay,
            lambda: self._deliver_cross_frame(destination.host, destination.port, fresh),
            label=CROSS_LABEL,
        )

    def _cross_datagram(
        self, payload: bytes, source: Endpoint, destination: Endpoint
    ) -> Datagram:
        """A fresh frame for the far side of a district boundary; its memo
        starts empty (parse-once restarts among the target's sockets)."""
        if self.parse_once:
            return Datagram(payload=payload, source=source, destination=destination)
        return Datagram(
            payload=payload, source=source, destination=destination, memo=NULL_MEMO
        )

    def _deliver_cross_frame(
        self, dest_host: str, dest_port: int, datagram: Datagram
    ) -> None:
        target = self._nodes.get(dest_host)
        if target is None:
            # Churned out while the frame crossed the link.
            self.unrouted += 1
            return
        stack = target.udp_stack
        if stack is None:
            return
        for sock in stack.sockets_for(dest_port):
            sock.deliver(datagram)

    def inject_cross(self, frame: CrossFrame) -> None:
        """Schedule one barrier-exchanged frame on its target shard."""
        source = Endpoint(frame.source_host, frame.source_port)
        destination = Endpoint(frame.dest_host, frame.dest_port)
        datagram = self._cross_datagram(frame.payload, source, destination)
        final = self.segments.get(frame.final_segment)
        if final is not None:
            if self.obs.on:
                self._obs_count_frame(final, len(frame.payload))
            # Books the frame at its (earlier) send time, mirroring what
            # the single-threaded oracle recorded inline.
            final.traffic.record(
                frame.send_time_us,
                frame.dest_port,
                len(frame.payload),
                "udp",
                multicast=False,
            )
            self.trace_message(
                "udp", source, destination, frame.payload, segment=final.name
            )
        shard = self.engine.shards[frame.dst_pid]
        shard.post(
            frame.due_us - shard._now_us,
            lambda: self._deliver_cross_frame(frame.dest_host, frame.dest_port, datagram),
            label=CROSS_LABEL,
        )

    def _deliver_multicast(self, sender: Node, datagram: Datagram) -> None:
        """Fan a datagram out to the group on each of the sender's segments.

        Group membership resolves at *delivery* time (a socket that joins
        while the frame is in flight still receives it), matching a shared
        segment where every NIC sees the frame simultaneously.  The sender
        host's own members receive a loopback copy sooner.  The frame never
        crosses a link: multicast is segment-scoped.

        Delivery walks the segment's (group, port) membership index rather
        than every attached node, so a frame costs O(group members) — idle
        background hosts on a large LAN are never touched.
        """
        group = datagram.destination.host
        port = datagram.destination.port
        size = len(datagram.payload)
        # Multicast is segment-scoped, so every receiver shares the
        # sender's district: its shard carries the whole fan-out (and this
        # also keeps workload-time sends off the engine façade).
        scheduler = self.scheduler_for(sender)
        for segment in sender.segments:
            self._record_on_segment(segment, datagram, multicast=True)
            lan_delay = segment.delay_us(size)
            drop = self.loss is not None and self.loss.should_drop()

            def deliver_lan(segment: Segment = segment, drop: bool = drop) -> None:
                if drop:
                    return
                # Per-edge loss draws happen here, at delivery-event time
                # on the owning shard — never at send time, where the
                # workload replay in forked workers would diverge RNGs.
                loss = segment.loss
                for sock in segment.group_members(group, port):
                    if sock.node is sender:
                        continue
                    if loss is not None and loss.should_drop():
                        self._obs_loss_drop(segment.name, segment.name)
                        continue
                    sock.deliver(datagram)

            scheduler.post(lan_delay, deliver_lan, label="udp-mcast")

        loop_delay = sender.segment.delay_us(size, loopback=True)

        def deliver_loopback() -> None:
            for sock in sender.udp.sockets_for_group(group, port):
                sock.deliver(datagram)

        scheduler.post(loop_delay, deliver_loopback, label="udp-mcast-loop")

    def _deliver_broadcast(self, sender: Node, datagram: Datagram) -> None:
        delivered: set[str] = set()
        for segment in sender.segments:
            self._record_on_segment(segment, datagram, multicast=False)
            for node in segment.nodes:
                if node.address in delivered:
                    continue
                delivered.add(node.address)
                self._schedule_delivery(node, datagram, node is sender, segment)

    def _schedule_delivery(
        self,
        node: Node,
        datagram: Datagram,
        loopback: bool,
        segment: Segment,
        prefix_delay: int = 0,
    ) -> None:
        stack = node.udp_stack
        if stack is None:
            return  # the host never opened a socket; nothing can bind
        for sock in stack.sockets_for(datagram.destination.port):
            self._schedule_socket_delivery(sock, datagram, loopback, segment, prefix_delay)

    def _schedule_socket_delivery(
        self,
        sock,
        datagram: Datagram,
        loopback: bool,
        segment: Segment,
        prefix_delay: int = 0,
    ) -> None:
        if self.loss is not None and not loopback and self.loss.should_drop():
            return
        delay = prefix_delay + segment.delay_us(len(datagram.payload), loopback=loopback)
        loss = segment.loss
        if loss is not None and not loopback:
            # Adversity: draw the drop at delivery-event time (owning
            # shard), not here — send paths replay in forked workers.
            def deliver_lossy() -> None:
                if loss.should_drop():
                    self._obs_loss_drop(segment.name, segment.name)
                    return
                sock.deliver(datagram)

            self.scheduler_for(sock.node).post(delay, deliver_lossy, label="udp-delivery")
            return
        self.scheduler_for(sock.node).post(
            delay, lambda: sock.deliver(datagram), label="udp-delivery"
        )

    # -- run helpers ------------------------------------------------------------

    def run(self, duration_us: int | None = None) -> None:
        """Run the simulation until idle (or for a bounded window)."""
        if self.obs.on and self.engine is None:
            self._obs_sample_wheel()
        if duration_us is None:
            self.scheduler.run_until_idle()
        else:
            self.scheduler.run_until(self.scheduler.now_us + duration_us)
        if self.obs.on and self.engine is None:
            self._obs_sample_wheel()

    def _obs_sample_wheel(self) -> None:
        """Wheel-occupancy gauges for the classic single scheduler.

        Sampled at run boundaries only (the wheel internals stay out of
        the hot path); the partitioned engine samples its shards at every
        window barrier instead.
        """
        sch = self.scheduler
        metrics = self.obs.metrics
        metrics.gauge("net.wheel.pending").set(sch.pending)
        occ0 = getattr(sch, "_occ0", 0)
        occ1 = getattr(sch, "_occ1", 0)
        metrics.gauge("net.wheel.slots_near").set(bin(occ0).count("1"))
        metrics.gauge("net.wheel.slots_far").set(bin(occ1).count("1"))


__all__ = ["Network", "TraceRecord", "LOOPBACK"]

"""The partitioned execution engine: district shards + conservative lookahead.

The single-threaded :class:`~repro.net.simclock.Scheduler` is the golden
oracle; this module runs the same simulation as K per-district wheels that
advance in *windows* bounded by the topology's *lookahead* — the minimum
latency of any cross-district link (see ``partition.py``).  The argument is
the classic conservative one (Chandy/Misra/Bryant): a frame emitted at time
``s`` toward another district cannot arrive before ``s + link_latency``, so
while a window ``[B, B + L)`` executes no partition can receive anything
from a peer that is due inside the window.  Partitions therefore run the
window independently and exchange the frames they produced at the barrier,
each stamped with its exact due time.

Two backends share this window protocol:

* **inline** — one process runs every shard's window back to back; this is
  the batched-cross-delivery win (no cross-district frame ever interrupts
  a shard mid-window) and the determinism oracle for the next backend;
* **multiprocess** (``world/engine.py``) — the world is built once, the
  process forks one worker per partition, and each worker runs only its
  own shard, swapping barrier batches with the parent over pipes.  The
  window edges are pure arithmetic over (frontier, lookahead, target), so
  every worker derives the same barrier sequence without negotiation.

Determinism: within a shard, events keep the wheel's exact ``(time_us,
seq)`` total order.  Cross frames are injected at barriers in a canonical
sort — ``(due_us, source partition, per-source sequence)`` — and the
per-source sequence numbers are assigned at *send* time, so the inline and
multiprocess backends allocate identical injection orders and hence
identical shard ``seq`` streams.  With one partition the engine degenerates
to a single shard running one window per ``run_until`` call: bit-identical
to the plain scheduler, which is what the golden-parity suite leans on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterable, Optional, Sequence

from .errors import NetworkError
from .partition import PartitionMap
from .simclock import EventHandle, Scheduler, us_to_ms

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network

#: Event label used for cross-partition deliveries (one event per frame).
CROSS_LABEL = "udp-cross"


@dataclass(frozen=True)
class CrossFrame:
    """One unicast datagram crossing a district boundary.

    Holds only primitives (wire bytes, addresses, timestamps) so the
    multiprocess backend can pickle it through a pipe; the receiving side
    rebuilds a fresh :class:`~repro.net.udp.Datagram` — and with it a fresh
    :class:`~repro.net.udp.FrameMemo` — so parse-once sharing restarts
    among the destination's sockets (``seq`` is per *source* partition,
    which is what keeps the sort key identical across backends: each
    worker numbers its own sends exactly as the inline engine does).
    """

    due_us: int
    src_pid: int
    seq: int
    dst_pid: int
    payload: bytes
    source_host: str
    source_port: int
    dest_host: str
    dest_port: int
    final_segment: str
    send_time_us: int

    def sort_key(self) -> tuple[int, int, int]:
        return (self.due_us, self.src_pid, self.seq)


class ShardedScheduler:
    """K per-district :class:`Scheduler` wheels behind the one-wheel API.

    ``Network`` code never sees the difference: ``now_us`` / ``schedule`` /
    ``post`` / ``run_until`` behave like the plain scheduler's.  Scheduling
    calls made while a shard's window is executing land on that shard
    (``_current``); calls made between windows must carry a node context —
    ``Network.scheduler_for(node)`` hands out the node's shard directly,
    which is how every ``Node.schedule``/``Timer``/``PeriodicTask`` routes.
    """

    def __init__(self, pmap: PartitionMap):
        self.pmap = pmap
        self.shards: list[Scheduler] = [Scheduler() for _ in range(pmap.count)]
        #: The shard whose window is executing right now (None at barriers).
        self._current: Scheduler | None = None
        self._now_us = 0
        #: First instant no shard has processed yet.
        self._frontier_us = 0
        #: Cross frames produced since the last barrier.
        self.outbox: list[CrossFrame] = []
        self._out_seq = [0] * pmap.count
        self.network: Optional["Network"] = None
        #: Partitions this process actually runs (all of them inline; a
        #: single pid in a multiprocess worker).
        self.local_pids: tuple[int, ...] = tuple(range(pmap.count))
        #: Worker-mode barrier hook: ``exchange(edge, out_frames)`` ships
        #: this window's frames to the coordinator and returns the inbound
        #: batch.  ``None`` selects the inline backend.
        self._exchange: Optional[Callable[[int, list], list]] = None
        #: Barrier windows executed (benchmarks report this).
        self.windows = 0

    # -- wiring ---------------------------------------------------------------

    def bind(self, network: "Network") -> None:
        self.network = network

    def configure_worker(
        self, pid: int, exchange: Callable[[int, list], list]
    ) -> None:
        """Restrict this engine to one partition (multiprocess worker)."""
        self.local_pids = (pid,)
        self._exchange = exchange
        if self.network is not None:
            # A worker replays the full workload script, so recording sites
            # that can fire outside the event loop must know which
            # districts' measurements are this process's to make: restrict
            # the recording to the worker's own partitions.
            self.network.obs.restrict(self.local_pids)
            # Ownership changed: drop counter-pair caches resolved under
            # the parent's (unrestricted) view.
            self.network._obs_frame_counters.clear()

    # -- introspection --------------------------------------------------------

    @property
    def now_us(self) -> int:
        current = self._current
        return current._now_us if current is not None else self._now_us

    @property
    def now_ms(self) -> float:
        return us_to_ms(self.now_us)

    @property
    def events_fired(self) -> int:
        return sum(shard.events_fired for shard in self.shards)

    @property
    def pending(self) -> int:
        return sum(shard.pending for shard in self.shards) + len(self.outbox)

    @property
    def compactions(self) -> int:
        return sum(shard.compactions for shard in self.shards)

    def events_by_partition(self) -> list[int]:
        """Per-district event counts (the tentpole's per-partition view)."""
        return [shard.events_fired for shard in self.shards]

    # -- scheduling (the plain-Scheduler surface) -----------------------------

    def _target(self) -> Scheduler:
        current = self._current
        if current is not None:
            return current
        if len(self.shards) == 1:
            return self.shards[0]
        raise NetworkError(
            "no active partition for a direct schedule; go through the node "
            "(Node.schedule/timer/every) so the event lands on its district"
        )

    def schedule(self, delay_us: int, callback, label: str = "") -> EventHandle:
        return self._target().schedule(delay_us, callback, label=label)

    def schedule_at(self, time_us: int, callback, label: str = "") -> EventHandle:
        shard = self._target()
        return shard.schedule(time_us - shard._now_us, callback, label=label)

    def post(self, delay_us: int, callback, label: str = "") -> None:
        self._target().post(delay_us, callback, label=label)

    def reschedule(self, handle: EventHandle, delay_us: int) -> EventHandle:
        # The handle remembers its owning shard; no context needed.
        return handle._scheduler.reschedule(handle, delay_us)

    def drain(self, handles: Iterable[EventHandle]) -> None:
        for handle in handles:
            handle.cancel()

    # -- cross-partition traffic ----------------------------------------------

    def next_cross_seq(self, src_pid: int) -> int:
        """Allocate the next per-source sequence number (at send time)."""
        seq = self._out_seq[src_pid]
        self._out_seq[src_pid] = seq + 1
        return seq

    def enqueue_cross(self, frame: CrossFrame) -> None:
        """Queue a frame for injection at the next barrier."""
        self.outbox.append(frame)

    def _drain_outbox(self) -> list[CrossFrame]:
        frames, self.outbox = self.outbox, []
        if self._exchange is not None:
            # A worker executes workload-time sends for *every* partition
            # (the build/workload script is replayed in each process); only
            # frames our own partitions emitted are ours to ship — the
            # owners of the others emit identical copies with identical
            # sequence numbers.
            local = set(self.local_pids)
            frames = [frame for frame in frames if frame.src_pid in local]
        return frames

    def _inject(self, frames: Sequence[CrossFrame]) -> None:
        network = self.network
        local = set(self.local_pids)
        for frame in sorted(frames, key=CrossFrame.sort_key):
            if frame.dst_pid in local:
                network.inject_cross(frame)

    def shard_of(self, pid: int) -> Scheduler:
        return self.shards[pid]

    # -- the window engine ----------------------------------------------------

    def _window_edge(self, target_us: int) -> int:
        lookahead = self.pmap.lookahead_us
        if lookahead is None or self.pmap.count == 1:
            return target_us
        # Process [frontier, edge] inclusive.  Frames sent at s >= frontier
        # are due at >= s + lookahead + 1 (every route charges at least one
        # segment delay on top of the link) > edge, so nothing produced
        # inside the window can be due inside it.
        return min(target_us, self._frontier_us + lookahead - 1)

    def _run_window(self, edge_us: int) -> None:
        network = self.network
        obs = network.obs if network is not None else None
        if obs is not None and obs.on:
            self._run_window_traced(edge_us, obs)
            return
        for pid in self.local_pids:
            shard = self.shards[pid]
            self._current = shard
            try:
                shard.run_until(edge_us)
            finally:
                self._current = None
        self.windows += 1

    def _run_window_traced(self, edge_us: int, obs) -> None:
        """One window with the flight recorder on: per-district timelines.

        Replays :meth:`Scheduler.run_until`'s exact loop (peek/step until
        the edge, then advance the clock) so the event schedule stays
        bit-identical to the untraced engine, while tracking the last
        instant each shard actually fired at — the busy/stall split.  Per
        district and window this emits an ``engine.window`` span, an
        ``engine.stall`` span for the idle tail spent waiting on the
        barrier, and a wheel-occupancy counter sample at the edge.
        """
        trace = obs.trace
        metrics = obs.metrics
        for pid in self.local_pids:
            shard = self.shards[pid]
            self._current = shard
            start_us = shard._now_us
            fired_before = shard.events_fired
            busy_until = start_us
            try:
                while True:
                    head = shard._peek_time()
                    if head is None or head > edge_us:
                        break
                    shard.step()
                    busy_until = shard._now_us
                if shard._now_us < edge_us:
                    shard._now_us = edge_us
            finally:
                self._current = None
            fired = shard.events_fired - fired_before
            trace.span(
                "engine.window", start_us, edge_us - start_us, pid,
                cat="engine", args={"events": fired, "window": self.windows},
            )
            if busy_until < edge_us and len(self.shards) > 1:
                trace.span(
                    "engine.stall", busy_until, edge_us - busy_until, pid,
                    cat="engine", args={"window": self.windows},
                )
            trace.counter(
                "engine.occupancy", edge_us, pid,
                values={"pending": shard.pending},
            )
            metrics.counter("engine.windows", district=str(pid)).inc()
            metrics.counter("engine.window_events", district=str(pid)).inc(fired)
            metrics.gauge("engine.pending", district=str(pid)).set(shard.pending)
        self.windows += 1

    def _barrier(self, edge_us: int) -> None:
        frames = self._drain_outbox()
        if self._exchange is not None:
            frames = self._exchange(edge_us, frames)
        self._inject(frames)
        self._frontier_us = edge_us + 1
        self._now_us = edge_us

    def run_until(self, time_us: int) -> None:
        """Run every partition's events with timestamp <= ``time_us``."""
        while True:
            edge = self._window_edge(time_us)
            self._run_window(edge)
            self._barrier(edge)
            if edge >= time_us:
                return

    def run_for(self, delay_us: int) -> None:
        self.run_until(self._now_us + delay_us)

    def run_until_idle(
        self, limit_us: int | None = None, max_events: int = 10_000_000
    ) -> None:
        """Window-stepped run-until-idle (inline backend only).

        A multiprocess worker cannot know when *other* partitions go idle,
        so open-ended runs require the inline backend (or bounded ``Run``
        steps, which the multiprocess scenarios use).
        """
        if self._exchange is not None:
            raise NetworkError(
                "run-until-idle is not available under the multiprocess "
                "backend; use bounded run windows"
            )
        start_fired = self.events_fired
        while True:
            heads = [shard._peek_time() for shard in self.shards]
            head = min((h for h in heads if h is not None), default=None)
            if head is None and not self.outbox:
                return
            if limit_us is not None and (head is None or head > limit_us):
                if self._now_us < limit_us:
                    self.run_until(limit_us)
                return
            self.run_until(head if head is not None else self._frontier_us)
            if self.events_fired - start_fired > max_events:
                raise RuntimeError(
                    f"run_until_idle exceeded {max_events} events; runaway timer?"
                )


__all__ = ["CrossFrame", "ShardedScheduler", "CROSS_LABEL"]

"""LAN segments, inter-segment links, and the unicast router.

The paper's testbed is one shared 10 Mb/s segment; its §4.2 placement
analysis, however, puts INDISS instances on *boundaries* — client hosts,
service hosts, and dedicated gateways.  This module generalizes the network
layer so a :class:`~repro.net.network.Network` is an internetwork of
:class:`Segment` objects:

* **multicast and broadcast are scoped to a segment** — a frame fans out
  only to the LANs the sending host is attached to, never across a link;
* **unicast is routed** — the :class:`Router` finds the shortest link path
  between segments and charges per-segment latency plus per-link latency,
  like store-and-forward IP forwarding;
* a :class:`Bridge` multi-homes a host onto additional segments, which is
  how an INDISS gateway hears two LANs at once and chains discovery across
  them.

A ``Network`` built with no explicit segments still behaves exactly like
the original single-LAN model: every node lands on the default segment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

from .addressing import AddressAllocator
from .errors import AddressError, NetworkError
from .latency import LatencyModel
from .traffic import TrafficMonitor

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network
    from .node import Node

#: Default one-way latency charged for crossing one inter-segment link.
DEFAULT_LINK_LATENCY_US = 500


class Segment:
    """One shared LAN segment: a subnet, its attached hosts, a latency model."""

    def __init__(
        self,
        network: "Network",
        name: str,
        subnet: str,
        latency: LatencyModel | None = None,
    ):
        self.network = network
        self.name = name
        self.subnet = subnet
        self.latency = latency if latency is not None else network.latency
        self._allocator = AddressAllocator(subnet)
        self._nodes: dict[str, "Node"] = {}
        #: (group, port) -> joined sockets, kept current by the UDP layer.
        #: Multicast delivery walks this index instead of scanning every
        #: attached node's port table — the difference between O(members)
        #: and O(nodes) per frame, which is what lets the 1000+-node
        #: federation scenarios spend their time discovering instead of
        #: iterating idle background hosts.
        self._group_members: dict[tuple[str, int], list] = {}
        #: Per-segment accounting; the acceptance tests for multicast
        #: confinement read these counters.
        self.traffic = TrafficMonitor(self.latency.bandwidth_bps)
        #: Optional per-edge loss model (adversity layer).  ``None`` — the
        #: default — keeps delivery draw-free and bit-identical to the
        #: lossless golden traces.  Set via ``Network.set_segment_loss``;
        #: drops are drawn at delivery-event time on the owning shard.
        self.loss = None

    # -- membership ---------------------------------------------------------

    def allocate_address(self) -> str:
        return self._allocator.allocate()

    def has_free_address(self) -> bool:
        """True while the segment's subnet can still attach another host."""
        return self._allocator.remaining > 0

    def attach(self, node: "Node") -> None:
        """Attach ``node`` to this segment (multi-homing is allowed)."""
        if node.address in self._nodes:
            raise AddressError(f"{node.address} already attached to segment {self.name}")
        self._nodes[node.address] = node
        if self not in node.segments:
            node.segments.append(self)
        # A node bridged onto this segment after its sockets joined their
        # groups (gateway placement) brings its memberships along.
        stack = node.udp_stack
        if stack is not None:
            for group, port, sock in stack.multicast_members():
                self.index_group_member(sock, group, port)
        # Reachability changed (a bridge may have shortened routes).
        self.network._note_topology_change()

    def detach(self, node: "Node") -> None:
        """Remove ``node`` from this segment, dropping its group indexes."""
        if self._nodes.get(node.address) is not node:
            raise NetworkError(
                f"{node.address} is not attached to segment {self.name}"
            )
        stack = node.udp_stack
        if stack is not None:
            for group, port, sock in stack.multicast_members():
                self.unindex_group_member(sock, group, port)
        del self._nodes[node.address]
        if self in node.segments:
            node.segments.remove(self)
        self.network._note_topology_change()

    # -- multicast membership index -----------------------------------------

    def index_group_member(self, sock, group: str, port: int) -> None:
        members = self._group_members.setdefault((group, port), [])
        if sock not in members:
            members.append(sock)

    def unindex_group_member(self, sock, group: str, port: int) -> None:
        members = self._group_members.get((group, port))
        if members is None:
            return
        if sock in members:
            members.remove(sock)
        if not members:
            del self._group_members[(group, port)]

    def group_members(self, group: str, port: int) -> list:
        """Sockets on this segment that joined ``group`` on ``port``."""
        return list(self._group_members.get((group, port), ()))

    @property
    def nodes(self) -> list["Node"]:
        return list(self._nodes.values())

    def __contains__(self, node: "Node") -> bool:
        return self._nodes.get(node.address) is node

    def delay_us(self, size_bytes: int, loopback: bool = False) -> int:
        return self.latency.delay_us(size_bytes, loopback=loopback)

    def det_delay_us(self, size_bytes: int) -> int:
        """Jitter-free delivery delay, for cross-partition unicast.

        Frames crossing a partition boundary must not consume the segment's
        jitter RNG: the draw order would depend on which partition ran
        first, breaking the partitioned engine's determinism.  The parallel
        and single-threaded engines both use this deterministic rule for
        boundary-crossing frames, so their schedules agree exactly.
        """
        return self.latency.det_delay_us(size_bytes)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Segment({self.name!r}, {self.subnet}.0/24, nodes={len(self._nodes)})"


@dataclass(frozen=True)
class Link:
    """A point-to-point link between two segments with one-way latency."""

    a: str
    b: str
    latency_us: int = DEFAULT_LINK_LATENCY_US

    def other(self, name: str) -> str:
        if name == self.a:
            return self.b
        if name == self.b:
            return self.a
        raise NetworkError(f"segment {name!r} is not an endpoint of link {self.a}-{self.b}")


class Router:
    """Shortest-path (min-hop) unicast routing over the segment graph.

    Paths are cached per (source, destination) pair; the cache is dropped
    whenever topology changes so routes always reflect the current graph.
    ``topology_version`` counts those changes — the network layer keys its
    precomputed delivery plans on it, so plan memos expire the moment a
    link is added.
    """

    def __init__(self) -> None:
        self._adjacency: dict[str, list[Link]] = {}
        self._paths: dict[tuple[str, str], Optional[tuple[Link, ...]]] = {}
        self.topology_version = 0
        #: Administratively-down segment pairs (fault injection).  A pair
        #: covers every parallel link between its endpoints; empty in any
        #: fault-free run, so the BFS below never pays for the check.
        self._down_pairs: set[tuple[str, str]] = set()

    @staticmethod
    def pair(a: str, b: str) -> tuple[str, str]:
        """Canonical (sorted) key for the segment pair of one link."""
        return (a, b) if a <= b else (b, a)

    def set_link_state(self, a: str, b: str, up: bool) -> bool:
        """Mark the ``a``-``b`` link up or down; True when state changed.

        Routing treats a down link as absent: cached paths are dropped and
        ``topology_version`` bumps so memoized delivery plans rebuilt from
        the surviving graph.  Raises when no such link exists.
        """
        key = self.pair(a, b)
        if not any(link.other(a) == b for link in self._adjacency.get(a, ())):
            raise NetworkError(f"no link between segments {a!r} and {b!r}")
        if up:
            changed = key in self._down_pairs
            self._down_pairs.discard(key)
        else:
            changed = key not in self._down_pairs
            self._down_pairs.add(key)
        if changed:
            self._paths.clear()
            self.topology_version += 1
        return changed

    def link_is_up(self, a: str, b: str) -> bool:
        return self.pair(a, b) not in self._down_pairs

    def any_down(self, pairs) -> bool:
        """True when any of the given canonical pairs is currently down."""
        if not self._down_pairs:
            return False
        return any(p in self._down_pairs for p in pairs)

    def down_pairs(self) -> set[tuple[str, str]]:
        return set(self._down_pairs)

    def connect(self, a: str, b: str, latency_us: int = DEFAULT_LINK_LATENCY_US) -> Link:
        if a == b:
            raise NetworkError(f"cannot link segment {a!r} to itself")
        link = Link(a, b, latency_us)
        self._adjacency.setdefault(a, []).append(link)
        self._adjacency.setdefault(b, []).append(link)
        self._paths.clear()
        self.topology_version += 1
        return link

    def neighbors(self, name: str) -> list[str]:
        return [link.other(name) for link in self._adjacency.get(name, ())]

    def links(self) -> list[tuple[str, str, int]]:
        """Every link once, as ``(a, b, latency_us)``, in creation order.

        Each :class:`Link` is registered under both endpoints, so the
        adjacency lists are deduplicated by object identity.
        """
        seen: set[int] = set()
        result: list[tuple[str, str, int]] = []
        for links in self._adjacency.values():
            for link in links:
                if id(link) not in seen:
                    seen.add(id(link))
                    result.append((link.a, link.b, link.latency_us))
        return result

    def path(self, source: str, destination: str) -> Optional[list[Link]]:
        """Min-hop link sequence from ``source`` to ``destination``.

        Returns an empty list when they are the same segment, None when
        disconnected.
        """
        if source == destination:
            return []
        cached = self._paths.get((source, destination))
        if (source, destination) in self._paths:
            return list(cached) if cached is not None else None
        parents: dict[str, tuple[str, Link]] = {}
        frontier: deque[str] = deque([source])
        seen = {source}
        found = False
        down = self._down_pairs
        while frontier and not found:
            current = frontier.popleft()
            for link in self._adjacency.get(current, ()):
                nxt = link.other(current)
                if nxt in seen:
                    continue
                if down and self.pair(link.a, link.b) in down:
                    continue
                seen.add(nxt)
                parents[nxt] = (current, link)
                if nxt == destination:
                    found = True
                    break
                frontier.append(nxt)
        if not found:
            self._paths[(source, destination)] = None
            return None
        hops: list[Link] = []
        cursor = destination
        while cursor != source:
            prev, link = parents[cursor]
            hops.append(link)
            cursor = prev
        hops.reverse()
        self._paths[(source, destination)] = tuple(hops)
        return hops

    def route(
        self, sources: Iterable[str], destinations: Iterable[str]
    ) -> Optional[tuple[str, list[Link]]]:
        """Best (source-segment, link path) over all source/destination pairs.

        Equal-hop-count candidates tie-break lexicographically on the
        source segment name, so the chosen route never depends on segment
        iteration order (multi-homed gateways used to pick whichever
        interface happened to come first).
        """
        best: Optional[tuple[str, list[Link]]] = None
        destination_list = list(destinations)
        for source in sources:
            for destination in destination_list:
                hops = self.path(source, destination)
                if hops is None:
                    continue
                if (
                    best is None
                    or len(hops) < len(best[1])
                    or (len(hops) == len(best[1]) and source < best[0])
                ):
                    best = (source, hops)
        return best


class Bridge:
    """Multi-homes one host node across several segments.

    This is the physical premise of a gateway-placed INDISS instance: the
    host has an interface on each LAN, so its monitor hears both and its
    units' multicasts reach both.
    """

    def __init__(self, node: "Node", *segments: Segment):
        self.node = node
        self.segments: list[Segment] = list(node.segments)
        for segment in segments:
            if node not in segment:
                segment.attach(node)
            if segment not in self.segments:
                self.segments.append(segment)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        names = ", ".join(s.name for s in self.segments)
        return f"Bridge({self.node.name!r} on {names})"


__all__ = ["Segment", "Link", "Router", "Bridge", "DEFAULT_LINK_LATENCY_US"]

"""Latency, bandwidth, jitter and loss models for the simulated LAN.

The paper's testbed is a 10 Mb/s LAN between workstations (§4.3).  The
default :class:`LatencyModel` reproduces that regime: a fixed per-message
latency (switch + OS stack), a serialization term proportional to message
size, and optional bounded uniform jitter.  Loopback delivery (INDISS
co-located with a client or service) uses a much smaller constant — this
asymmetry is exactly what Figures 8 and 9 measure.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

#: Paper testbed bandwidth: hosts "connected to a LAN at 10Mb/s".
DEFAULT_BANDWIDTH_BPS = 10_000_000

#: Fixed per-message LAN cost (propagation + switch + kernel) in microseconds.
DEFAULT_LAN_LATENCY_US = 150

#: Loopback per-message cost in microseconds.
DEFAULT_LOOPBACK_LATENCY_US = 15


@dataclass
class LatencyModel:
    """Computes delivery delay for a message on the simulated segment.

    Parameters
    ----------
    lan_latency_us:
        Fixed cost charged to every message crossing the network.
    loopback_latency_us:
        Fixed cost for node-local delivery.
    bandwidth_bps:
        Serialization rate for the size-proportional term; ``None`` disables
        the term (infinite bandwidth).
    jitter_us:
        Half-width of a uniform jitter applied on top of the fixed LAN cost.
    seed:
        Seed for the jitter RNG; runs with equal seeds are identical.
    """

    lan_latency_us: int = DEFAULT_LAN_LATENCY_US
    loopback_latency_us: int = DEFAULT_LOOPBACK_LATENCY_US
    bandwidth_bps: int | None = DEFAULT_BANDWIDTH_BPS
    jitter_us: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        self._rng = random.Random(self.seed)

    def reseed(self, seed: int) -> None:
        """Reset the jitter RNG (used to vary trials deterministically)."""
        self._rng = random.Random(seed)

    def transmission_us(self, size_bytes: int) -> int:
        """Time to serialize ``size_bytes`` onto the wire."""
        if self.bandwidth_bps is None or size_bytes <= 0:
            return 0
        return int(round(size_bytes * 8 * 1_000_000 / self.bandwidth_bps))

    def delay_us(self, size_bytes: int, loopback: bool) -> int:
        """Total delivery delay for one message."""
        if loopback:
            return self.loopback_latency_us
        delay = self.lan_latency_us + self.transmission_us(size_bytes)
        if self.jitter_us > 0:
            delay += self._rng.randint(0, self.jitter_us)
        return max(delay, 1)

    def det_delay_us(self, size_bytes: int) -> int:
        """The deterministic part of :meth:`delay_us`: no jitter draw.

        Cross-partition deliveries use this so the jitter RNG's draw order
        stays identical between the single-threaded and partitioned
        engines (with ``jitter_us == 0`` the two methods are equal).
        """
        return max(self.lan_latency_us + self.transmission_us(size_bytes), 1)


@dataclass
class LossModel:
    """Bernoulli datagram loss (applied to UDP only; the TCP abstraction is
    reliable by construction).

    ``rate`` is the probability that any single datagram copy is dropped.
    Multicast fan-out applies loss independently per receiver, like a real
    shared segment.
    """

    rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.rate}")
        self._rng = random.Random(self.seed)
        self.dropped = 0
        self.delivered = 0

    def reseed(self, seed: int) -> None:
        self._rng = random.Random(seed)

    def should_drop(self) -> bool:
        if self.rate <= 0.0:
            self.delivered += 1
            return False
        drop = self._rng.random() < self.rate
        if drop:
            self.dropped += 1
        else:
            self.delivered += 1
        return drop


@dataclass
class GilbertElliottLoss:
    """Two-state burst loss (Gilbert-Elliott) for one edge.

    The channel alternates between a *good* state (loss probability
    ``loss_good``) and a *bad* state (``loss_bad``).  Per frame, the state
    first transitions (good->bad with ``p_bad``, bad->good with ``p_good``)
    and then the frame is dropped with the current state's loss
    probability.  All draws come from this model's own RNG, so two runs
    with equal seeds see identical loss sequences regardless of what any
    other model draws.
    """

    p_bad: float = 0.05
    p_good: float = 0.5
    loss_good: float = 0.0
    loss_bad: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("p_bad", "p_good", "loss_good", "loss_bad"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._rng = random.Random(self.seed)
        self.bad = False
        self.dropped = 0
        self.delivered = 0

    def reseed(self, seed: int) -> None:
        self._rng = random.Random(seed)
        self.bad = False

    def should_drop(self) -> bool:
        if self.bad:
            if self._rng.random() < self.p_good:
                self.bad = False
        else:
            if self._rng.random() < self.p_bad:
                self.bad = True
        rate = self.loss_bad if self.bad else self.loss_good
        drop = rate > 0.0 and self._rng.random() < rate
        if drop:
            self.dropped += 1
        else:
            self.delivered += 1
        return drop


def edge_seed(seed: int, edge: str) -> int:
    """Stable per-edge RNG seed: a dedicated stream for each lossy edge.

    Derived by hashing ``seed`` with the edge's name so that (a) the draw
    sequence on one edge never depends on which other edges are lossy, and
    (b) the same ``(seed, edge)`` pair yields the same stream on every
    platform and run (``hash()`` is salted; ``blake2b`` is not).
    """
    digest = hashlib.blake2b(
        f"{seed}|{edge}".encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big")


def make_loss_model(model: str, rate: float, seed: int, edge: str):
    """Build a seeded per-edge loss model (``bernoulli`` or ``gilbert``).

    ``gilbert`` maps ``rate`` onto the classic bursty regime: the channel
    enters a fully-lossy bad state with probability ``rate`` per frame and
    escapes with probability 0.5, for an average loss near ``rate`` with
    the drops clustered into bursts.
    """
    if model == "bernoulli":
        return LossModel(rate=rate, seed=edge_seed(seed, edge))
    if model == "gilbert":
        return GilbertElliottLoss(
            p_bad=rate, p_good=0.5, loss_good=0.0, loss_bad=1.0,
            seed=edge_seed(seed, edge),
        )
    raise ValueError(f"unknown loss model {model!r} (expected bernoulli or gilbert)")


__all__ = [
    "LatencyModel",
    "LossModel",
    "GilbertElliottLoss",
    "edge_seed",
    "make_loss_model",
    "DEFAULT_BANDWIDTH_BPS",
    "DEFAULT_LAN_LATENCY_US",
    "DEFAULT_LOOPBACK_LATENCY_US",
]

"""A host attached to the simulated LAN."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .simclock import EventHandle, PeriodicTask, Timer
from .tcp import TcpStack
from .udp import UdpStack

if TYPE_CHECKING:  # pragma: no cover
    from .network import Network
    from .segment import Segment


class Node:
    """One host: an address plus its UDP and TCP stacks.

    Application components (SDP agents, INDISS) hold a reference to their
    node and reach the shared scheduler through it, so co-located components
    naturally share a clock and loopback path — the property Figures 8 and 9
    of the paper exploit.
    """

    def __init__(self, network: "Network", name: str, address: str):
        self.network = network
        self.name = name
        self.address = address
        # Stacks are created on first use: thousand-node scenarios attach
        # mostly idle background hosts, and two stack allocations per node
        # dominate their setup cost.
        self._udp: UdpStack | None = None
        self._tcp: TcpStack | None = None
        #: Segments this host has an interface on; populated by
        #: :meth:`repro.net.segment.Segment.attach`.  A gateway host
        #: bridged across two LANs has two entries.
        self.segments: list["Segment"] = []
        #: Cached district id under a partition-aware network; remembered
        #: across detach windows so a churned-out host keeps scheduling on
        #: its home partition's wheel.
        self._pid: int | None = None

    @property
    def udp(self) -> UdpStack:
        stack = self._udp
        if stack is None:
            stack = self._udp = UdpStack(self)
        return stack

    @property
    def tcp(self) -> TcpStack:
        stack = self._tcp
        if stack is None:
            stack = self._tcp = TcpStack(self)
        return stack

    @property
    def udp_stack(self) -> UdpStack | None:
        """The UDP stack if one exists — a peek that never instantiates
        (delivery and attach paths use it to skip socketless hosts)."""
        return self._udp

    @property
    def segment(self) -> "Segment":
        """The host's primary (first-attached) segment."""
        if not self.segments:
            raise RuntimeError(f"node {self.name!r} is not attached to any segment")
        return self.segments[0]

    # -- scheduling conveniences -------------------------------------------

    @property
    def now_us(self) -> int:
        return self.network.scheduler_for(self).now_us

    def schedule(self, delay_us: int, callback: Callable[[], None], label: str = "") -> EventHandle:
        return self.network.scheduler_for(self).schedule(delay_us, callback, label=label)

    def timer(self, callback: Callable[[], None]) -> Timer:
        return Timer(self.network.scheduler_for(self), callback)

    def every(
        self,
        period_us: int,
        callback: Callable[[], None],
        initial_delay_us: int | None = None,
        max_firings: int | None = None,
    ) -> PeriodicTask:
        return PeriodicTask(
            self.network.scheduler_for(self),
            period_us,
            callback,
            initial_delay_us=initial_delay_us,
            max_firings=max_firings,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Node({self.name!r}, {self.address})"


__all__ = ["Node"]

"""UDP sockets for simulated nodes, with multicast group membership.

The API intentionally mirrors the small slice of the BSD socket interface
that service discovery protocols need: bind to a port, join multicast
groups, send datagrams, receive them through a callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

from .addressing import ANY, Endpoint, is_multicast, validate_port
from .errors import NotBoundError, PortInUseError, SocketClosedError

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node


@dataclass(frozen=True)
class Datagram:
    """A delivered UDP datagram."""

    payload: bytes
    source: Endpoint
    destination: Endpoint

    @property
    def multicast(self) -> bool:
        return is_multicast(self.destination.host)

    def __len__(self) -> int:
        return len(self.payload)


DatagramHandler = Callable[[Datagram], None]


class UdpSocket:
    """A UDP socket bound (or bindable) on one simulated node."""

    def __init__(self, node: "Node"):
        self._node = node
        self._port: int | None = None
        self._groups: set[str] = set()
        self._closed = False
        self._handler: Optional[DatagramHandler] = None
        #: Datagrams delivered before a handler was attached (tests read this).
        self.inbox: list[Datagram] = []
        self.sent_count = 0
        self.received_count = 0

    # -- configuration -----------------------------------------------------

    @property
    def node(self) -> "Node":
        return self._node

    @property
    def port(self) -> int | None:
        return self._port

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def groups(self) -> frozenset[str]:
        return frozenset(self._groups)

    def bind(self, port: int, reuse: bool = False) -> "UdpSocket":
        """Bind to ``port``.  ``reuse`` mirrors SO_REUSEADDR: several sockets
        (typically multicast listeners) may share the port."""
        self._ensure_open()
        if self._port is not None:
            raise PortInUseError(f"socket already bound to {self._port}")
        validate_port(port)
        self._node.udp.register(self, port, reuse)
        self._port = port
        for group in self._groups:
            self._index_membership(group)
        return self

    def join_group(self, group: str) -> "UdpSocket":
        """Join a multicast group (must be a 224/4 address)."""
        self._ensure_open()
        if not is_multicast(group):
            raise ValueError(f"not a multicast group: {group!r}")
        if group not in self._groups:
            self._groups.add(group)
            if self._port is not None:
                self._index_membership(group)
        return self

    def leave_group(self, group: str) -> None:
        if group in self._groups:
            self._groups.discard(group)
            if self._port is not None:
                self._unindex_membership(group)

    # -- per-segment membership index (batched multicast delivery) ----------

    def _index_membership(self, group: str) -> None:
        for segment in self._node.segments:
            segment.index_group_member(self, group, self._port)

    def _unindex_membership(self, group: str) -> None:
        for segment in self._node.segments:
            segment.unindex_group_member(self, group, self._port)

    def on_datagram(self, handler: DatagramHandler) -> "UdpSocket":
        """Attach the receive callback; queued datagrams are flushed to it."""
        self._handler = handler
        if self.inbox:
            pending, self.inbox = self.inbox, []
            for datagram in pending:
                handler(datagram)
        return self

    # -- I/O ----------------------------------------------------------------

    def sendto(self, payload: bytes, destination: Endpoint) -> None:
        """Send ``payload`` to a unicast or multicast endpoint."""
        self._ensure_open()
        if self._port is None:
            # Match OS behaviour: sending auto-binds to an ephemeral port.
            self.bind(self._node.udp.ephemeral_port())
        source = Endpoint(self._node.address, self._port)
        self._node.network.send_datagram(self._node, source, destination, bytes(payload))
        self.sent_count += 1

    def deliver(self, datagram: Datagram) -> None:
        """Called by the network when a datagram arrives for this socket."""
        if self._closed:
            return
        self.received_count += 1
        if self._handler is not None:
            self._handler(datagram)
        else:
            self.inbox.append(datagram)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._port is not None:
            self._node.udp.unregister(self, self._port)
            for group in self._groups:
                self._unindex_membership(group)
        self._groups.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SocketClosedError("operation on closed UDP socket")


class UdpStack:
    """The per-node UDP port table."""

    #: First ephemeral port handed out by :meth:`ephemeral_port`.
    EPHEMERAL_BASE = 49152

    def __init__(self, node: "Node"):
        self._node = node
        self._ports: dict[int, list[UdpSocket]] = {}
        self._reusable: set[int] = set()
        self._next_ephemeral = self.EPHEMERAL_BASE

    def socket(self) -> UdpSocket:
        return UdpSocket(self._node)

    def register(self, sock: UdpSocket, port: int, reuse: bool) -> None:
        holders = self._ports.get(port, [])
        if holders and not (reuse and port in self._reusable):
            raise PortInUseError(f"port {port} already bound on {self._node.name}")
        if reuse:
            self._reusable.add(port)
        self._ports.setdefault(port, []).append(sock)

    def unregister(self, sock: UdpSocket, port: int) -> None:
        holders = self._ports.get(port)
        if holders and sock in holders:
            holders.remove(sock)
            if not holders:
                del self._ports[port]
                self._reusable.discard(port)

    def ephemeral_port(self) -> int:
        while self._next_ephemeral in self._ports:
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                raise NotBoundError("ephemeral port space exhausted")
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def sockets_for(self, port: int) -> list[UdpSocket]:
        return list(self._ports.get(port, ()))

    def sockets_for_group(self, group: str, port: int) -> list[UdpSocket]:
        """Sockets bound to ``port`` that joined multicast ``group``."""
        return [s for s in self._ports.get(port, ()) if group in s.groups]

    def multicast_members(self):
        """Every (group, port, socket) membership on this node.

        Segments index these when a node is attached after its sockets
        already exist (bridging a gateway onto an additional LAN).
        """
        for port, sockets in self._ports.items():
            for sock in sockets:
                for group in sock.groups:
                    yield group, port, sock

    def bound_ports(self) -> list[int]:
        return sorted(self._ports)


__all__ = ["UdpSocket", "UdpStack", "Datagram", "ANY"]

"""UDP sockets for simulated nodes, with multicast group membership.

The API intentionally mirrors the small slice of the BSD socket interface
that service discovery protocols need: bind to a port, join multicast
groups, send datagrams, receive them through a callback.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from .addressing import ANY, Endpoint, is_multicast, validate_port
from .errors import NotBoundError, PortInUseError, SocketClosedError

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node


#: Sentinel returned by :meth:`FrameMemo.lookup` when no usable entry
#: exists (``None`` is a legitimate stored value: "this payload does not
#: decode").
MEMO_MISS = object()


class FrameMemo:
    """Shared per-frame decode results (parse-once fan-out delivery).

    One multicast frame fans out to K co-segment sockets; every receiver
    that decodes the same bytes the same way (an INDISS monitor's parser, a
    native SLP endpoint's wire decoder, an SSDP device's datagram parse, a
    Jini discovery listener) pays the decode once and the other
    K-1 reuse the stored result.  The memo lives on the
    :class:`Datagram` — per frame, not a global cache — so results can
    never outlive the frame or leak between frames.

    Each entry stores the payload it was computed from, and ``lookup``
    compares it with bytes equality before reuse: even if two distinct
    payloads ever shared a key (hash collision, or a hand-built datagram
    reusing another frame's memo), the stale result is not served.  Two
    protocols sharing a (group, port) pair can never cross-serve each
    other either: their decoders use distinct memo keys, so each key holds
    only results computed by that protocol's own codec.
    """

    __slots__ = ("_entries", "hits", "collisions")

    def __init__(self) -> None:
        self._entries: dict = {}
        self.hits = 0
        self.collisions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key, payload: bytes):
        """The stored result for ``key``, or :data:`MEMO_MISS`."""
        entry = self._entries.get(key)
        if entry is None:
            return MEMO_MISS
        stored_payload, value = entry
        if stored_payload != payload:
            self.collisions += 1
            return MEMO_MISS
        self.hits += 1
        return value

    def store(self, key, payload: bytes, value) -> None:
        self._entries[key] = (payload, value)


class NullFrameMemo(FrameMemo):
    """A memo that never remembers: every lookup misses, stores drop.

    :class:`~repro.net.network.Network` attaches the singleton
    :data:`NULL_MEMO` to every frame when built with ``parse_once=False``,
    which turns all sharing and seeding off without touching any receive
    path — the A/B knob the benchmarks use to price the memo machinery.
    """

    __slots__ = ()

    def __len__(self) -> int:
        return 0

    def lookup(self, key, payload: bytes):
        return MEMO_MISS

    def store(self, key, payload: bytes, value) -> None:
        return None


#: Shared no-op memo (see :class:`NullFrameMemo`); safe as a singleton
#: because it holds no state.
NULL_MEMO = NullFrameMemo()


class ParseCounter:
    """Per-protocol decode accounting, one observation per (receiver, frame).

    Every receiver that handles a frame registers exactly one of:

    * ``decoded`` — it ran the protocol codec over the payload;
    * ``shared`` — it reused a result another receiver (or the sender's
      seed) left in the frame's :class:`FrameMemo`.

    ``seeded`` counts sender-side seeds (``decode_hint``) — frames whose
    first receiver never decodes at all.  Senders report seeds through
    :meth:`note_seed`, which is a no-op when the owning network runs with
    ``parse_once=False`` (hints are dropped there, so counting them would
    claim seeds that never reached a frame).  Instances live in
    :attr:`repro.net.network.Network.parse_stats`, keyed by protocol, so
    benchmarks can attribute the parse-once win per SDP.
    """

    __slots__ = ("decoded", "shared", "seeded", "count_seeds")

    def __init__(self, count_seeds: bool = True) -> None:
        self.decoded = 0
        self.shared = 0
        self.seeded = 0
        self.count_seeds = count_seeds

    def note_seed(self) -> None:
        if self.count_seeds:
            self.seeded += 1

    @property
    def observations(self) -> int:
        return self.decoded + self.shared

    @property
    def dedup_rate(self) -> float:
        total = self.decoded + self.shared
        return self.shared / total if total else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"ParseCounter(decoded={self.decoded}, shared={self.shared}, "
            f"seeded={self.seeded})"
        )


def shared_decode(memo, key, payload: bytes, codec, counter=None):
    """The parse-once lookup/decode/store sequence every protocol shares.

    ``codec`` maps payload bytes to a decoded value, returning ``None``
    for bytes that are not its protocol (negative results are stored and
    shared like any other).  ``memo`` is the delivering frame's
    :class:`FrameMemo` or ``None``; ``counter`` an optional
    :class:`ParseCounter` receiving exactly one decoded/shared
    observation per call.
    """
    if memo is not None:
        cached = memo.lookup(key, payload)
        if cached is not MEMO_MISS:
            if counter is not None:
                counter.shared += 1
            return cached
    value = codec(payload)
    if counter is not None:
        counter.decoded += 1
    if memo is not None:
        memo.store(key, payload, value)
    return value


@dataclass(frozen=True)
class Datagram:
    """A delivered UDP datagram."""

    payload: bytes
    source: Endpoint
    destination: Endpoint
    #: Per-frame decode memo shared by every socket this frame reaches;
    #: excluded from equality/hash (two equal frames are equal regardless
    #: of what receivers decoded so far).  Created lazily by
    #: :meth:`ensure_memo` — frames nobody memoizes (TCP-ish payloads,
    #: single-receiver traffic without a decode hint) never allocate one.
    memo: Optional[FrameMemo] = field(default=None, compare=False, repr=False)

    def ensure_memo(self) -> FrameMemo:
        """The frame's memo, created on first demand.

        The instance is shared by every receiver of the frame, so the
        first decoder's memo is visible to all later ones.
        """
        memo = self.memo
        if memo is None:
            memo = FrameMemo()
            object.__setattr__(self, "memo", memo)
        return memo

    @property
    def multicast(self) -> bool:
        return is_multicast(self.destination.host)

    def __len__(self) -> int:
        return len(self.payload)


DatagramHandler = Callable[[Datagram], None]


class UdpSocket:
    """A UDP socket bound (or bindable) on one simulated node."""

    def __init__(self, node: "Node"):
        self._node = node
        self._port: int | None = None
        self._groups: set[str] = set()
        self._closed = False
        #: Set by :meth:`repro.net.udp.UdpStack.crash`: the owning process
        #: crash-stopped, so sends from stale timers that still hold this
        #: socket silently vanish instead of raising (a dead process cannot
        #: raise into a survivor's event loop).
        self._crashed = False
        self._handler: Optional[DatagramHandler] = None
        #: Datagrams delivered before a handler was attached (tests read this).
        self.inbox: list[Datagram] = []
        self.sent_count = 0
        self.received_count = 0

    # -- configuration -----------------------------------------------------

    @property
    def node(self) -> "Node":
        return self._node

    @property
    def port(self) -> int | None:
        return self._port

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def groups(self) -> frozenset[str]:
        return frozenset(self._groups)

    def bind(self, port: int, reuse: bool = False) -> "UdpSocket":
        """Bind to ``port``.  ``reuse`` mirrors SO_REUSEADDR: several sockets
        (typically multicast listeners) may share the port."""
        self._ensure_open()
        if self._port is not None:
            raise PortInUseError(f"socket already bound to {self._port}")
        validate_port(port)
        self._node.udp.register(self, port, reuse)
        self._port = port
        for group in self._groups:
            self._index_membership(group)
        return self

    def join_group(self, group: str) -> "UdpSocket":
        """Join a multicast group (must be a 224/4 address)."""
        self._ensure_open()
        if not is_multicast(group):
            raise ValueError(f"not a multicast group: {group!r}")
        if group not in self._groups:
            self._groups.add(group)
            if self._port is not None:
                self._index_membership(group)
        return self

    def leave_group(self, group: str) -> None:
        if group in self._groups:
            self._groups.discard(group)
            if self._port is not None:
                self._unindex_membership(group)

    # -- per-segment membership index (batched multicast delivery) ----------

    def _index_membership(self, group: str) -> None:
        for segment in self._node.segments:
            segment.index_group_member(self, group, self._port)

    def _unindex_membership(self, group: str) -> None:
        for segment in self._node.segments:
            segment.unindex_group_member(self, group, self._port)

    def on_datagram(self, handler: DatagramHandler) -> "UdpSocket":
        """Attach the receive callback; queued datagrams are flushed to it."""
        self._handler = handler
        if self.inbox:
            pending, self.inbox = self.inbox, []
            for datagram in pending:
                handler(datagram)
        return self

    # -- I/O ----------------------------------------------------------------

    def sendto(
        self, payload: bytes, destination: Endpoint, decode_hint: tuple | None = None
    ) -> None:
        """Send ``payload`` to a unicast or multicast endpoint.

        ``decode_hint`` is an optional ``(memo_key, decoded_form)`` pair:
        a sender that just *encoded* a structured message can seed the
        frame's :class:`FrameMemo` with it, so no receiver ever pays the
        decode (parse-once carried to the producer side).
        """
        if self._crashed:
            return
        self._ensure_open()
        if self._port is None:
            # Match OS behaviour: sending auto-binds to an ephemeral port.
            self.bind(self._node.udp.ephemeral_port())
        source = Endpoint(self._node.address, self._port)
        self._node.network.send_datagram(
            self._node, source, destination, bytes(payload), decode_hint=decode_hint
        )
        self.sent_count += 1

    def deliver(self, datagram: Datagram) -> None:
        """Called by the network when a datagram arrives for this socket."""
        if self._closed:
            return
        self.received_count += 1
        if self._handler is not None:
            self._handler(datagram)
        else:
            self.inbox.append(datagram)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._port is not None:
            self._node.udp.unregister(self, self._port)
            for group in self._groups:
                self._unindex_membership(group)
        self._groups.clear()

    def _ensure_open(self) -> None:
        if self._closed:
            raise SocketClosedError("operation on closed UDP socket")


class UdpStack:
    """The per-node UDP port table."""

    #: First ephemeral port handed out by :meth:`ephemeral_port`.
    EPHEMERAL_BASE = 49152

    def __init__(self, node: "Node"):
        self._node = node
        self._ports: dict[int, list[UdpSocket]] = {}
        self._reusable: set[int] = set()
        self._next_ephemeral = self.EPHEMERAL_BASE

    def socket(self) -> UdpSocket:
        return UdpSocket(self._node)

    def register(self, sock: UdpSocket, port: int, reuse: bool) -> None:
        holders = self._ports.get(port, [])
        if holders and not (reuse and port in self._reusable):
            raise PortInUseError(f"port {port} already bound on {self._node.name}")
        if reuse:
            self._reusable.add(port)
        self._ports.setdefault(port, []).append(sock)

    def unregister(self, sock: UdpSocket, port: int) -> None:
        holders = self._ports.get(port)
        if holders and sock in holders:
            holders.remove(sock)
            if not holders:
                del self._ports[port]
                self._reusable.discard(port)

    def ephemeral_port(self) -> int:
        while self._next_ephemeral in self._ports:
            self._next_ephemeral += 1
            if self._next_ephemeral > 65535:
                raise NotBoundError("ephemeral port space exhausted")
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def sockets_for(self, port: int) -> list[UdpSocket]:
        return list(self._ports.get(port, ()))

    def sockets_for_group(self, group: str, port: int) -> list[UdpSocket]:
        """Sockets bound to ``port`` that joined multicast ``group``."""
        return [s for s in self._ports.get(port, ()) if group in s.groups]

    def multicast_members(self):
        """Every (group, port, socket) membership on this node.

        Segments index these when a node is attached after its sockets
        already exist (bridging a gateway onto an additional LAN).
        """
        for port, sockets in self._ports.items():
            for sock in sockets:
                for group in sock.groups:
                    yield group, port, sock

    def bound_ports(self) -> list[int]:
        return sorted(self._ports)

    def crash(self) -> None:
        """Crash-stop teardown: every bound socket closes *as crashed*.

        Closing unregisters ports and unindexes multicast memberships, so
        frames already scheduled for delivery to these sockets are
        swallowed by :meth:`UdpSocket.deliver`'s closed guard — dropped
        exactly once, never delivered to a post-restart successor.  The
        crashed flag additionally makes sends from stale timers that still
        hold a dead socket vanish silently: a crashed process cannot raise
        into the surviving event loop.
        """
        for holders in list(self._ports.values()):
            for sock in list(holders):
                sock._crashed = True
                sock.close()


__all__ = [
    "UdpSocket",
    "UdpStack",
    "Datagram",
    "FrameMemo",
    "NullFrameMemo",
    "NULL_MEMO",
    "ParseCounter",
    "shared_decode",
    "MEMO_MISS",
    "ANY",
]

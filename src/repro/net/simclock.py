"""Virtual time and the discrete-event scheduler.

Every component of the simulated network shares one :class:`Scheduler`.
Time is an integer number of **microseconds** so that runs are exactly
reproducible (no floating point accumulation) and event ordering is total:
ties on the timestamp are broken by insertion sequence number.

The scheduler is a hierarchical **timer wheel** backed by an overflow
heap (see ARCHITECTURE.md "Performance architecture"):

* a near wheel of 256 slots, one per 1.024 ms granule (~262 ms horizon);
* a far wheel of 256 slots, one per 262 ms granule (~67 s horizon);
* a plain heap for anything beyond the far horizon.

Events due in the current granule sit in a small *ready* heap ordered by
the exact ``(time_us, seq)`` key, so the firing order is bit-identical to
the classic single-heap implementation the golden-trace tests compare
against.  Cancellation is lazy (tombstones are skipped when met) with a
compaction sweep once dead entries outnumber live ones; the live count
itself is maintained incrementally so :attr:`Scheduler.pending` is O(1).
"""

from __future__ import annotations

import heapq
from typing import Callable, Iterable

#: One millisecond expressed in the scheduler's microsecond unit.
MILLISECOND = 1_000
#: One second expressed in the scheduler's microsecond unit.
SECOND = 1_000_000

#: log2 of the near-wheel granule (1024 us).
_G0_BITS = 10
#: log2 of the far-wheel granule (262.144 ms).
_G1_BITS = _G0_BITS + 8
#: Slots per wheel level.
_SLOTS = 256
_MASK = _SLOTS - 1

#: Compaction runs when at least this many tombstones have accumulated
#: *and* they outnumber the live entries (dead fraction above one half).
_COMPACT_MIN_DEAD = 64


def us_to_ms(micros: int) -> float:
    """Convert integer microseconds to float milliseconds (for reporting)."""
    return micros / 1_000.0


def ms_to_us(millis: float) -> int:
    """Convert float milliseconds to the integer microsecond unit."""
    return int(round(millis * 1_000))


class Cancelled(Exception):
    """Raised internally when a cancelled event would have fired."""


class _Event:
    """One scheduled callback: an allocation-light slotted record.

    ``bucket`` is the wheel-slot list currently holding the entry (None
    while it sits in the ready or overflow heaps), which is what lets
    :meth:`Scheduler.reschedule` pull a timer out and reuse the record
    instead of tombstoning it.
    """

    __slots__ = ("time_us", "seq", "callback", "label", "cancelled", "fired", "bucket")

    def __init__(self, time_us: int, seq: int, callback: Callable[[], None], label: str):
        self.time_us = time_us
        self.seq = seq
        self.callback = callback
        self.label = label
        self.cancelled = False
        self.fired = False
        self.bucket: list | None = None


class EventHandle:
    """Opaque handle returned by :meth:`Scheduler.schedule`, usable to cancel."""

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _Event, scheduler: "Scheduler"):
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice — or cancelling
        an event that already fired — is a harmless no-op (a periodic
        task's stop() cancels the handle of the firing it is inside of)."""
        event = self._event
        if not event.cancelled and not event.fired:
            event.cancelled = True
            self._scheduler._note_cancel(event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_us(self) -> int:
        return self._event.time_us


class Scheduler:
    """A deterministic discrete-event scheduler over virtual microseconds.

    Usage::

        sched = Scheduler()
        sched.schedule(1_000, lambda: print("fires at t=1ms"))
        sched.run_until_idle()
    """

    def __init__(self) -> None:
        self._now_us = 0
        self._seq = 0
        self._events_fired = 0
        #: Live (scheduled, not yet fired or cancelled) event count, kept
        #: current on schedule/cancel/fire so :attr:`pending` is O(1).
        self._live = 0
        #: Cancelled entries still resident in some structure.
        self._dead = 0
        #: Compaction sweeps performed (benchmarks report this).
        self.compactions = 0
        #: When set to a list, every fired event appends
        #: ``(label, time_us, seq)`` — the golden-trace tests' probe.
        self.fire_log: list | None = None
        # Entries with granule <= anchor, ordered exactly by (time_us, seq).
        self._ready: list[tuple[int, int, _Event]] = []
        #: Absolute near-granule the ready set is anchored at.  Only ever
        #: advances, and only when the ready heap is empty.
        self._anchor = 0
        self._l0: list[list[_Event] | None] = [None] * _SLOTS
        self._occ0 = 0  # occupancy bitmap, bit i <=> slot i non-empty
        self._l1: list[list[_Event] | None] = [None] * _SLOTS
        self._occ1 = 0
        self._overflow: list[tuple[int, int, _Event]] = []

    # -- introspection -------------------------------------------------------

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return us_to_ms(self._now_us)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not yet fired) queued events."""
        return self._live

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        delay_us: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay_us`` after the current time.

        A negative delay is clamped to zero (fires "now", after any events
        already queued for the current instant).
        """
        if delay_us < 0:
            delay_us = 0
        event = _Event(self._now_us + int(delay_us), self._seq, callback, label)
        self._seq += 1
        self._live += 1
        self._insert(event)
        return EventHandle(event, self)

    def schedule_at(
        self,
        time_us: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time_us - self._now_us, callback, label=label)

    def post(self, delay_us: int, callback: Callable[[], None], label: str = "") -> None:
        """Fire-and-forget :meth:`schedule`: no cancellation handle.

        The datagram-delivery paths post one event per frame/socket and
        never cancel them, so skipping the handle allocation is a real
        saving at hundreds of thousands of deliveries per run.  Sequencing
        is identical to :meth:`schedule`.
        """
        if delay_us < 0:
            delay_us = 0
        event = _Event(self._now_us + int(delay_us), self._seq, callback, label)
        self._seq += 1
        self._live += 1
        self._insert(event)

    def reschedule(self, handle: EventHandle, delay_us: int) -> EventHandle:
        """Re-arm a pending event ``delay_us`` from now (timer restart).

        When the entry still sits in a wheel slot this reuses the record in
        place — no tombstone, no allocation.  Entries already promoted to
        the ready heap (or parked in the overflow heap) fall back to
        cancel-plus-schedule.  Either way the event is sequenced exactly as
        a freshly scheduled one would be.
        """
        event = handle._event
        if event.cancelled or event.fired:
            return self.schedule(delay_us, event.callback, label=event.label)
        bucket = event.bucket
        if bucket is None:
            handle.cancel()
            return self.schedule(delay_us, event.callback, label=event.label)
        bucket.remove(event)
        if not bucket:
            gran = event.time_us >> _G0_BITS
            idx = gran & _MASK
            if self._l0[idx] is bucket:
                self._occ0 &= ~(1 << idx)
            else:
                idx = (gran >> 8) & _MASK
                if self._l1[idx] is bucket:
                    self._occ1 &= ~(1 << idx)
        if delay_us < 0:
            delay_us = 0
        event.time_us = self._now_us + int(delay_us)
        event.seq = self._seq
        self._seq += 1
        event.bucket = None
        self._insert(event)
        return handle

    def _note_cancel(self, event: _Event) -> None:
        """Bookkeeping for a first-time cancellation of a queued event."""
        self._live -= 1
        self._dead += 1
        if self._dead >= _COMPACT_MIN_DEAD and self._dead > self._live:
            self._compact()

    # -- wheel internals -----------------------------------------------------

    def _insert(self, event: _Event) -> None:
        """Place an entry in ready / near wheel / far wheel / overflow."""
        gran = event.time_us >> _G0_BITS
        delta = gran - self._anchor
        if delta <= 0:
            heapq.heappush(self._ready, (event.time_us, event.seq, event))
        elif delta < _SLOTS:
            idx = gran & _MASK
            bucket = self._l0[idx]
            if bucket is None:
                bucket = self._l0[idx] = []
            if not bucket:
                self._occ0 |= 1 << idx
            bucket.append(event)
            event.bucket = bucket
        elif (gran >> 8) - (self._anchor >> 8) < _SLOTS:
            idx = (gran >> 8) & _MASK
            bucket = self._l1[idx]
            if bucket is None:
                bucket = self._l1[idx] = []
            if not bucket:
                self._occ1 |= 1 << idx
            bucket.append(event)
            event.bucket = bucket
        else:
            heapq.heappush(self._overflow, (event.time_us, event.seq, event))

    @staticmethod
    def _next_bit(mask: int, start: int) -> int:
        """Circular distance from ``start`` to the next set bit of ``mask``.

        ``mask`` must be non-zero.  Returns an offset in [0, 256).
        """
        m = mask >> start
        if m:
            return (m & -m).bit_length() - 1
        m = mask & ((1 << start) - 1)
        return _SLOTS - start + (m & -m).bit_length() - 1

    def _drain_l0(self, gran: int) -> None:
        """Promote one near-wheel slot into the (empty) ready heap."""
        idx = gran & _MASK
        bucket = self._l0[idx]
        self._l0[idx] = None
        self._occ0 &= ~(1 << idx)
        self._anchor = gran
        ready = self._ready
        for event in bucket:
            if event.cancelled:
                self._dead -= 1
                continue
            event.bucket = None
            ready.append((event.time_us, event.seq, event))
        heapq.heapify(ready)

    def _pour_l1(self, l1_gran: int) -> None:
        """Cascade one far-wheel slot down into the near wheel / ready."""
        idx = l1_gran & _MASK
        if not (self._occ1 & (1 << idx)):
            return
        bucket = self._l1[idx]
        self._l1[idx] = None
        self._occ1 &= ~(1 << idx)
        for event in bucket:
            if event.cancelled:
                self._dead -= 1
                continue
            event.bucket = None
            self._insert(event)

    def _pour_overflow(self, l1_gran: int) -> None:
        """Move overflow entries due within ``l1_gran`` into the wheels."""
        overflow = self._overflow
        while overflow and (overflow[0][0] >> _G1_BITS) <= l1_gran:
            _, _, event = heapq.heappop(overflow)
            if event.cancelled:
                self._dead -= 1
                continue
            self._insert(event)

    def _refill_ready(self) -> bool:
        """Advance the wheels until the ready heap has a live entry.

        Returns False when nothing is pending anywhere.  The anchor only
        moves to the earliest granule that still holds content, so firing
        order is globally exact.
        """
        while not self._ready:
            anchor = self._anchor
            c0_gran = None
            if self._occ0:
                c0_gran = anchor + self._next_bit(self._occ0, anchor & _MASK)
            if c0_gran is not None and (c0_gran >> 8) == (anchor >> 8):
                # Near content within the current far-granule: nothing in
                # the far wheel or overflow can precede it.
                self._drain_l0(c0_gran)
                continue
            anchor_l1 = anchor >> 8
            target = None
            if c0_gran is not None:
                target = c0_gran >> 8
            if self._occ1:
                c1 = anchor_l1 + self._next_bit(self._occ1, anchor_l1 & _MASK)
                target = c1 if target is None else min(target, c1)
            if self._overflow:
                ov = self._overflow[0][0] >> _G1_BITS
                target = ov if target is None else min(target, ov)
            if target is None:
                return False
            # Enter the target far-granule: pour its far-wheel slot and any
            # overflow entries due inside it, then search the near wheel.
            self._anchor = target << 8
            self._pour_l1(target)
            self._pour_overflow(target)
            # Poured entries due in the anchor granule itself went straight
            # to the ready heap — but the near wheel may *already* hold
            # entries for that same granule (scheduled while the old window
            # covered it).  Merge them now, or a poured late event would
            # fire before an earlier near-wheel one.
            anchor_idx = self._anchor & _MASK
            if self._occ0 & (1 << anchor_idx):
                self._drain_l0(self._anchor)
        return True

    def _compact(self) -> None:
        """Sweep tombstones out of every structure (dead fraction > 1/2)."""
        self.compactions += 1
        self._ready = [t for t in self._ready if not t[2].cancelled]
        heapq.heapify(self._ready)
        for slots, occ_attr in ((self._l0, "_occ0"), (self._l1, "_occ1")):
            occ = 0
            for idx in range(_SLOTS):
                bucket = slots[idx]
                if not bucket:
                    continue
                bucket[:] = [e for e in bucket if not e.cancelled]
                if bucket:
                    occ |= 1 << idx
                else:
                    slots[idx] = None
            setattr(self, occ_attr, occ)
        self._overflow = [t for t in self._overflow if not t[2].cancelled]
        heapq.heapify(self._overflow)
        self._dead = 0

    # -- the run loop --------------------------------------------------------

    def _peek_time(self) -> int | None:
        """Timestamp of the next live event, skipping tombstones."""
        while True:
            if not self._ready and not self._refill_ready():
                return None
            time_us, _, event = self._ready[0]
            if event.cancelled:
                heapq.heappop(self._ready)
                self._dead -= 1
                continue
            return time_us

    def _pop_next(self) -> _Event | None:
        while True:
            if not self._ready and not self._refill_ready():
                return None
            _, _, event = heapq.heappop(self._ready)
            if event.cancelled:
                self._dead -= 1
                continue
            return event

    def step(self) -> bool:
        """Run the single next event. Returns False if the queue was empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now_us = event.time_us
        self._events_fired += 1
        self._live -= 1
        event.fired = True
        if self.fire_log is not None:
            self.fire_log.append((event.label, event.time_us, event.seq))
        event.callback()
        return True

    def run_until(self, time_us: int) -> None:
        """Run all events with timestamp <= ``time_us``; advance time there."""
        while True:
            head = self._peek_time()
            if head is None or head > time_us:
                break
            self.step()
        if self._now_us < time_us:
            self._now_us = time_us

    def run_until_idle(self, limit_us: int | None = None, max_events: int = 10_000_000) -> None:
        """Run until no events remain, the time limit, or the event budget.

        ``limit_us`` is an absolute virtual-time ceiling; events scheduled
        beyond it stay queued.  ``max_events`` guards against runaway loops in
        tests (periodic advertisements are the usual culprit).
        """
        fired = 0
        while fired < max_events:
            head = self._peek_time()
            if head is None:
                return
            if limit_us is not None and head > limit_us:
                self._now_us = max(self._now_us, limit_us)
                return
            self.step()
            fired += 1
        raise RuntimeError(f"run_until_idle exceeded {max_events} events; runaway timer?")

    def run_for(self, delay_us: int) -> None:
        """Run events for a relative window of virtual time."""
        self.run_until(self._now_us + delay_us)

    def drain(self, handles: Iterable[EventHandle]) -> None:
        """Cancel a batch of handles (convenience for component teardown)."""
        for handle in handles:
            handle.cancel()


class Timer:
    """A restartable one-shot timer bound to a scheduler.

    Components use this for protocol timeouts (e.g. an SLP user agent waiting
    for unicast replies after a multicast request).  Re-arming a running
    timer goes through :meth:`Scheduler.reschedule`, which reuses the
    scheduled entry instead of tombstoning it.
    """

    def __init__(self, scheduler: Scheduler, callback: Callable[[], None]):
        self._scheduler = scheduler
        self._callback = callback
        self._handle: EventHandle | None = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, delay_us: int) -> None:
        """Arm (or re-arm) the timer ``delay_us`` from now."""
        if self._handle is not None and not self._handle.cancelled:
            self.restart(delay_us)
            return
        self._handle = self._scheduler.schedule(delay_us, self._fire, label="timer")

    def restart(self, delay_us: int) -> None:
        """Re-arm a running timer, reusing its scheduler entry when possible."""
        if self._handle is None or self._handle.cancelled:
            self.start(delay_us)
            return
        self._handle = self._scheduler.reschedule(self._handle, delay_us)

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """Repeatedly runs a callback with a fixed virtual-time period.

    Used for service advertisement loops (SSDP NOTIFY, SLP SAAdvert, Jini
    announcements).  The first firing happens after ``initial_delay_us``.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        period_us: int,
        callback: Callable[[], None],
        initial_delay_us: int | None = None,
        max_firings: int | None = None,
    ):
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self._scheduler = scheduler
        self._period_us = period_us
        self._callback = callback
        self._max_firings = max_firings
        self._firings = 0
        self._handle: EventHandle | None = None
        self._stopped = False
        first = period_us if initial_delay_us is None else initial_delay_us
        self._handle = scheduler.schedule(first, self._fire, label="periodic")

    @property
    def firings(self) -> int:
        return self._firings

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self._stopped:
            return
        # The handle points at the event that is firing right now; drop it
        # so a stop() from inside the callback does not cancel a dead event.
        self._handle = None
        self._firings += 1
        self._callback()
        if self._max_firings is not None and self._firings >= self._max_firings:
            self.stop()
            return
        if not self._stopped:
            self._handle = self._scheduler.schedule(self._period_us, self._fire, label="periodic")


__all__ = [
    "MILLISECOND",
    "SECOND",
    "Scheduler",
    "EventHandle",
    "Timer",
    "PeriodicTask",
    "us_to_ms",
    "ms_to_us",
]

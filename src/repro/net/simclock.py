"""Virtual time and the discrete-event scheduler.

Every component of the simulated network shares one :class:`Scheduler`.
Time is an integer number of **microseconds** so that runs are exactly
reproducible (no floating point accumulation) and event ordering is total:
ties on the timestamp are broken by insertion sequence number.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterable

#: One millisecond expressed in the scheduler's microsecond unit.
MILLISECOND = 1_000
#: One second expressed in the scheduler's microsecond unit.
SECOND = 1_000_000


def us_to_ms(micros: int) -> float:
    """Convert integer microseconds to float milliseconds (for reporting)."""
    return micros / 1_000.0


def ms_to_us(millis: float) -> int:
    """Convert float milliseconds to the integer microsecond unit."""
    return int(round(millis * 1_000))


class Cancelled(Exception):
    """Raised internally when a cancelled event would have fired."""


@dataclass(order=True)
class _ScheduledEvent:
    time_us: int
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    label: str = field(default="", compare=False)


class EventHandle:
    """Opaque handle returned by :meth:`Scheduler.schedule`, usable to cancel."""

    __slots__ = ("_event", "_scheduler")

    def __init__(self, event: _ScheduledEvent, scheduler: "Scheduler"):
        self._event = event
        self._scheduler = scheduler

    def cancel(self) -> None:
        """Prevent the event from firing; cancelling twice is harmless."""
        if not self._event.cancelled:
            self._event.cancelled = True
            self._scheduler._note_cancel(self._event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_us(self) -> int:
        return self._event.time_us


class Scheduler:
    """A deterministic discrete-event scheduler over virtual microseconds.

    Usage::

        sched = Scheduler()
        sched.schedule(1_000, lambda: print("fires at t=1ms"))
        sched.run_until_idle()
    """

    def __init__(self) -> None:
        self._now_us = 0
        self._seq = 0
        self._queue: list[_ScheduledEvent] = []
        self._events_fired = 0
        #: Live (scheduled, not yet fired or cancelled) event count, kept
        #: current on schedule/cancel/fire so :attr:`pending` is O(1).
        self._live = 0

    @property
    def now_us(self) -> int:
        """Current virtual time in microseconds."""
        return self._now_us

    @property
    def now_ms(self) -> float:
        """Current virtual time in milliseconds."""
        return us_to_ms(self._now_us)

    @property
    def events_fired(self) -> int:
        """Total number of events executed so far (for diagnostics)."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of live (not cancelled, not yet fired) queued events."""
        return self._live

    def _note_cancel(self, event: _ScheduledEvent) -> None:
        """Bookkeeping for a first-time cancellation of a queued event."""
        self._live -= 1

    def schedule(
        self,
        delay_us: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay_us`` after the current time.

        A negative delay is clamped to zero (fires "now", after any events
        already queued for the current instant).
        """
        if delay_us < 0:
            delay_us = 0
        event = _ScheduledEvent(self._now_us + int(delay_us), self._seq, callback, label=label)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return EventHandle(event, self)

    def schedule_at(
        self,
        time_us: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute virtual time."""
        return self.schedule(time_us - self._now_us, callback, label=label)

    def _pop_next(self) -> _ScheduledEvent | None:
        while self._queue:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the single next event. Returns False if the queue was empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now_us = event.time_us
        self._events_fired += 1
        self._live -= 1
        event.callback()
        return True

    def run_until(self, time_us: int) -> None:
        """Run all events with timestamp <= ``time_us``; advance time there."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time_us > time_us:
                break
            self.step()
        if self._now_us < time_us:
            self._now_us = time_us

    def run_until_idle(self, limit_us: int | None = None, max_events: int = 10_000_000) -> None:
        """Run until no events remain, the time limit, or the event budget.

        ``limit_us`` is an absolute virtual-time ceiling; events scheduled
        beyond it stay queued.  ``max_events`` guards against runaway loops in
        tests (periodic advertisements are the usual culprit).
        """
        fired = 0
        while fired < max_events:
            event = None
            while self._queue:
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                event = head
                break
            if event is None:
                return
            if limit_us is not None and event.time_us > limit_us:
                self._now_us = max(self._now_us, limit_us)
                return
            self.step()
            fired += 1
        raise RuntimeError(f"run_until_idle exceeded {max_events} events; runaway timer?")

    def run_for(self, delay_us: int) -> None:
        """Run events for a relative window of virtual time."""
        self.run_until(self._now_us + delay_us)

    def drain(self, handles: Iterable[EventHandle]) -> None:
        """Cancel a batch of handles (convenience for component teardown)."""
        for handle in handles:
            handle.cancel()


class Timer:
    """A restartable one-shot timer bound to a scheduler.

    Components use this for protocol timeouts (e.g. an SLP user agent waiting
    for unicast replies after a multicast request).
    """

    def __init__(self, scheduler: Scheduler, callback: Callable[[], None]):
        self._scheduler = scheduler
        self._callback = callback
        self._handle: EventHandle | None = None

    @property
    def armed(self) -> bool:
        return self._handle is not None and not self._handle.cancelled

    def start(self, delay_us: int) -> None:
        """Arm (or re-arm) the timer ``delay_us`` from now."""
        self.cancel()
        self._handle = self._scheduler.schedule(delay_us, self._fire, label="timer")

    def cancel(self) -> None:
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self._callback()


class PeriodicTask:
    """Repeatedly runs a callback with a fixed virtual-time period.

    Used for service advertisement loops (SSDP NOTIFY, SLP SAAdvert, Jini
    announcements).  The first firing happens after ``initial_delay_us``.
    """

    def __init__(
        self,
        scheduler: Scheduler,
        period_us: int,
        callback: Callable[[], None],
        initial_delay_us: int | None = None,
        max_firings: int | None = None,
    ):
        if period_us <= 0:
            raise ValueError("period_us must be positive")
        self._scheduler = scheduler
        self._period_us = period_us
        self._callback = callback
        self._max_firings = max_firings
        self._firings = 0
        self._handle: EventHandle | None = None
        self._stopped = False
        first = period_us if initial_delay_us is None else initial_delay_us
        self._handle = scheduler.schedule(first, self._fire, label="periodic")

    @property
    def firings(self) -> int:
        return self._firings

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stop(self) -> None:
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _fire(self) -> None:
        if self._stopped:
            return
        self._firings += 1
        self._callback()
        if self._max_firings is not None and self._firings >= self._max_firings:
            self.stop()
            return
        if not self._stopped:
            self._handle = self._scheduler.schedule(self._period_us, self._fire, label="periodic")


__all__ = [
    "MILLISECOND",
    "SECOND",
    "Scheduler",
    "EventHandle",
    "Timer",
    "PeriodicTask",
    "us_to_ms",
    "ms_to_us",
]

"""IPv4-style addressing for the simulated LAN.

Addresses are dotted-quad strings (``"192.168.1.10"``); endpoints pair an
address with a port.  The helpers here validate addresses and classify the
multicast range (224.0.0.0/4), which is what SDP detection relies on.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple

from .errors import AddressError

#: Start of the IPv4 multicast block (224.0.0.0/4).
_MULTICAST_FIRST_OCTET_LOW = 224
_MULTICAST_FIRST_OCTET_HIGH = 239

#: Loopback address, usable on every node.
LOOPBACK = "127.0.0.1"

#: Wildcard bind address.
ANY = "0.0.0.0"

#: Broadcast to all nodes on the LAN segment.
BROADCAST = "255.255.255.255"


@lru_cache(maxsize=65536)
def parse_ipv4(address: str) -> tuple[int, int, int, int]:
    """Parse and validate a dotted-quad address, returning its four octets.

    Raises :class:`AddressError` for anything that is not a well-formed IPv4
    literal.  Results are memoized: the delivery hot path classifies the
    same few thousand host/group strings millions of times, so each parses
    once (failures are not cached and re-raise).
    """
    if not isinstance(address, str):
        raise AddressError(f"address must be a string, got {type(address).__name__}")
    parts = address.split(".")
    if len(parts) != 4:
        raise AddressError(f"malformed IPv4 address: {address!r}")
    octets = []
    for part in parts:
        if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
            raise AddressError(f"malformed IPv4 octet {part!r} in {address!r}")
        value = int(part)
        if value > 255:
            raise AddressError(f"IPv4 octet out of range in {address!r}")
        octets.append(value)
    return tuple(octets)  # type: ignore[return-value]


def is_valid_ipv4(address: str) -> bool:
    """True when ``address`` parses as a dotted-quad IPv4 literal."""
    try:
        parse_ipv4(address)
    except AddressError:
        return False
    return True


def is_multicast(address: str) -> bool:
    """True when ``address`` falls within 224.0.0.0/4."""
    first = parse_ipv4(address)[0]
    return _MULTICAST_FIRST_OCTET_LOW <= first <= _MULTICAST_FIRST_OCTET_HIGH


def is_loopback(address: str) -> bool:
    """True for the 127.0.0.0/8 block."""
    return parse_ipv4(address)[0] == 127


def is_broadcast(address: str) -> bool:
    return address == BROADCAST


def validate_port(port: int) -> int:
    """Validate a UDP/TCP port number and return it."""
    if not isinstance(port, int) or isinstance(port, bool):
        raise AddressError(f"port must be an int, got {port!r}")
    if not 0 < port <= 65535:
        raise AddressError(f"port out of range: {port}")
    return port


class Endpoint(NamedTuple):
    """An (address, port) pair; the unit of source/destination on the LAN."""

    host: str
    port: int

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return f"{self.host}:{self.port}"

    @classmethod
    def parse(cls, text: str) -> "Endpoint":
        """Parse ``"host:port"`` into an Endpoint."""
        host, sep, port = text.rpartition(":")
        if not sep or not port.isdigit():
            raise AddressError(f"malformed endpoint: {text!r}")
        parse_ipv4(host)
        return cls(host, validate_port(int(port)))

    @property
    def is_multicast(self) -> bool:
        return is_multicast(self.host)


class AddressAllocator:
    """Hands out sequential host addresses for test topologies.

    A three-octet prefix (``"192.168.1"``) allocates a /24 — 254 hosts, the
    classic home-LAN segment.  A two-octet prefix (``"10.7"``) allocates a
    /16 — enough for the multi-thousand-node metro scenarios, where a /24
    per segment is the binding constraint.
    """

    def __init__(self, prefix: str = "192.168.1"):
        parts = prefix.split(".")
        if len(parts) not in (2, 3) or not all(
            p.isdigit() and int(p) <= 255 for p in parts
        ):
            raise AddressError(f"prefix must be two or three octets, got {prefix!r}")
        self._prefix = prefix
        self._wide = len(parts) == 2
        self._next_host = 1

    @property
    def capacity(self) -> int:
        """Total hosts this allocator can hand out."""
        return 255 * 254 if self._wide else 254

    @property
    def remaining(self) -> int:
        """Hosts still available."""
        return self.capacity - (self._next_host - 1)

    def allocate(self) -> str:
        """Return the next unused address in the subnet."""
        if self.remaining <= 0:
            mask = "0.0/16" if self._wide else "0/24"
            raise AddressError(f"subnet {self._prefix}.{mask} exhausted")
        if self._wide:
            hi, lo = divmod(self._next_host - 1, 254)
            address = f"{self._prefix}.{hi}.{lo + 1}"
        else:
            address = f"{self._prefix}.{self._next_host}"
        self._next_host += 1
        return address


__all__ = [
    "Endpoint",
    "AddressAllocator",
    "LOOPBACK",
    "ANY",
    "BROADCAST",
    "parse_ipv4",
    "is_valid_ipv4",
    "is_multicast",
    "is_loopback",
    "is_broadcast",
    "validate_port",
]

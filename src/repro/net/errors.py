"""Exception hierarchy for the simulated network substrate."""


class NetworkError(Exception):
    """Base class for all simulated-network errors."""


class AddressError(NetworkError):
    """Raised for malformed or unroutable addresses."""


class PortInUseError(NetworkError):
    """Raised when binding a port that is already bound on the node."""


class NotBoundError(NetworkError):
    """Raised when sending from a socket that is not bound to a port."""


class SocketClosedError(NetworkError):
    """Raised when using a socket or connection after it was closed."""


class ConnectionRefusedError(NetworkError):
    """Raised when no listener accepts a TCP connection attempt."""


class NoRouteError(NetworkError):
    """Raised when a unicast destination is not attached to the network."""

"""Scheduled fault injection: cut/heal links, partition segments, degrade
loss — deterministically, from one declarative plan.

A :class:`FaultPlan` is an ordered list of :class:`FaultEvent` records.
Each event names an *action* and the edge it applies to:

===========  =======================  ========================================
action       applies to               effect
===========  =======================  ========================================
``cut``      ``link=(a, b)``          link goes administratively down; routed
                                      unicast reroutes or drops, frames in
                                      flight on the link drop at their trunk
                                      event (never duplicate)
``heal``     ``link=(a, b)``          link comes back up; plans rebuild
``isolate``  ``segment="name"``       every incident link cut (partition)
``restore``  ``segment="name"``       every incident link healed
``degrade``  ``segment`` or ``link``  install a seeded loss model (``rate``,
                                      ``model`` = ``bernoulli``/``gilbert``)
``clear``    ``segment`` or ``link``  remove the loss model
``crash``    ``host="address"``       crash-stop the host: in-flight frames
                                      addressed to it drop exactly once and
                                      its transport state dies (see
                                      :meth:`Network.crash_node`)
``restart``  ``host="address"``       bring a crashed host back with empty
                                      stacks and a fresh session-id block
===========  =======================  ========================================

``crash``/``restart`` act on the *network* level only — a plan restores
transport, not application state.  World-level ``Crash``/``Restart``
workload steps additionally rebuild the INDISS instance and re-federate
it; the chaos sweep drives those for gateways and this plan for plain
hosts.

Determinism contract: executing a plan arms the network's adversity layer
(:meth:`Network.enable_faults`) *before* any traffic the caller sends, each
``degrade`` draws from a dedicated per-edge RNG stream seeded by
``(seed + seed_offset, edge-name)``, and every state flip happens at an
exact virtual time — so the same seed and the same plan replay the same
outcome, run after run and engine after engine.

Under the partitioned engine a plan cannot self-schedule (a timed topology
mutation inside one shard's window would race the other shards): drive
faults from ``WorldSpec`` ``Fault``/``Heal`` workload steps instead, which
apply at barrier-synchronized step boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import NetworkError
from .latency import make_loss_model
from .network import Network

_ACTIONS = ("cut", "heal", "isolate", "restore", "degrade", "clear", "crash", "restart")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: ``action`` applied to an edge (or host) at
    ``at_us``."""

    at_us: int
    action: str
    link: tuple[str, str] | None = None
    segment: str | None = None
    host: str | None = None
    rate: float = 0.0
    model: str = "bernoulli"
    seed_offset: int = 0

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r} (expected one of {_ACTIONS})"
            )
        if self.at_us < 0:
            raise ValueError("fault time must be >= 0")
        if self.action in ("cut", "heal"):
            if self.link is None:
                raise ValueError(f"{self.action!r} needs link=(a, b)")
        elif self.action in ("isolate", "restore"):
            if self.segment is None:
                raise ValueError(f"{self.action!r} needs segment=...")
        elif self.action in ("crash", "restart"):
            if self.host is None:
                raise ValueError(f"{self.action!r} needs host=\"address\"")
        else:  # degrade / clear
            if (self.link is None) == (self.segment is None):
                raise ValueError(
                    f"{self.action!r} needs exactly one of link=(a, b) or segment=..."
                )
        if self.action == "degrade" and not 0.0 <= self.rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {self.rate}")


def execute_fault(network: Network, event: FaultEvent, seed: int = 0) -> None:
    """Apply one fault event to the network right now (both engines)."""
    action = event.action
    if action == "cut":
        network.cut_link(*event.link)
    elif action == "heal":
        network.heal_link(*event.link)
    elif action == "isolate":
        network.isolate_segment(event.segment)
    elif action == "restore":
        network.heal_segment(event.segment)
    elif action == "degrade":
        if event.link is not None:
            edge = "-".join(sorted(event.link))
            model = make_loss_model(
                event.model, event.rate, seed + event.seed_offset, edge
            )
            network.set_link_loss(event.link[0], event.link[1], model)
        else:
            model = make_loss_model(
                event.model, event.rate, seed + event.seed_offset, event.segment
            )
            network.set_segment_loss(event.segment, model)
    elif action == "crash":
        node = network.node_at(event.host)
        if node is None:
            raise NetworkError(f"cannot crash {event.host!r}: no such attached host")
        network.crash_node(node)
    elif action == "restart":
        node = network.crashed_node(event.host)
        if node is None:
            raise NetworkError(f"cannot restart {event.host!r}: not crashed")
        network.restart_node(node)
    else:  # clear
        if event.link is not None:
            network.set_link_loss(event.link[0], event.link[1], None)
        else:
            network.set_segment_loss(event.segment, None)


@dataclass
class FaultPlan:
    """An ordered schedule of fault events, executable on one network."""

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0
    executed: list[tuple[int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = tuple(sorted(self.events, key=lambda e: e.at_us))

    def schedule(self, network: Network) -> None:
        """Post every event on the single-engine scheduler.

        Arms the adversity layer immediately, so frames sent before the
        first cut already carry in-flight drop semantics.  Refused under
        the partitioned engine — use ``Fault``/``Heal`` workload steps,
        whose step-boundary application is barrier-synchronized.
        """
        if network.engine is not None:
            raise NetworkError(
                "FaultPlan.schedule is single-engine only: a timed topology "
                "mutation inside one shard's window would race the others. "
                "Drive faults from WorldSpec Fault/Heal workload steps, "
                "which apply at barrier-synchronized step boundaries."
            )
        network.enable_faults()
        now = network.scheduler.now_us
        for event in self.events:
            if event.at_us < now:
                raise NetworkError(
                    f"fault at t={event.at_us}us is already in the past (now={now}us)"
                )

            def fire(event: FaultEvent = event) -> None:
                execute_fault(network, event, seed=self.seed)
                self.executed.append((event.at_us, event.action))

            network.scheduler.post(event.at_us - now, fire, label="fault")


__all__ = ["FaultEvent", "FaultPlan", "execute_fault"]

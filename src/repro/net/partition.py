"""District partitioning: the parallel engine's partition key.

A **district** is a maximal group of segments connected only through
:class:`~repro.net.segment.Bridge`-style multi-homing: two segments merge
into one district whenever some node is attached to both.  Router
:class:`~repro.net.segment.Link`s do *not* merge districts — a link is a
latency-bearing point-to-point edge, and that latency is exactly what
makes conservative parallel simulation possible: a frame sent across a
link at time *t* cannot be delivered before ``t + link_latency``, so a
partition may safely run ahead of its neighbours by the minimum inbound
link latency (the **lookahead horizon**).

Every existing bridge-coupled scenario (the metro/media/campus families)
collapses to a single district — their inter-segment gateways are bridged
hosts, so events on any segment can affect any other within one LAN
delay.  Worlds built for the partitioned engine connect districts with
links only (see ``district_grid``), which is what yields real parallelism.

This module is pure topology math over names and tuples, shared by three
consumers: the live :class:`~repro.net.Network` (delivery-time partition
checks), the parallel engine (shard construction), and the spec-level
analysis behind ``python -m repro.world describe`` (no network is built).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence


class PartitionMap:
    """Immutable segment -> partition assignment plus the cross links.

    ``segments`` lists each partition's segment names; partitions are
    numbered by the declaration order of their earliest segment, and the
    member lists preserve declaration order too, so the numbering is
    deterministic for a given topology-construction order.
    """

    __slots__ = ("segments", "pid_of", "cross_links", "lookahead_us")

    def __init__(
        self,
        groups: Sequence[Sequence[str]],
        cross_links: Sequence[tuple[str, str, int]] = (),
    ):
        self.segments: tuple[tuple[str, ...], ...] = tuple(
            tuple(group) for group in groups
        )
        self.pid_of: dict[str, int] = {
            name: pid for pid, group in enumerate(self.segments) for name in group
        }
        self.cross_links: tuple[tuple[str, str, int], ...] = tuple(cross_links)
        #: Conservative lookahead: the minimum latency of any cross-partition
        #: link.  ``None`` when partitions are mutually unreachable (they may
        #: run fully independently).
        self.lookahead_us: Optional[int] = min(
            (latency for _, _, latency in self.cross_links), default=None
        )

    @property
    def count(self) -> int:
        return len(self.segments)

    def partition_of(self, segment_name: str) -> int:
        return self.pid_of[segment_name]

    def describe(self, hosts_of: Optional[dict[int, list[str]]] = None) -> str:
        """Human-readable rendering (the CLI's ``describe`` block)."""
        lines = [f"partitions: {self.count}"]
        if self.lookahead_us is not None:
            lines[0] += f" (lookahead {self.lookahead_us} us)"
        elif self.count > 1:
            lines[0] += " (no cross links: partitions are independent)"
        for pid, group in enumerate(self.segments):
            line = f"  district {pid}: segments {', '.join(group)}"
            if hosts_of:
                hosts = hosts_of.get(pid, [])
                shown = ", ".join(hosts[:6])
                if len(hosts) > 6:
                    shown += f", ... ({len(hosts)} hosts)"
                line += f" | hosts {shown}" if hosts else " | no spec hosts"
            lines.append(line)
        for a, b, latency in self.cross_links:
            lines.append(f"  cross link: {a} <-> {b} ({latency} us)")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PartitionMap(count={self.count}, lookahead_us={self.lookahead_us})"


def compute_partition_map(
    segment_names: Sequence[str],
    bridge_groups: Iterable[Sequence[str]],
    links: Iterable[tuple[str, str, int]],
) -> PartitionMap:
    """Union-find over segments: merge every bridge group, then split the
    link set into intra-partition (ignored) and cross-partition edges.

    ``segment_names`` must be in declaration order — it fixes the
    deterministic partition numbering.
    """
    order = {name: i for i, name in enumerate(segment_names)}
    parent = {name: name for name in segment_names}

    def find(name: str) -> str:
        root = name
        while parent[root] != root:
            root = parent[root]
        while parent[name] != root:
            parent[name], name = root, parent[name]
        return root

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra == rb:
            return
        # Keep the earliest-declared segment as the root for determinism.
        if order[ra] > order[rb]:
            ra, rb = rb, ra
        parent[rb] = ra

    for group in bridge_groups:
        group = [name for name in group if name in parent]
        for name in group[1:]:
            union(group[0], name)

    members: dict[str, list[str]] = {}
    for name in segment_names:
        members.setdefault(find(name), []).append(name)
    roots = sorted(members, key=lambda root: order[root])
    groups = [members[root] for root in roots]
    pid_of = {name: pid for pid, group in enumerate(groups) for name in group}

    cross = []
    for a, b, latency in links:
        if a in pid_of and b in pid_of and pid_of[a] != pid_of[b]:
            cross.append((a, b, latency))
    return PartitionMap(groups, cross)


def network_partition_map(network) -> PartitionMap:
    """The live network's partition map (bridged nodes merge segments)."""
    bridge_groups = [
        [segment.name for segment in node.segments]
        for node in network.nodes
        if len(node.segments) > 1
    ]
    return compute_partition_map(
        list(network.segments), bridge_groups, network.router.links()
    )


__all__ = ["PartitionMap", "compute_partition_map", "network_partition_map"]

"""Human-readable rendering of captured wire traffic.

``Network(capture=True)`` records every message; this module renders the
trace the way the paper's Fig. 4 presents an exchange — timestamped lines
with a best-effort protocol tag, derived from the IANA port mapping and
the payload's first bytes.
"""

from __future__ import annotations

from .network import Network, TraceRecord


#: Registrar unicast op tags (ports are hardcoded here because ``net``
#: must not import ``sdp``/``federation`` — they import ``net``).
_JINI_REGISTRAR_OPS = {
    0x10: "register",
    0x11: "lookup",
    0x12: "unregister",
    0x13: "renew",
    0x20: "ok",
    0x21: "items",
    0x2F: "error",
}


def classify_payload(record: TraceRecord) -> str:
    """Best-effort protocol tag for one trace record.

    Port-keyed protocols are matched before first-byte heuristics: a
    Jini announcement also starts with ``\\x02`` (the SLPv2 version
    byte), so the SLP check must not see port-4160 traffic.
    """
    payload = record.payload
    port = record.destination.port
    if port == 4160:  # Jini multicast discovery (jini-announce/jini-request)
        if payload[:1] == b"\x01":
            return "Jini request"
        if payload[:1] == b"\x02":
            return "Jini announcement"
        return "Jini discovery"
    if port == 4161 or record.source.port == 4161:  # registrar unicast ops
        op = _JINI_REGISTRAR_OPS.get(payload[0] if payload else -1)
        return f"Jini {op}" if op is not None else "Jini registrar"
    if port == 4610:  # federation gossip (JSON, sort_keys)
        if b'"kind": "digest"' in payload:
            return "Gossip digest"
        if b'"kind": "delta"' in payload:
            return "Gossip delta"
        return "Gossip"
    if payload[:1] == b"\x02":
        return f"SLP(fn={payload[1]})" if len(payload) > 1 else "SLP"
    if payload.startswith(b"M-SEARCH"):
        return "SSDP M-SEARCH"
    if payload.startswith(b"NOTIFY"):
        return "SSDP NOTIFY" if port == 1900 else "GENA NOTIFY"
    if payload.startswith(b"HTTP/1.1 200") and b"ST:" in payload:
        return "SSDP 200 OK"
    if payload.startswith(b"HTTP/"):
        return "HTTP response"
    if payload.startswith((b"GET", b"POST", b"SUBSCRIBE", b"UNSUBSCRIBE")):
        return "HTTP request"
    return record.transport.upper()


def format_trace(network: Network, limit: int | None = None) -> str:
    """Render the captured trace, one line per message."""
    lines = []
    records = network.trace if limit is None else network.trace[:limit]
    for record in records:
        tag = classify_payload(record)
        lines.append(
            f"{record.time_us / 1000.0:10.3f} ms  {str(record.source):>22s}"
            f" -> {str(record.destination):<22s} {record.size:5d} B  {tag}"
        )
    if limit is not None and len(network.trace) > limit:
        lines.append(f"... {len(network.trace) - limit} more")
    return "\n".join(lines)


__all__ = ["format_trace", "classify_payload"]

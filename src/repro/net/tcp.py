"""A simplified, reliable, ordered TCP abstraction for the simulator.

UPnP needs TCP for HTTP (description and control), and Jini's unicast
discovery runs over TCP.  The model charges realistic costs without
simulating segments and retransmission:

* ``connect`` costs a three-message handshake (SYN, SYN-ACK, ACK) at the
  segment's per-message latency before the connection callbacks fire;
* each ``send`` is delivered in order after latency + serialization delay;
* ``close`` propagates an EOF to the peer.

Connections are reliable by construction; datagram loss (``LossModel``)
applies only to UDP, as in the real protocols' assumptions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from .addressing import Endpoint, validate_port
from .errors import ConnectionRefusedError, PortInUseError, SocketClosedError

if TYPE_CHECKING:  # pragma: no cover
    from .node import Node

DataHandler = Callable[[bytes], None]
CloseHandler = Callable[[], None]
ConnectHandler = Callable[["TcpConnection"], None]
ErrorHandler = Callable[[Exception], None]


class TcpConnection:
    """One endpoint of an established simulated TCP connection."""

    def __init__(self, node: "Node", local: Endpoint, remote: Endpoint):
        self._node = node
        self.local = local
        self.remote = remote
        self._peer: Optional["TcpConnection"] = None
        self._data_handler: Optional[DataHandler] = None
        self._close_handler: Optional[CloseHandler] = None
        self._closed = False
        #: Set by :meth:`TcpStack.crash`: the owning process crash-stopped,
        #: so sends from stale timers drop silently (no FIN ever went out —
        #: the peer only notices through its own timeouts).
        self._crashed = False
        node.tcp._connections.append(self)
        self._recv_buffer: list[tuple[bytes, object]] = []
        #: Decode memo attached to the chunk currently being delivered to
        #: the data handler (``None`` outside delivery).  This is the TCP
        #: leg of parse-once: a sender fanning one encoded message out to
        #: many connections passes the same seeded
        #: :class:`~repro.net.udp.FrameMemo` to every ``send``, and each
        #: receiver's handler reads it here to skip the decode (GENA's
        #: NOTIFY property-set fan-out).
        self.inbound_memo = None
        #: Virtual time at which the last inbound chunk will have arrived;
        #: used to keep per-direction FIFO ordering.
        self._last_arrival_us = 0
        self.bytes_sent = 0
        self.bytes_received = 0

    # -- wiring --------------------------------------------------------------

    def _attach_peer(self, peer: "TcpConnection") -> None:
        self._peer = peer

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def is_loopback(self) -> bool:
        return self.local.host == self.remote.host

    def on_data(self, handler: DataHandler) -> "TcpConnection":
        """Attach the receive callback; buffered chunks are flushed to it."""
        self._data_handler = handler
        if self._recv_buffer:
            pending, self._recv_buffer = self._recv_buffer, []
            for chunk, memo in pending:
                self.inbound_memo = memo
                try:
                    handler(chunk)
                finally:
                    self.inbound_memo = None
        return self

    def on_close(self, handler: CloseHandler) -> "TcpConnection":
        self._close_handler = handler
        return self

    # -- I/O -------------------------------------------------------------------

    def send(self, data: bytes, memo=None) -> None:
        """Queue ``data`` for in-order delivery to the peer.

        ``memo`` optionally attaches a decode memo the receiver's data
        handler can consult via :attr:`inbound_memo` — the sender seeds it
        with the structured form of an encoded message so no receiver of
        the fan-out pays the decode (see ``repro.sdp.upnp.gena``).
        """
        if self._crashed:
            return
        if self._closed:
            raise SocketClosedError("send on closed TCP connection")
        if self._peer is None:
            raise SocketClosedError("connection has no peer")
        data = bytes(data)
        self.bytes_sent += len(data)
        network = self._node.network
        delay = network.unicast_delay_us(
            self._node, self.remote.host, len(data), loopback=self.is_loopback
        )
        if delay is None:
            # Established connections outlive routing lookups (the peer may
            # be a synthetic endpoint); charge the default segment cost.
            delay = network.latency.delay_us(len(data), loopback=self.is_loopback)
        peer = self._peer
        scheduler = network.scheduler_for(self._node)
        arrival = max(scheduler.now_us + delay, peer._last_arrival_us + 1)
        peer._last_arrival_us = arrival
        network.traffic.record(
            scheduler.now_us, self.remote.port, len(data), "tcp", multicast=False
        )
        network.trace_message("tcp", self.local, self.remote, data)
        scheduler.schedule_at(
            arrival, lambda: peer._receive(data, memo), label="tcp-data"
        )

    def _receive(self, data: bytes, memo=None) -> None:
        if self._closed:
            return
        self.bytes_received += len(data)
        if self._data_handler is not None:
            self.inbound_memo = memo
            try:
                self._data_handler(data)
            finally:
                self.inbound_memo = None
        else:
            self._recv_buffer.append((data, memo))

    def close(self) -> None:
        """Close this side; the peer sees EOF one latency later.

        The FIN is sequenced behind any in-flight data on this direction so
        it can never overtake bytes already sent.
        """
        if self._closed:
            return
        self._closed = True
        peer = self._peer
        if peer is not None and not peer._closed:
            network = self._node.network
            delay = network.unicast_delay_us(
                self._node, self.remote.host, 0, loopback=self.is_loopback
            )
            if delay is None:
                delay = network.latency.delay_us(0, loopback=self.is_loopback)
            scheduler = network.scheduler_for(self._node)
            arrival = max(scheduler.now_us + delay, peer._last_arrival_us + 1)
            peer._last_arrival_us = arrival
            scheduler.schedule_at(arrival, peer._peer_closed, label="tcp-fin")

    def _peer_closed(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._close_handler is not None:
            self._close_handler()


class TcpListener:
    """A passive TCP endpoint accepting simulated connections."""

    def __init__(self, node: "Node", port: int, on_connection: ConnectHandler):
        self._node = node
        self.port = port
        self._on_connection = on_connection
        self._closed = False
        self.accepted = 0

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._node.tcp.unregister(self.port)

    def _accept(self, remote: Endpoint, local_port: int) -> TcpConnection:
        local = Endpoint(self._node.address, local_port)
        connection = TcpConnection(self._node, local, remote)
        self.accepted += 1
        return connection


class TcpStack:
    """Per-node listener table plus the connect state machine."""

    EPHEMERAL_BASE = 32768

    def __init__(self, node: "Node"):
        self._node = node
        self._listeners: dict[int, TcpListener] = {}
        #: Every connection this node has ever opened or accepted, for
        #: crash-stop teardown (see :meth:`crash`).
        self._connections: list[TcpConnection] = []
        self._next_ephemeral = self.EPHEMERAL_BASE

    def listen(self, port: int, on_connection: ConnectHandler) -> TcpListener:
        validate_port(port)
        if port in self._listeners:
            raise PortInUseError(f"TCP port {port} already listening on {self._node.name}")
        listener = TcpListener(self._node, port, on_connection)
        self._listeners[port] = listener
        return listener

    def unregister(self, port: int) -> None:
        self._listeners.pop(port, None)

    def crash(self) -> None:
        """Crash-stop teardown: listeners stop accepting and every
        connection dies *without a FIN* — unlike :meth:`TcpConnection.close`
        the peer is never told, so in-flight chunks addressed to this node
        are swallowed by the receive-side closed guard and the survivor
        only learns through its own application-level timeouts (the real
        crash-stop failure signature)."""
        for listener in list(self._listeners.values()):
            listener.close()
        for connection in self._connections:
            connection._crashed = True
            connection._closed = True
        self._connections.clear()

    def listener_for(self, port: int) -> TcpListener | None:
        listener = self._listeners.get(port)
        if listener is not None and listener.closed:
            return None
        return listener

    def ephemeral_port(self) -> int:
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def connect(
        self,
        remote: Endpoint,
        on_connected: ConnectHandler,
        on_error: ErrorHandler | None = None,
    ) -> None:
        """Open a connection; callbacks fire after the simulated handshake.

        The handshake charges three per-message latencies (SYN, SYN-ACK,
        ACK).  When nothing listens on the remote port the error callback
        fires after one round trip, like a RST.
        """
        network = self._node.network
        local = Endpoint(self._node.address, self.ephemeral_port())
        loopback = remote.host == self._node.address

        remote_node = network.node_at(remote.host)
        if (
            remote_node is not None
            and network.engine is not None
            and network.partition_of_node(remote_node)
            != network.partition_of_node(self._node)
        ):
            # The stream abstraction schedules both directions on one
            # wheel; across districts that would race the lookahead
            # window.  District-crossing scenarios use UDP (as the paper's
            # discovery traffic does).
            raise ConnectionRefusedError(
                f"TCP across districts is not supported by the partitioned "
                f"engine: {self._node.name} -> {remote}"
            )
        one_way = network.unicast_delay_us(self._node, remote.host, 0, loopback=loopback)

        def refused() -> None:
            error = ConnectionRefusedError(f"connection refused: {remote}")
            if on_error is not None:
                on_error(error)

        if remote_node is None or one_way is None:
            # Unknown host, no link path between the segments, or a
            # detached (churned-out) sender: RST-like failure after one
            # round trip on the sender's own segment.
            if self._node.segments:
                rtt = 2 * self._node.segment.delay_us(0, loopback=loopback)
            else:
                rtt = 2 * network.latency.delay_us(0, loopback=loopback)
            network.scheduler_for(self._node).schedule(rtt, refused, label="tcp-noroute")
            return

        def complete_handshake() -> None:
            listener = remote_node.tcp.listener_for(remote.port)
            if listener is None:
                refused()
                return
            client_side = TcpConnection(self._node, local, remote)
            server_side = listener._accept(local, remote.port)
            client_side._attach_peer(server_side)
            server_side._attach_peer(client_side)
            # The server learns of the connection when the final ACK lands;
            # the client may start sending immediately after.
            listener._on_connection(server_side)
            on_connected(client_side)

        # SYN + SYN-ACK + ACK before data can flow.
        scheduler = network.scheduler_for(self._node)
        network.traffic.record(scheduler.now_us, remote.port, 40, "tcp", False)
        scheduler.schedule(3 * one_way, complete_handshake, label="tcp-handshake")


__all__ = ["TcpConnection", "TcpListener", "TcpStack"]

"""Factory for the paper's running example: the CyberGarage clock device.

Fig. 4 of the paper shows an SLP client discovering a UPnP clock device
whose SSDP response carries ``ST: upnp:clock`` /
``LOCATION: http://128.93.8.112:4004/description.xml`` and whose final SLP
reply exposes ``service:clock:soap://.../service/timer/control`` plus
attributes (friendlyName "CyberGarage Clock Device", etc.).  This module
builds a device matching that description so examples, tests and benchmarks
all exercise the identical scenario.
"""

from __future__ import annotations

from ...net import Node
from .description import (
    Action,
    ActionArgument,
    DeviceDescription,
    IconDescription,
    ScpdDescription,
    ServiceDescription,
    StateVariable,
)
from .device import UpnpDevice, UpnpTimings
from .soap import SoapCall

CLOCK_DEVICE_TYPE = "urn:schemas-upnp-org:device:clock:1"
CLOCK_SERVICE_TYPE = "urn:schemas-upnp-org:service:timer:1"
CLOCK_UDN = "uuid:ClockDevice"
CLOCK_CONTROL_PATH = "/service/timer/control"
CLOCK_SCPD_PATH = "/service/timer/scpd.xml"
CLOCK_EVENT_PATH = "/service/timer/event"
CLOCK_CONTROL_PORT = 4005


def clock_description(host: str) -> DeviceDescription:
    """The clock device's description document (paper Fig. 4 metadata)."""
    return DeviceDescription(
        device_type=CLOCK_DEVICE_TYPE,
        friendly_name="CyberGarage Clock Device",
        udn=CLOCK_UDN,
        manufacturer="CyberGarage",
        manufacturer_url="http://www.cybergarage.org",
        model_name="Clock",
        model_description="CyberUPnP Clock Device",
        model_number="1.0",
        model_url="http://www.cybergarage.org",
        presentation_url=f"http://{host}:{CLOCK_CONTROL_PORT}/presentation",
        icons=[
            IconDescription(width=48, height=48, url="/icon48.png"),
            IconDescription(width=32, height=32, url="/icon32.png"),
        ],
        services=[
            ServiceDescription(
                service_type=CLOCK_SERVICE_TYPE,
                service_id="urn:upnp-org:serviceId:timer:1",
                scpd_url=CLOCK_SCPD_PATH,
                control_url=CLOCK_CONTROL_PATH,
                event_sub_url=CLOCK_EVENT_PATH,
            )
        ],
    )


def clock_scpd() -> ScpdDescription:
    """SCPD for the timer service (GetTime/SetTime)."""
    return ScpdDescription(
        actions=[
            Action(
                name="GetTime",
                arguments=(
                    ActionArgument("CurrentTime", "out", "Time"),
                ),
            ),
            Action(
                name="SetTime",
                arguments=(
                    ActionArgument("NewTime", "in", "Time"),
                    ActionArgument("Result", "out", "Result"),
                ),
            ),
        ],
        state_variables=[
            StateVariable("Time", data_type="string", send_events=True),
            StateVariable("Result", data_type="string"),
        ],
    )


def make_clock_device(
    node: Node,
    timings: UpnpTimings | None = None,
    http_port: int = 4004,
    seed: int = 0,
    advertise: bool = False,
    notify_period_us: int | None = None,
) -> UpnpDevice:
    """Build the clock device on ``node``, with a working GetTime action."""
    extra = {}
    if notify_period_us is not None:
        extra["notify_period_us"] = notify_period_us
    device = UpnpDevice(
        node,
        clock_description(node.address),
        http_port=http_port,
        timings=timings,
        scpds={"urn:upnp-org:serviceId:timer:1": clock_scpd()},
        seed=seed,
        advertise=advertise,
        **extra,
    )

    def get_time(call: SoapCall) -> dict:
        return {"CurrentTime": f"{node.now_us / 1_000_000.0:.6f}"}

    def set_time(call: SoapCall) -> dict:
        return {"Result": f"accepted:{call.arguments.get('NewTime', '')}"}

    device.on_action(CLOCK_SERVICE_TYPE, "GetTime", get_time)
    device.on_action(CLOCK_SERVICE_TYPE, "SetTime", set_time)
    return device


def clock_control_url(host: str) -> str:
    """The direct SOAP reference an SLP client receives (paper Fig. 4)."""
    return f"http://{host}:{CLOCK_CONTROL_PORT}{CLOCK_CONTROL_PATH}"


__all__ = [
    "CLOCK_DEVICE_TYPE",
    "CLOCK_SERVICE_TYPE",
    "CLOCK_UDN",
    "CLOCK_CONTROL_PATH",
    "CLOCK_SCPD_PATH",
    "clock_description",
    "clock_scpd",
    "make_clock_device",
    "clock_control_url",
]

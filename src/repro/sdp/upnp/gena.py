"""GENA eventing (UPnP DA 1.0, section 4) — the UPnP stack's third leg.

UPnP devices push state-variable changes to subscribers:

* a control point ``SUBSCRIBE``s to a service's ``eventSubURL`` with a
  ``CALLBACK`` URL and receives a subscription id (``SID``) and timeout;
* the device sends ``NOTIFY`` requests (method ``NOTIFY``, headers ``NT:
  upnp:event``, ``NTS: upnp:propchange``, ``SID``, ``SEQ``) with an XML
  property set to every live subscriber whenever an evented variable
  changes;
* subscriptions expire unless renewed (``SUBSCRIBE`` with the ``SID``).

This module provides the message codecs plus the device- and control-
point-side managers, wired into :class:`~repro.sdp.upnp.device.UpnpDevice`
and :class:`~repro.sdp.upnp.control_point.UpnpControlPoint`.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Callable, Optional
from xml.sax.saxutils import escape

from ...net import Endpoint, Node
from ...net.udp import FrameMemo, shared_decode
from .errors import UpnpError
from .http import Headers, HttpRequest, HttpResponse, HttpStreamParser
from .urls import parse_http_url

EVENT_NS = "urn:schemas-upnp-org:event-1-0"

#: Default subscription lifetime (seconds).
DEFAULT_SUBSCRIPTION_TIMEOUT_S = 1800

#: Memo key for shared NOTIFY property-set decodes (the TCP fan-out leg
#: of parse-once; distinct from the UDP protocols' memo keys).
GENA_MEMO_KEY = "gena-propset"


def build_property_set(properties: dict[str, str]) -> str:
    """Render the NOTIFY body: ``<e:propertyset><e:property>...``."""
    parts = [f'<e:propertyset xmlns:e="{EVENT_NS}">']
    for name, value in properties.items():
        parts.append(f"<e:property><{name}>{escape(str(value))}</{name}></e:property>")
    parts.append("</e:propertyset>")
    return "".join(parts)


def parse_property_set(document: str | bytes) -> dict[str, str]:
    """Parse a NOTIFY body back into a name -> value dict."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise UpnpError(f"malformed property set: {exc}") from exc
    properties: dict[str, str] = {}
    for prop in root.findall(f"{{{EVENT_NS}}}property"):
        for child in prop:
            properties[child.tag.rsplit("}", 1)[-1]] = child.text or ""
    return properties


@dataclass
class Subscription:
    """One live subscription held by a device."""

    sid: str
    callback_url: str
    expires_at_us: int
    seq: int = 0


class EventPublisher:
    """Device-side GENA: subscription table plus change notification."""

    def __init__(self, node: Node, timeout_s: int = DEFAULT_SUBSCRIPTION_TIMEOUT_S):
        self.node = node
        self.timeout_s = timeout_s
        self.subscriptions: dict[str, Subscription] = {}
        self._next_sid = 1
        self.notifications_sent = 0
        #: Property-set bodies actually rendered; with many subscribers
        #: this grows once per *event* while ``notifications_sent`` grows
        #: once per subscriber (the encode-once invariant).
        self.bodies_encoded = 0
        self._parse_counter = node.network.parse_counter("gena")

    def handle_subscribe(self, request: HttpRequest) -> HttpResponse:
        """Process SUBSCRIBE (new or renewal) / UNSUBSCRIBE requests."""
        if request.method == "UNSUBSCRIBE":
            sid = request.headers.get("SID", "")
            if sid in self.subscriptions:
                del self.subscriptions[sid]
                return HttpResponse(status=200, reason="OK")
            return HttpResponse(status=412, reason="Precondition Failed")

        sid = request.headers.get("SID")
        if sid:  # renewal
            subscription = self.subscriptions.get(sid)
            if subscription is None:
                return HttpResponse(status=412, reason="Precondition Failed")
            subscription.expires_at_us = self.node.now_us + self.timeout_s * 1_000_000
            return self._subscription_ok(subscription)

        callback = (request.headers.get("CALLBACK") or "").strip("<>")
        if not callback:
            return HttpResponse(status=412, reason="Precondition Failed")
        new_sid = f"uuid:gena-{self._next_sid}"
        self._next_sid += 1
        subscription = Subscription(
            sid=new_sid,
            callback_url=callback,
            expires_at_us=self.node.now_us + self.timeout_s * 1_000_000,
        )
        self.subscriptions[new_sid] = subscription
        return self._subscription_ok(subscription)

    def _subscription_ok(self, subscription: Subscription) -> HttpResponse:
        return HttpResponse(
            status=200,
            reason="OK",
            headers=Headers(
                [
                    ("SID", subscription.sid),
                    ("TIMEOUT", f"Second-{self.timeout_s}"),
                    ("CONTENT-LENGTH", "0"),
                ]
            ),
        )

    def _evict_expired(self) -> None:
        now = self.node.now_us
        expired = [sid for sid, s in self.subscriptions.items() if s.expires_at_us <= now]
        for sid in expired:
            del self.subscriptions[sid]

    def publish(self, properties: dict[str, str]) -> int:
        """Notify every live subscriber; returns notifications sent.

        Encode-once: the property-set body is rendered exactly once per
        event and reused across the whole per-subscriber TCP fan-out, and
        one shared :class:`~repro.net.udp.FrameMemo` — seeded with the
        parsed form — travels with every NOTIFY, so no subscriber ever
        runs the XML parser (``parse_stats["gena"]`` attributes this).
        Only the per-subscriber envelope (HOST/SID/SEQ headers) is built
        per connection.
        """
        self._evict_expired()
        if not self.subscriptions:
            return 0
        body = build_property_set(properties).encode("utf-8")
        self.bodies_encoded += 1
        memo = None
        if self.node.network.parse_once:
            memo = FrameMemo()
            memo.store(
                GENA_MEMO_KEY, body, {k: str(v) for k, v in properties.items()}
            )
            self._parse_counter.note_seed()
        sent = 0
        for subscription in list(self.subscriptions.values()):
            self._notify_one(subscription, body, memo)
            sent += 1
        self.notifications_sent += sent
        return sent

    def _notify_one(
        self, subscription: Subscription, body: bytes, memo: FrameMemo | None = None
    ) -> None:
        host, port, path = parse_http_url(subscription.callback_url)
        headers = Headers(
            [
                ("HOST", f"{host}:{port}"),
                ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
                ("NT", "upnp:event"),
                ("NTS", "upnp:propchange"),
                ("SID", subscription.sid),
                ("SEQ", str(subscription.seq)),
                ("CONTENT-LENGTH", str(len(body))),
            ]
        )
        subscription.seq += 1
        request = HttpRequest(method="NOTIFY", target=path, headers=headers, body=body)

        def connected(connection) -> None:
            connection.send(request.render(), memo=memo)
            connection.close()

        self.node.tcp.connect(Endpoint(host, port), connected, on_error=lambda e: None)


def _decode_property_set(payload) -> Optional[dict[str, str]]:
    """Codec for :func:`repro.net.shared_decode`: None for bad bodies."""
    try:
        return parse_property_set(payload)
    except UpnpError:
        return None


EventHandler = Callable[[str, dict[str, str]], None]


class EventSubscriber:
    """Control-point-side GENA: subscribe and receive notifications."""

    def __init__(self, node: Node, callback_port: int = 5004):
        self.node = node
        self.callback_port = callback_port
        self._listener = node.tcp.listen(callback_port, self._on_connection)
        self.on_event: Optional[EventHandler] = None
        #: sid -> last SEQ seen.
        self.active: dict[str, int] = {}
        self.events_received = 0
        self._parse_counter = node.network.parse_counter("gena")

    @property
    def callback_url(self) -> str:
        return f"http://{self.node.address}:{self.callback_port}/event"

    def close(self) -> None:
        self._listener.close()

    def subscribe(
        self,
        event_sub_url: str,
        on_subscribed: Callable[[str], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """SUBSCRIBE to a service's eventSubURL."""
        host, port, path = parse_http_url(event_sub_url)
        headers = Headers(
            [
                ("HOST", f"{host}:{port}"),
                ("CALLBACK", f"<{self.callback_url}>"),
                ("NT", "upnp:event"),
                ("TIMEOUT", f"Second-{DEFAULT_SUBSCRIPTION_TIMEOUT_S}"),
            ]
        )
        request = HttpRequest(method="SUBSCRIBE", target=path, headers=headers)
        self._exchange(host, port, request, on_subscribed, on_error)

    def unsubscribe(self, event_sub_url: str, sid: str) -> None:
        host, port, path = parse_http_url(event_sub_url)
        headers = Headers([("HOST", f"{host}:{port}"), ("SID", sid)])
        request = HttpRequest(method="UNSUBSCRIBE", target=path, headers=headers)
        self.active.pop(sid, None)
        self._exchange(host, port, request, None, None)

    def _exchange(self, host, port, request, on_subscribed, on_error) -> None:
        parser = HttpStreamParser()

        def connected(connection) -> None:
            def handle_data(chunk: bytes) -> None:
                for message in parser.feed(chunk):
                    if isinstance(message, HttpResponse) and message.status == 200:
                        sid = message.headers.get("SID", "")
                        if sid:
                            self.active.setdefault(sid, -1)
                            if on_subscribed is not None:
                                on_subscribed(sid)
                    connection.close()

            connection.on_data(handle_data)
            connection.send(request.render())

        def handle_error(error: Exception) -> None:
            if on_error is not None:
                on_error(error)

        self.node.tcp.connect(Endpoint(host, port), connected, on_error=handle_error)

    def _on_connection(self, connection) -> None:
        parser = HttpStreamParser()

        def handle_data(chunk: bytes) -> None:
            for message in parser.feed(chunk):
                if not isinstance(message, HttpRequest) or message.method != "NOTIFY":
                    continue
                sid = message.headers.get("SID", "")
                seq = message.headers.get_int("SEQ", 0)
                if sid in self.active and seq <= self.active[sid] :
                    continue  # duplicate or reordered notification
                self.active[sid] = seq
                # Parse-once over TCP: the publisher seeds one memo per
                # event with the parsed property set, shared by the whole
                # subscriber fan-out; the bytes-equality guard inside the
                # memo keeps a mismatched body from being served.
                properties = shared_decode(
                    getattr(connection, "inbound_memo", None),
                    GENA_MEMO_KEY,
                    message.body,
                    _decode_property_set,
                    self._parse_counter,
                )
                if properties is None:
                    continue
                self.events_received += 1
                if self.on_event is not None:
                    # The decoded dict may be the memo entry shared by the
                    # whole subscriber fan-out: hand out a copy so one
                    # handler's mutation cannot leak into its siblings.
                    self.on_event(sid, dict(properties))
                connection.send(HttpResponse(status=200, reason="OK").render())

        connection.on_data(handle_data)


__all__ = [
    "EventPublisher",
    "EventSubscriber",
    "Subscription",
    "build_property_set",
    "parse_property_set",
    "DEFAULT_SUBSCRIPTION_TIMEOUT_S",
    "GENA_MEMO_KEY",
]

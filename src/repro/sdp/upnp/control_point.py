"""A UPnP control point: search, description fetch, action invocation.

The CyberLink-control-point stand-in.  The measured quantity in the paper's
Fig. 7 ("UPnP -> UPnP", 40 ms) is the time from issuing ``search()`` to the
first SSDP 200 OK arriving — a UPnP client's "answer" is the LOCATION URL,
unlike an SLP client which needs the direct control reference (paper §4.3);
description fetching is therefore a separate, explicit step here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...net import Endpoint, Node, Timer
from .constants import SSDP_ALL, SSDP_GROUP, SSDP_PORT
from .description import DeviceDescription, ScpdDescription, parse_device_description, parse_scpd
from .device import UpnpTimings
from .errors import DescriptionError
from .http import Headers
from .httpclient import http_get, http_post
from .soap import SoapResult, build_request, parse_response, soap_action_header
from .ssdp import (
    SSDP_MEMO_KEY,
    SsdpKind,
    SsdpMessage,
    decode_ssdp_shared,
    peek_ssdp_kind,
    seeded_msearch,
)


@dataclass
class KnownDevice:
    """Cache entry maintained from NOTIFY traffic and search responses."""

    usn: str
    target: str
    location: str
    max_age_s: int
    last_seen_us: int


class DeviceSearch:
    """Handle for one in-flight M-SEARCH."""

    def __init__(self, started_at_us: int, st: str):
        self.st = st
        self.started_at_us = started_at_us
        self.responses: list[SsdpMessage] = []
        self.completed = False
        self.first_response_at_us: Optional[int] = None
        self.on_response: Optional[Callable[[SsdpMessage], None]] = None
        self.on_complete: Optional[Callable[["DeviceSearch"], None]] = None

    @property
    def first_latency_us(self) -> Optional[int]:
        if self.first_response_at_us is None:
            return None
        return self.first_response_at_us - self.started_at_us

    def _add(self, message: SsdpMessage, now_us: int) -> None:
        self.responses.append(message)
        if self.first_response_at_us is None:
            self.first_response_at_us = now_us
        if self.on_response is not None:
            self.on_response(message)

    def _complete(self) -> None:
        if not self.completed:
            self.completed = True
            if self.on_complete is not None:
                self.on_complete(self)


class UpnpControlPoint:
    """A control point on one simulated node."""

    def __init__(self, node: Node, timings: UpnpTimings | None = None):
        self.node = node
        self.timings = timings if timings is not None else UpnpTimings()
        #: Devices learnt from NOTIFY alive (usn -> entry).
        self.known_devices: dict[str, KnownDevice] = {}
        self.on_alive: Optional[Callable[[KnownDevice], None]] = None
        self.on_byebye: Optional[Callable[[str], None]] = None
        self._searches: list[DeviceSearch] = []

        self._parse_counter = node.network.parse_counter("upnp")
        # Unicast search responses come back to the ephemeral search socket;
        # NOTIFY traffic arrives on the shared SSDP group socket.
        self._search_socket = node.udp.socket()
        self._search_socket.on_datagram(self._on_search_response)
        self._notify_socket = node.udp.socket().bind(SSDP_PORT, reuse=True)
        self._notify_socket.join_group(SSDP_GROUP)
        self._notify_socket.on_datagram(self._on_notify)

    # -- discovery ---------------------------------------------------------

    def search(
        self,
        st: str = SSDP_ALL,
        mx_s: int = 0,
        wait_us: int = 100_000,
        on_response: Callable[[SsdpMessage], None] | None = None,
        on_complete: Callable[[DeviceSearch], None] | None = None,
    ) -> DeviceSearch:
        """Multicast an M-SEARCH and collect responses for ``wait_us``."""
        search = DeviceSearch(self.node.now_us, st)
        search.on_response = on_response
        search.on_complete = on_complete
        self._searches.append(search)

        payload, parsed = seeded_msearch(st, mx_s)
        self._parse_counter.note_seed()
        self.node.schedule(
            self.timings.msearch_build_us,
            lambda: self._search_socket.sendto(
                payload,
                Endpoint(SSDP_GROUP, SSDP_PORT),
                decode_hint=(SSDP_MEMO_KEY, parsed),
            ),
        )

        def finish() -> None:
            if search in self._searches:
                self._searches.remove(search)
            search._complete()

        timer = Timer(self.node.network.scheduler_for(self.node), finish)
        timer.start(self.timings.msearch_build_us + wait_us)
        return search

    def _on_search_response(self, datagram) -> None:
        # Kind peek: the search socket only consumes 200 OK responses.
        kind = peek_ssdp_kind(datagram.payload)
        if kind is not None and kind is not SsdpKind.RESPONSE:
            return
        message = decode_ssdp_shared(
            datagram.payload, datagram.ensure_memo(), self._parse_counter
        )
        if message is None or message.kind is not SsdpKind.RESPONSE:
            return

        def deliver() -> None:
            self._remember(message)
            for search in list(self._searches):
                if not search.completed:
                    search._add(message, self.node.now_us)

        self.node.schedule(self.timings.response_parse_us, deliver)

    def _on_notify(self, datagram) -> None:
        # Kind peek: the group socket also hears M-SEARCHes (and, with
        # reuse, stray responses); only NOTIFY traffic is decoded.
        kind = peek_ssdp_kind(datagram.payload)
        if kind is SsdpKind.MSEARCH or kind is SsdpKind.RESPONSE:
            return
        message = decode_ssdp_shared(
            datagram.payload, datagram.ensure_memo(), self._parse_counter
        )
        if message is None:
            return
        if message.kind is SsdpKind.ALIVE:
            entry = self._remember(message)
            if self.on_alive is not None and entry is not None:
                self.on_alive(entry)
        elif message.kind is SsdpKind.BYEBYE:
            if message.usn in self.known_devices:
                del self.known_devices[message.usn]
                if self.on_byebye is not None:
                    self.on_byebye(message.usn)

    def _remember(self, message: SsdpMessage) -> Optional[KnownDevice]:
        if not message.usn:
            return None
        entry = KnownDevice(
            usn=message.usn,
            target=message.target,
            location=message.location,
            max_age_s=message.max_age_s,
            last_seen_us=self.node.now_us,
        )
        self.known_devices[message.usn] = entry
        return entry

    # -- description ----------------------------------------------------------

    def fetch_description(
        self,
        location: str,
        on_description: Callable[[DeviceDescription], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """GET and parse a device description document."""

        def handle_response(response) -> None:
            def parse() -> None:
                try:
                    description = parse_device_description(response.body)
                except DescriptionError as exc:
                    if on_error is not None:
                        on_error(exc)
                    return
                on_description(description)

            self.node.schedule(self.timings.description_parse_us, parse)

        def handle_error(error: Exception) -> None:
            if on_error is not None:
                on_error(error)

        http_get(self.node, location, handle_response, on_error=handle_error)

    def fetch_scpd(
        self,
        url: str,
        on_scpd: Callable[[ScpdDescription], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        def handle_response(response) -> None:
            try:
                scpd = parse_scpd(response.body)
            except DescriptionError as exc:
                if on_error is not None:
                    on_error(exc)
                return
            on_scpd(scpd)

        http_get(self.node, url, handle_response, on_error=on_error)

    # -- control -----------------------------------------------------------------

    def invoke(
        self,
        control_url: str,
        service_type: str,
        action: str,
        arguments: dict[str, str] | None = None,
        on_result: Callable[[SoapResult], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """POST a SOAP action to a control URL."""
        body = build_request(service_type, action, arguments).encode("utf-8")
        headers = Headers(
            [
                ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
                ("SOAPACTION", soap_action_header(service_type, action)),
            ]
        )

        def handle_response(response) -> None:
            try:
                result = parse_response(response.body)
            except Exception as exc:  # noqa: BLE001 - surfaced to caller
                if on_error is not None:
                    on_error(exc)
                return
            if on_result is not None:
                on_result(result)

        http_post(
            self.node, control_url, body, headers=headers,
            on_response=handle_response, on_error=on_error,
        )


__all__ = ["UpnpControlPoint", "DeviceSearch", "KnownDevice"]

"""UPnP-specific exceptions."""


class UpnpError(Exception):
    """Base class for UPnP stack errors."""


class HttpParseError(UpnpError):
    """Raised for malformed HTTP/HTTPU messages."""


class SsdpParseError(UpnpError):
    """Raised for datagrams that are HTTP-shaped but not valid SSDP."""


class DescriptionError(UpnpError):
    """Raised for malformed device/service description documents."""


class SoapError(UpnpError):
    """Raised for malformed SOAP envelopes or action faults."""

"""UPnP description documents (UPnP Device Architecture 1.0, section 2).

A root device's ``description.xml`` lists its identity, metadata and
services; each service's SCPD document lists actions and state variables.
The paper's translation scenario (§2.4, Fig. 4) hinges on this document:
the SSDP response only carries LOCATION, so INDISS must fetch and parse the
description to extract the control URL an SLP client expects.

Generation uses plain string assembly; parsing uses ``xml.etree``.  Both
directions round-trip, which the property tests verify.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from .errors import DescriptionError

DEVICE_NS = "urn:schemas-upnp-org:device-1-0"
SERVICE_NS = "urn:schemas-upnp-org:service-1-0"


@dataclass(frozen=True)
class ServiceDescription:
    """One ``<service>`` entry of a device description."""

    service_type: str
    service_id: str
    scpd_url: str
    control_url: str
    event_sub_url: str


@dataclass(frozen=True)
class IconDescription:
    """One ``<icon>`` entry; real stacks ship several sizes per device."""

    mimetype: str = "image/png"
    width: int = 48
    height: int = 48
    depth: int = 24
    url: str = "/icon48.png"


@dataclass
class DeviceDescription:
    """A root device description document."""

    device_type: str
    friendly_name: str
    udn: str
    manufacturer: str = "CyberGarage-sim"
    manufacturer_url: str = "http://www.cybergarage.org"
    model_name: str = "Device"
    model_description: str = ""
    model_number: str = "1.0"
    model_url: str = ""
    serial_number: str = ""
    presentation_url: str = ""
    services: list[ServiceDescription] = field(default_factory=list)
    icons: list[IconDescription] = field(default_factory=list)
    spec_major: int = 1
    spec_minor: int = 0

    def service_by_type(self, service_type: str) -> ServiceDescription | None:
        for service in self.services:
            if service.service_type == service_type:
                return service
        return None

    def to_xml(self, base_url: str = "") -> str:
        """Render the document; ``base_url`` fills ``<URLBase>`` if given."""
        parts = ['<?xml version="1.0"?>']
        parts.append(f'<root xmlns="{DEVICE_NS}">')
        parts.append(
            f"<specVersion><major>{self.spec_major}</major>"
            f"<minor>{self.spec_minor}</minor></specVersion>"
        )
        if base_url:
            parts.append(f"<URLBase>{escape(base_url)}</URLBase>")
        parts.append("<device>")
        parts.append(f"<deviceType>{escape(self.device_type)}</deviceType>")
        parts.append(f"<friendlyName>{escape(self.friendly_name)}</friendlyName>")
        parts.append(f"<manufacturer>{escape(self.manufacturer)}</manufacturer>")
        if self.manufacturer_url:
            parts.append(f"<manufacturerURL>{escape(self.manufacturer_url)}</manufacturerURL>")
        if self.model_description:
            parts.append(f"<modelDescription>{escape(self.model_description)}</modelDescription>")
        parts.append(f"<modelName>{escape(self.model_name)}</modelName>")
        if self.model_number:
            parts.append(f"<modelNumber>{escape(self.model_number)}</modelNumber>")
        if self.model_url:
            parts.append(f"<modelURL>{escape(self.model_url)}</modelURL>")
        if self.serial_number:
            parts.append(f"<serialNumber>{escape(self.serial_number)}</serialNumber>")
        parts.append(f"<UDN>{escape(self.udn)}</UDN>")
        if self.presentation_url:
            parts.append(f"<presentationURL>{escape(self.presentation_url)}</presentationURL>")
        if self.icons:
            parts.append("<iconList>")
            for icon in self.icons:
                parts.append(
                    "<icon>"
                    f"<mimetype>{escape(icon.mimetype)}</mimetype>"
                    f"<width>{icon.width}</width>"
                    f"<height>{icon.height}</height>"
                    f"<depth>{icon.depth}</depth>"
                    f"<url>{escape(icon.url)}</url>"
                    "</icon>"
                )
            parts.append("</iconList>")
        parts.append("<serviceList>")
        for service in self.services:
            parts.append(
                "<service>"
                f"<serviceType>{escape(service.service_type)}</serviceType>"
                f"<serviceId>{escape(service.service_id)}</serviceId>"
                f"<SCPDURL>{escape(service.scpd_url)}</SCPDURL>"
                f"<controlURL>{escape(service.control_url)}</controlURL>"
                f"<eventSubURL>{escape(service.event_sub_url)}</eventSubURL>"
                "</service>"
            )
        parts.append("</serviceList>")
        parts.append("</device>")
        parts.append("</root>")
        return "\n".join(parts)


def _text(element: ET.Element | None, default: str = "") -> str:
    if element is None or element.text is None:
        return default
    return element.text.strip()


def _find(parent: ET.Element, tag: str) -> ET.Element | None:
    return parent.find(f"{{{DEVICE_NS}}}{tag}")


def parse_device_description(document: str | bytes) -> DeviceDescription:
    """Parse ``description.xml`` back into a :class:`DeviceDescription`."""
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise DescriptionError(f"malformed description XML: {exc}") from exc
    if root.tag != f"{{{DEVICE_NS}}}root":
        raise DescriptionError(f"unexpected root element {root.tag!r}")
    device = _find(root, "device")
    if device is None:
        raise DescriptionError("description has no <device> element")

    services = []
    service_list = _find(device, "serviceList")
    if service_list is not None:
        for service in service_list:
            services.append(
                ServiceDescription(
                    service_type=_text(_find(service, "serviceType")),
                    service_id=_text(_find(service, "serviceId")),
                    scpd_url=_text(_find(service, "SCPDURL")),
                    control_url=_text(_find(service, "controlURL")),
                    event_sub_url=_text(_find(service, "eventSubURL")),
                )
            )
    icons = []
    icon_list = _find(device, "iconList")
    if icon_list is not None:
        for icon in icon_list:
            icons.append(
                IconDescription(
                    mimetype=_text(_find(icon, "mimetype")),
                    width=int(_text(_find(icon, "width"), "0") or 0),
                    height=int(_text(_find(icon, "height"), "0") or 0),
                    depth=int(_text(_find(icon, "depth"), "0") or 0),
                    url=_text(_find(icon, "url")),
                )
            )

    spec = _find(root, "specVersion")
    major, minor = 1, 0
    if spec is not None:
        major = int(_text(_find(spec, "major"), "1") or 1)
        minor = int(_text(_find(spec, "minor"), "0") or 0)

    description = DeviceDescription(
        device_type=_text(_find(device, "deviceType")),
        friendly_name=_text(_find(device, "friendlyName")),
        udn=_text(_find(device, "UDN")),
        manufacturer=_text(_find(device, "manufacturer")),
        manufacturer_url=_text(_find(device, "manufacturerURL")),
        model_name=_text(_find(device, "modelName")),
        model_description=_text(_find(device, "modelDescription")),
        model_number=_text(_find(device, "modelNumber")),
        model_url=_text(_find(device, "modelURL")),
        serial_number=_text(_find(device, "serialNumber")),
        presentation_url=_text(_find(device, "presentationURL")),
        services=services,
        icons=icons,
        spec_major=major,
        spec_minor=minor,
    )
    if not description.device_type:
        raise DescriptionError("description has no deviceType")
    if not description.udn:
        raise DescriptionError("description has no UDN")
    return description


@dataclass(frozen=True)
class ActionArgument:
    name: str
    direction: str  # 'in' | 'out'
    related_state_variable: str


@dataclass(frozen=True)
class Action:
    name: str
    arguments: tuple[ActionArgument, ...] = ()


@dataclass(frozen=True)
class StateVariable:
    name: str
    data_type: str = "string"
    send_events: bool = False
    default_value: str = ""


@dataclass
class ScpdDescription:
    """A service control protocol description (SCPD) document."""

    actions: list[Action] = field(default_factory=list)
    state_variables: list[StateVariable] = field(default_factory=list)

    def to_xml(self) -> str:
        parts = ['<?xml version="1.0"?>']
        parts.append(f'<scpd xmlns="{SERVICE_NS}">')
        parts.append("<specVersion><major>1</major><minor>0</minor></specVersion>")
        parts.append("<actionList>")
        for action in self.actions:
            parts.append(f"<action><name>{escape(action.name)}</name><argumentList>")
            for arg in action.arguments:
                parts.append(
                    "<argument>"
                    f"<name>{escape(arg.name)}</name>"
                    f"<direction>{escape(arg.direction)}</direction>"
                    f"<relatedStateVariable>{escape(arg.related_state_variable)}"
                    "</relatedStateVariable>"
                    "</argument>"
                )
            parts.append("</argumentList></action>")
        parts.append("</actionList>")
        parts.append("<serviceStateTable>")
        for variable in self.state_variables:
            events = "yes" if variable.send_events else "no"
            parts.append(
                f'<stateVariable sendEvents="{events}">'
                f"<name>{escape(variable.name)}</name>"
                f"<dataType>{escape(variable.data_type)}</dataType>"
                "</stateVariable>"
            )
        parts.append("</serviceStateTable>")
        parts.append("</scpd>")
        return "\n".join(parts)


def parse_scpd(document: str | bytes) -> ScpdDescription:
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise DescriptionError(f"malformed SCPD XML: {exc}") from exc

    def sfind(parent, tag):
        return parent.find(f"{{{SERVICE_NS}}}{tag}")

    actions = []
    action_list = sfind(root, "actionList")
    if action_list is not None:
        for action in action_list:
            arguments = []
            argument_list = sfind(action, "argumentList")
            if argument_list is not None:
                for arg in argument_list:
                    arguments.append(
                        ActionArgument(
                            name=_text(sfind(arg, "name")),
                            direction=_text(sfind(arg, "direction")),
                            related_state_variable=_text(sfind(arg, "relatedStateVariable")),
                        )
                    )
            actions.append(Action(name=_text(sfind(action, "name")), arguments=tuple(arguments)))
    variables = []
    table = sfind(root, "serviceStateTable")
    if table is not None:
        for variable in table:
            variables.append(
                StateVariable(
                    name=_text(sfind(variable, "name")),
                    data_type=_text(sfind(variable, "dataType"), "string"),
                    send_events=variable.get("sendEvents", "no") == "yes",
                )
            )
    return ScpdDescription(actions=actions, state_variables=variables)


__all__ = [
    "DeviceDescription",
    "ServiceDescription",
    "IconDescription",
    "ScpdDescription",
    "Action",
    "ActionArgument",
    "StateVariable",
    "parse_device_description",
    "parse_scpd",
    "DEVICE_NS",
    "SERVICE_NS",
]

"""A UPnP root device: SSDP presence + HTTP description/control server.

This is the CyberLink-device stand-in.  Behaviourally it follows UPnP DA
1.0:

* joins the SSDP group and answers matching ``M-SEARCH`` with unicast 200
  OK responses, after a responder-side delay drawn from the timing profile
  (real responders jitter within the MX window; CyberLink's Java stack adds
  scheduling latency on top — this is the dominant term in the paper's
  40 ms native UPnP figure, see ``repro.bench.calibration``);
* multicasts ``NOTIFY ssdp:alive`` periodically and ``ssdp:byebye`` on
  shutdown;
* serves ``description.xml``, per-service SCPD documents and SOAP control
  over TCP/HTTP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from ...net import Endpoint, Node
from .constants import (
    DEFAULT_HTTP_PORT,
    DEFAULT_MAX_AGE_S,
    DEFAULT_NOTIFY_PERIOD_US,
    SERVER_STRING,
    SSDP_GROUP,
    SSDP_PORT,
    UPNP_ROOTDEVICE,
)
from .description import DeviceDescription, ScpdDescription
from .http import Headers, HttpRequest, HttpResponse, HttpStreamParser
from .soap import (
    SoapCall,
    build_fault,
    build_response,
    parse_request,
    parse_soap_action_header,
)
from .ssdp import (
    SSDP_MEMO_KEY,
    SsdpKind,
    decode_ssdp_shared,
    peek_ssdp_kind,
    seeded_notify_alive,
    seeded_notify_byebye,
    seeded_search_response,
    st_matches,
)

ActionHandler = Callable[[SoapCall], dict]


@dataclass
class UpnpTimings:
    """Per-operation processing delays (microseconds) for one UPnP stack.

    Defaults model a thin native stack; the calibrated CyberLink profile in
    ``repro.bench.calibration`` reproduces the paper's §4.3 medians.
    """

    #: SSDP search responder latency window (uniform sample).
    search_response_min_us: int = 200
    search_response_max_us: int = 600
    #: Server-side cost to produce description.xml.
    description_serve_us: int = 400
    #: Server-side cost to produce an SCPD document.
    scpd_serve_us: int = 200
    #: Server-side cost to execute a SOAP action.
    soap_handle_us: int = 300
    #: Client-side cost to build and send an M-SEARCH.
    msearch_build_us: int = 50
    #: Client-side cost to parse one SSDP response.
    response_parse_us: int = 50
    #: Client-side cost to parse a description document.
    description_parse_us: int = 300
    #: Extra bytes appended to description.xml as a vendor comment block,
    #: modelling CyberLink's much more verbose output (icons, whitespace).
    description_pad_bytes: int = 0

    def sample_search_delay(self, rng: random.Random) -> int:
        low = self.search_response_min_us
        high = max(self.search_response_max_us, low)
        return rng.randint(low, high)


class UpnpDevice:
    """A root device hosted on one simulated node."""

    def __init__(
        self,
        node: Node,
        description: DeviceDescription,
        http_port: int = DEFAULT_HTTP_PORT,
        timings: UpnpTimings | None = None,
        scpds: dict[str, ScpdDescription] | None = None,
        notify_period_us: int = DEFAULT_NOTIFY_PERIOD_US,
        seed: int = 0,
        advertise: bool = False,
    ):
        self.node = node
        self.description = description
        self.http_port = http_port
        self.timings = timings if timings is not None else UpnpTimings()
        self.scpds = scpds if scpds is not None else {}
        self._rng = random.Random(seed)
        self._notify_period_us = notify_period_us
        self._notify_task = None
        self.searches_answered = 0
        self.descriptions_served = 0
        self.actions_invoked = 0
        self._action_handlers: dict[tuple[str, str], ActionHandler] = {}

        #: Encode-once NOTIFY alive burst: (targets key, [(payload, message)]).
        self._alive_burst: tuple[tuple[str, ...], list] | None = None
        self._parse_counter = node.network.parse_counter("upnp")

        self._ssdp_socket = node.udp.socket().bind(SSDP_PORT, reuse=True)
        self._ssdp_socket.join_group(SSDP_GROUP)
        self._ssdp_socket.on_datagram(self._on_ssdp_datagram)
        self._listener = node.tcp.listen(http_port, self._on_http_connection)
        # GENA eventing (UPnP DA 1.0 section 4): one publisher serves all
        # of this device's services.
        from .gena import EventPublisher

        self.events = EventPublisher(node)
        if advertise:
            self.start_advertising()

    # -- identity -----------------------------------------------------------

    @property
    def location(self) -> str:
        return f"http://{self.node.address}:{self.http_port}/description.xml"

    @property
    def udn(self) -> str:
        return self.description.udn

    def usn_for(self, target: str) -> str:
        if target == self.udn:
            return self.udn
        return f"{self.udn}::{target}"

    def notification_targets(self) -> list[str]:
        """All (NT, USN) advertisement targets per UPnP DA 1.0 §1.1.2."""
        targets = [UPNP_ROOTDEVICE, self.udn, self.description.device_type]
        targets.extend(s.service_type for s in self.description.services)
        return targets

    def on_action(self, service_type: str, action: str, handler: ActionHandler) -> None:
        """Register the implementation of one SOAP action."""
        self._action_handlers[(service_type, action)] = handler

    # -- SSDP presence ----------------------------------------------------------

    def start_advertising(self) -> None:
        if self._notify_task is not None:
            return
        self._send_alive_burst()
        self._notify_task = self.node.every(
            self._notify_period_us, self._send_alive_burst, initial_delay_us=self._notify_period_us
        )

    def stop(self, send_byebye: bool = True) -> None:
        if self._notify_task is not None:
            self._notify_task.stop()
            self._notify_task = None
        if send_byebye:
            for target in self.notification_targets():
                payload, message = seeded_notify_byebye(target, self.usn_for(target))
                self._parse_counter.note_seed()
                self._ssdp_socket.sendto(
                    payload,
                    Endpoint(SSDP_GROUP, SSDP_PORT),
                    decode_hint=(SSDP_MEMO_KEY, message),
                )

    def _send_alive_burst(self) -> None:
        # Encode-once: the burst is identical every period (targets,
        # location and max-age are fixed), so the payloads and their
        # pre-parsed messages are built on the first burst and reused —
        # the decode hint seeds every frame, so receivers never parse.
        targets = tuple(self.notification_targets())
        if self._alive_burst is None or self._alive_burst[0] != targets:
            burst = [
                seeded_notify_alive(
                    nt=target,
                    usn=self.usn_for(target),
                    location=self.location,
                    max_age_s=DEFAULT_MAX_AGE_S,
                )
                for target in targets
            ]
            self._alive_burst = (targets, burst)
        for payload, message in self._alive_burst[1]:
            self._parse_counter.note_seed()
            self._ssdp_socket.sendto(
                payload,
                Endpoint(SSDP_GROUP, SSDP_PORT),
                decode_hint=(SSDP_MEMO_KEY, message),
            )

    def _on_ssdp_datagram(self, datagram) -> None:
        # First-line kind peek: a device only acts on M-SEARCH, so the
        # sibling alive/byebye floods of a device fleet are skipped with
        # one prefix comparison — no memo lookup, no tokenizer.  Frames
        # the peek cannot classify fall through to the shared decode.
        kind = peek_ssdp_kind(datagram.payload)
        if kind is not None and kind is not SsdpKind.MSEARCH:
            return
        message = decode_ssdp_shared(
            datagram.payload, datagram.ensure_memo(), self._parse_counter
        )
        if message is None:
            return
        if message.kind is not SsdpKind.MSEARCH:
            return
        matching = [
            target
            for target in self.notification_targets()
            if st_matches(message.target, target, usn=self.usn_for(target))
        ]
        if not matching:
            return
        self.searches_answered += 1
        source = datagram.source
        # A compliant responder answers once per matching target; one is
        # enough for discovery and keeps traces readable.
        target = matching[0]
        response, parsed = seeded_search_response(
            st=message.target if message.target != "ssdp:all" else target,
            usn=self.usn_for(target),
            location=self.location,
        )
        delay = self.timings.sample_search_delay(self._rng)
        self._parse_counter.note_seed()
        self.node.schedule(
            delay,
            lambda: self._ssdp_socket.sendto(
                response, source, decode_hint=(SSDP_MEMO_KEY, parsed)
            ),
        )

    # -- HTTP server ---------------------------------------------------------------

    def _on_http_connection(self, connection) -> None:
        parser = HttpStreamParser()

        def handle_data(chunk: bytes) -> None:
            for message in parser.feed(chunk):
                if isinstance(message, HttpRequest):
                    self._dispatch_http(connection, message)

        connection.on_data(handle_data)

    def _dispatch_http(self, connection, request: HttpRequest) -> None:
        path = request.target.split("?", 1)[0]
        if request.method == "GET" and path == "/description.xml":
            self._serve_description(connection)
        elif request.method == "GET" and self._scpd_for_path(path) is not None:
            self._serve_scpd(connection, path)
        elif request.method == "POST" and self._service_for_control(path) is not None:
            self._serve_control(connection, request, path)
        elif request.method in ("SUBSCRIBE", "UNSUBSCRIBE") and self._service_for_events(
            path
        ) is not None:
            self._respond(connection, self.events.handle_subscribe(request), delay_us=100)
        else:
            self._respond(connection, HttpResponse(status=404, reason="Not Found"), delay_us=50)

    def _scpd_for_path(self, path: str):
        for service in self.description.services:
            if service.scpd_url == path:
                return self.scpds.get(service.service_id)
        return None

    def _service_for_control(self, path: str):
        for service in self.description.services:
            if service.control_url == path:
                return service
        return None

    def _service_for_events(self, path: str):
        for service in self.description.services:
            if service.event_sub_url == path:
                return service
        return None

    def notify_state_change(self, properties: dict[str, str]) -> int:
        """Publish a state-variable change to every GENA subscriber."""
        return self.events.publish(properties)

    def _serve_description(self, connection) -> None:
        document = self.description.to_xml().encode("utf-8")
        if self.timings.description_pad_bytes > 0:
            pad = b"<!-- " + b"x" * self.timings.description_pad_bytes + b" -->\n"
            document = document.replace(b"</root>", pad + b"</root>")
        response = HttpResponse(
            status=200,
            headers=Headers(
                [
                    ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
                    ("SERVER", SERVER_STRING),
                    ("CONTENT-LENGTH", str(len(document))),
                ]
            ),
            body=document,
        )
        self.descriptions_served += 1
        self._respond(connection, response, delay_us=self.timings.description_serve_us)

    def _serve_scpd(self, connection, path: str) -> None:
        scpd = self._scpd_for_path(path)
        assert scpd is not None
        document = scpd.to_xml().encode("utf-8")
        response = HttpResponse(
            status=200,
            headers=Headers(
                [
                    ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
                    ("CONTENT-LENGTH", str(len(document))),
                ]
            ),
            body=document,
        )
        self._respond(connection, response, delay_us=self.timings.scpd_serve_us)

    def _serve_control(self, connection, request: HttpRequest, path: str) -> None:
        soap_action = request.headers.get("SOAPACTION", "")
        try:
            service_type, action = parse_soap_action_header(soap_action)
            call = parse_request(request.body)
        except Exception:
            body = build_fault(401, "Invalid Action").encode("utf-8")
            self._respond(connection, _soap_response(500, body), delay_us=100)
            return
        handler = self._action_handlers.get((service_type, action))
        if handler is None:
            body = build_fault(401, f"No such action {action}").encode("utf-8")
            self._respond(connection, _soap_response(500, body), delay_us=100)
            return

        def run_action() -> None:
            try:
                out_args = handler(call)
                body = build_response(service_type, action, out_args).encode("utf-8")
                self.actions_invoked += 1
                connection.send(_soap_response(200, body).render())
            except Exception as exc:  # noqa: BLE001 - fault path must answer
                body = build_fault(501, str(exc)).encode("utf-8")
                connection.send(_soap_response(500, body).render())

        self.node.schedule(self.timings.soap_handle_us, run_action)

    def _respond(self, connection, response: HttpResponse, delay_us: int) -> None:
        self.node.schedule(delay_us, lambda: connection.send(response.render()))


def _soap_response(status: int, body: bytes) -> HttpResponse:
    return HttpResponse(
        status=status,
        reason="OK" if status == 200 else "Internal Server Error",
        headers=Headers(
            [
                ("CONTENT-TYPE", 'text/xml; charset="utf-8"'),
                ("EXT", ""),
                ("CONTENT-LENGTH", str(len(body))),
            ]
        ),
        body=body,
    )


__all__ = ["UpnpDevice", "UpnpTimings", "ActionHandler"]

"""SOAP-lite: the UPnP control protocol envelope (UPnP DA 1.0, section 3).

A control point POSTs a SOAP envelope to a service's control URL with a
``SOAPACTION`` header; the device answers with an ``...Response`` envelope
or a UPnPError fault.  Only the envelope subset UPnP actually uses is
implemented (no encodings, no multi-part).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field
from xml.sax.saxutils import escape

from .errors import SoapError

ENVELOPE_NS = "http://schemas.xmlsoap.org/soap/envelope/"
ENCODING_STYLE = "http://schemas.xmlsoap.org/soap/encoding/"
CONTROL_NS = "urn:schemas-upnp-org:control-1-0"


@dataclass(frozen=True)
class SoapCall:
    """A parsed inbound action invocation."""

    service_type: str
    action: str
    arguments: dict[str, str] = field(default_factory=dict)


@dataclass(frozen=True)
class SoapResult:
    """A parsed action response (or fault)."""

    action: str = ""
    arguments: dict[str, str] = field(default_factory=dict)
    fault_code: int = 0
    fault_string: str = ""

    @property
    def is_fault(self) -> bool:
        return bool(self.fault_code or self.fault_string)


def soap_action_header(service_type: str, action: str) -> str:
    """The value of the ``SOAPACTION`` HTTP header."""
    return f'"{service_type}#{action}"'


def parse_soap_action_header(value: str) -> tuple[str, str]:
    stripped = value.strip().strip('"')
    service_type, sep, action = stripped.rpartition("#")
    if not sep or not service_type or not action:
        raise SoapError(f"malformed SOAPACTION header: {value!r}")
    return service_type, action


def _envelope(body_xml: str) -> str:
    return (
        '<?xml version="1.0"?>\n'
        f'<s:Envelope xmlns:s="{ENVELOPE_NS}" s:encodingStyle="{ENCODING_STYLE}">\n'
        f"<s:Body>{body_xml}</s:Body>\n"
        "</s:Envelope>"
    )


def build_request(service_type: str, action: str, arguments: dict[str, str] | None = None) -> str:
    args_xml = "".join(
        f"<{name}>{escape(str(value))}</{name}>" for name, value in (arguments or {}).items()
    )
    body = f'<u:{action} xmlns:u="{escape(service_type)}">{args_xml}</u:{action}>'
    return _envelope(body)


def build_response(service_type: str, action: str, arguments: dict[str, str] | None = None) -> str:
    args_xml = "".join(
        f"<{name}>{escape(str(value))}</{name}>" for name, value in (arguments or {}).items()
    )
    body = (
        f'<u:{action}Response xmlns:u="{escape(service_type)}">'
        f"{args_xml}</u:{action}Response>"
    )
    return _envelope(body)


def build_fault(error_code: int, error_description: str) -> str:
    body = (
        "<s:Fault>"
        "<faultcode>s:Client</faultcode>"
        "<faultstring>UPnPError</faultstring>"
        "<detail>"
        f'<UPnPError xmlns="{CONTROL_NS}">'
        f"<errorCode>{error_code}</errorCode>"
        f"<errorDescription>{escape(error_description)}</errorDescription>"
        "</UPnPError>"
        "</detail>"
        "</s:Fault>"
    )
    return _envelope(body)


def _body_element(document: str | bytes) -> ET.Element:
    try:
        root = ET.fromstring(document)
    except ET.ParseError as exc:
        raise SoapError(f"malformed SOAP XML: {exc}") from exc
    body = root.find(f"{{{ENVELOPE_NS}}}Body")
    if body is None or len(body) == 0:
        raise SoapError("SOAP envelope has no body element")
    return body[0]


def _local_name(tag: str) -> str:
    return tag.rsplit("}", 1)[-1]


def _namespace(tag: str) -> str:
    if tag.startswith("{"):
        return tag[1:].split("}", 1)[0]
    return ""


def parse_request(document: str | bytes) -> SoapCall:
    """Parse an inbound control request into a :class:`SoapCall`."""
    element = _body_element(document)
    action = _local_name(element.tag)
    service_type = _namespace(element.tag)
    arguments = { _local_name(child.tag): (child.text or "") for child in element }
    return SoapCall(service_type=service_type, action=action, arguments=arguments)


def parse_response(document: str | bytes) -> SoapResult:
    """Parse a control response; faults come back with ``is_fault`` set."""
    element = _body_element(document)
    name = _local_name(element.tag)
    if name == "Fault":
        code, description = 0, ""
        for node in element.iter():
            local = _local_name(node.tag)
            if local == "errorCode":
                try:
                    code = int(node.text or "0")
                except ValueError:
                    code = 0
            elif local == "errorDescription":
                description = node.text or ""
        return SoapResult(fault_code=code or 501, fault_string=description or "fault")
    if not name.endswith("Response"):
        raise SoapError(f"unexpected SOAP response element {name!r}")
    arguments = { _local_name(child.tag): (child.text or "") for child in element }
    return SoapResult(action=name[: -len("Response")], arguments=arguments)


__all__ = [
    "SoapCall",
    "SoapResult",
    "build_request",
    "build_response",
    "build_fault",
    "parse_request",
    "parse_response",
    "soap_action_header",
    "parse_soap_action_header",
]

"""A sans-io HTTP/1.x codec.

UPnP layers everything on HTTP: SSDP is "HTTPU" (HTTP-shaped datagrams over
UDP), descriptions and SOAP control ride ordinary HTTP over TCP.  This
module provides:

* :class:`Headers` — case-insensitive header map preserving insertion order;
* :class:`HttpRequest` / :class:`HttpResponse` — immutable-ish message
  values with ``render()`` to bytes;
* :func:`parse_message` — one-shot parse (for single-datagram HTTPU);
* :class:`HttpStreamParser` — incremental parser for TCP streams, framing
  bodies by ``Content-Length`` (the only framing UPnP 1.0 needs).

Being sans-io, the codec is directly testable without any simulated
network, and the same parser instance drives INDISS's UPnP unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

from .errors import HttpParseError

CRLF = b"\r\n"
HEADER_END = b"\r\n\r\n"


class Headers:
    """Case-insensitive header collection preserving insertion order."""

    def __init__(self, items: "list[tuple[str, str]] | dict[str, str] | None" = None):
        self._items: list[tuple[str, str]] = []
        if items:
            pairs = items.items() if isinstance(items, dict) else items
            for name, value in pairs:
                self.add(name, value)

    @classmethod
    def from_pairs(cls, pairs: "list[tuple[str, str]]") -> "Headers":
        """Wrap an already-built ``(name, value)`` list without copying.

        The single-pass SSDP tokenizer collects its header pairs in one
        sweep; this constructor adopts that list directly instead of
        re-appending pair by pair.  Callers hand over ownership.
        """
        headers = cls()
        headers._items = pairs
        return headers

    def add(self, name: str, value: str) -> None:
        self._items.append((str(name), str(value)))

    def set(self, name: str, value: str) -> None:
        """Replace any existing values for ``name``."""
        lowered = name.lower()
        self._items = [(n, v) for n, v in self._items if n.lower() != lowered]
        self.add(name, value)

    def get(self, name: str, default: str | None = None) -> str | None:
        lowered = name.lower()
        for existing, value in self._items:
            if existing.lower() == lowered:
                return value
        return default

    def get_int(self, name: str, default: int = 0) -> int:
        value = self.get(name)
        if value is None:
            return default
        try:
            return int(value.strip())
        except ValueError as exc:
            raise HttpParseError(f"non-integer {name} header: {value!r}") from exc

    def __contains__(self, name: str) -> bool:
        return self.get(name) is not None

    def __iter__(self) -> Iterator[tuple[str, str]]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Headers):
            return NotImplemented
        mine = [(n.lower(), v) for n, v in self._items]
        theirs = [(n.lower(), v) for n, v in other._items]
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Headers({self._items!r})"


@dataclass
class HttpRequest:
    """An HTTP request message (also the shape of SSDP requests)."""

    method: str
    target: str
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def render(self) -> bytes:
        lines = [f"{self.method} {self.target} {self.version}".encode("ascii")]
        lines.extend(f"{n}: {v}".encode("latin-1") for n, v in self.headers)
        return CRLF.join(lines) + HEADER_END + self.body


@dataclass
class HttpResponse:
    """An HTTP response message (also the shape of SSDP search responses)."""

    status: int
    reason: str = "OK"
    headers: Headers = field(default_factory=Headers)
    body: bytes = b""
    version: str = "HTTP/1.1"

    def render(self) -> bytes:
        lines = [f"{self.version} {self.status} {self.reason}".encode("ascii")]
        lines.extend(f"{n}: {v}".encode("latin-1") for n, v in self.headers)
        return CRLF.join(lines) + HEADER_END + self.body


HttpMessage = Union[HttpRequest, HttpResponse]


def _parse_start_line(line: str) -> HttpMessage:
    parts = line.split(" ", 2)
    if len(parts) < 3:
        # Requests like "M-SEARCH * HTTP/1.1" have exactly three tokens;
        # responses may have multi-word reasons handled below.
        if len(parts) == 2 and parts[0].upper().startswith("HTTP/"):
            parts = [parts[0], parts[1], ""]
        else:
            raise HttpParseError(f"malformed start line: {line!r}")
    if parts[0].upper().startswith("HTTP/"):
        version, status_text, reason = parts[0], parts[1], parts[2]
        if not status_text.isdigit():
            raise HttpParseError(f"malformed status code: {status_text!r}")
        return HttpResponse(status=int(status_text), reason=reason, version=version)
    method, target, version = parts
    if not version.upper().startswith("HTTP/"):
        raise HttpParseError(f"malformed HTTP version: {version!r}")
    return HttpRequest(method=method.upper(), target=target, version=version)


def _parse_header_block(block: str) -> Headers:
    headers = Headers()
    for raw_line in block.split("\r\n"):
        if not raw_line:
            continue
        name, sep, value = raw_line.partition(":")
        if not sep:
            raise HttpParseError(f"malformed header line: {raw_line!r}")
        headers.add(name.strip(), value.strip())
    return headers


def parse_message(data: bytes) -> HttpMessage:
    """Parse a complete HTTP message held in one buffer (HTTPU datagrams).

    The body is everything after the blank line, trimmed to Content-Length
    when that header is present.
    """
    head, sep, body = data.partition(HEADER_END)
    if not sep:
        raise HttpParseError("no end-of-headers marker")
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError as exc:  # pragma: no cover - latin-1 never fails
        raise HttpParseError(str(exc)) from exc
    start_line, _, header_block = text.partition("\r\n")
    message = _parse_start_line(start_line.strip())
    message.headers = _parse_header_block(header_block)
    length = message.headers.get_int("Content-Length", default=len(body))
    if length > len(body):
        raise HttpParseError(f"body shorter than Content-Length ({len(body)} < {length})")
    message.body = body[:length]
    return message


class HttpStreamParser:
    """Incremental HTTP parser for TCP byte streams.

    Feed arbitrary chunks; complete messages come back in order.  Bodies are
    framed by ``Content-Length`` (absent means empty body, which is correct
    for the GET/response traffic UPnP description fetch generates — we do
    not support read-until-close framing).
    """

    def __init__(self) -> None:
        self._buffer = b""
        self._pending: Optional[HttpMessage] = None
        self._body_needed = 0
        self.messages_parsed = 0

    def feed(self, data: bytes) -> list[HttpMessage]:
        self._buffer += data
        complete: list[HttpMessage] = []
        while True:
            message = self._try_extract()
            if message is None:
                break
            complete.append(message)
            self.messages_parsed += 1
        return complete

    def _try_extract(self) -> Optional[HttpMessage]:
        if self._pending is None:
            end = self._buffer.find(HEADER_END)
            if end < 0:
                return None
            head = self._buffer[: end + len(HEADER_END)]
            self._buffer = self._buffer[end + len(HEADER_END):]
            text = head[:-len(HEADER_END)].decode("latin-1")
            start_line, _, header_block = text.partition("\r\n")
            message = _parse_start_line(start_line.strip())
            message.headers = _parse_header_block(header_block)
            self._pending = message
            self._body_needed = message.headers.get_int("Content-Length", default=0)
        if len(self._buffer) < self._body_needed:
            return None
        message = self._pending
        assert message is not None
        message.body = self._buffer[: self._body_needed]
        self._buffer = self._buffer[self._body_needed:]
        self._pending = None
        self._body_needed = 0
        return message


__all__ = [
    "Headers",
    "HttpRequest",
    "HttpResponse",
    "HttpMessage",
    "HttpStreamParser",
    "parse_message",
]

"""UPnP / SSDP protocol constants.

The SSDP multicast group and port are the second entry in INDISS's
IANA correspondence table (paper Figure 2: ``239.255.255.250:1900 : UPnP``).
"""

from __future__ import annotations

#: IANA-assigned SSDP multicast group.
SSDP_GROUP = "239.255.255.250"

#: IANA-assigned SSDP port.
SSDP_PORT = 1900

#: Default MX (maximum response wait, seconds) in M-SEARCH requests.  The
#: paper's Fig. 4 trace uses ``MX: 0``.
DEFAULT_MX_S = 0

#: ``MAN`` header value required on M-SEARCH.
SSDP_DISCOVER = "ssdp:discover"

#: ST value matching every device and service.
SSDP_ALL = "ssdp:all"

#: ST/NT value matching root devices.
UPNP_ROOTDEVICE = "upnp:rootdevice"

#: NTS values for NOTIFY.
SSDP_ALIVE = "ssdp:alive"
SSDP_BYEBYE = "ssdp:byebye"

#: Default advertisement validity (CACHE-CONTROL: max-age).
DEFAULT_MAX_AGE_S = 1800

#: Default period between NOTIFY bursts for an alive device.
DEFAULT_NOTIFY_PERIOD_US = 2_000_000

#: Server/user-agent string mirroring the paper's testbed stack.
SERVER_STRING = "UPnP/1.0 CyberLink-sim/1.3.2"

#: Default TCP port where devices serve description/control documents
#: (the paper's clock device uses 4004).
DEFAULT_HTTP_PORT = 4004


__all__ = [
    "SSDP_GROUP",
    "SSDP_PORT",
    "DEFAULT_MX_S",
    "SSDP_DISCOVER",
    "SSDP_ALL",
    "UPNP_ROOTDEVICE",
    "SSDP_ALIVE",
    "SSDP_BYEBYE",
    "DEFAULT_MAX_AGE_S",
    "DEFAULT_NOTIFY_PERIOD_US",
    "SERVER_STRING",
    "DEFAULT_HTTP_PORT",
]

"""SSDP: the Simple Service Discovery Protocol layer of UPnP.

Message kinds (UPnP Device Architecture 1.0):

* ``M-SEARCH`` — multicast search request, scoped by ``ST`` (search target)
  and bounded by ``MX`` (max response jitter, seconds);
* search **response** — unicast ``HTTP/1.1 200 OK`` carrying ``ST``, ``USN``
  and ``LOCATION`` (URL of the device description document);
* ``NOTIFY`` with ``NTS: ssdp:alive`` — multicast advertisement;
* ``NOTIFY`` with ``NTS: ssdp:byebye`` — multicast retraction.

The paper's Fig. 4 trace shows exactly these messages; building and parsing
them is the job of this module, while :mod:`repro.sdp.upnp.device` and
:mod:`repro.sdp.upnp.control_point` implement the behaviour around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .constants import (
    DEFAULT_MAX_AGE_S,
    DEFAULT_MX_S,
    SERVER_STRING,
    SSDP_ALIVE,
    SSDP_ALL,
    SSDP_BYEBYE,
    SSDP_DISCOVER,
    SSDP_GROUP,
    SSDP_PORT,
    UPNP_ROOTDEVICE,
)
from .errors import HttpParseError, SsdpParseError
from .http import Headers, HttpRequest, HttpResponse, parse_message


class SsdpKind(Enum):
    MSEARCH = "msearch"
    RESPONSE = "response"
    ALIVE = "alive"
    BYEBYE = "byebye"


@dataclass(frozen=True)
class SsdpMessage:
    """A parsed SSDP datagram, normalized across the four kinds."""

    kind: SsdpKind
    #: Search target (M-SEARCH / response ``ST``) or notification type
    #: (NOTIFY ``NT``).
    target: str = ""
    usn: str = ""
    location: str = ""
    mx_s: int = DEFAULT_MX_S
    max_age_s: int = DEFAULT_MAX_AGE_S
    server: str = ""
    raw_headers: Headers = None  # type: ignore[assignment]


#: Vendor-extension header carrying the remaining gateway-forward hop
#: budget.  Native stacks ignore unknown SSDP headers, so the extension is
#: invisible to ordinary control points and devices.
HOPS_HEADER = "HOPS.INDISS.ORG"


def build_msearch(st: str, mx_s: int = DEFAULT_MX_S, hops: int | None = None) -> bytes:
    """Render an M-SEARCH datagram (cf. the composed request in Fig. 4).

    ``hops`` adds the INDISS forwarding-budget extension header; None (the
    default, used by native control points) omits it.
    """
    fields = [
        ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
        ("MAN", f'"{SSDP_DISCOVER}"'),
        ("MX", str(mx_s)),
        ("ST", st),
    ]
    if hops is not None:
        fields.append((HOPS_HEADER, str(hops)))
    return HttpRequest(method="M-SEARCH", target="*", headers=Headers(fields)).render()


def build_search_response(
    st: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> bytes:
    """Render a unicast 200 OK search response."""
    headers = Headers(
        [
            ("CACHE-CONTROL", f"max-age={max_age_s}"),
            ("EXT", ""),
            ("LOCATION", location),
            ("SERVER", server),
            ("ST", st),
            ("USN", usn),
            ("CONTENT-LENGTH", "0"),
        ]
    )
    return HttpResponse(status=200, reason="OK", headers=headers).render()


def build_notify_alive(
    nt: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> bytes:
    headers = Headers(
        [
            ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
            ("CACHE-CONTROL", f"max-age={max_age_s}"),
            ("LOCATION", location),
            ("NT", nt),
            ("NTS", SSDP_ALIVE),
            ("SERVER", server),
            ("USN", usn),
        ]
    )
    return HttpRequest(method="NOTIFY", target="*", headers=headers).render()


def build_notify_byebye(nt: str, usn: str) -> bytes:
    headers = Headers(
        [
            ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
            ("NT", nt),
            ("NTS", SSDP_BYEBYE),
            ("USN", usn),
        ]
    )
    return HttpRequest(method="NOTIFY", target="*", headers=headers).render()


def _parse_max_age(cache_control: str) -> int:
    for part in cache_control.split(","):
        name, sep, value = part.strip().partition("=")
        if sep and name.strip().lower() == "max-age":
            try:
                return int(value.strip())
            except ValueError:
                break
    return DEFAULT_MAX_AGE_S


def parse_ssdp(data: bytes) -> SsdpMessage:
    """Parse a datagram into an :class:`SsdpMessage`.

    Raises :class:`SsdpParseError` for datagrams that are not SSDP (the
    monitor component never calls this — detection is port-based — but the
    UPnP unit's parser does).
    """
    try:
        message = parse_message(data)
    except HttpParseError as exc:
        raise SsdpParseError(f"not an HTTP-shaped datagram: {exc}") from exc
    headers = message.headers

    if isinstance(message, HttpResponse):
        if message.status != 200:
            raise SsdpParseError(f"unexpected SSDP response status {message.status}")
        return SsdpMessage(
            kind=SsdpKind.RESPONSE,
            target=headers.get("ST", ""),
            usn=headers.get("USN", ""),
            location=headers.get("LOCATION", ""),
            max_age_s=_parse_max_age(headers.get("CACHE-CONTROL", "")),
            server=headers.get("SERVER", ""),
            raw_headers=headers,
        )

    method = message.method.upper()
    if method == "M-SEARCH":
        man = (headers.get("MAN") or "").strip('"')
        if man and man != SSDP_DISCOVER:
            raise SsdpParseError(f"M-SEARCH with unexpected MAN {man!r}")
        try:
            mx = int(headers.get("MX", str(DEFAULT_MX_S)))
        except ValueError:
            mx = DEFAULT_MX_S
        return SsdpMessage(
            kind=SsdpKind.MSEARCH,
            target=headers.get("ST", ""),
            mx_s=mx,
            raw_headers=headers,
        )
    if method == "NOTIFY":
        nts = (headers.get("NTS") or "").lower()
        if nts == SSDP_ALIVE:
            return SsdpMessage(
                kind=SsdpKind.ALIVE,
                target=headers.get("NT", ""),
                usn=headers.get("USN", ""),
                location=headers.get("LOCATION", ""),
                max_age_s=_parse_max_age(headers.get("CACHE-CONTROL", "")),
                server=headers.get("SERVER", ""),
                raw_headers=headers,
            )
        if nts == SSDP_BYEBYE:
            return SsdpMessage(
                kind=SsdpKind.BYEBYE,
                target=headers.get("NT", ""),
                usn=headers.get("USN", ""),
                raw_headers=headers,
            )
        raise SsdpParseError(f"NOTIFY with unknown NTS {nts!r}")
    raise SsdpParseError(f"unknown SSDP method {method!r}")


def _split_urn(target: str) -> Optional[tuple[str, str, str, int]]:
    """Split ``urn:domain:kind:type:version``; None when not that shape."""
    parts = target.split(":")
    if len(parts) != 5 or parts[0].lower() != "urn":
        return None
    domain, kind, type_name, version_text = parts[1], parts[2], parts[3], parts[4]
    try:
        version = int(version_text)
    except ValueError:
        return None
    return domain, kind.lower(), type_name.lower(), version


def st_matches(search_target: str, offered: str, usn: str = "") -> bool:
    """UPnP search-target matching rules.

    * ``ssdp:all`` matches everything;
    * ``upnp:rootdevice`` matches root devices (offered must advertise it);
    * ``uuid:...`` matches the device with that UDN;
    * ``urn:...:device/service:Type:v`` matches the same type with an
      offered version >= the requested version.
    """
    st = search_target.strip()
    if not st:
        return False
    if st == SSDP_ALL:
        return True
    if st == UPNP_ROOTDEVICE:
        return offered == UPNP_ROOTDEVICE or UPNP_ROOTDEVICE in usn
    if st.lower().startswith("uuid:"):
        return offered.lower() == st.lower() or usn.lower().startswith(st.lower())
    wanted = _split_urn(st)
    if wanted is None:
        # Vendor-specific bare targets (the paper's M-SEARCH uses
        # ``urn:schemas-upnp org:device:clock`` without a version) compare
        # after stripping an optional trailing version from the offer.
        return _loose_equal(st, offered)
    have = _split_urn(offered)
    if have is None:
        return _loose_equal(st, offered)
    return wanted[:3] == have[:3] and have[3] >= wanted[3]


def _loose_equal(st: str, offered: str) -> bool:
    def strip_version(value: str) -> str:
        parts = value.split(":")
        if parts and parts[-1].isdigit():
            parts = parts[:-1]
        return ":".join(p.lower() for p in parts)

    return strip_version(st) == strip_version(offered)


__all__ = [
    "HOPS_HEADER",
    "SsdpKind",
    "SsdpMessage",
    "build_msearch",
    "build_search_response",
    "build_notify_alive",
    "build_notify_byebye",
    "parse_ssdp",
    "st_matches",
]

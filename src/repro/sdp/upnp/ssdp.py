"""SSDP: the Simple Service Discovery Protocol layer of UPnP.

Message kinds (UPnP Device Architecture 1.0):

* ``M-SEARCH`` — multicast search request, scoped by ``ST`` (search target)
  and bounded by ``MX`` (max response jitter, seconds);
* search **response** — unicast ``HTTP/1.1 200 OK`` carrying ``ST``, ``USN``
  and ``LOCATION`` (URL of the device description document);
* ``NOTIFY`` with ``NTS: ssdp:alive`` — multicast advertisement;
* ``NOTIFY`` with ``NTS: ssdp:byebye`` — multicast retraction.

The paper's Fig. 4 trace shows exactly these messages; building and parsing
them is the job of this module, while :mod:`repro.sdp.upnp.device` and
:mod:`repro.sdp.upnp.control_point` implement the behaviour around them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Optional

from .constants import (
    DEFAULT_MAX_AGE_S,
    DEFAULT_MX_S,
    SERVER_STRING,
    SSDP_ALIVE,
    SSDP_ALL,
    SSDP_BYEBYE,
    SSDP_DISCOVER,
    SSDP_GROUP,
    SSDP_PORT,
    UPNP_ROOTDEVICE,
)
from ...net import shared_decode
from .errors import SsdpParseError
from .http import HEADER_END, Headers, HttpRequest, HttpResponse


class SsdpKind(Enum):
    MSEARCH = "msearch"
    RESPONSE = "response"
    ALIVE = "alive"
    BYEBYE = "byebye"


@dataclass(frozen=True)
class SsdpMessage:
    """A parsed SSDP datagram, normalized across the four kinds."""

    kind: SsdpKind
    #: Search target (M-SEARCH / response ``ST``) or notification type
    #: (NOTIFY ``NT``).
    target: str = ""
    usn: str = ""
    location: str = ""
    mx_s: int = DEFAULT_MX_S
    max_age_s: int = DEFAULT_MAX_AGE_S
    server: str = ""
    raw_headers: Headers = None  # type: ignore[assignment]


#: Vendor-extension header carrying the remaining gateway-forward hop
#: budget.  Native stacks ignore unknown SSDP headers, so the extension is
#: invisible to ordinary control points and devices.
HOPS_HEADER = "HOPS.INDISS.ORG"


def build_msearch(st: str, mx_s: int = DEFAULT_MX_S, hops: int | None = None) -> bytes:
    """Render an M-SEARCH datagram (cf. the composed request in Fig. 4).

    ``hops`` adds the INDISS forwarding-budget extension header; None (the
    default, used by native control points) omits it.
    """
    fields = [
        ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
        ("MAN", f'"{SSDP_DISCOVER}"'),
        ("MX", str(mx_s)),
        ("ST", st),
    ]
    if hops is not None:
        fields.append((HOPS_HEADER, str(hops)))
    return HttpRequest(method="M-SEARCH", target="*", headers=Headers(fields)).render()


def build_search_response(
    st: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> bytes:
    """Render a unicast 200 OK search response."""
    headers = Headers(
        [
            ("CACHE-CONTROL", f"max-age={max_age_s}"),
            ("EXT", ""),
            ("LOCATION", location),
            ("SERVER", server),
            ("ST", st),
            ("USN", usn),
            ("CONTENT-LENGTH", "0"),
        ]
    )
    return HttpResponse(status=200, reason="OK", headers=headers).render()


def build_notify_alive(
    nt: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> bytes:
    headers = Headers(
        [
            ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
            ("CACHE-CONTROL", f"max-age={max_age_s}"),
            ("LOCATION", location),
            ("NT", nt),
            ("NTS", SSDP_ALIVE),
            ("SERVER", server),
            ("USN", usn),
        ]
    )
    return HttpRequest(method="NOTIFY", target="*", headers=headers).render()


def build_notify_byebye(nt: str, usn: str) -> bytes:
    headers = Headers(
        [
            ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
            ("NT", nt),
            ("NTS", SSDP_BYEBYE),
            ("USN", usn),
        ]
    )
    return HttpRequest(method="NOTIFY", target="*", headers=headers).render()


# -- encode-once builders ---------------------------------------------------
#
# Each ``seeded_*`` helper renders the wire bytes *and* constructs the
# exact :class:`SsdpMessage` that :func:`parse_ssdp` would return for
# them, so a sender can pre-seed the outgoing frame's decode memo
# (``decode_hint``) and no receiver ever runs the tokenizer.  Equivalence
# is asserted by tests/sdp/test_ssdp_seeded.py (``parse_ssdp(payload) ==
# message`` for every helper), which is what keeps seeding behaviourally
# invisible.


def seeded_msearch(
    st: str, mx_s: int = DEFAULT_MX_S, hops: int | None = None
) -> tuple[bytes, SsdpMessage]:
    payload = build_msearch(st, mx_s=mx_s, hops=hops)
    pairs = [
        ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
        ("MAN", f'"{SSDP_DISCOVER}"'),
        ("MX", str(mx_s)),
        ("ST", st),
    ]
    if hops is not None:
        pairs.append((HOPS_HEADER, str(hops)))
    message = SsdpMessage(
        kind=SsdpKind.MSEARCH,
        target=st,
        mx_s=mx_s,
        raw_headers=Headers.from_pairs(pairs),
    )
    return payload, message


def seeded_search_response(
    st: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> tuple[bytes, SsdpMessage]:
    payload = build_search_response(
        st, usn, location, server=server, max_age_s=max_age_s
    )
    pairs = [
        ("CACHE-CONTROL", f"max-age={max_age_s}"),
        ("EXT", ""),
        ("LOCATION", location),
        ("SERVER", server),
        ("ST", st),
        ("USN", usn),
        ("CONTENT-LENGTH", "0"),
    ]
    message = SsdpMessage(
        kind=SsdpKind.RESPONSE,
        target=st,
        usn=usn,
        location=location,
        max_age_s=max_age_s,
        server=server,
        raw_headers=Headers.from_pairs(pairs),
    )
    return payload, message


def seeded_notify_alive(
    nt: str,
    usn: str,
    location: str,
    server: str = SERVER_STRING,
    max_age_s: int = DEFAULT_MAX_AGE_S,
) -> tuple[bytes, SsdpMessage]:
    payload = build_notify_alive(nt, usn, location, server=server, max_age_s=max_age_s)
    pairs = [
        ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
        ("CACHE-CONTROL", f"max-age={max_age_s}"),
        ("LOCATION", location),
        ("NT", nt),
        ("NTS", SSDP_ALIVE),
        ("SERVER", server),
        ("USN", usn),
    ]
    message = SsdpMessage(
        kind=SsdpKind.ALIVE,
        target=nt,
        usn=usn,
        location=location,
        max_age_s=max_age_s,
        server=server,
        raw_headers=Headers.from_pairs(pairs),
    )
    return payload, message


def seeded_notify_byebye(nt: str, usn: str) -> tuple[bytes, SsdpMessage]:
    payload = build_notify_byebye(nt, usn)
    pairs = [
        ("HOST", f"{SSDP_GROUP}:{SSDP_PORT}"),
        ("NT", nt),
        ("NTS", SSDP_BYEBYE),
        ("USN", usn),
    ]
    message = SsdpMessage(
        kind=SsdpKind.BYEBYE,
        target=nt,
        usn=usn,
        raw_headers=Headers.from_pairs(pairs),
    )
    return payload, message


def _parse_max_age(cache_control: str) -> int:
    for part in cache_control.split(","):
        name, sep, value = part.strip().partition("=")
        if sep and name.strip().lower() == "max-age":
            try:
                return int(value.strip())
            except ValueError:
                break
    return DEFAULT_MAX_AGE_S


#: Per-frame decode-memo key for SSDP datagrams: every native device,
#: control point, and the UPnP unit's SSDP parser share (or pre-seed)
#: parsed :class:`SsdpMessage` values under this key on the delivering
#: frame's :class:`~repro.net.FrameMemo`.
SSDP_MEMO_KEY = "ssdp-msg"


def peek_ssdp_kind(data: bytes) -> Optional[SsdpKind]:
    """Cheap first-line kind peek without tokenizing the datagram.

    Mirrors the SLP unit's DAAdvert header-byte peek: a handful of prefix
    comparisons classify the frame before any header is split.  NOTIFY
    needs the ``NTS`` header to distinguish alive from byebye, so it is
    resolved with one substring probe over the raw bytes.  ``None`` means
    "not SSDP-shaped" (uppercase wire forms only — anything else falls
    through to the full tokenizer and its error reporting).
    """
    if data.startswith(b"NOTIFY "):
        # The NTS header value decides the kind; ssdp:alive / ssdp:byebye
        # cannot both appear (a header value occurs once per message).
        if b"ssdp:alive" in data:
            return SsdpKind.ALIVE
        if b"ssdp:byebye" in data:
            return SsdpKind.BYEBYE
        return None
    if data.startswith(b"M-SEARCH "):
        return SsdpKind.MSEARCH
    if data.startswith(b"HTTP/1.1 200") or data.startswith(b"HTTP/1.0 200"):
        return SsdpKind.RESPONSE
    return None


def parse_ssdp(data: bytes) -> SsdpMessage:
    """Parse a datagram into an :class:`SsdpMessage` in a single pass.

    Raises :class:`SsdpParseError` for datagrams that are not SSDP (the
    monitor component never calls this — detection is port-based — but the
    UPnP unit's parser does).

    Unlike the generic HTTP codec this tokenizer sweeps the header block
    exactly once, collecting the original ``(name, value)`` pairs for
    ``raw_headers`` and a lowered-name index for O(1) field access —
    no intermediate ``HttpRequest``/``HttpResponse`` and no per-field
    linear scans.
    """
    head, sep, body = data.partition(HEADER_END)
    if not sep:
        raise SsdpParseError("not an HTTP-shaped datagram: no end-of-headers marker")
    text = head.decode("latin-1")
    lines = text.split("\r\n")
    start = lines[0].strip()

    pairs: list[tuple[str, str]] = []
    fields: dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, colon, value = line.partition(":")
        if not colon:
            raise SsdpParseError(f"malformed header line: {line!r}")
        name = name.strip()
        value = value.strip()
        pairs.append((name, value))
        # First value wins, matching Headers.get on repeated names.
        fields.setdefault(name.lower(), value)

    length_text = fields.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError as exc:
            raise SsdpParseError(
                f"non-integer Content-Length header: {length_text!r}"
            ) from exc
        if length > len(body):
            raise SsdpParseError(
                f"body shorter than Content-Length ({len(body)} < {length})"
            )

    parts = start.split(" ", 2)
    if parts[0].upper().startswith("HTTP/"):
        status_text = parts[1] if len(parts) > 1 else ""
        if not status_text.isdigit():
            raise SsdpParseError(f"malformed status code: {status_text!r}")
        status = int(status_text)
        if status != 200:
            raise SsdpParseError(f"unexpected SSDP response status {status}")
        return SsdpMessage(
            kind=SsdpKind.RESPONSE,
            target=fields.get("st", ""),
            usn=fields.get("usn", ""),
            location=fields.get("location", ""),
            max_age_s=_parse_max_age(fields.get("cache-control", "")),
            server=fields.get("server", ""),
            raw_headers=Headers.from_pairs(pairs),
        )

    if len(parts) < 3:
        raise SsdpParseError(f"malformed start line: {start!r}")
    method, _target, version = parts
    if not version.upper().startswith("HTTP/"):
        raise SsdpParseError(f"malformed HTTP version: {version!r}")
    method = method.upper()
    if method == "M-SEARCH":
        man = fields.get("man", "").strip('"')
        if man and man != SSDP_DISCOVER:
            raise SsdpParseError(f"M-SEARCH with unexpected MAN {man!r}")
        try:
            mx = int(fields.get("mx", str(DEFAULT_MX_S)))
        except ValueError:
            mx = DEFAULT_MX_S
        return SsdpMessage(
            kind=SsdpKind.MSEARCH,
            target=fields.get("st", ""),
            mx_s=mx,
            raw_headers=Headers.from_pairs(pairs),
        )
    if method == "NOTIFY":
        nts = fields.get("nts", "").lower()
        if nts == SSDP_ALIVE:
            return SsdpMessage(
                kind=SsdpKind.ALIVE,
                target=fields.get("nt", ""),
                usn=fields.get("usn", ""),
                location=fields.get("location", ""),
                max_age_s=_parse_max_age(fields.get("cache-control", "")),
                server=fields.get("server", ""),
                raw_headers=Headers.from_pairs(pairs),
            )
        if nts == SSDP_BYEBYE:
            return SsdpMessage(
                kind=SsdpKind.BYEBYE,
                target=fields.get("nt", ""),
                usn=fields.get("usn", ""),
                raw_headers=Headers.from_pairs(pairs),
            )
        raise SsdpParseError(f"NOTIFY with unknown NTS {nts!r}")
    raise SsdpParseError(f"unknown SSDP method {method!r}")


def _parse_or_none(payload: bytes) -> Optional[SsdpMessage]:
    try:
        return parse_ssdp(payload)
    except SsdpParseError:
        return None


def decode_ssdp_shared(payload: bytes, memo, counter=None) -> Optional[SsdpMessage]:
    """Parse-once entry point every SSDP receive path goes through.

    ``memo`` is the delivering frame's :class:`~repro.net.FrameMemo` (or
    None for raw bytes that did not arrive as a datagram): the first
    receiver parses and stores, later receivers — other devices on the
    segment, control points, the UPnP unit — reuse the stored message.
    Failed parses are stored as ``None`` so the rejection is shared too.
    ``counter`` is an optional :class:`~repro.net.ParseCounter` receiving
    one decoded/shared observation.
    """
    return shared_decode(memo, SSDP_MEMO_KEY, payload, _parse_or_none, counter)


def _split_urn(target: str) -> Optional[tuple[str, str, str, int]]:
    """Split ``urn:domain:kind:type:version``; None when not that shape."""
    parts = target.split(":")
    if len(parts) != 5 or parts[0].lower() != "urn":
        return None
    domain, kind, type_name, version_text = parts[1], parts[2], parts[3], parts[4]
    try:
        version = int(version_text)
    except ValueError:
        return None
    return domain, kind.lower(), type_name.lower(), version


def st_matches(search_target: str, offered: str, usn: str = "") -> bool:
    """UPnP search-target matching rules.

    * ``ssdp:all`` matches everything;
    * ``upnp:rootdevice`` matches root devices (offered must advertise it);
    * ``uuid:...`` matches the device with that UDN;
    * ``urn:...:device/service:Type:v`` matches the same type with an
      offered version >= the requested version.
    """
    st = search_target.strip()
    if not st:
        return False
    if st == SSDP_ALL:
        return True
    if st == UPNP_ROOTDEVICE:
        return offered == UPNP_ROOTDEVICE or UPNP_ROOTDEVICE in usn
    if st.lower().startswith("uuid:"):
        return offered.lower() == st.lower() or usn.lower().startswith(st.lower())
    wanted = _split_urn(st)
    if wanted is None:
        # Vendor-specific bare targets (the paper's M-SEARCH uses
        # ``urn:schemas-upnp org:device:clock`` without a version) compare
        # after stripping an optional trailing version from the offer.
        return _loose_equal(st, offered)
    have = _split_urn(offered)
    if have is None:
        return _loose_equal(st, offered)
    return wanted[:3] == have[:3] and have[3] >= wanted[3]


def _loose_equal(st: str, offered: str) -> bool:
    def strip_version(value: str) -> str:
        parts = value.split(":")
        if parts and parts[-1].isdigit():
            parts = parts[:-1]
        return ":".join(p.lower() for p in parts)

    return strip_version(st) == strip_version(offered)


__all__ = [
    "HOPS_HEADER",
    "SSDP_MEMO_KEY",
    "SsdpKind",
    "SsdpMessage",
    "build_msearch",
    "build_search_response",
    "build_notify_alive",
    "build_notify_byebye",
    "decode_ssdp_shared",
    "parse_ssdp",
    "peek_ssdp_kind",
    "seeded_msearch",
    "seeded_notify_alive",
    "seeded_notify_byebye",
    "seeded_search_response",
    "st_matches",
]

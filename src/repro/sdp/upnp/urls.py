"""Tiny URL helpers for http:// URLs inside the simulated LAN."""

from __future__ import annotations

from urllib.parse import urlparse

from .errors import UpnpError


def parse_http_url(url: str) -> tuple[str, int, str]:
    """Split ``http://host:port/path`` into (host, port, path).

    Port defaults to 80; path defaults to ``/``.
    """
    parsed = urlparse(url)
    if parsed.scheme not in ("http", ""):
        raise UpnpError(f"not an http URL: {url!r}")
    if not parsed.hostname:
        raise UpnpError(f"URL has no host: {url!r}")
    port = parsed.port if parsed.port is not None else 80
    path = parsed.path or "/"
    if parsed.query:
        path = f"{path}?{parsed.query}"
    return parsed.hostname, port, path


def join_url(base: str, path: str) -> str:
    """Resolve a possibly relative UPnP document URL against a base."""
    if path.startswith("http://") or path.startswith("https://"):
        return path
    host, port, _ = parse_http_url(base)
    if not path.startswith("/"):
        path = "/" + path
    return f"http://{host}:{port}{path}"


__all__ = ["parse_http_url", "join_url"]

"""A minimal asynchronous HTTP client over the simulated TCP stack."""

from __future__ import annotations

from typing import Callable

from ...net import Endpoint, Node
from .http import Headers, HttpRequest, HttpResponse, HttpStreamParser
from .urls import parse_http_url

ResponseHandler = Callable[[HttpResponse], None]
ErrorHandler = Callable[[Exception], None]


def http_request(
    node: Node,
    method: str,
    url: str,
    headers: Headers | None = None,
    body: bytes = b"",
    on_response: ResponseHandler | None = None,
    on_error: ErrorHandler | None = None,
) -> None:
    """Open a connection, send one request, deliver the parsed response.

    The connection closes after the exchange (HTTP/1.0-style one-shot, which
    matches how UPnP stacks fetch description documents).
    """
    host, port, path = parse_http_url(url)
    request_headers = headers if headers is not None else Headers()
    if "HOST" not in request_headers:
        request_headers.add("HOST", f"{host}:{port}")
    if body and "CONTENT-LENGTH" not in request_headers:
        request_headers.add("CONTENT-LENGTH", str(len(body)))
    request = HttpRequest(method=method, target=path, headers=request_headers, body=body)
    parser = HttpStreamParser()
    delivered = []

    def handle_connected(connection) -> None:
        def handle_data(chunk: bytes) -> None:
            for message in parser.feed(chunk):
                if delivered:
                    continue
                delivered.append(message)
                connection.close()
                if on_response is not None and isinstance(message, HttpResponse):
                    on_response(message)

        connection.on_data(handle_data)
        connection.send(request.render())

    def handle_error(error: Exception) -> None:
        if on_error is not None:
            on_error(error)

    node.tcp.connect(Endpoint(host, port), handle_connected, on_error=handle_error)


def http_get(
    node: Node,
    url: str,
    on_response: ResponseHandler,
    on_error: ErrorHandler | None = None,
) -> None:
    http_request(node, "GET", url, on_response=on_response, on_error=on_error)


def http_post(
    node: Node,
    url: str,
    body: bytes,
    headers: Headers | None = None,
    on_response: ResponseHandler | None = None,
    on_error: ErrorHandler | None = None,
) -> None:
    http_request(
        node, "POST", url, headers=headers, body=body, on_response=on_response, on_error=on_error
    )


__all__ = ["http_request", "http_get", "http_post"]

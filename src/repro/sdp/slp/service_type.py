"""SLP service-type strings (RFC 2608 §4, RFC 2609).

A service type is ``service:<abstract>[:<concrete>]`` with an optional
naming authority (``service:clock.acme``).  Matching rules: a request for
the abstract type matches any concrete type beneath it; a request for a
concrete type matches only that concrete type.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SlpServiceTypeError

_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789+-")


def _validate_token(token: str, what: str) -> str:
    if not token:
        raise SlpServiceTypeError(f"empty {what} in service type")
    lowered = token.lower()
    if not set(lowered) <= _ALLOWED:
        raise SlpServiceTypeError(f"illegal character in {what}: {token!r}")
    return lowered


@dataclass(frozen=True)
class ServiceType:
    """A parsed SLP service type."""

    abstract: str
    concrete: str = ""
    naming_authority: str = ""

    @classmethod
    def parse(cls, text: str) -> "ServiceType":
        """Parse ``service:abstract[.na][:concrete]``.

        The ``service:`` prefix is optional on input (some clients omit it)
        but always present in :meth:`render` output.
        """
        if not text or not text.strip():
            raise SlpServiceTypeError("empty service type")
        value = text.strip().lower()
        if value.startswith("service:"):
            value = value[len("service:"):]
        if not value:
            raise SlpServiceTypeError(f"no type after 'service:' in {text!r}")
        parts = value.split(":")
        if len(parts) > 2:
            # service:clock:soap:extra is malformed; keep first two levels.
            raise SlpServiceTypeError(f"too many ':' levels in {text!r}")
        head = parts[0]
        concrete = parts[1] if len(parts) == 2 else ""
        if "." in head:
            abstract, authority = head.split(".", 1)
            authority = _validate_token(authority, "naming authority")
        else:
            abstract, authority = head, ""
        abstract = _validate_token(abstract, "abstract type")
        if concrete:
            concrete = _validate_token(concrete, "concrete type")
        return cls(abstract=abstract, concrete=concrete, naming_authority=authority)

    def render(self) -> str:
        head = self.abstract
        if self.naming_authority:
            head = f"{head}.{self.naming_authority}"
        if self.concrete:
            return f"service:{head}:{self.concrete}"
        return f"service:{head}"

    def matches(self, request: "ServiceType") -> bool:
        """True when an offer of this type satisfies ``request``.

        An abstract request (``service:clock``) matches any concrete
        offering (``service:clock:soap``); a concrete request matches only
        the identical concrete type.  Naming authorities must agree.
        """
        if self.abstract != request.abstract:
            return False
        if self.naming_authority != request.naming_authority:
            return False
        if request.concrete and self.concrete != request.concrete:
            return False
        return True

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.render()


__all__ = ["ServiceType"]

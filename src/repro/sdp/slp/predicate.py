"""LDAPv3-style search filters for SLP SrvRqst predicates (RFC 2608 §8.1).

Supported grammar (a faithful subset of RFC 2254)::

    filter     = "(" ( and / or / not / item ) ")"
    and        = "&" filter *filter
    or         = "|" filter *filter
    not        = "!" filter
    item       = attr ( "=" / ">=" / "<=" ) value
               | attr "=*"                      ; presence

Values compare numerically when both sides parse as integers, otherwise
case-insensitively as strings.  ``*`` inside an equality value is a
wildcard (substring match), as in LDAP.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from .errors import SlpPredicateError

Filter = Union["And", "Or", "Not", "Comparison", "Presence"]


@dataclass(frozen=True)
class And:
    children: tuple

    def evaluate(self, attributes: dict) -> bool:
        return all(child.evaluate(attributes) for child in self.children)


@dataclass(frozen=True)
class Or:
    children: tuple

    def evaluate(self, attributes: dict) -> bool:
        return any(child.evaluate(attributes) for child in self.children)


@dataclass(frozen=True)
class Not:
    child: Filter

    def evaluate(self, attributes: dict) -> bool:
        return not self.child.evaluate(attributes)


@dataclass(frozen=True)
class Presence:
    attr: str

    def evaluate(self, attributes: dict) -> bool:
        return _lookup(attributes, self.attr) is not None


@dataclass(frozen=True)
class Comparison:
    attr: str
    op: str  # '=', '>=', '<='
    value: str

    def evaluate(self, attributes: dict) -> bool:
        actual = _lookup(attributes, self.attr)
        if actual is None:
            return False
        values = actual if isinstance(actual, (list, tuple)) else [actual]
        return any(self._matches_one(v) for v in values)

    def _matches_one(self, actual) -> bool:
        if actual is True:
            # Keyword attribute: present but valueless; only presence and
            # wildcard-equality can match it.
            return self.op == "=" and self.value == "*"
        actual_text = str(actual)
        if self.op == "=":
            if "*" in self.value:
                pattern = ".*".join(re.escape(part) for part in self.value.split("*"))
                return re.fullmatch(pattern, actual_text, re.IGNORECASE) is not None
            left, right = _coerce(actual_text, self.value)
            return left == right
        left, right = _coerce(actual_text, self.value)
        if type(left) is not type(right):
            left, right = actual_text.lower(), self.value.lower()
        if self.op == ">=":
            return left >= right
        if self.op == "<=":
            return left <= right
        raise SlpPredicateError(f"unknown operator {self.op!r}")


def _lookup(attributes: dict, attr: str):
    for key, value in attributes.items():
        if key.lower() == attr.lower():
            return value
    return None


def _coerce(left: str, right: str):
    try:
        return int(left), int(right)
    except ValueError:
        return left.lower(), right.lower()


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    def parse(self) -> Filter:
        node = self._parse_filter()
        self._skip_ws()
        if self.pos != len(self.text):
            raise SlpPredicateError(f"trailing data after filter: {self.text[self.pos:]!r}")
        return node

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def _expect(self, ch: str) -> None:
        if self.pos >= len(self.text) or self.text[self.pos] != ch:
            found = self.text[self.pos] if self.pos < len(self.text) else "<end>"
            raise SlpPredicateError(f"expected {ch!r} at {self.pos}, found {found!r}")
        self.pos += 1

    def _parse_filter(self) -> Filter:
        self._skip_ws()
        self._expect("(")
        self._skip_ws()
        if self.pos >= len(self.text):
            raise SlpPredicateError("unexpected end of filter")
        ch = self.text[self.pos]
        if ch == "&":
            self.pos += 1
            node: Filter = And(tuple(self._parse_filter_list()))
        elif ch == "|":
            self.pos += 1
            node = Or(tuple(self._parse_filter_list()))
        elif ch == "!":
            self.pos += 1
            node = Not(self._parse_filter())
        else:
            node = self._parse_item()
        self._skip_ws()
        self._expect(")")
        return node

    def _parse_filter_list(self) -> list[Filter]:
        children = []
        while True:
            self._skip_ws()
            if self.pos < len(self.text) and self.text[self.pos] == "(":
                children.append(self._parse_filter())
            else:
                break
        if not children:
            raise SlpPredicateError("empty filter list for &/|")
        return children

    def _parse_item(self) -> Filter:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos] not in "=<>)(":
            self.pos += 1
        attr = self.text[start : self.pos].strip()
        if not attr:
            raise SlpPredicateError(f"missing attribute name at {start}")
        if self.pos >= len(self.text):
            raise SlpPredicateError("unexpected end in comparison")
        ch = self.text[self.pos]
        if ch in "<>":
            op = ch + "="
            self.pos += 1
            self._expect("=")
        elif ch == "=":
            op = "="
            self.pos += 1
        else:
            raise SlpPredicateError(f"expected comparison operator at {self.pos}")
        start = self.pos
        depth = 0
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch == "(":
                depth += 1
            elif ch == ")":
                if depth == 0:
                    break
                depth -= 1
            self.pos += 1
        value = self.text[start : self.pos].strip()
        if op == "=" and value == "*":
            return Presence(attr)
        return Comparison(attr, op, value)


def parse_predicate(text: str) -> Filter | None:
    """Parse an SLP predicate; the empty predicate matches everything."""
    if not text or not text.strip():
        return None
    return _Parser(text.strip()).parse()


def matches(predicate_text: str, attributes: dict) -> bool:
    """Convenience: parse and evaluate in one step."""
    predicate = parse_predicate(predicate_text)
    if predicate is None:
        return True
    return predicate.evaluate(attributes)


__all__ = [
    "parse_predicate",
    "matches",
    "And",
    "Or",
    "Not",
    "Comparison",
    "Presence",
]

"""SLPv2 binary wire codec (RFC 2608 §8).

Layout of the common header::

     0                   1                   2                   3
     0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |    Version    |  Function-ID  |            Length             |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    | Length, contd.|O|F|R|       reserved          |Next Ext Offset|
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |  Next Extension Offset, contd.|              XID              |
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
    |      Language Tag Length      |         Language Tag          \\
    +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+

Strings on the wire are 2-byte-length-prefixed UTF-8.  Scope and previous
responder lists serialize comma-joined.  Authentication block counts are
always written as zero (and non-zero counts are rejected on decode).
"""

from __future__ import annotations

import struct

from .constants import (
    ErrorCode,
    Flags,
    FunctionId,
    RESERVED_FLAG_MASK,
    SLP_VERSION,
)
from .errors import SlpDecodeError, SlpEncodeError
from .messages import (
    AttrRply,
    AttrRqst,
    DAAdvert,
    Header,
    SAAdvert,
    SlpMessage,
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    SrvTypeRply,
    SrvTypeRqst,
    UrlEntry,
)

_HEADER_FIXED = struct.Struct("!BB")  # version, function id


class _Writer:
    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def u8(self, value: int) -> None:
        self._chunks.append(struct.pack("!B", value & 0xFF))

    def u16(self, value: int) -> None:
        if not 0 <= value <= 0xFFFF:
            raise SlpEncodeError(f"u16 out of range: {value}")
        self._chunks.append(struct.pack("!H", value))

    def u24(self, value: int) -> None:
        if not 0 <= value <= 0xFFFFFF:
            raise SlpEncodeError(f"u24 out of range: {value}")
        self._chunks.append(struct.pack("!I", value)[1:])

    def u32(self, value: int) -> None:
        self._chunks.append(struct.pack("!I", value & 0xFFFFFFFF))

    def string(self, text: str) -> None:
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise SlpEncodeError(f"string too long for SLP: {len(data)} bytes")
        self.u16(len(data))
        self._chunks.append(data)

    def string_list(self, items) -> None:
        self.string(",".join(items))

    def url_entry(self, entry: UrlEntry) -> None:
        self.u8(0)  # reserved
        if not 0 <= entry.lifetime_s <= 0xFFFF:
            raise SlpEncodeError(f"lifetime out of range: {entry.lifetime_s}")
        self.u16(entry.lifetime_s)
        self.string(entry.url)
        self.u8(0)  # number of URL auth blocks

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class _Reader:
    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if self.remaining < count:
            raise SlpDecodeError(
                f"truncated message: wanted {count} bytes, have {self.remaining}"
            )
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def u8(self) -> int:
        return self._take(1)[0]

    def u16(self) -> int:
        return struct.unpack("!H", self._take(2))[0]

    def u24(self) -> int:
        return struct.unpack("!I", b"\x00" + self._take(3))[0]

    def u32(self) -> int:
        return struct.unpack("!I", self._take(4))[0]

    def string(self) -> str:
        length = self.u16()
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SlpDecodeError(f"invalid UTF-8 in string: {exc}") from exc

    def string_list(self) -> tuple[str, ...]:
        text = self.string()
        if not text:
            return ()
        return tuple(text.split(","))

    def url_entry(self) -> UrlEntry:
        self.u8()  # reserved
        lifetime = self.u16()
        url = self.string()
        auth_count = self.u8()
        if auth_count:
            raise SlpDecodeError("URL authentication blocks are not supported")
        return UrlEntry(url=url, lifetime_s=lifetime)


def _encode_header(writer: _Writer, header: Header, body: bytes) -> bytes:
    lang = header.language_tag.encode("ascii")
    header_len = 2 + 3 + 2 + 3 + 2 + 2 + len(lang)
    total = header_len + len(body)
    out = _Writer()
    out.u8(SLP_VERSION)
    out.u8(int(header.function_id))
    out.u24(total)
    if header.flags & RESERVED_FLAG_MASK:
        raise SlpEncodeError(f"reserved flag bits set: {header.flags:#06x}")
    out.u16(header.flags)
    out.u24(0)  # next extension offset
    out.u16(header.xid)
    out.u16(len(lang))
    out._chunks.append(lang)
    out._chunks.append(body)
    return out.getvalue()


#: Per-frame decode-memo key for the SLP wire codec: every native SLP
#: endpoint and the SLP unit share (or pre-seed) decoded messages under
#: this key on the delivering frame's FrameMemo.
WIRE_MEMO_KEY = "slp-wire"


def encode(message: SlpMessage) -> bytes:
    """Render any SLP message dataclass to its binary wire form."""
    writer = _Writer()
    header = message.header
    fid = header.function_id

    if isinstance(message, SrvRqst):
        writer.string_list(message.prlist)
        writer.string(message.service_type)
        writer.string_list(message.scopes)
        writer.string(message.predicate)
        writer.string(message.spi)
    elif isinstance(message, SrvRply):
        writer.u16(int(message.error_code))
        writer.u16(len(message.url_entries))
        for entry in message.url_entries:
            writer.url_entry(entry)
    elif isinstance(message, SrvReg):
        writer.url_entry(message.url_entry)
        writer.string(message.service_type)
        writer.string_list(message.scopes)
        writer.string(message.attr_list)
        writer.u8(0)  # attr auth block count
    elif isinstance(message, SrvDeReg):
        writer.string_list(message.scopes)
        writer.url_entry(message.url_entry)
        writer.string(message.tag_list)
    elif isinstance(message, SrvAck):
        writer.u16(int(message.error_code))
    elif isinstance(message, AttrRqst):
        writer.string_list(message.prlist)
        writer.string(message.url)
        writer.string_list(message.scopes)
        writer.string(message.tag_list)
        writer.string(message.spi)
    elif isinstance(message, AttrRply):
        writer.u16(int(message.error_code))
        writer.string(message.attr_list)
        writer.u8(0)  # attr auth block count
    elif isinstance(message, DAAdvert):
        writer.u16(int(message.error_code))
        writer.u32(message.boot_timestamp)
        writer.string(message.url)
        writer.string_list(message.scopes)
        writer.string(message.attr_list)
        writer.string(message.spi)
        writer.u8(0)  # auth block count
    elif isinstance(message, SrvTypeRqst):
        writer.string_list(message.prlist)
        writer.string(message.naming_authority)
        writer.string_list(message.scopes)
    elif isinstance(message, SrvTypeRply):
        writer.u16(int(message.error_code))
        writer.string_list(message.service_types)
    elif isinstance(message, SAAdvert):
        writer.string(message.url)
        writer.string_list(message.scopes)
        writer.string(message.attr_list)
        writer.u8(0)  # auth block count
    else:  # pragma: no cover - exhaustiveness guard
        raise SlpEncodeError(f"cannot encode {type(message).__name__}")

    return _encode_header(writer, header, writer.getvalue())


def decode_header(data: bytes) -> tuple[Header, int, int]:
    """Decode the common header; returns (header, total_length, body_offset)."""
    if len(data) < 5:
        raise SlpDecodeError(f"message too short for SLP header: {len(data)} bytes")
    version, function_raw = _HEADER_FIXED.unpack_from(data, 0)
    if version != SLP_VERSION:
        raise SlpDecodeError(f"unsupported SLP version {version}")
    try:
        function_id = FunctionId(function_raw)
    except ValueError as exc:
        raise SlpDecodeError(f"unknown function id {function_raw}") from exc
    reader = _Reader(data)
    reader._take(2)
    total_length = reader.u24()
    if total_length > len(data):
        raise SlpDecodeError(
            f"declared length {total_length} exceeds buffer {len(data)}"
        )
    flags = reader.u16()
    reader.u24()  # next extension offset (unsupported, ignored)
    xid = reader.u16()
    lang_len = reader.u16()
    language = reader._take(lang_len).decode("ascii")
    header = Header(function_id=function_id, xid=xid, flags=flags, language_tag=language)
    return header, total_length, reader._pos


def decode(data: bytes) -> SlpMessage:
    """Decode binary wire data into the corresponding message dataclass."""
    header, total_length, offset = decode_header(data)
    reader = _Reader(data[offset:total_length])
    fid = header.function_id

    if fid is FunctionId.SRVRQST:
        return SrvRqst(
            header=header,
            prlist=reader.string_list(),
            service_type=reader.string(),
            scopes=reader.string_list(),
            predicate=reader.string(),
            spi=reader.string(),
        )
    if fid is FunctionId.SRVRPLY:
        error = ErrorCode(reader.u16())
        count = reader.u16()
        entries = tuple(reader.url_entry() for _ in range(count))
        return SrvRply(header=header, error_code=error, url_entries=entries)
    if fid is FunctionId.SRVREG:
        entry = reader.url_entry()
        service_type = reader.string()
        scopes = reader.string_list()
        attr_list = reader.string()
        if reader.u8():
            raise SlpDecodeError("attribute authentication blocks are not supported")
        return SrvReg(
            header=header,
            url_entry=entry,
            service_type=service_type,
            scopes=scopes,
            attr_list=attr_list,
        )
    if fid is FunctionId.SRVDEREG:
        return SrvDeReg(
            header=header,
            scopes=reader.string_list(),
            url_entry=reader.url_entry(),
            tag_list=reader.string(),
        )
    if fid is FunctionId.SRVACK:
        return SrvAck(header=header, error_code=ErrorCode(reader.u16()))
    if fid is FunctionId.ATTRRQST:
        return AttrRqst(
            header=header,
            prlist=reader.string_list(),
            url=reader.string(),
            scopes=reader.string_list(),
            tag_list=reader.string(),
            spi=reader.string(),
        )
    if fid is FunctionId.ATTRRPLY:
        error = ErrorCode(reader.u16())
        attr_list = reader.string()
        if reader.u8():
            raise SlpDecodeError("attribute authentication blocks are not supported")
        return AttrRply(header=header, error_code=error, attr_list=attr_list)
    if fid is FunctionId.DAADVERT:
        error = ErrorCode(reader.u16())
        boot = reader.u32()
        url = reader.string()
        scopes = reader.string_list()
        attr_list = reader.string()
        spi = reader.string()
        if reader.u8():
            raise SlpDecodeError("DAAdvert authentication blocks are not supported")
        return DAAdvert(
            header=header,
            error_code=error,
            boot_timestamp=boot,
            url=url,
            scopes=scopes,
            attr_list=attr_list,
            spi=spi,
        )
    if fid is FunctionId.SRVTYPERQST:
        return SrvTypeRqst(
            header=header,
            prlist=reader.string_list(),
            naming_authority=reader.string(),
            scopes=reader.string_list(),
        )
    if fid is FunctionId.SRVTYPERPLY:
        return SrvTypeRply(
            header=header,
            error_code=ErrorCode(reader.u16()),
            service_types=reader.string_list(),
        )
    if fid is FunctionId.SAADVERT:
        url = reader.string()
        scopes = reader.string_list()
        attr_list = reader.string()
        if reader.u8():
            raise SlpDecodeError("SAAdvert authentication blocks are not supported")
        return SAAdvert(header=header, url=url, scopes=scopes, attr_list=attr_list)

    raise SlpDecodeError(f"unhandled function id {fid}")  # pragma: no cover


def is_multicast_request(message: SlpMessage) -> bool:
    """True when the REQUEST MCAST header flag is set."""
    return bool(message.header.flags & Flags.REQUEST_MCAST)


__all__ = ["encode", "decode", "decode_header", "is_multicast_request", "WIRE_MEMO_KEY"]

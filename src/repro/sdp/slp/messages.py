"""SLPv2 message dataclasses (RFC 2608 §8-§10).

These are the in-memory forms; :mod:`repro.sdp.slp.wire` maps them to and
from the binary wire format.  Fields mirror the RFC's message layouts,
omitting authentication blocks (always empty here, as in most deployments
and in the paper's testbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .constants import (
    DEFAULT_LANGUAGE,
    DEFAULT_LIFETIME_S,
    DEFAULT_SCOPE,
    ErrorCode,
    FunctionId,
)


@dataclass(frozen=True)
class Header:
    """The SLPv2 common header (RFC 2608 §8)."""

    function_id: FunctionId
    xid: int = 0
    flags: int = 0
    language_tag: str = DEFAULT_LANGUAGE

    def with_flags(self, flags: int) -> "Header":
        return Header(self.function_id, self.xid, flags, self.language_tag)


@dataclass(frozen=True)
class UrlEntry:
    """A URL entry: lifetime plus access URL (RFC 2608 §4.3)."""

    url: str
    lifetime_s: int = DEFAULT_LIFETIME_S


@dataclass(frozen=True)
class SrvRqst:
    """Service request (function 1)."""

    header: Header
    prlist: tuple[str, ...] = ()
    service_type: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    predicate: str = ""
    spi: str = ""


@dataclass(frozen=True)
class SrvRply:
    """Service reply (function 2)."""

    header: Header
    error_code: ErrorCode = ErrorCode.OK
    url_entries: tuple[UrlEntry, ...] = ()


@dataclass(frozen=True)
class SrvReg:
    """Service registration (function 3)."""

    header: Header
    url_entry: UrlEntry = field(default_factory=lambda: UrlEntry(""))
    service_type: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    attr_list: str = ""


@dataclass(frozen=True)
class SrvDeReg:
    """Service deregistration (function 4)."""

    header: Header
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    url_entry: UrlEntry = field(default_factory=lambda: UrlEntry(""))
    tag_list: str = ""


@dataclass(frozen=True)
class SrvAck:
    """Service acknowledgement (function 5)."""

    header: Header
    error_code: ErrorCode = ErrorCode.OK


@dataclass(frozen=True)
class AttrRqst:
    """Attribute request (function 6)."""

    header: Header
    prlist: tuple[str, ...] = ()
    url: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    tag_list: str = ""
    spi: str = ""


@dataclass(frozen=True)
class AttrRply:
    """Attribute reply (function 7)."""

    header: Header
    error_code: ErrorCode = ErrorCode.OK
    attr_list: str = ""


@dataclass(frozen=True)
class DAAdvert:
    """Directory agent advertisement (function 8)."""

    header: Header
    error_code: ErrorCode = ErrorCode.OK
    boot_timestamp: int = 0
    url: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    attr_list: str = ""
    spi: str = ""


@dataclass(frozen=True)
class SrvTypeRqst:
    """Service type request (function 9)."""

    header: Header
    prlist: tuple[str, ...] = ()
    naming_authority: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)


@dataclass(frozen=True)
class SrvTypeRply:
    """Service type reply (function 10)."""

    header: Header
    error_code: ErrorCode = ErrorCode.OK
    service_types: tuple[str, ...] = ()


@dataclass(frozen=True)
class SAAdvert:
    """Service agent advertisement (function 11)."""

    header: Header
    url: str = ""
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    attr_list: str = ""


#: Union of all message types, keyed by function id (used by the codec).
MESSAGE_TYPES = {
    FunctionId.SRVRQST: SrvRqst,
    FunctionId.SRVRPLY: SrvRply,
    FunctionId.SRVREG: SrvReg,
    FunctionId.SRVDEREG: SrvDeReg,
    FunctionId.SRVACK: SrvAck,
    FunctionId.ATTRRQST: AttrRqst,
    FunctionId.ATTRRPLY: AttrRply,
    FunctionId.DAADVERT: DAAdvert,
    FunctionId.SRVTYPERQST: SrvTypeRqst,
    FunctionId.SRVTYPERPLY: SrvTypeRply,
    FunctionId.SAADVERT: SAAdvert,
}

SlpMessage = (
    SrvRqst
    | SrvRply
    | SrvReg
    | SrvDeReg
    | SrvAck
    | AttrRqst
    | AttrRply
    | DAAdvert
    | SrvTypeRqst
    | SrvTypeRply
    | SAAdvert
)


__all__ = [
    "Header",
    "UrlEntry",
    "SrvRqst",
    "SrvRply",
    "SrvReg",
    "SrvDeReg",
    "SrvAck",
    "AttrRqst",
    "AttrRply",
    "DAAdvert",
    "SrvTypeRqst",
    "SrvTypeRply",
    "SAAdvert",
    "SlpMessage",
    "MESSAGE_TYPES",
]

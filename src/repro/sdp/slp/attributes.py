"""SLP attribute lists (RFC 2608 §5.3).

Wire form: ``(key=value),(multi=a,b,c),keyword`` — parenthesized
key/value pairs and bare keyword attributes, comma separated.  Values are
kept as strings; multi-valued attributes map to lists.  A bare keyword maps
to ``True``.

A small escape scheme (``\\2c`` style, RFC 2608 §5.3) covers the reserved
characters so round-tripping arbitrary values is safe — the property tests
lean on this.
"""

from __future__ import annotations

from .errors import SlpDecodeError

AttrValue = "str | list[str] | bool"
_RESERVED = "(),\\=!<>~;*+"


def escape_value(value: str) -> str:
    """Escape reserved characters as two-digit hex per RFC 2608 §5.3."""
    out = []
    for ch in value:
        if ch in _RESERVED or ord(ch) < 0x20:
            out.append(f"\\{ord(ch):02x}")
        else:
            out.append(ch)
    return "".join(out)


def unescape_value(value: str) -> str:
    out = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\":
            if i + 2 >= len(value) + 1 and len(value) - i < 3:
                raise SlpDecodeError(f"truncated escape in {value!r}")
            hex_digits = value[i + 1 : i + 3]
            try:
                out.append(chr(int(hex_digits, 16)))
            except ValueError as exc:
                raise SlpDecodeError(f"bad escape {hex_digits!r} in {value!r}") from exc
            i += 3
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def serialize_attributes(attributes: dict) -> str:
    """Render an attribute dict to the SLP wire string.

    ``True`` values become keyword attributes; lists become multi-valued
    attributes; everything else is stringified.
    """
    parts = []
    for key, value in attributes.items():
        escaped_key = escape_value(str(key))
        if value is True:
            parts.append(escaped_key)
        elif isinstance(value, (list, tuple)):
            rendered = ",".join(escape_value(str(v)) for v in value)
            parts.append(f"({escaped_key}={rendered})")
        else:
            parts.append(f"({escaped_key}={escape_value(str(value))})")
    return ",".join(parts)


def _split_top_level(text: str) -> list[str]:
    """Split on commas that are not inside parentheses."""
    items: list[str] = []
    depth = 0
    current: list[str] = []
    i = 0
    while i < len(text):
        ch = text[i]
        if ch == "\\" and i + 2 < len(text) + 1:
            current.append(text[i : i + 3])
            i += 3
            continue
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
            if depth < 0:
                raise SlpDecodeError(f"unbalanced ')' in attribute list {text!r}")
        if ch == "," and depth == 0:
            items.append("".join(current))
            current = []
        else:
            current.append(ch)
        i += 1
    if depth != 0:
        raise SlpDecodeError(f"unbalanced '(' in attribute list {text!r}")
    if current or items:
        items.append("".join(current))
    return [item for item in items if item != ""]


def parse_attributes(text: str) -> dict:
    """Parse the SLP attribute wire string into a dict.

    Returns ``{}`` for the empty string.  Raises :class:`SlpDecodeError` for
    malformed input (unbalanced parentheses, missing ``=``).
    """
    if not text:
        return {}
    attributes: dict = {}
    for item in _split_top_level(text):
        if item.startswith("("):
            if not item.endswith(")"):
                raise SlpDecodeError(f"malformed attribute {item!r}")
            body = item[1:-1]
            key, sep, raw_value = body.partition("=")
            if not sep:
                raise SlpDecodeError(f"attribute without '=' in {item!r}")
            key = unescape_value(key)
            values = [unescape_value(v) for v in raw_value.split(",")]
            attributes[key] = values if len(values) > 1 else values[0]
        else:
            attributes[unescape_value(item)] = True
    return attributes


__all__ = [
    "serialize_attributes",
    "parse_attributes",
    "escape_value",
    "unescape_value",
]

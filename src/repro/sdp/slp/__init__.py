"""Service Location Protocol v2 (RFC 2608 subset) — the OpenSLP stand-in.

Public surface:

* :mod:`~repro.sdp.slp.wire` — binary encode/decode;
* :class:`~repro.sdp.slp.agent.UserAgent`,
  :class:`~repro.sdp.slp.agent.ServiceAgent`,
  :class:`~repro.sdp.slp.agent.DirectoryAgent` — the three RFC roles;
* predicate and attribute-list handling.
"""

from .agent import (
    DirectoryAgent,
    PendingSearch,
    ServiceAgent,
    SlpConfig,
    SlpRegistration,
    SlpTimings,
    UserAgent,
)
from .attributes import parse_attributes, serialize_attributes
from .constants import (
    DEFAULT_SCOPE,
    ErrorCode,
    Flags,
    FunctionId,
    SLP_MULTICAST_GROUP,
    SLP_PORT,
    SLP_VERSION,
)
from .errors import (
    SlpDecodeError,
    SlpEncodeError,
    SlpError,
    SlpPredicateError,
    SlpServiceTypeError,
)
from .messages import (
    AttrRply,
    AttrRqst,
    DAAdvert,
    Header,
    SAAdvert,
    SlpMessage,
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    SrvTypeRply,
    SrvTypeRqst,
    UrlEntry,
)
from .predicate import matches as predicate_matches
from .predicate import parse_predicate
from .service_type import ServiceType
from .wire import decode, decode_header, encode

__all__ = [
    "AttrRply",
    "AttrRqst",
    "DAAdvert",
    "DEFAULT_SCOPE",
    "DirectoryAgent",
    "ErrorCode",
    "Flags",
    "FunctionId",
    "Header",
    "PendingSearch",
    "SAAdvert",
    "SLP_MULTICAST_GROUP",
    "SLP_PORT",
    "SLP_VERSION",
    "ServiceAgent",
    "ServiceType",
    "SlpConfig",
    "SlpDecodeError",
    "SlpEncodeError",
    "SlpError",
    "SlpMessage",
    "SlpPredicateError",
    "SlpRegistration",
    "SlpServiceTypeError",
    "SlpTimings",
    "SrvAck",
    "SrvDeReg",
    "SrvReg",
    "SrvRply",
    "SrvRqst",
    "SrvTypeRply",
    "SrvTypeRqst",
    "UrlEntry",
    "UserAgent",
    "decode",
    "decode_header",
    "encode",
    "parse_attributes",
    "parse_predicate",
    "predicate_matches",
    "serialize_attributes",
]

"""SLP protocol agents: User Agent, Service Agent, Directory Agent.

These stand in for OpenSLP in the paper's testbed (§4.3).  All three roles
follow RFC 2608's discovery models, which the paper's §2 taxonomy builds
on:

* **active** discovery — the UA multicasts ``SrvRqst`` and SAs answer with
  unicast ``SrvRply`` (repository-less active model);
* **passive** discovery — SAs periodically multicast ``SAAdvert`` and UAs
  listen (repository-less passive model);
* with a **repository** — a DA multicasts unsolicited ``DAAdvert``; SAs
  register via unicast ``SrvReg`` and UAs query via unicast ``SrvRqst``.

Per-operation processing delays come from :class:`SlpTimings` so the
benchmark harness can charge OpenSLP-like library costs (see
``repro.bench.calibration``) while unit tests run with zero-cost timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Optional

from ...net import Endpoint, MEMO_MISS, Node, Timer
from .attributes import parse_attributes, serialize_attributes
from .constants import (
    DA_SERVICE_TYPE,
    DEFAULT_LIFETIME_S,
    DEFAULT_SCOPE,
    ErrorCode,
    Flags,
    FunctionId,
    SLP_MULTICAST_GROUP,
    SLP_PORT,
)
from .errors import SlpDecodeError
from .messages import (
    AttrRply,
    AttrRqst,
    DAAdvert,
    Header,
    SAAdvert,
    SlpMessage,
    SrvAck,
    SrvDeReg,
    SrvReg,
    SrvRply,
    SrvRqst,
    SrvTypeRply,
    SrvTypeRqst,
    UrlEntry,
)
from .predicate import matches as predicate_matches
from .service_type import ServiceType
from .wire import WIRE_MEMO_KEY, decode, encode


@dataclass
class SlpTimings:
    """Per-operation processing delays (microseconds) for one SLP stack.

    Defaults model a thin native stack; the calibrated OpenSLP profile in
    ``repro.bench.calibration`` reproduces the paper's 0.7 ms native median.
    """

    request_build_us: int = 10
    reply_parse_us: int = 10
    match_us: int = 10
    register_us: int = 10
    advert_build_us: int = 10

    def scaled(self, factor: float) -> "SlpTimings":
        return SlpTimings(
            request_build_us=int(self.request_build_us * factor),
            reply_parse_us=int(self.reply_parse_us * factor),
            match_us=int(self.match_us * factor),
            register_us=int(self.register_us * factor),
            advert_build_us=int(self.advert_build_us * factor),
        )


@dataclass
class SlpConfig:
    """Knobs shared by all agent roles."""

    port: int = SLP_PORT
    multicast_group: str = SLP_MULTICAST_GROUP
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    #: How long a UA waits for multicast convergence before completing.
    wait_us: int = 15_000
    #: Multicast retransmissions after the initial request.
    retries: int = 1
    timings: SlpTimings = field(default_factory=SlpTimings)
    #: Passive model: SA advertises itself every this many microseconds.
    advertise_period_us: int = 2_000_000


@dataclass
class SlpRegistration:
    """One service held by an SA or DA."""

    url: str
    service_type: ServiceType
    scopes: tuple[str, ...] = (DEFAULT_SCOPE,)
    attributes: dict = field(default_factory=dict)
    lifetime_s: int = DEFAULT_LIFETIME_S

    def matches_request(self, request: SrvRqst) -> bool:
        try:
            wanted = ServiceType.parse(request.service_type)
        except Exception:
            return False
        if not self.service_type.matches(wanted):
            return False
        if request.scopes and not set(s.upper() for s in request.scopes) & set(
            s.upper() for s in self.scopes
        ):
            return False
        if request.predicate:
            return predicate_matches(request.predicate, self.attributes)
        return True


class PendingSearch:
    """Handle for an in-flight UA search; collects replies until timeout."""

    def __init__(self, agent: "UserAgent", xid: int, started_at_us: int):
        self._agent = agent
        self.xid = xid
        self.started_at_us = started_at_us
        self.results: list[UrlEntry] = []
        self.responders: list[str] = []
        self.completed = False
        self.first_reply_at_us: Optional[int] = None
        self.on_first: Optional[Callable[[UrlEntry], None]] = None
        self.on_complete: Optional[Callable[["PendingSearch"], None]] = None

    @property
    def first_latency_us(self) -> Optional[int]:
        if self.first_reply_at_us is None:
            return None
        return self.first_reply_at_us - self.started_at_us

    def _add(self, entries: tuple[UrlEntry, ...], responder: str, now_us: int) -> None:
        fresh = [e for e in entries if e.url not in {r.url for r in self.results}]
        self.results.extend(fresh)
        if responder not in self.responders:
            self.responders.append(responder)
        if self.first_reply_at_us is None and entries:
            self.first_reply_at_us = now_us
            if self.on_first is not None:
                self.on_first(entries[0])

    def _complete(self) -> None:
        if self.completed:
            return
        self.completed = True
        if self.on_complete is not None:
            self.on_complete(self)


class _SlpEndpointBase:
    """Socket plumbing shared by all SLP roles on one node."""

    def __init__(self, node: Node, config: SlpConfig | None = None):
        self.node = node
        self.config = config if config is not None else SlpConfig()
        self._socket = node.udp.socket().bind(self.config.port, reuse=True)
        self._socket.join_group(self.config.multicast_group)
        self._socket.on_datagram(self._on_datagram)
        self.decode_errors = 0
        self._parse_counter = node.network.parse_counter("slp")

    @property
    def address(self) -> str:
        return self.node.address

    def close(self) -> None:
        self._socket.close()

    def _send(self, message: SlpMessage, destination: Endpoint) -> None:
        # Seed the frame memo with the structured form: receivers share the
        # sender's message instead of decoding the wire bytes back.
        self._parse_counter.note_seed()
        self._socket.sendto(
            encode(message), destination,
            decode_hint=(self._WIRE_MEMO_KEY, message),
        )

    def _send_multicast(self, message: SlpMessage) -> None:
        self._send(message, Endpoint(self.config.multicast_group, self.config.port))

    #: Per-frame memo key for the shared wire decode (all SLP endpoints on
    #: a segment hear the same multicast frame; the first decodes, the
    #: rest reuse — messages are treated as read-only by every handler).
    _WIRE_MEMO_KEY = WIRE_MEMO_KEY

    def _on_datagram(self, datagram) -> None:
        memo = datagram.ensure_memo()
        message = memo.lookup(self._WIRE_MEMO_KEY, datagram.payload)
        if message is MEMO_MISS:
            try:
                message = decode(datagram.payload)
            except SlpDecodeError:
                message = None
            self._parse_counter.decoded += 1
            memo.store(self._WIRE_MEMO_KEY, datagram.payload, message)
        else:
            self._parse_counter.shared += 1
        if message is None:
            self.decode_errors += 1
            return
        self._handle(message, datagram.source, datagram.multicast)

    def _handle(self, message: SlpMessage, source: Endpoint, was_multicast: bool) -> None:
        raise NotImplementedError


class ServiceAgent(_SlpEndpointBase):
    """Hosts registrations and answers matching requests (RFC 2608 SA).

    With ``passive=True`` the SA also multicasts periodic ``SAAdvert``
    carrying its service URL — the paper's repository-less passive model.
    """

    def __init__(
        self,
        node: Node,
        config: SlpConfig | None = None,
        passive: bool = False,
    ):
        super().__init__(node, config)
        self.registrations: list[SlpRegistration] = []
        self.requests_answered = 0
        self.requests_ignored = 0
        self._advert_task = None
        self._known_da: Optional[Endpoint] = None
        if passive:
            self.start_advertising()

    def register(self, registration: SlpRegistration) -> None:
        self.registrations.append(registration)
        if self._known_da is not None:
            self._register_with_da(registration)

    def deregister(self, url: str) -> None:
        self.registrations = [r for r in self.registrations if r.url != url]

    def start_advertising(self, period_us: int | None = None) -> None:
        if self._advert_task is not None:
            return
        period = period_us if period_us is not None else self.config.advertise_period_us
        self._advert_task = self.node.every(period, self._advertise, initial_delay_us=period)

    def stop_advertising(self) -> None:
        if self._advert_task is not None:
            self._advert_task.stop()
            self._advert_task = None

    @property
    def advertising(self) -> bool:
        return self._advert_task is not None and not self._advert_task.stopped

    def _advertise(self) -> None:
        for registration in self.registrations:
            advert = SAAdvert(
                header=Header(FunctionId.SAADVERT),
                url=registration.url,
                scopes=registration.scopes,
                attr_list=serialize_attributes(registration.attributes),
            )
            delay = self.config.timings.advert_build_us
            self.node.schedule(delay, lambda a=advert: self._send_multicast(a))

    def _register_with_da(self, registration: SlpRegistration) -> None:
        assert self._known_da is not None
        message = SrvReg(
            header=Header(FunctionId.SRVREG, xid=0, flags=Flags.FRESH),
            url_entry=UrlEntry(registration.url, registration.lifetime_s),
            service_type=registration.service_type.render(),
            scopes=registration.scopes,
            attr_list=serialize_attributes(registration.attributes),
        )
        self._send(message, self._known_da)

    def _handle(self, message: SlpMessage, source: Endpoint, was_multicast: bool) -> None:
        if isinstance(message, SrvRqst):
            self._handle_request(message, source, was_multicast)
        elif isinstance(message, AttrRqst):
            self._handle_attr_request(message, source)
        elif isinstance(message, SrvTypeRqst):
            self._handle_type_request(message, source, was_multicast)
        elif isinstance(message, DAAdvert):
            self._known_da = Endpoint(source.host, self.config.port)
            for registration in self.registrations:
                self._register_with_da(registration)
        # Other SLP traffic (replies, acks addressed elsewhere) is ignored.

    def _handle_type_request(
        self, request: SrvTypeRqst, source: Endpoint, was_multicast: bool
    ) -> None:
        if self.address in request.prlist:
            return
        types = sorted(
            {
                r.service_type.render()
                for r in self.registrations
                if _authority_matches(request.naming_authority, r.service_type)
            }
        )
        if not types and was_multicast:
            return
        reply = SrvTypeRply(
            header=Header(FunctionId.SRVTYPERPLY, xid=request.header.xid),
            service_types=tuple(types),
        )
        self.node.schedule(self.config.timings.match_us, lambda: self._send(reply, source))

    def _handle_request(self, request: SrvRqst, source: Endpoint, was_multicast: bool) -> None:
        if self.address in request.prlist:
            self.requests_ignored += 1
            return
        matching = [r for r in self.registrations if r.matches_request(request)]
        if not matching:
            self.requests_ignored += 1
            if not was_multicast:
                # Unicast requests always get an answer, even an empty one.
                reply = SrvRply(header=Header(FunctionId.SRVRPLY, xid=request.header.xid))
                self._send(reply, source)
            return
        reply = SrvRply(
            header=Header(FunctionId.SRVRPLY, xid=request.header.xid),
            url_entries=tuple(UrlEntry(r.url, r.lifetime_s) for r in matching),
        )
        self.requests_answered += 1
        self.node.schedule(self.config.timings.match_us, lambda: self._send(reply, source))

    def _handle_attr_request(self, request: AttrRqst, source: Endpoint) -> None:
        target = None
        for registration in self.registrations:
            if registration.url == request.url:
                target = registration
                break
            try:
                if registration.service_type.matches(ServiceType.parse(request.url)):
                    target = registration
                    break
            except Exception:
                continue
        if target is None:
            reply = AttrRply(
                header=Header(FunctionId.ATTRRPLY, xid=request.header.xid),
                error_code=ErrorCode.OK,
                attr_list="",
            )
        else:
            attrs = dict(target.attributes)
            if request.tag_list:
                wanted = {t.strip().lower() for t in request.tag_list.split(",")}
                attrs = {k: v for k, v in attrs.items() if k.lower() in wanted}
            reply = AttrRply(
                header=Header(FunctionId.ATTRRPLY, xid=request.header.xid),
                attr_list=serialize_attributes(attrs),
            )
        self.node.schedule(self.config.timings.match_us, lambda: self._send(reply, source))


def _authority_matches(requested: str, service_type: ServiceType) -> bool:
    """Naming-authority filter for SrvTypeRqst (RFC 2608 §10.1):
    ``"*"`` matches all authorities, ``""`` matches the IANA default."""
    if requested == "*":
        return True
    return service_type.naming_authority == requested


class UserAgent(_SlpEndpointBase):
    """Issues searches and collects replies (RFC 2608 UA).

    In the active model requests go to the SLP multicast group; when a DA is
    known (from a ``DAAdvert``) they switch to unicast, per the RFC.  With
    ``passive=True`` the UA also listens for ``SAAdvert`` and surfaces them
    through :attr:`on_advert`.
    """

    def __init__(self, node: Node, config: SlpConfig | None = None, passive: bool = False):
        super().__init__(node, config)
        self._next_xid = 1
        self._pending: dict[int, PendingSearch] = {}
        self._timers: dict[int, Timer] = {}
        self._attr_callbacks: dict[int, Callable[[dict], None]] = {}
        self._type_callbacks: dict[int, Callable[[tuple[str, ...]], None]] = {}
        self._known_da: Optional[Endpoint] = None
        self.passive = passive
        self.adverts_seen: list[SAAdvert] = []
        self.on_advert: Optional[Callable[[SAAdvert], None]] = None
        self.replies_received = 0

    @property
    def known_da(self) -> Optional[Endpoint]:
        return self._known_da

    def find_services(
        self,
        service_type: str,
        scopes: tuple[str, ...] | None = None,
        predicate: str = "",
        wait_us: int | None = None,
        on_complete: Callable[[PendingSearch], None] | None = None,
        on_first: Callable[[UrlEntry], None] | None = None,
    ) -> PendingSearch:
        """Start a search; returns the pending handle immediately.

        The search completes (``on_complete``) when the convergence timer
        fires, or immediately after a unicast DA reply.
        """
        xid = self._allocate_xid()
        search = PendingSearch(self, xid, self.node.now_us)
        search.on_complete = on_complete
        search.on_first = on_first
        self._pending[xid] = search

        request = SrvRqst(
            header=Header(FunctionId.SRVRQST, xid=xid, flags=Flags.REQUEST_MCAST),
            service_type=service_type,
            scopes=scopes if scopes is not None else self.config.scopes,
            predicate=predicate,
        )
        wait = wait_us if wait_us is not None else self.config.wait_us

        def transmit(attempt: int, request: SrvRqst) -> None:
            if search.completed:
                return
            if self._known_da is not None:
                unicast = replace(request, header=request.header.with_flags(0))
                self._send(unicast, self._known_da)
            else:
                self._send_multicast(request)
            if attempt < self.config.retries:
                interval = max(wait // (self.config.retries + 1), 1)
                self.node.schedule(
                    interval,
                    lambda: transmit(
                        attempt + 1, replace(request, prlist=tuple(search.responders))
                    ),
                )

        build_delay = self.config.timings.request_build_us
        self.node.schedule(build_delay, lambda: transmit(0, request))

        timer = Timer(self.node.network.scheduler_for(self.node), lambda: self._finish(xid))
        timer.start(build_delay + wait)
        self._timers[xid] = timer
        return search

    def find_attributes(
        self,
        url: str,
        tag_list: str = "",
        on_reply: Callable[[dict], None] | None = None,
    ) -> int:
        """Issue an AttrRqst; ``on_reply`` receives the parsed attributes."""
        xid = self._allocate_xid()
        request = AttrRqst(
            header=Header(FunctionId.ATTRRQST, xid=xid, flags=Flags.REQUEST_MCAST),
            url=url,
            scopes=self.config.scopes,
        )
        if on_reply is not None:
            self._attr_callbacks[xid] = on_reply
        self.node.schedule(
            self.config.timings.request_build_us, lambda: self._send_multicast(request)
        )
        return xid

    def find_service_types(
        self,
        naming_authority: str = "*",
        on_reply: Callable[[tuple[str, ...]], None] | None = None,
    ) -> int:
        """Issue a SrvTypeRqst (RFC 2608 §10.1): enumerate advertised types."""
        xid = self._allocate_xid()
        request = SrvTypeRqst(
            header=Header(FunctionId.SRVTYPERQST, xid=xid, flags=Flags.REQUEST_MCAST),
            naming_authority=naming_authority,
            scopes=self.config.scopes,
        )
        if on_reply is not None:
            self._type_callbacks[xid] = on_reply
        self.node.schedule(
            self.config.timings.request_build_us, lambda: self._send_multicast(request)
        )
        return xid

    def _allocate_xid(self) -> int:
        xid = self._next_xid
        self._next_xid = xid + 1 if xid < 0xFFFF else 1
        return xid

    def _finish(self, xid: int) -> None:
        search = self._pending.pop(xid, None)
        timer = self._timers.pop(xid, None)
        if timer is not None:
            timer.cancel()
        if search is not None:
            search._complete()

    def _handle(self, message: SlpMessage, source: Endpoint, was_multicast: bool) -> None:
        if isinstance(message, SrvRply):
            search = self._pending.get(message.header.xid)
            if search is None:
                return
            self.replies_received += 1
            delay = self.config.timings.reply_parse_us

            def deliver() -> None:
                if search.completed:
                    return
                search._add(message.url_entries, source.host, self.node.now_us)
                if self._known_da is not None:
                    # Unicast DA interaction: a single reply is conclusive.
                    self._finish(message.header.xid)

            self.node.schedule(delay, deliver)
        elif isinstance(message, AttrRply):
            callback = self._attr_callbacks.pop(message.header.xid, None)
            if callback is not None:
                attrs = parse_attributes(message.attr_list)
                self.node.schedule(self.config.timings.reply_parse_us, lambda: callback(attrs))
        elif isinstance(message, SrvTypeRply):
            type_callback = self._type_callbacks.pop(message.header.xid, None)
            if type_callback is not None:
                types = message.service_types
                self.node.schedule(
                    self.config.timings.reply_parse_us, lambda: type_callback(types)
                )
        elif isinstance(message, DAAdvert):
            self._known_da = Endpoint(source.host, self.config.port)
        elif isinstance(message, SAAdvert) and self.passive:
            self.adverts_seen.append(message)
            if self.on_advert is not None:
                self.on_advert(message)


class DirectoryAgent(_SlpEndpointBase):
    """A centralized repository (RFC 2608 DA).

    Accepts unicast ``SrvReg``/``SrvDeReg`` (answered with ``SrvAck``),
    answers ``SrvRqst`` from its registry, and multicasts unsolicited
    ``DAAdvert`` periodically so UAs/SAs can find it — the paper's
    "repository" discovery models.
    """

    def __init__(
        self,
        node: Node,
        config: SlpConfig | None = None,
        advert_period_us: int = 3_000_000,
        boot_timestamp: int = 1,
    ):
        super().__init__(node, config)
        self.registry: dict[str, SlpRegistration] = {}
        self.boot_timestamp = boot_timestamp
        self.registrations_accepted = 0
        self._advert_task = self.node.every(
            advert_period_us, self.send_advert, initial_delay_us=advert_period_us // 2
        )

    @property
    def url(self) -> str:
        return f"service:directory-agent://{self.address}"

    def stop(self) -> None:
        self._advert_task.stop()

    def send_advert(self) -> None:
        advert = DAAdvert(
            header=Header(FunctionId.DAADVERT),
            boot_timestamp=self.boot_timestamp,
            url=self.url,
            scopes=self.config.scopes,
        )
        self._send_multicast(advert)

    def _handle(self, message: SlpMessage, source: Endpoint, was_multicast: bool) -> None:
        if isinstance(message, SrvReg):
            self._handle_register(message, source)
        elif isinstance(message, SrvDeReg):
            self.registry.pop(message.url_entry.url, None)
            ack = SrvAck(header=Header(FunctionId.SRVACK, xid=message.header.xid))
            self._send(ack, source)
        elif isinstance(message, SrvRqst):
            self._handle_request(message, source, was_multicast)

    def _handle_register(self, message: SrvReg, source: Endpoint) -> None:
        try:
            service_type = ServiceType.parse(message.service_type)
            attributes = parse_attributes(message.attr_list)
            error = ErrorCode.OK
        except Exception:
            error = ErrorCode.PARSE_ERROR
        if error is ErrorCode.OK:
            self.registry[message.url_entry.url] = SlpRegistration(
                url=message.url_entry.url,
                service_type=service_type,
                scopes=message.scopes,
                attributes=attributes,
                lifetime_s=message.url_entry.lifetime_s,
            )
            self.registrations_accepted += 1
        ack = SrvAck(header=Header(FunctionId.SRVACK, xid=message.header.xid), error_code=error)
        self.node.schedule(self.config.timings.register_us, lambda: self._send(ack, source))

    def _handle_request(self, request: SrvRqst, source: Endpoint, was_multicast: bool) -> None:
        if self.address in request.prlist:
            return
        if request.service_type.strip().lower() == DA_SERVICE_TYPE:
            self.send_advert_to(source)
            return
        matching = [r for r in self.registry.values() if r.matches_request(request)]
        if not matching and was_multicast:
            return
        reply = SrvRply(
            header=Header(FunctionId.SRVRPLY, xid=request.header.xid),
            url_entries=tuple(UrlEntry(r.url, r.lifetime_s) for r in matching),
        )
        self.node.schedule(self.config.timings.match_us, lambda: self._send(reply, source))

    def send_advert_to(self, destination: Endpoint) -> None:
        advert = DAAdvert(
            header=Header(FunctionId.DAADVERT),
            boot_timestamp=self.boot_timestamp,
            url=self.url,
            scopes=self.config.scopes,
        )
        self._send(advert, destination)


__all__ = [
    "SlpConfig",
    "SlpTimings",
    "SlpRegistration",
    "PendingSearch",
    "ServiceAgent",
    "UserAgent",
    "DirectoryAgent",
]

"""SLP-specific exceptions."""


class SlpError(Exception):
    """Base class for SLP protocol errors."""


class SlpDecodeError(SlpError):
    """Raised when bytes cannot be decoded as a well-formed SLPv2 message."""


class SlpEncodeError(SlpError):
    """Raised when a message cannot be rendered to the wire format."""


class SlpPredicateError(SlpError):
    """Raised for malformed LDAPv3 search filters."""


class SlpServiceTypeError(SlpError):
    """Raised for malformed service type strings."""

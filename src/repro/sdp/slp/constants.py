"""SLPv2 protocol constants (RFC 2608).

The IANA assignments here are exactly what INDISS's monitor component keys
its detection on (paper §2.1): data arriving on the SLP multicast group and
registered port *is* SLP, no parsing required.
"""

from __future__ import annotations

from enum import IntEnum

#: IANA-assigned SLP port (UDP and TCP).
SLP_PORT = 427

#: Administratively scoped SLP multicast group (SVRLOC).
SLP_MULTICAST_GROUP = "239.255.255.253"

#: Protocol version carried in every SLPv2 header.
SLP_VERSION = 2

#: Default scope per RFC 2608 §1.1.
DEFAULT_SCOPE = "DEFAULT"

#: Default language tag (RFC 1766).
DEFAULT_LANGUAGE = "en"

#: Default URL-entry lifetime, seconds (RFC 2608 maximum is 0xFFFF).
DEFAULT_LIFETIME_S = 10800

#: Maximum transmission unit assumed for SLP over UDP.
SLP_MTU = 1400

#: Reserved service type used by directory agents.
DA_SERVICE_TYPE = "service:directory-agent"

#: Reserved service type used by service agents advertising themselves.
SA_SERVICE_TYPE = "service:service-agent"


class FunctionId(IntEnum):
    """SLPv2 message function identifiers (RFC 2608 §8)."""

    SRVRQST = 1
    SRVRPLY = 2
    SRVREG = 3
    SRVDEREG = 4
    SRVACK = 5
    ATTRRQST = 6
    ATTRRPLY = 7
    DAADVERT = 8
    SRVTYPERQST = 9
    SRVTYPERPLY = 10
    SAADVERT = 11


class ErrorCode(IntEnum):
    """SLPv2 error codes (RFC 2608 §7)."""

    OK = 0
    LANGUAGE_NOT_SUPPORTED = 1
    PARSE_ERROR = 2
    INVALID_REGISTRATION = 3
    SCOPE_NOT_SUPPORTED = 4
    AUTHENTICATION_UNKNOWN = 5
    AUTHENTICATION_ABSENT = 6
    AUTHENTICATION_FAILED = 7
    VER_NOT_SUPPORTED = 9
    INTERNAL_ERROR = 10
    DA_BUSY_NOW = 11
    OPTION_NOT_UNDERSTOOD = 12
    INVALID_UPDATE = 13
    MSG_NOT_SUPPORTED = 14
    REFRESH_REJECTED = 15


class Flags(IntEnum):
    """Header flag bits (only the top three of sixteen are defined)."""

    OVERFLOW = 0x8000
    FRESH = 0x4000
    REQUEST_MCAST = 0x2000


#: Bits that must be zero in a well-formed SLPv2 header.
RESERVED_FLAG_MASK = 0x1FFF


__all__ = [
    "SLP_PORT",
    "SLP_MULTICAST_GROUP",
    "SLP_VERSION",
    "SLP_MTU",
    "DEFAULT_SCOPE",
    "DEFAULT_LANGUAGE",
    "DEFAULT_LIFETIME_S",
    "DA_SERVICE_TYPE",
    "SA_SERVICE_TYPE",
    "FunctionId",
    "ErrorCode",
    "Flags",
    "RESERVED_FLAG_MASK",
]

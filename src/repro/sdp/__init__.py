"""Native service-discovery-protocol substrates (S2-S4 in DESIGN.md).

Each subpackage is a from-scratch implementation of one SDP the paper's
evaluation uses or mentions:

* :mod:`repro.sdp.slp`  — Service Location Protocol v2 (RFC 2608 subset),
  standing in for OpenSLP;
* :mod:`repro.sdp.upnp` — UPnP (SSDP + HTTP + description XML + SOAP-lite),
  standing in for CyberLink for Java;
* :mod:`repro.sdp.jini` — Jini multicast discovery + lookup registrar
  (simplified).

:mod:`repro.sdp.base` defines the SDP-neutral service description model the
INDISS translation pipeline normalizes to.
"""

from .base import ServiceRecord, normalize_service_type

__all__ = ["ServiceRecord", "normalize_service_type"]

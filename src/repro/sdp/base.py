"""SDP-neutral service description model.

Every SDP names services differently (paper §2.4: an SLP client asks for
``service:clock`` while UPnP advertises
``urn:schemas-upnp-org:device:clock:1``).  INDISS's composers and its
service cache work over one normalized record; the helpers here map between
the three naming schemes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache

#: Marker for records whose origin protocol is unknown.
UNKNOWN_SDP = "unknown"


@dataclass(frozen=True)
class ServiceRecord:
    """A protocol-neutral description of one discovered service.

    Attributes
    ----------
    service_type:
        Normalized short type name, e.g. ``"clock"``.
    url:
        The access URL the client should use (SLP's "direct reference").
    attributes:
        Flat string attributes (friendlyName, manufacturer, ...).
    lifetime_s:
        Advertised time-to-live in seconds.
    source_sdp:
        Which protocol this record was learnt from (``"slp"``, ``"upnp"``,
        ``"jini"``).
    location:
        For UPnP-origin records: the description-document URL, which a UPnP
        client expects instead of the direct reference.
    """

    service_type: str
    url: str
    attributes: dict[str, str] = field(default_factory=dict)
    lifetime_s: int = 3600
    source_sdp: str = UNKNOWN_SDP
    location: str = ""

    def with_attributes(self, **extra: str) -> "ServiceRecord":
        merged = dict(self.attributes)
        merged.update(extra)
        return replace(self, attributes=merged)

    def matches_type(self, normalized_type: str) -> bool:
        return self.service_type == normalized_type


@lru_cache(maxsize=4096)
def normalize_service_type(raw: str) -> str:
    """Reduce any SDP's service-type naming to the short normalized form.

    ``service:clock:soap`` (SLP), ``urn:schemas-upnp-org:device:clock:1``
    (UPnP), ``org.example.Clock`` (Jini-style class name) all normalize to
    ``"clock"``.  Pure string-to-string, so results are memoized — the
    dispatch and cache layers normalize the same handful of types on
    every request.
    """
    if not raw:
        return ""
    value = raw.strip()
    lower = value.lower()
    if lower.startswith("urn:") :
        # urn:schemas-upnp-org:device:clock:1 / urn:...:service:timer:1
        parts = value.split(":")
        for marker in ("device", "service"):
            if marker in [p.lower() for p in parts]:
                index = [p.lower() for p in parts].index(marker)
                if index + 1 < len(parts):
                    return parts[index + 1].lower()
        return parts[-1].lower()
    if lower.startswith("service:"):
        # service:clock, service:clock:soap, service:directory-agent
        return value.split(":")[1].lower()
    if lower.startswith("upnp:"):
        return value.split(":", 1)[1].lower()
    if "." in value and " " not in value:
        # Java-style fully qualified class name.
        return value.rsplit(".", 1)[-1].lower()
    return lower


def slp_service_type(normalized: str, abstract: str = "") -> str:
    """Render a normalized type in SLP naming (``service:clock[:abstract]``)."""
    base = f"service:{normalized}"
    return f"{base}:{abstract}" if abstract else base


def upnp_device_type(normalized: str, version: int = 1) -> str:
    """Render a normalized type in UPnP device naming."""
    return f"urn:schemas-upnp-org:device:{normalized}:{version}"


def upnp_service_type(normalized: str, version: int = 1) -> str:
    """Render a normalized type in UPnP service naming."""
    return f"urn:schemas-upnp-org:service:{normalized}:{version}"


def jini_class_name(normalized: str, package: str = "org.amigo") -> str:
    """Render a normalized type as a Jini-style interface class name."""
    return f"{package}.{normalized.capitalize()}"


__all__ = [
    "ServiceRecord",
    "UNKNOWN_SDP",
    "normalize_service_type",
    "slp_service_type",
    "upnp_device_type",
    "upnp_service_type",
    "jini_class_name",
]

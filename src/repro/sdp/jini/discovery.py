"""Jini multicast discovery packets (Discovery & Join spec, v1 format).

Two packet kinds flow on port 4160:

* **multicast request** — a discovering entity asks registrars to connect
  back to its TCP ``response_port``; carries the groups it cares about and
  the service IDs of registrars it already heard (so they stay silent);
* **multicast announcement** — a registrar advertises its service ID,
  groups, and unicast endpoint.

This gives Jini both of the paper's §2 models: requests are the *active*
model, announcements the *passive* one.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field

from ...net import shared_decode
from .codec import StreamReader, StreamWriter
from .constants import PROTOCOL_VERSION
from .errors import JiniDecodeError

#: Packet type tags (one byte on the wire).
_TAG_REQUEST = 0x01
_TAG_ANNOUNCEMENT = 0x02

#: Per-frame decode-memo key for Jini discovery packets: registrars,
#: discovery listeners, and the Jini unit share (or pre-seed) decoded
#: packets under this key on the delivering frame's
#: :class:`~repro.net.FrameMemo`.
JINI_MEMO_KEY = "jini-discovery"


def next_service_id(counter: int) -> str:
    """Deterministic service ID derived from a counter (simulation-safe)."""
    return str(uuid.uuid5(uuid.NAMESPACE_URL, f"jini-service-{counter}"))


@dataclass(frozen=True)
class MulticastRequest:
    """A discovering entity's multicast request."""

    response_host: str
    response_port: int
    groups: tuple[str, ...] = ("",)
    heard: tuple[str, ...] = ()
    protocol_version: int = PROTOCOL_VERSION

    def encode(self) -> bytes:
        writer = StreamWriter()
        writer.write_byte(_TAG_REQUEST)
        writer.write_int(self.protocol_version)
        writer.write_utf(self.response_host)
        writer.write_int(self.response_port)
        writer.write_utf_list(self.groups)
        writer.write_utf_list(self.heard)
        return writer.getvalue()


@dataclass(frozen=True)
class MulticastAnnouncement:
    """A registrar's periodic multicast announcement."""

    host: str
    port: int
    service_id: str
    groups: tuple[str, ...] = ("",)
    protocol_version: int = PROTOCOL_VERSION

    def encode(self) -> bytes:
        writer = StreamWriter()
        writer.write_byte(_TAG_ANNOUNCEMENT)
        writer.write_int(self.protocol_version)
        writer.write_utf(self.host)
        writer.write_int(self.port)
        writer.write_utf(self.service_id)
        writer.write_utf_list(self.groups)
        return writer.getvalue()


def decode_packet(data: bytes) -> "MulticastRequest | MulticastAnnouncement":
    """Decode either discovery packet kind."""
    reader = StreamReader(data)
    tag = reader.read_byte()
    version = reader.read_int()
    if version != PROTOCOL_VERSION:
        raise JiniDecodeError(f"unsupported Jini discovery version {version}")
    if tag == _TAG_REQUEST:
        return MulticastRequest(
            response_host=reader.read_utf(),
            response_port=reader.read_int(),
            groups=tuple(reader.read_utf_list()),
            heard=tuple(reader.read_utf_list()),
            protocol_version=version,
        )
    if tag == _TAG_ANNOUNCEMENT:
        return MulticastAnnouncement(
            host=reader.read_utf(),
            port=reader.read_int(),
            service_id=reader.read_utf(),
            groups=tuple(reader.read_utf_list()),
            protocol_version=version,
        )
    raise JiniDecodeError(f"unknown Jini packet tag {tag:#04x}")


def _decode_or_none(payload: bytes):
    try:
        return decode_packet(payload)
    except JiniDecodeError:
        return None


def decode_packet_shared(payload: bytes, memo, counter=None):
    """Parse-once entry point every Jini multicast receive path goes through.

    The codec reader (:class:`~repro.sdp.jini.codec.StreamReader`) runs at
    most once per frame: the first receiver decodes and stores, later
    receivers — other registrars, discovery listeners, the Jini unit —
    reuse the stored packet (``None`` for payloads that do not decode, so
    the rejection is shared too).  ``counter`` is an optional
    :class:`~repro.net.ParseCounter` receiving one decoded/shared
    observation.
    """
    return shared_decode(memo, JINI_MEMO_KEY, payload, _decode_or_none, counter)


def groups_overlap(wanted: tuple[str, ...], offered: tuple[str, ...]) -> bool:
    """Group matching: the empty 'public' group matches everything."""
    if not wanted or not offered:
        return True
    if "" in wanted or "" in offered:
        return True
    return bool(set(wanted) & set(offered))


@dataclass(frozen=True)
class ServiceItem:
    """A registered service: ID, implemented interfaces, attributes."""

    service_id: str
    class_names: tuple[str, ...]
    attributes: dict[str, str] = field(default_factory=dict)
    #: Where the service proxy points (our stand-in for the marshalled proxy).
    endpoint_url: str = ""

    def encode(self, writer: StreamWriter) -> None:
        writer.write_utf(self.service_id)
        writer.write_utf_list(self.class_names)
        writer.write_str_map(self.attributes)
        writer.write_utf(self.endpoint_url)

    @classmethod
    def decode(cls, reader: StreamReader) -> "ServiceItem":
        return cls(
            service_id=reader.read_utf(),
            class_names=tuple(reader.read_utf_list()),
            attributes=reader.read_str_map(),
            endpoint_url=reader.read_utf(),
        )


@dataclass(frozen=True)
class ServiceTemplate:
    """A lookup template: any field left empty is a wildcard."""

    service_id: str = ""
    class_names: tuple[str, ...] = ()
    attributes: dict[str, str] = field(default_factory=dict)

    def encode(self, writer: StreamWriter) -> None:
        writer.write_utf(self.service_id)
        writer.write_utf_list(self.class_names)
        writer.write_str_map(self.attributes)

    @classmethod
    def decode(cls, reader: StreamReader) -> "ServiceTemplate":
        return cls(
            service_id=reader.read_utf(),
            class_names=tuple(reader.read_utf_list()),
            attributes=reader.read_str_map(),
        )

    def matches(self, item: ServiceItem) -> bool:
        if self.service_id and self.service_id != item.service_id:
            return False
        for wanted in self.class_names:
            if not any(_class_matches(wanted, have) for have in item.class_names):
                return False
        for key, value in self.attributes.items():
            if item.attributes.get(key) != value:
                return False
        return True


def _class_matches(wanted: str, have: str) -> bool:
    """Exact match, or simple-name match (``Clock`` vs ``org.x.Clock``)."""
    if wanted == have:
        return True
    return have.rsplit(".", 1)[-1].lower() == wanted.rsplit(".", 1)[-1].lower()


__all__ = [
    "JINI_MEMO_KEY",
    "MulticastRequest",
    "MulticastAnnouncement",
    "ServiceItem",
    "ServiceTemplate",
    "decode_packet",
    "decode_packet_shared",
    "groups_overlap",
    "next_service_id",
]

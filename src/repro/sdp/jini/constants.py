"""Jini discovery protocol constants.

The paper's Fig. 5 system specification includes ``Component Unit
JINI(port=4160)``; 4160 is the IANA ``jini-announce``/``jini-request``
port.  The Jini Discovery & Join specification uses two multicast groups:
one for client requests, one for registrar announcements.
"""

from __future__ import annotations

#: IANA-assigned Jini discovery port (both groups).
JINI_PORT = 4160

#: Multicast group for client/service *requests* (net.jini.discovery.request).
JINI_REQUEST_GROUP = "224.0.1.84"

#: Multicast group for registrar *announcements* (net.jini.discovery.announcement).
JINI_ANNOUNCEMENT_GROUP = "224.0.1.85"

#: Discovery protocol version (v1 packet format).
PROTOCOL_VERSION = 1

#: The public group (empty string, as in net.jini.discovery.LookupDiscovery).
PUBLIC_GROUP = ""

#: Default period between registrar announcements (Jini default is 120 s;
#: scaled down to keep simulations short).
DEFAULT_ANNOUNCE_PERIOD_US = 2_000_000

#: Default TCP port registrars listen on for unicast discovery + lookup.
DEFAULT_REGISTRAR_TCP_PORT = 4161

__all__ = [
    "JINI_PORT",
    "JINI_REQUEST_GROUP",
    "JINI_ANNOUNCEMENT_GROUP",
    "PROTOCOL_VERSION",
    "PUBLIC_GROUP",
    "DEFAULT_ANNOUNCE_PERIOD_US",
    "DEFAULT_REGISTRAR_TCP_PORT",
]

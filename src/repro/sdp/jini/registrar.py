"""The Jini lookup service (a reggie-lite registrar).

Jini is the paper's canonical *repository-based* SDP: clients and services
must first discover the registrar (actively via multicast request, or
passively from its announcements), then talk to it over TCP.  The unicast
protocol here is a simple tagged request/response stream built on
:mod:`repro.sdp.jini.codec`:

* ``REGISTER item`` -> ``OK service_id``
* ``LOOKUP template`` -> ``ITEMS n item...``
* ``UNREGISTER service_id`` -> ``OK service_id``
"""

from __future__ import annotations

from dataclasses import dataclass

from ...net import Endpoint, Node
from .codec import StreamReader, StreamWriter
from .constants import (
    DEFAULT_ANNOUNCE_PERIOD_US,
    DEFAULT_REGISTRAR_TCP_PORT,
    JINI_ANNOUNCEMENT_GROUP,
    JINI_PORT,
    JINI_REQUEST_GROUP,
    PUBLIC_GROUP,
)
from .discovery import (
    JINI_MEMO_KEY,
    MulticastAnnouncement,
    MulticastRequest,
    ServiceItem,
    ServiceTemplate,
    decode_packet_shared,
    groups_overlap,
    next_service_id,
)
from .errors import JiniDecodeError

#: Unicast stream operation tags.
OP_REGISTER = 0x10
OP_LOOKUP = 0x11
OP_UNREGISTER = 0x12
OP_RENEW = 0x13
OP_OK = 0x20
OP_ITEMS = 0x21
OP_ERROR = 0x2F

#: Default lease granted to registrations (seconds); Jini's reggie default
#: is 5 minutes, scaled to keep simulations short.
DEFAULT_LEASE_S = 60


@dataclass
class JiniTimings:
    """Processing delays (microseconds) for the Jini stack."""

    request_handle_us: int = 200
    lookup_us: int = 300
    register_us: int = 300
    announce_build_us: int = 100


class LookupService:
    """A registrar on one node."""

    def __init__(
        self,
        node: Node,
        groups: tuple[str, ...] = (PUBLIC_GROUP,),
        tcp_port: int = DEFAULT_REGISTRAR_TCP_PORT,
        announce_period_us: int = DEFAULT_ANNOUNCE_PERIOD_US,
        timings: JiniTimings | None = None,
        service_id_seed: int = 1000,
        lease_s: int = DEFAULT_LEASE_S,
    ):
        self.node = node
        self.groups = groups
        self.tcp_port = tcp_port
        self.timings = timings if timings is not None else JiniTimings()
        self.service_id = next_service_id(service_id_seed)
        self.registry: dict[str, ServiceItem] = {}
        #: Jini's lease model: each registration expires unless renewed.
        #: Entries placed directly into ``registry`` (e.g. by the INDISS
        #: cache mirror) have no lease and never expire.
        self.lease_s = lease_s
        self._lease_expiry_us: dict[str, int] = {}
        self._id_counter = service_id_seed
        self.lookups_served = 0
        self.leases_expired = 0
        self._parse_counter = node.network.parse_counter("jini")
        #: Encode-once announcement: the packet's fields never change, so
        #: the wire bytes (and the packet seeding each frame's memo) are
        #: built exactly once.
        self._announcement: tuple[bytes, MulticastAnnouncement] | None = None

        self._request_socket = node.udp.socket().bind(JINI_PORT, reuse=True)
        self._request_socket.join_group(JINI_REQUEST_GROUP)
        self._request_socket.on_datagram(self._on_request_packet)
        self._announce_socket = node.udp.socket()
        self._listener = node.tcp.listen(tcp_port, self._on_connection)
        self._announce_task = node.every(
            announce_period_us, self.announce, initial_delay_us=announce_period_us // 2
        )

    def stop(self) -> None:
        self._announce_task.stop()
        self._listener.close()
        self._request_socket.close()

    # -- multicast side ------------------------------------------------------

    def announce(self) -> None:
        if self._announcement is None:
            packet = MulticastAnnouncement(
                host=self.node.address,
                port=self.tcp_port,
                service_id=self.service_id,
                groups=self.groups,
            )
            self._announcement = (packet.encode(), packet)
        payload, packet = self._announcement

        def transmit() -> None:
            self._parse_counter.note_seed()
            self._announce_socket.sendto(
                payload,
                Endpoint(JINI_ANNOUNCEMENT_GROUP, JINI_PORT),
                decode_hint=(JINI_MEMO_KEY, packet),
            )

        self.node.schedule(self.timings.announce_build_us, transmit)

    def _on_request_packet(self, datagram) -> None:
        packet = decode_packet_shared(
            datagram.payload, datagram.ensure_memo(), self._parse_counter
        )
        if not isinstance(packet, MulticastRequest):
            return
        if self.service_id in packet.heard:
            return
        if not groups_overlap(packet.groups, self.groups):
            return

        def respond() -> None:
            # Unicast discovery: connect back and announce ourselves.
            def connected(connection) -> None:
                writer = StreamWriter()
                writer.write_utf(self.service_id)
                writer.write_utf(self.node.address)
                writer.write_int(self.tcp_port)
                writer.write_utf_list(self.groups)
                connection.send(writer.getvalue())
                connection.close()

            self.node.tcp.connect(
                Endpoint(packet.response_host, packet.response_port), connected
            )

        self.node.schedule(self.timings.request_handle_us, respond)

    # -- unicast lookup protocol ------------------------------------------------

    def _on_connection(self, connection) -> None:
        buffer = bytearray()

        def handle_data(chunk: bytes) -> None:
            buffer.extend(chunk)
            self._try_serve(connection, buffer)

        connection.on_data(handle_data)

    def _try_serve(self, connection, buffer: bytearray) -> None:
        # Frame: 4-byte length prefix, then the tagged payload.
        while True:
            if len(buffer) < 4:
                return
            length = int.from_bytes(buffer[:4], "big")
            if len(buffer) < 4 + length:
                return
            payload = bytes(buffer[4 : 4 + length])
            del buffer[: 4 + length]
            self._serve_one(connection, payload)

    def _serve_one(self, connection, payload: bytes) -> None:
        try:
            reader = StreamReader(payload)
            op = reader.read_byte()
            if op == OP_REGISTER:
                item = ServiceItem.decode(reader)
                delay = self.timings.register_us
                self.node.schedule(delay, lambda: self._do_register(connection, item))
            elif op == OP_LOOKUP:
                template = ServiceTemplate.decode(reader)
                delay = self.timings.lookup_us
                self.node.schedule(delay, lambda: self._do_lookup(connection, template))
            elif op == OP_UNREGISTER:
                service_id = reader.read_utf()
                self.registry.pop(service_id, None)
                self._lease_expiry_us.pop(service_id, None)
                self._reply(connection, _ok(service_id))
            elif op == OP_RENEW:
                service_id = reader.read_utf()
                if service_id in self.registry:
                    self._grant_lease(service_id)
                    self._reply(connection, _ok(service_id))
                else:
                    self._reply(connection, _error(f"unknown lease {service_id}"))
            else:
                self._reply(connection, _error(f"unknown op {op:#04x}"))
        except JiniDecodeError as exc:
            self._reply(connection, _error(str(exc)))

    def _do_register(self, connection, item: ServiceItem) -> None:
        if not item.service_id:
            self._id_counter += 1
            item = ServiceItem(
                service_id=next_service_id(self._id_counter),
                class_names=item.class_names,
                attributes=item.attributes,
                endpoint_url=item.endpoint_url,
            )
        self.registry[item.service_id] = item
        self._grant_lease(item.service_id)
        self._reply(connection, _ok(item.service_id))

    def _grant_lease(self, service_id: str) -> None:
        self._lease_expiry_us[service_id] = self.node.now_us + self.lease_s * 1_000_000

    def _evict_expired_leases(self) -> None:
        now = self.node.now_us
        expired = [sid for sid, t in self._lease_expiry_us.items() if t <= now]
        for sid in expired:
            del self._lease_expiry_us[sid]
            if self.registry.pop(sid, None) is not None:
                self.leases_expired += 1

    def _do_lookup(self, connection, template: ServiceTemplate) -> None:
        self._evict_expired_leases()
        matches = [item for item in self.registry.values() if template.matches(item)]
        self.lookups_served += 1
        writer = StreamWriter()
        writer.write_byte(OP_ITEMS)
        writer.write_int(len(matches))
        for item in matches:
            item.encode(writer)
        self._reply(connection, writer.getvalue())

    def _reply(self, connection, payload: bytes) -> None:
        if not connection.closed:
            connection.send(len(payload).to_bytes(4, "big") + payload)


def _ok(service_id: str) -> bytes:
    writer = StreamWriter()
    writer.write_byte(OP_OK)
    writer.write_utf(service_id)
    return writer.getvalue()


def _error(message: str) -> bytes:
    writer = StreamWriter()
    writer.write_byte(OP_ERROR)
    writer.write_utf(message)
    return writer.getvalue()


def frame(payload: bytes) -> bytes:
    """Length-prefix one unicast protocol payload."""
    return len(payload).to_bytes(4, "big") + payload


__all__ = [
    "LookupService",
    "JiniTimings",
    "OP_REGISTER",
    "OP_LOOKUP",
    "OP_UNREGISTER",
    "OP_OK",
    "OP_ITEMS",
    "OP_ERROR",
    "frame",
]

"""Jini-specific exceptions."""


class JiniError(Exception):
    """Base class for Jini substrate errors."""


class JiniDecodeError(JiniError):
    """Raised for malformed discovery packets or lookup stream data."""

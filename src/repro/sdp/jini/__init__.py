"""Jini discovery + lookup substrate (simplified reggie-style registrar)."""

from .client import LookupDiscovery, RegistrarClient, RegistrarInfo
from .codec import StreamReader, StreamWriter
from .constants import (
    DEFAULT_ANNOUNCE_PERIOD_US,
    DEFAULT_REGISTRAR_TCP_PORT,
    JINI_ANNOUNCEMENT_GROUP,
    JINI_PORT,
    JINI_REQUEST_GROUP,
    PROTOCOL_VERSION,
    PUBLIC_GROUP,
)
from .discovery import (
    MulticastAnnouncement,
    MulticastRequest,
    ServiceItem,
    ServiceTemplate,
    JINI_MEMO_KEY,
    decode_packet,
    decode_packet_shared,
    groups_overlap,
    next_service_id,
)
from .errors import JiniDecodeError, JiniError
from .registrar import JiniTimings, LookupService

__all__ = [
    "DEFAULT_ANNOUNCE_PERIOD_US",
    "DEFAULT_REGISTRAR_TCP_PORT",
    "JINI_ANNOUNCEMENT_GROUP",
    "JINI_PORT",
    "JINI_REQUEST_GROUP",
    "JiniDecodeError",
    "JiniError",
    "JiniTimings",
    "LookupDiscovery",
    "LookupService",
    "MulticastAnnouncement",
    "MulticastRequest",
    "PROTOCOL_VERSION",
    "PUBLIC_GROUP",
    "RegistrarClient",
    "RegistrarInfo",
    "ServiceItem",
    "ServiceTemplate",
    "StreamReader",
    "StreamWriter",
    "JINI_MEMO_KEY",
    "decode_packet",
    "decode_packet_shared",
    "groups_overlap",
    "next_service_id",
]

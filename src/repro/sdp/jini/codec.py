"""A DataOutputStream-flavoured binary codec for the Jini substrate.

Real Jini moves serialized Java objects; reproducing Java serialization
would add nothing to the discovery behaviour INDISS translates, so this
codec keeps the *stream primitives* (big-endian ints, length-prefixed UTF
strings, counted sequences) and encodes the small value objects the
discovery and lookup exchanges need.  DESIGN.md records the substitution.
"""

from __future__ import annotations

import struct

from .errors import JiniDecodeError


class StreamWriter:
    """Big-endian primitive writer (java.io.DataOutputStream flavour)."""

    def __init__(self) -> None:
        self._chunks: list[bytes] = []

    def write_byte(self, value: int) -> "StreamWriter":
        self._chunks.append(struct.pack("!B", value & 0xFF))
        return self

    def write_int(self, value: int) -> "StreamWriter":
        self._chunks.append(struct.pack("!i", value))
        return self

    def write_long(self, value: int) -> "StreamWriter":
        self._chunks.append(struct.pack("!q", value))
        return self

    def write_utf(self, text: str) -> "StreamWriter":
        data = text.encode("utf-8")
        if len(data) > 0xFFFF:
            raise ValueError(f"UTF string too long: {len(data)}")
        self._chunks.append(struct.pack("!H", len(data)))
        self._chunks.append(data)
        return self

    def write_utf_list(self, items) -> "StreamWriter":
        self.write_int(len(items))
        for item in items:
            self.write_utf(item)
        return self

    def write_bytes(self, data: bytes) -> "StreamWriter":
        self.write_int(len(data))
        self._chunks.append(data)
        return self

    def write_str_map(self, mapping: dict[str, str]) -> "StreamWriter":
        self.write_int(len(mapping))
        for key, value in mapping.items():
            self.write_utf(key)
            self.write_utf(value)
        return self

    def getvalue(self) -> bytes:
        return b"".join(self._chunks)


class StreamReader:
    """Big-endian primitive reader matching :class:`StreamWriter`."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0

    @property
    def remaining(self) -> int:
        return len(self._data) - self._pos

    def _take(self, count: int) -> bytes:
        if self.remaining < count:
            raise JiniDecodeError(f"truncated stream: wanted {count}, have {self.remaining}")
        chunk = self._data[self._pos : self._pos + count]
        self._pos += count
        return chunk

    def read_byte(self) -> int:
        return self._take(1)[0]

    def read_int(self) -> int:
        return struct.unpack("!i", self._take(4))[0]

    def read_long(self) -> int:
        return struct.unpack("!q", self._take(8))[0]

    def read_utf(self) -> str:
        length = struct.unpack("!H", self._take(2))[0]
        try:
            return self._take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise JiniDecodeError(f"invalid UTF-8: {exc}") from exc

    def read_utf_list(self) -> list[str]:
        count = self.read_int()
        if count < 0 or count > 10_000:
            raise JiniDecodeError(f"implausible list length {count}")
        return [self.read_utf() for _ in range(count)]

    def read_bytes(self) -> bytes:
        length = self.read_int()
        if length < 0:
            raise JiniDecodeError(f"negative byte-array length {length}")
        return self._take(length)

    def read_str_map(self) -> dict[str, str]:
        count = self.read_int()
        if count < 0 or count > 10_000:
            raise JiniDecodeError(f"implausible map length {count}")
        return {self.read_utf(): self.read_utf() for _ in range(count)}


__all__ = ["StreamWriter", "StreamReader"]

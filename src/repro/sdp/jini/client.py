"""Jini discovering entities: LookupDiscovery plus a registrar client.

``LookupDiscovery`` finds registrars either actively (multicast request,
registrars connect back over TCP) or passively (listening to multicast
announcements).  ``RegistrarClient`` then registers or looks up service
items over the unicast protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ...net import Endpoint, Node
from .codec import StreamReader, StreamWriter
from .constants import (
    JINI_ANNOUNCEMENT_GROUP,
    JINI_PORT,
    JINI_REQUEST_GROUP,
    PUBLIC_GROUP,
)
from .discovery import (
    JINI_MEMO_KEY,
    MulticastAnnouncement,
    MulticastRequest,
    ServiceItem,
    ServiceTemplate,
    decode_packet_shared,
    groups_overlap,
)
from .errors import JiniDecodeError
from .registrar import (
    OP_ERROR,
    OP_ITEMS,
    OP_LOOKUP,
    OP_OK,
    OP_REGISTER,
    OP_RENEW,
    OP_UNREGISTER,
    frame,
)


@dataclass(frozen=True)
class RegistrarInfo:
    """What discovery learns about one registrar."""

    service_id: str
    host: str
    port: int
    groups: tuple[str, ...]


class LookupDiscovery:
    """Finds lookup services on behalf of a client or service."""

    def __init__(self, node: Node, groups: tuple[str, ...] = (PUBLIC_GROUP,)):
        self.node = node
        self.groups = groups
        self.registrars: dict[str, RegistrarInfo] = {}
        self.on_discovered: Optional[Callable[[RegistrarInfo], None]] = None
        self._parse_counter = node.network.parse_counter("jini")

        # Passive path: listen for announcements.
        self._announce_socket = node.udp.socket().bind(JINI_PORT, reuse=True)
        self._announce_socket.join_group(JINI_ANNOUNCEMENT_GROUP)
        self._announce_socket.on_datagram(self._on_announcement)

        # Active path: registrars connect back to this listener.
        self._response_port = node.tcp.ephemeral_port()
        self._response_listener = node.tcp.listen(self._response_port, self._on_response)
        self._request_socket = node.udp.socket()

    def close(self) -> None:
        self._announce_socket.close()
        self._response_listener.close()

    def request(self) -> None:
        """Multicast a discovery request (active model)."""
        packet = MulticastRequest(
            response_host=self.node.address,
            response_port=self._response_port,
            groups=self.groups,
            heard=tuple(self.registrars),
        )
        self._parse_counter.note_seed()
        self._request_socket.sendto(
            packet.encode(),
            Endpoint(JINI_REQUEST_GROUP, JINI_PORT),
            decode_hint=(JINI_MEMO_KEY, packet),
        )

    def _on_announcement(self, datagram) -> None:
        packet = decode_packet_shared(
            datagram.payload, datagram.ensure_memo(), self._parse_counter
        )
        if not isinstance(packet, MulticastAnnouncement):
            return
        if not groups_overlap(self.groups, packet.groups):
            return
        self._remember(
            RegistrarInfo(packet.service_id, packet.host, packet.port, packet.groups)
        )

    def _on_response(self, connection) -> None:
        buffer = bytearray()

        def handle_data(chunk: bytes) -> None:
            buffer.extend(chunk)
            try:
                reader = StreamReader(bytes(buffer))
                service_id = reader.read_utf()
                host = reader.read_utf()
                port = reader.read_int()
                groups = tuple(reader.read_utf_list())
            except JiniDecodeError:
                return  # wait for more bytes
            self._remember(RegistrarInfo(service_id, host, port, groups))

        connection.on_data(handle_data)

    def _remember(self, info: RegistrarInfo) -> None:
        is_new = info.service_id not in self.registrars
        self.registrars[info.service_id] = info
        if is_new and self.on_discovered is not None:
            self.on_discovered(info)


class RegistrarClient:
    """Register / lookup against one discovered registrar."""

    def __init__(self, node: Node, registrar: RegistrarInfo):
        self.node = node
        self.registrar = registrar

    def register(
        self,
        item: ServiceItem,
        on_registered: Callable[[str], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        writer = StreamWriter()
        writer.write_byte(OP_REGISTER)
        item.encode(writer)

        def handle(payload: bytes) -> None:
            reader = StreamReader(payload)
            op = reader.read_byte()
            if op == OP_OK and on_registered is not None:
                on_registered(reader.read_utf())
            elif op == OP_ERROR and on_error is not None:
                on_error(JiniDecodeError(reader.read_utf()))

        self._exchange(writer.getvalue(), handle, on_error)

    def lookup(
        self,
        template: ServiceTemplate,
        on_items: Callable[[list[ServiceItem]], None],
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        writer = StreamWriter()
        writer.write_byte(OP_LOOKUP)
        template.encode(writer)

        def handle(payload: bytes) -> None:
            reader = StreamReader(payload)
            op = reader.read_byte()
            if op != OP_ITEMS:
                if on_error is not None:
                    on_error(JiniDecodeError(f"unexpected reply op {op:#04x}"))
                return
            count = reader.read_int()
            on_items([ServiceItem.decode(reader) for _ in range(count)])

        self._exchange(writer.getvalue(), handle, on_error)

    def renew_lease(
        self,
        service_id: str,
        on_renewed: Callable[[str], None] | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        """Renew a registration's lease (Jini join-manager behaviour)."""
        writer = StreamWriter()
        writer.write_byte(OP_RENEW)
        writer.write_utf(service_id)

        def handle(payload: bytes) -> None:
            reader = StreamReader(payload)
            op = reader.read_byte()
            if op == OP_OK and on_renewed is not None:
                on_renewed(reader.read_utf())
            elif op == OP_ERROR and on_error is not None:
                on_error(JiniDecodeError(reader.read_utf()))

        self._exchange(writer.getvalue(), handle, on_error)

    def unregister(
        self, service_id: str, on_done: Callable[[str], None] | None = None
    ) -> None:
        writer = StreamWriter()
        writer.write_byte(OP_UNREGISTER)
        writer.write_utf(service_id)

        def handle(payload: bytes) -> None:
            reader = StreamReader(payload)
            if reader.read_byte() == OP_OK and on_done is not None:
                on_done(reader.read_utf())

        self._exchange(writer.getvalue(), handle, None)

    def _exchange(
        self,
        payload: bytes,
        on_reply: Callable[[bytes], None],
        on_error: Callable[[Exception], None] | None,
    ) -> None:
        def connected(connection) -> None:
            buffer = bytearray()

            def handle_data(chunk: bytes) -> None:
                buffer.extend(chunk)
                if len(buffer) < 4:
                    return
                length = int.from_bytes(buffer[:4], "big")
                if len(buffer) < 4 + length:
                    return
                reply = bytes(buffer[4 : 4 + length])
                connection.close()
                on_reply(reply)

            connection.on_data(handle_data)
            connection.send(frame(payload))

        def handle_error(error: Exception) -> None:
            if on_error is not None:
                on_error(error)

        self.node.tcp.connect(
            Endpoint(self.registrar.host, self.registrar.port), connected, on_error=handle_error
        )


__all__ = ["LookupDiscovery", "RegistrarClient", "RegistrarInfo"]

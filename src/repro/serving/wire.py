"""JSON-ish wire codec for the discovery query RPC (serving tier).

The serving protocol is a deliberately boring request/response exchange
over the simulated UDP stack: one datagram per request, one per response,
canonical JSON (``sort_keys=True``) so identical messages are identical
bytes — the property every byte-reproducibility gate in this repo leans
on.  The codec lives apart from the gossip wire format on purpose: gossip
moves *cache state* between gateways, this protocol moves *answers* to
clients, and the two evolve independently.

Request kinds (``"kind"`` field):

* ``"type"``  — lookup-by-normalized-type (``st``), optional attribute
  predicate ``where`` ({name: value} exact match) and ``prefix`` flag
  (``st`` matched as a normalized-type prefix).
* ``"url"``   — lookup-by-url (``url``).
* ``"batch"`` — batched multi-target lookup: ``targets`` is a list of
  service types resolved in one round trip.
* ``"districts"`` — "which districts have X": ``st`` again, the answer
  maps district ids to record counts.
* Any request may carry ``scope`` — ``{"districts": [...], "hops": n}``
  bounds: answers are filtered to records whose service URL resolves into
  one of the named districts, and ``hops`` declares the client's
  forwarding budget (echoed, never exceeded).

Responses carry ``status`` (``"ok"`` | ``"miss"`` | ``"error"``), the
matched records, the serving index ``ver`` (cache version at answer
time), and the honesty stamp ``staleness_us`` — see
:mod:`repro.serving.frontend` for the contract.
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from ..sdp.base import ServiceRecord

#: The frontend's well-known UDP port.  Gossip owns 4610; the serving
#: tier sits next to it on the gateway, one port up the block.
SERVING_PORT = 4620

#: Wire-format version, bumped on incompatible change.
WIRE_VERSION = 1

REQUEST_KINDS = ("type", "url", "batch", "districts")


def encode(message: Mapping[str, Any]) -> bytes:
    """Canonical-JSON encode: same message, same bytes, every run."""
    return json.dumps(message, sort_keys=True).encode("utf-8")


def decode(payload: bytes) -> Optional[dict]:
    """Best-effort decode; None for anything that is not a JSON object."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if not isinstance(message, dict):
        return None
    return message


def record_to_wire(record: ServiceRecord, staleness_us: int) -> dict:
    """One matched record plus its per-record staleness (µs since the
    record's implied observation at the origin)."""
    wire = {
        "t": record.service_type,
        "u": record.url,
        "l": record.lifetime_s,
        "s": record.source_sdp,
        "stale_us": staleness_us,
    }
    if record.attributes:
        wire["a"] = dict(record.attributes)
    if record.location:
        wire["loc"] = record.location
    return wire


def request(kind: str, rid: int, **fields: Any) -> dict:
    base = {"v": WIRE_VERSION, "kind": kind, "rid": rid}
    base.update(fields)
    return base


def response(
    rid: int,
    status: str,
    *,
    records: Optional[list] = None,
    staleness_us: int = 0,
    ver: int = 0,
    served_by: str = "",
    **fields: Any,
) -> dict:
    base = {
        "v": WIRE_VERSION,
        "kind": "resp",
        "rid": rid,
        "status": status,
        "staleness_us": staleness_us,
        "ver": ver,
        "served_by": served_by,
    }
    if records is not None:
        base["records"] = records
    base.update(fields)
    return base


__all__ = [
    "SERVING_PORT",
    "WIRE_VERSION",
    "REQUEST_KINDS",
    "encode",
    "decode",
    "record_to_wire",
    "request",
    "response",
]

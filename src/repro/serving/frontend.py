"""`QueryFrontend` — the discovery-as-a-service RPC endpoint.

One frontend rides on each gateway's INDISS instance and turns its
gossiped :class:`~repro.core.cache.ServiceCache` into a read-optimized
query service: clients send one UDP datagram (wire format in
:mod:`repro.serving.wire`), the frontend answers from the local cache via
the incrementally maintained :class:`~repro.serving.index.CacheIndex`,
and every answer carries an honesty stamp.

**Staleness contract.**  Each response's ``staleness_us`` is the maximum,
over the records it returns, of *now minus the record's implied
observation time at its origin* (``expiry - lifetime``).  A record that
can only reach this gateway through gossip therefore reports a stamp that
is **at least the true gossip lag**: while a partition starves refreshes
the stamp grows with wall (virtual) time, and once the partition heals
and a fresher expiry is gossiped in it collapses back toward the gossip
period.  Answers whose stamp exceeds ``stale_after_us`` still ship — the
serving tier is honest, not unavailable — but are counted as stale.

**Miss fallback.**  A type lookup that finds nothing locally answers
``"miss"`` immediately *and* (when ``fallback`` is armed) re-issues the
request through the gateway's own translation pipeline — a synthetic
request stream dispatched to every instantiated unit, exactly the path a
foreign multicast request would take.  Whatever answers lands in the
cache through the ordinary ``_deliver_reply`` path, so the next query
for that type hits.  One fallback per type per ``fallback_window_us``
keeps an open-loop miss storm from multiplying into a multicast storm.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.events import (
    Event,
    SDP_SERVICE_REQUEST,
    SDP_SERVICE_TYPE,
    bracket,
)
from ..core.indiss import Indiss
from ..net.udp import Datagram, Endpoint
from ..sdp.base import normalize_service_type
from .index import CacheIndex, IndexSnapshot, staleness_us
from . import wire

#: The synthetic origin SDP stamped on fallback sessions.  Not a unit id
#: on purpose: ``_deliver_reply`` finds no origin unit, so the reply is
#: cached but never composed back onto a native wire.
FALLBACK_ORIGIN = "serving"


@dataclass
class ServingStats:
    queries: int = 0
    hits: int = 0
    misses: int = 0
    stale_answers: int = 0
    fallbacks: int = 0
    decode_errors: int = 0
    responses_sent: int = 0
    staleness_sum_us: int = 0
    staleness_max_us: int = 0
    by_endpoint: dict = field(default_factory=dict)

    def note_endpoint(self, kind: str) -> None:
        self.by_endpoint[kind] = self.by_endpoint.get(kind, 0) + 1

    def snapshot(self) -> dict:
        row = {
            "queries": self.queries,
            "hits": self.hits,
            "misses": self.misses,
            "stale_answers": self.stale_answers,
            "fallbacks": self.fallbacks,
            "decode_errors": self.decode_errors,
            "responses_sent": self.responses_sent,
            "staleness_sum_us": self.staleness_sum_us,
            "staleness_max_us": self.staleness_max_us,
        }
        for kind in sorted(self.by_endpoint):
            row[f"endpoint_{kind}"] = self.by_endpoint[kind]
        return row


class QueryFrontend:
    """In-sim RPC app serving discovery queries from one gateway's cache."""

    def __init__(
        self,
        indiss: Indiss,
        port: int = wire.SERVING_PORT,
        *,
        stale_after_us: int = 2_000_000,
        fallback: bool = True,
        fallback_window_us: int = 500_000,
    ):
        self.indiss = indiss
        self.node = indiss.node
        self.port = port
        self.stale_after_us = stale_after_us
        self.fallback = fallback
        self.fallback_window_us = fallback_window_us
        self.stats = ServingStats()
        self.index = CacheIndex(indiss.cache)
        #: type -> virtual deadline before which no new fallback is issued.
        self._fallback_gate: dict[str, int] = {}
        self._socket = self.node.udp.socket().bind(port, reuse=True)
        self._socket.on_datagram(self._on_datagram)

    def close(self) -> None:
        self._socket.close()
        self.index.cache.detach_index(self.index)

    # -- request handling ----------------------------------------------------

    def _snapshot(self) -> IndexSnapshot:
        # crash()/restart() replace indiss.cache wholesale; follow it.
        self.index.rebind(self.indiss.cache)
        return self.index.snapshot()

    def _on_datagram(self, datagram: Datagram) -> None:
        message = wire.decode(datagram.payload)
        if message is None or message.get("kind") not in wire.REQUEST_KINDS:
            self.stats.decode_errors += 1
            return
        kind = message["kind"]
        rid = int(message.get("rid", 0))
        self.stats.queries += 1
        self.stats.note_endpoint(kind)
        snap = self._snapshot()
        now = self.node.now_us
        obs = self.node.network.obs

        if kind == "type":
            reply = self._answer_type(message, snap, now)
        elif kind == "url":
            reply = self._answer_url(message, snap, now)
        elif kind == "batch":
            reply = self._answer_batch(message, snap, now)
        else:
            reply = self._answer_districts(message, snap, now)
        reply["rid"] = rid
        reply["ver"] = snap.version
        reply["served_by"] = self.node.address

        stamp = int(reply.get("staleness_us", 0))
        if reply["status"] == "ok":
            self.stats.hits += 1
            self.stats.staleness_sum_us += stamp
            if stamp > self.stats.staleness_max_us:
                self.stats.staleness_max_us = stamp
            if stamp > self.stale_after_us:
                self.stats.stale_answers += 1
                reply["stale"] = True
        else:
            self.stats.misses += 1

        if obs.on:
            obs.trace.instant(
                f"serving.query.{kind}",
                now,
                self._district(),
                tid=self.node.name,
                cat="serving",
                args={
                    "rid": rid,
                    "status": reply["status"],
                    "staleness_us": stamp,
                    "ver": snap.version,
                },
            )
            obs.metrics.counter(
                "serving.query.hits" if reply["status"] == "ok" else "serving.query.misses",
                endpoint=kind,
            ).inc()
            if reply.get("stale"):
                obs.metrics.counter("serving.query.stale", endpoint=kind).inc()

        self._socket.sendto(wire.encode(reply), datagram.source)
        self.stats.responses_sent += 1

    # -- endpoints -----------------------------------------------------------

    def _answer_type(self, message: dict, snap: IndexSnapshot, now: int) -> dict:
        raw = str(message.get("st", ""))
        wanted = normalize_service_type(raw)
        if message.get("prefix"):
            entries = snap.by_type_prefix(wanted)
        else:
            entries = snap.by_type(wanted)
        where = message.get("where")
        if isinstance(where, dict):
            for name, value in where.items():
                entries = [
                    e
                    for e in entries
                    if str(e.record.attributes.get(str(name), "")) == str(value)
                ]
        entries = self._apply_scope(entries, message.get("scope"))
        if not entries:
            if self.fallback and wanted:
                self._fallback_translate(wanted, raw)
            return wire.response(0, "miss", records=[])
        return self._ok(entries, now)

    def _answer_url(self, message: dict, snap: IndexSnapshot, now: int) -> dict:
        entries = self._apply_scope(
            snap.by_url(str(message.get("url", ""))), message.get("scope")
        )
        if not entries:
            return wire.response(0, "miss", records=[])
        return self._ok(entries, now)

    def _answer_batch(self, message: dict, snap: IndexSnapshot, now: int) -> dict:
        targets = message.get("targets")
        if not isinstance(targets, list):
            return wire.response(0, "error", records=[], error="bad targets")
        per_target: dict[str, list] = {}
        matched: list = []
        for raw in targets:
            wanted = normalize_service_type(str(raw))
            entries = self._apply_scope(snap.by_type(wanted), message.get("scope"))
            per_target[str(raw)] = [
                wire.record_to_wire(e.record, staleness_us(e, now)) for e in entries
            ]
            matched.extend(entries)
            if not entries and self.fallback and wanted:
                self._fallback_translate(wanted, str(raw))
        if not matched:
            return wire.response(0, "miss", records=[], by_target=per_target)
        reply = self._ok(matched, now)
        reply["by_target"] = per_target
        return reply

    def _answer_districts(self, message: dict, snap: IndexSnapshot, now: int) -> dict:
        wanted = normalize_service_type(str(message.get("st", "")))
        entries = snap.by_type(wanted)
        districts: dict[str, int] = {}
        for entry in entries:
            district = self._district_of_url(entry.record.url)
            districts[str(district)] = districts.get(str(district), 0) + 1
        # Fleet membership widens the answer beyond local URL resolution:
        # a peer whose cache holds the type counts its own district in,
        # even when its records' hosts are not resolvable from here.
        federation = getattr(self.indiss, "federation", None)
        if federation is not None:
            fleet = federation.fleet
            for address in sorted(fleet.members):
                member = fleet.members[address]
                peer = member.indiss
                if peer is self.indiss or peer.crashed:
                    continue
                if any(
                    entry.record.service_type == wanted
                    for _, entry in peer.cache.live_entries()
                ):
                    district = peer.node.network.partition_of_node(peer.node)
                    districts.setdefault(str(district), 0)
        if not entries and not districts:
            return wire.response(0, "miss", records=[], districts={})
        reply = self._ok(entries, now) if entries else wire.response(0, "ok", records=[])
        reply["districts"] = districts
        return reply

    # -- helpers -------------------------------------------------------------

    def _ok(self, entries: list, now: int) -> dict:
        stamps = [staleness_us(e, now) for e in entries]
        records = [
            wire.record_to_wire(e.record, stamp) for e, stamp in zip(entries, stamps)
        ]
        records.sort(key=lambda r: (r["t"], r["u"]))
        return wire.response(
            0, "ok", records=records, staleness_us=max(stamps, default=0)
        )

    def _apply_scope(self, entries: list, scope) -> list:
        if not isinstance(scope, dict):
            return entries
        districts = scope.get("districts")
        if isinstance(districts, list) and districts:
            allowed = {int(d) for d in districts}
            entries = [
                e for e in entries if self._district_of_url(e.record.url) in allowed
            ]
        return entries

    def _district_of_url(self, url: str) -> int:
        """District of the host behind a service URL; the frontend's own
        district when the host is not resolvable (external locations)."""
        host = url
        if "://" in host:
            host = host.split("://", 1)[1]
        host = host.split("/", 1)[0].rsplit(":", 1)[0]
        network = self.node.network
        node = network.node_at(host)
        if node is None:
            return self._district()
        return network.partition_of_node(node)

    def _district(self) -> int:
        return self.node.network.partition_of_node(self.node)

    # -- miss fallback: re-issue through the translation pipeline ------------

    def _fallback_translate(self, normalized: str, raw_type: str) -> None:
        indiss = self.indiss
        if indiss.crashed or not indiss.units:
            return
        now = self.node.now_us
        gate = self._fallback_gate.get(normalized, -1)
        if gate > now:
            return
        self._fallback_gate[normalized] = now + self.fallback_window_us
        stream = bracket(
            [
                Event.of(SDP_SERVICE_REQUEST),
                Event.of(SDP_SERVICE_TYPE, type=raw_type or normalized, normalized=normalized),
            ],
            sdp=FALLBACK_ORIGIN,
            function="QUERY",
        )
        session = indiss.session_manager.open(
            FALLBACK_ORIGIN, None, stream, on_reply=indiss._deliver_reply
        )
        session.vars["service_type"] = normalized
        session.vars["st"] = raw_type or normalized
        session.log("serving: cache miss; re-issuing through translation units")
        targets = [indiss.units[name] for name in sorted(indiss.units)]
        indiss.session_manager.record_translated()
        indiss.policy.mark_forwarded(indiss, session, targets)
        session.pending_targets = len(targets)
        self.stats.fallbacks += 1
        obs = self.node.network.obs
        if obs.on:
            obs.metrics.counter("serving.query.fallbacks", type=normalized).inc()
        for target in targets:
            target.handle_foreign_request(stream, session)


__all__ = ["QueryFrontend", "ServingStats", "FALLBACK_ORIGIN"]

"""Secondary index over :class:`~repro.core.cache.ServiceCache`.

The cache itself is a flat ``(type, url) -> entry`` dict — perfect for
the translation pipeline's "first live record of this type" probe, linear
for everything the serving tier wants to answer: by URL, by type prefix,
by attribute, by district.  ``CacheIndex`` maintains those inverted maps
**incrementally**: the cache notifies it from every mutation path (store,
merge, byebye removal, remote tombstone, TTL eviction — see
``ServiceCache.attach_index``), so a read never rescans the entry set and
never sees a key the cache already dropped.

Reads go through :meth:`snapshot`, which stamps the answer with the cache
``version`` it was computed against; the sorted type table behind prefix
queries is rebuilt lazily and reused while the version stands still,
which is what makes reads O(1) amortized even under churn.

The index survives :meth:`Indiss.restart` cache replacement via
:meth:`rebind` — the frontend re-reads ``indiss.cache`` at use time and
rebinds when the object changed.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Iterable, Mapping, Optional

from ..core.cache import CacheEntry, ServiceCache

Key = tuple[str, str]


class IndexSnapshot:
    """A version-stamped read view over the index's inverted maps.

    The maps are shared with the live index (no copy): the stamp, not
    isolation, is the contract.  Consumers compare ``version`` against
    the cache's to detect movement; the frontend takes a fresh snapshot
    per query, which is a constant-time operation.
    """

    __slots__ = ("version", "_index")

    def __init__(self, version: int, index: "CacheIndex"):
        self.version = version
        self._index = index

    def by_url(self, url: str) -> list[CacheEntry]:
        return [e for e in self._index._by_url.get(url, {}).values()]

    def by_type(self, normalized_type: str) -> list[CacheEntry]:
        return [e for e in self._index._by_type.get(normalized_type, {}).values()]

    def by_type_prefix(self, prefix: str) -> list[CacheEntry]:
        """All entries whose normalized type starts with ``prefix``, via a
        bisect over the lazily maintained sorted type table."""
        table = self._index._sorted_types()
        found: list[CacheEntry] = []
        start = bisect_left(table, prefix)
        for i in range(start, len(table)):
            name = table[i]
            if not name.startswith(prefix):
                break
            found.extend(self._index._by_type[name].values())
        return found

    def by_attribute(self, name: str, value: str) -> list[CacheEntry]:
        return [e for e in self._index._by_attr.get((name, value), {}).values()]

    def types(self) -> list[str]:
        return self._index._sorted_types()

    def entry_count(self) -> int:
        return sum(len(m) for m in self._index._by_type.values())


class CacheIndex:
    """Incrementally maintained inverted maps over one ``ServiceCache``."""

    def __init__(self, cache: ServiceCache):
        self._cache: Optional[ServiceCache] = None
        self._by_url: dict[str, dict[Key, CacheEntry]] = {}
        self._by_type: dict[str, dict[Key, CacheEntry]] = {}
        self._by_attr: dict[tuple[str, str], dict[Key, CacheEntry]] = {}
        #: Sorted type names, rebuilt lazily when the type set moved.
        self._type_table: Optional[list[str]] = None
        self.rebuilds = 0
        self.rebind(cache)

    # -- lifecycle -----------------------------------------------------------

    def rebind(self, cache: ServiceCache) -> None:
        """Attach to ``cache``, detaching from any previous one, and
        rebuild from its live entries (crash/restart replaces the cache
        object wholesale — the index follows the new one)."""
        if cache is self._cache:
            return
        if self._cache is not None:
            self._cache.detach_index(self)
            # Only genuine replacements count: the constructor's first
            # bind is not a "rebuild".
            self.rebuilds += 1
        self._cache = cache
        self._by_url.clear()
        self._by_type.clear()
        self._by_attr.clear()
        self._type_table = None
        cache.attach_index(self)
        for key, entry in cache.live_entries():
            self.on_store(key, entry)

    @property
    def cache(self) -> ServiceCache:
        assert self._cache is not None
        return self._cache

    # -- mutation hooks (called by ServiceCache) -----------------------------

    def on_store(self, key: Key, entry: CacheEntry) -> None:
        old = self._by_type.get(key[0], {}).get(key)
        if old is not None:
            self._drop(key, old)
        self._by_url.setdefault(key[1], {})[key] = entry
        bucket = self._by_type.get(key[0])
        if bucket is None:
            self._by_type[key[0]] = {key: entry}
            self._type_table = None  # new type name: sorted table is stale
        else:
            bucket[key] = entry
        for name, value in entry.record.attributes.items():
            self._by_attr.setdefault((str(name), str(value)), {})[key] = entry

    def on_remove(self, key: Key) -> None:
        old = self._by_type.get(key[0], {}).get(key)
        if old is not None:
            self._drop(key, old)

    def _drop(self, key: Key, entry: CacheEntry) -> None:
        urls = self._by_url.get(key[1])
        if urls is not None:
            urls.pop(key, None)
            if not urls:
                del self._by_url[key[1]]
        types = self._by_type.get(key[0])
        if types is not None:
            types.pop(key, None)
            if not types:
                del self._by_type[key[0]]
                self._type_table = None
        for name, value in entry.record.attributes.items():
            attrs = self._by_attr.get((str(name), str(value)))
            if attrs is not None:
                attrs.pop(key, None)
                if not attrs:
                    del self._by_attr[(str(name), str(value))]

    # -- reads ---------------------------------------------------------------

    def snapshot(self, evict: bool = True) -> IndexSnapshot:
        """Version-stamped read view; ``evict`` sweeps the cache's TTLs
        first so lazily expired entries never leak into an answer."""
        if evict:
            self.cache.evict_expired()
        return IndexSnapshot(self.cache.version, self)

    def _sorted_types(self) -> list[str]:
        if self._type_table is None:
            self._type_table = sorted(self._by_type)
        return self._type_table

    def check(self) -> list[str]:
        """Invariant audit against the authoritative per-type dict; the
        coherence tests call this after every interleaving."""
        problems: list[str] = []
        truth = dict(self.cache.live_entries())
        indexed = {
            key for bucket in self._by_type.values() for key in bucket
        }
        for key in truth:
            if key not in indexed:
                problems.append(f"missing from index: {key!r}")
            if key not in self._by_url.get(key[1], {}):
                problems.append(f"missing from url map: {key!r}")
        for key in indexed - set(truth):
            problems.append(f"stale in index: {key!r}")
        for (name, value), bucket in self._by_attr.items():
            for key in bucket:
                if key not in truth:
                    problems.append(f"stale in attr map ({name}={value}): {key!r}")
        return problems


def staleness_us(entry: CacheEntry, now_us: int) -> int:
    """µs since the record's *implied observation* at its origin.

    A merged record's absolute expiry encodes when the originating cache
    last saw the service (``expiry - lifetime``); a locally stored record's
    implied observation is its store time.  ``now - implied`` therefore
    grows exactly with gossip lag while a partition starves refreshes, and
    collapses once a fresher expiry is gossiped in — the honesty property
    the staleness tests pin.
    """
    implied = entry.expires_at_us - entry.record.lifetime_s * 1_000_000
    return max(0, int(now_us - implied))


__all__ = ["CacheIndex", "IndexSnapshot", "staleness_us"]

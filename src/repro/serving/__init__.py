"""Discovery-as-a-service: the query serving tier over the federated cache.

INDISS makes heterogeneous discovery protocols interoperate; this package
makes the *result* of that interoperation cheap to read at scale.  Each
gateway's gossiped :class:`~repro.core.cache.ServiceCache` gains a
secondary index (:mod:`repro.serving.index`) and a UDP RPC endpoint
(:mod:`repro.serving.frontend`, wire format in
:mod:`repro.serving.wire`): lookups by type / prefix / attribute / URL,
district-scoped and batched queries, and "which districts have X" — all
answered locally with a per-query staleness stamp, falling back to the
gateway's translation pipeline on miss.
"""

from .frontend import FALLBACK_ORIGIN, QueryFrontend, ServingStats
from .index import CacheIndex, IndexSnapshot, staleness_us
from .wire import SERVING_PORT

__all__ = [
    "QueryFrontend",
    "ServingStats",
    "CacheIndex",
    "IndexSnapshot",
    "staleness_us",
    "SERVING_PORT",
    "FALLBACK_ORIGIN",
]

"""Deterministic finite automata coordinating SDP units (paper §2.3).

A unit's DFA is the 5-tuple (Q, Σ, C, T, q0, F) of the paper: states track
the progress of the SDP coordination process; transitions are labelled with
**triggers** (event types), **condition guards** (Boolean expressions on
event data and recorded state variables) and **actions** (operations the
unit performs: dispatch events, record data, reconfigure parsers...).

The machine itself is protocol-agnostic; each SDP unit instantiates it with
its own tuples, exactly as the paper's ``Component UPnP-FSM = {
AddTuple(...) }`` specification operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping, Sequence, Union

from .events import Event, EventType
from .guardlang import Guard, compile_guard

#: An action is either a named action (resolved by the unit's action table)
#: or a direct callable(event, machine).
Action = Union[str, Callable[[Event, "StateMachine"], None]]

#: A trigger set; "*" matches every event type.
Triggers = Union[str, EventType, Sequence[EventType]]

WILDCARD = "*"


class FsmError(Exception):
    """Raised for ill-formed machine definitions or undefined actions."""


@dataclass(frozen=True)
class Transition:
    """One row of the transition relation T: Q x Σ x C -> Q."""

    state: str
    triggers: frozenset[EventType] | str  # frozenset or WILDCARD
    guard: Guard
    next_state: str
    actions: tuple[Action, ...] = ()

    def matches(self, event: Event, variables: Mapping) -> bool:
        if self.triggers != WILDCARD and event.type not in self.triggers:
            return False
        return self.guard.evaluate(event, variables)


@dataclass
class TransitionRecord:
    """One executed transition (kept for tracing / debugging, paper §2.3:
    "a useful feature, not only for debugging purposes, but also for a
    dynamic representation of the run-time interoperability architecture")."""

    from_state: str
    event: Event
    to_state: str


class StateMachineDefinition:
    """The static DFA: states, transitions, accepting states."""

    def __init__(self, name: str, initial_state: str):
        self.name = name
        self.initial_state = initial_state
        self.transitions: list[Transition] = []
        self.accepting_states: set[str] = set()

    def add_tuple(
        self,
        current_state: str,
        triggers: Triggers,
        condition_guard: "str | Guard | None",
        new_state: str,
        actions: Iterable[Action] = (),
    ) -> "StateMachineDefinition":
        """The paper's ``AddTuple(CurrentState, triggers, condition-guards,
        NewState, actions)`` specification operator."""
        if isinstance(triggers, str):
            if triggers != WILDCARD:
                raise FsmError(f"string trigger must be '*', got {triggers!r}")
            trigger_set: frozenset[EventType] | str = WILDCARD
        elif isinstance(triggers, EventType):
            trigger_set = frozenset((triggers,))
        else:
            trigger_set = frozenset(triggers)
            if not trigger_set:
                raise FsmError("empty trigger set")
        self.transitions.append(
            Transition(
                state=current_state,
                triggers=trigger_set,
                guard=compile_guard(condition_guard),
                next_state=new_state,
                actions=tuple(actions),
            )
        )
        return self

    def accept(self, *states: str) -> "StateMachineDefinition":
        self.accepting_states.update(states)
        return self

    @property
    def states(self) -> set[str]:
        found = {self.initial_state} | set(self.accepting_states)
        for transition in self.transitions:
            found.add(transition.state)
            found.add(transition.next_state)
        return found

    def validate(self) -> None:
        """Reject machines whose accepting states are unreachable."""
        unreachable = self.accepting_states - self.states
        if unreachable:  # pragma: no cover - accept() adds them to states
            raise FsmError(f"accepting states not in graph: {unreachable}")


class StateMachine:
    """A running instance of a definition, bound to an action table.

    ``actions`` maps action names to callables ``(event, machine) -> None``.
    State variables (:attr:`variables`) persist across transitions so reply
    composition can use data recorded from earlier events (paper §2.3).
    """

    def __init__(
        self,
        definition: StateMachineDefinition,
        actions: Mapping[str, Callable[[Event, "StateMachine"], None]] | None = None,
        trace: bool = False,
    ):
        definition.validate()
        self.definition = definition
        self.state = definition.initial_state
        self.variables: dict[str, Any] = {}
        self._actions = dict(actions or {})
        self._trace_enabled = trace
        self.trace: list[TransitionRecord] = []
        self.events_seen = 0
        self.events_ignored = 0

    @property
    def in_accepting_state(self) -> bool:
        return self.state in self.definition.accepting_states

    def bind_action(self, name: str, handler: Callable[[Event, "StateMachine"], None]) -> None:
        self._actions[name] = handler

    def record(self, key: str, value: Any) -> None:
        """Record event data into a state variable."""
        self.variables[key] = value

    def reset(self) -> None:
        self.state = self.definition.initial_state
        self.variables.clear()
        self.trace.clear()

    def feed(self, event: Event) -> bool:
        """Offer one event; returns True when a transition fired.

        Events matching no transition are filtered (paper §2.3: "incoming
        events are filtered"), not errors.
        """
        self.events_seen += 1
        for transition in self.definition.transitions:
            if transition.state != self.state:
                continue
            if not transition.matches(event, self.variables):
                continue
            previous = self.state
            self.state = transition.next_state
            if self._trace_enabled:
                self.trace.append(TransitionRecord(previous, event, self.state))
            for action in transition.actions:
                self._run_action(action, event)
            return True
        self.events_ignored += 1
        return False

    def feed_all(self, events: Iterable[Event]) -> int:
        """Feed a stream; returns how many transitions fired."""
        return sum(1 for event in events if self.feed(event))

    def _run_action(self, action: Action, event: Event) -> None:
        if callable(action):
            action(event, self)
            return
        handler = self._actions.get(action)
        if handler is None:
            raise FsmError(
                f"machine {self.definition.name!r} has no action {action!r} bound"
            )
        handler(event, self)


__all__ = [
    "StateMachine",
    "StateMachineDefinition",
    "Transition",
    "TransitionRecord",
    "FsmError",
    "WILDCARD",
]

"""INDISS semantic events (paper §2.3, Table 1).

Parsers translate native SDP messages into streams of these events;
composers translate streams back into native messages.  The **mandatory
set** is the greatest common denominator of all SDPs — every parser must be
able to generate it, every composer must understand it.  SDP-specific
events extend the set; composers silently discard the ones they do not
know, which is how "the richest SDPs interact using their advanced features
without being misunderstood by the poorest".

Three open extension sets (Registration / Discovery / Advertisement,
paper §2.3) admit new events without touching existing units.
"""

from __future__ import annotations

from enum import Enum
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping


class EventCategory(Enum):
    """Table 1's event-set partitions plus the three extension sets."""

    CONTROL = "SDP Control Events"
    NETWORK = "SDP Network Events"
    SERVICE = "SDP Service Events"
    REQUEST = "SDP Request Events"
    RESPONSE = "SDP Response Events"
    REGISTRATION = "Registration Events"
    DISCOVERY = "Discovery Events"
    ADVERTISEMENT = "Advertisement Events"


class EventType:
    """One interned event type; compare by identity.

    The registry guarantees one instance per name, so identity comparison
    and the default C-level identity hash are exact — and composers hash
    event types on every single event they filter, so this is deliberately
    *not* a dataclass (a generated all-fields ``__hash__``/``__eq__`` would
    run a Python frame per membership test on the parse hot path).
    """

    __slots__ = ("name", "category", "mandatory", "sdp")

    def __init__(
        self,
        name: str,
        category: EventCategory,
        mandatory: bool = False,
        sdp: str = "",
    ):
        self.name = name
        self.category = category
        self.mandatory = mandatory
        #: Empty for common events; the owning SDP id for specific ones.
        self.sdp = sdp

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return (
            f"EventType(name={self.name!r}, category={self.category!r}, "
            f"mandatory={self.mandatory!r}, sdp={self.sdp!r})"
        )

    def __str__(self) -> str:  # pragma: no cover - display convenience
        return self.name


class EventTypeRegistry:
    """The global table of known event types (extensible at runtime)."""

    def __init__(self) -> None:
        self._by_name: dict[str, EventType] = {}

    def define(
        self,
        name: str,
        category: EventCategory,
        mandatory: bool = False,
        sdp: str = "",
    ) -> EventType:
        """Register (or fetch, if identical) an event type.

        Redefinition with different properties is an error: event names are
        the contract between parsers and composers.
        """
        existing = self._by_name.get(name)
        if existing is not None:
            if (existing.category, existing.mandatory, existing.sdp) != (
                category,
                mandatory,
                sdp,
            ):
                raise ValueError(
                    f"event type {name!r} already defined with different properties"
                )
            return existing
        candidate = EventType(name=name, category=category, mandatory=mandatory, sdp=sdp)
        self._by_name[name] = candidate
        return candidate

    def get(self, name: str) -> EventType:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"unknown event type {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def mandatory_set(self) -> frozenset[EventType]:
        return frozenset(t for t in self._by_name.values() if t.mandatory)

    def sdp_specific(self, sdp: str) -> frozenset[EventType]:
        return frozenset(t for t in self._by_name.values() if t.sdp == sdp)

    def all_types(self) -> list[EventType]:
        return list(self._by_name.values())


#: The process-wide registry (paper: one fixed common set + per-SDP sets).
REGISTRY = EventTypeRegistry()

_d = REGISTRY.define

# -- Table 1: mandatory events ------------------------------------------------

# SDP Control Events
SDP_C_START = _d("SDP_C_START", EventCategory.CONTROL, mandatory=True)
SDP_C_STOP = _d("SDP_C_STOP", EventCategory.CONTROL, mandatory=True)
SDP_C_PARSER_SWITCH = _d("SDP_C_PARSER_SWITCH", EventCategory.CONTROL, mandatory=True)
SDP_C_SOCKET_SWITCH = _d("SDP_C_SOCKET_SWITCH", EventCategory.CONTROL, mandatory=True)

# SDP Network Events
SDP_NET_UNICAST = _d("SDP_NET_UNICAST", EventCategory.NETWORK, mandatory=True)
SDP_NET_MULTICAST = _d("SDP_NET_MULTICAST", EventCategory.NETWORK, mandatory=True)
SDP_NET_SOURCE_ADDR = _d("SDP_NET_SOURCE_ADDR", EventCategory.NETWORK, mandatory=True)
SDP_NET_DEST_ADDR = _d("SDP_NET_DEST_ADDR", EventCategory.NETWORK, mandatory=True)
SDP_NET_TYPE = _d("SDP_NET_TYPE", EventCategory.NETWORK, mandatory=True)

# SDP Service Events
SDP_SERVICE_REQUEST = _d("SDP_SERVICE_REQUEST", EventCategory.SERVICE, mandatory=True)
SDP_SERVICE_RESPONSE = _d("SDP_SERVICE_RESPONSE", EventCategory.SERVICE, mandatory=True)
SDP_SERVICE_ALIVE = _d("SDP_SERVICE_ALIVE", EventCategory.SERVICE, mandatory=True)
SDP_SERVICE_BYEBYE = _d("SDP_SERVICE_BYEBYE", EventCategory.SERVICE, mandatory=True)
SDP_SERVICE_TYPE = _d("SDP_SERVICE_TYPE", EventCategory.SERVICE, mandatory=True)
SDP_SERVICE_ATTR = _d("SDP_SERVICE_ATTR", EventCategory.SERVICE, mandatory=True)

# SDP Request Events
SDP_REQ_LANG = _d("SDP_REQ_LANG", EventCategory.REQUEST, mandatory=True)

# SDP Response Events
SDP_RES_OK = _d("SDP_RES_OK", EventCategory.RESPONSE, mandatory=True)
SDP_RES_ERR = _d("SDP_RES_ERR", EventCategory.RESPONSE, mandatory=True)
SDP_RES_TTL = _d("SDP_RES_TTL", EventCategory.RESPONSE, mandatory=True)
SDP_RES_SERV_URL = _d("SDP_RES_SERV_URL", EventCategory.RESPONSE, mandatory=True)

# -- Common extension events (paper §2.3-§2.4) ---------------------------------

#: Attribute name/value carried in a response (Fig. 4: "The XML description
#: is converted to several SDP_RES_ATTR events").
SDP_RES_ATTR = _d("SDP_RES_ATTR", EventCategory.ADVERTISEMENT)

#: Remaining gateway-forward hop budget carried by a re-issued request.
#: Every SDP encodes it differently on the wire (SLP: an ``x-indiss-hops-N``
#: pseudo-scope; SSDP: a ``HOPS.INDISS.ORG`` header) but parsers surface it
#: as this one common event, so the dispatch layer can stop forwarding on
#: cyclic topologies even when duplicate suppression is defeated.
SDP_REQ_HOPS = _d("SDP_REQ_HOPS", EventCategory.REQUEST)

# -- SLP-specific events (Fig. 4, step 1) -------------------------------------

SDP_REQ_VERSION = _d("SDP_REQ_VERSION", EventCategory.REQUEST, sdp="slp")
SDP_REQ_SCOPE = _d("SDP_REQ_SCOPE", EventCategory.REQUEST, sdp="slp")
SDP_REQ_PREDICATE = _d("SDP_REQ_PREDICATE", EventCategory.REQUEST, sdp="slp")
SDP_REQ_ID = _d("SDP_REQ_ID", EventCategory.REQUEST, sdp="slp")
SDP_REG_SCOPE = _d("SDP_REG_SCOPE", EventCategory.REGISTRATION, sdp="slp")

# -- UPnP-specific events (Fig. 4, steps 2-3) -----------------------------------

#: URL of the device description document (the SSDP LOCATION header).
SDP_DEVICE_URL_DESC = _d("SDP_DEVICE_URL_DESC", EventCategory.DISCOVERY, sdp="upnp")
SDP_DEVICE_USN = _d("SDP_DEVICE_USN", EventCategory.DISCOVERY, sdp="upnp")
SDP_DEVICE_MAX_AGE = _d("SDP_DEVICE_MAX_AGE", EventCategory.DISCOVERY, sdp="upnp")
SDP_DEVICE_SERVER = _d("SDP_DEVICE_SERVER", EventCategory.DISCOVERY, sdp="upnp")

# -- Jini-specific events ---------------------------------------------------------

SDP_JINI_REGISTRAR = _d("SDP_JINI_REGISTRAR", EventCategory.DISCOVERY, sdp="jini")
SDP_JINI_SERVICE_ID = _d("SDP_JINI_SERVICE_ID", EventCategory.DISCOVERY, sdp="jini")
SDP_JINI_GROUPS = _d("SDP_JINI_GROUPS", EventCategory.DISCOVERY, sdp="jini")


_EMPTY: Mapping = MappingProxyType({})


class Event:
    """One semantic event: a type tag plus read-only data (paper §2.3:
    "Events are basic elements and consist of two parts: event type and
    data").

    A ``__slots__`` class rather than a frozen dataclass: parsers mint
    tens of thousands of events per simulated second, and the generated
    frozen-``__init__`` (one guarded ``object.__setattr__`` per field) was
    a measurable slice of the receive path.  Instances are immutable by
    convention; ``data`` is a read-only mapping.
    """

    __slots__ = ("type", "data")

    def __init__(self, type: EventType, data: Mapping = _EMPTY):
        self.type = type
        self.data = data

    @staticmethod
    def of(event_type: EventType, **data) -> "Event":
        # ``data`` is a fresh kwargs dict owned by this call; wrapping it
        # directly (no defensive copy) keeps the hot parse paths cheap.
        return Event(event_type, MappingProxyType(data) if data else _EMPTY)

    def get(self, key: str, default=None):
        return self.data.get(key, default)

    @property
    def name(self) -> str:
        return self.type.name

    def __eq__(self, other) -> bool:
        if not isinstance(other, Event):
            return NotImplemented
        return self.type is other.type and self.data == other.data

    __hash__ = None  # events hold mappings; unhashable, like before

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        return f"Event(type={self.type!r}, data={dict(self.data)!r})"

    def __str__(self) -> str:  # pragma: no cover - display convenience
        if not self.data:
            return self.type.name
        inner = ", ".join(f"{k}={v!r}" for k, v in self.data.items())
        return f"{self.type.name}({inner})"


def bracket(events: Iterable[Event], **start_data) -> list[Event]:
    """Wrap an event sequence with SDP_C_START / SDP_C_STOP (paper §2.4:
    "The event stream always starts with a SDP_C_START event and ends with a
    SDP_C_STOP event to specify the events belonging to a same message")."""
    inner = list(events)
    return [Event.of(SDP_C_START, **start_data), *inner, Event.of(SDP_C_STOP)]


def is_bracketed(events: list[Event]) -> bool:
    return (
        len(events) >= 2
        and events[0].type is SDP_C_START
        and events[-1].type is SDP_C_STOP
    )


def payload_events(events: Iterable[Event]) -> Iterator[Event]:
    """The events of a stream minus the START/STOP brackets."""
    for event in events:
        if event.type is SDP_C_START or event.type is SDP_C_STOP:
            continue
        yield event


MANDATORY_EVENTS = REGISTRY.mandatory_set()


__all__ = [
    "Event",
    "EventCategory",
    "EventType",
    "EventTypeRegistry",
    "REGISTRY",
    "MANDATORY_EVENTS",
    "bracket",
    "is_bracketed",
    "payload_events",
    # mandatory control
    "SDP_C_START",
    "SDP_C_STOP",
    "SDP_C_PARSER_SWITCH",
    "SDP_C_SOCKET_SWITCH",
    # mandatory network
    "SDP_NET_UNICAST",
    "SDP_NET_MULTICAST",
    "SDP_NET_SOURCE_ADDR",
    "SDP_NET_DEST_ADDR",
    "SDP_NET_TYPE",
    # mandatory service
    "SDP_SERVICE_REQUEST",
    "SDP_SERVICE_RESPONSE",
    "SDP_SERVICE_ALIVE",
    "SDP_SERVICE_BYEBYE",
    "SDP_SERVICE_TYPE",
    "SDP_SERVICE_ATTR",
    # mandatory request/response
    "SDP_REQ_LANG",
    "SDP_RES_OK",
    "SDP_RES_ERR",
    "SDP_RES_TTL",
    "SDP_RES_SERV_URL",
    # common extensions
    "SDP_RES_ATTR",
    "SDP_REQ_HOPS",
    # slp-specific
    "SDP_REQ_VERSION",
    "SDP_REQ_SCOPE",
    "SDP_REQ_PREDICATE",
    "SDP_REQ_ID",
    "SDP_REG_SCOPE",
    # upnp-specific
    "SDP_DEVICE_URL_DESC",
    "SDP_DEVICE_USN",
    "SDP_DEVICE_MAX_AGE",
    "SDP_DEVICE_SERVER",
    # jini-specific
    "SDP_JINI_REGISTRAR",
    "SDP_JINI_SERVICE_ID",
    "SDP_JINI_GROUPS",
]

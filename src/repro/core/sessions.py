"""Translation-session lifecycle management (extracted from ``Indiss``).

The :class:`SessionManager` owns everything about the *process* side of
translation (paper §2.2): opening sessions for classified requests,
suppressing native retransmissions inside the dedup window, and the
completion/timeout/cache accounting the benchmarks and the adaptation
layer read.

Duplicate suppression used to rebuild the whole recent-request dict on
every incoming request (O(n) on the hot path); :class:`RequestDeduper`
replaces that with a monotonic deque and lazy expiry — O(1) amortized per
request regardless of traffic rate.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Hashable, Optional

from ..net import Endpoint
from .events import Event
from .session import TranslationSession


@dataclass
class SessionStats:
    """Counters the benchmarks and tests read off one INDISS instance."""

    opened: int = 0
    completed: int = 0
    answered_from_cache: int = 0
    timed_out: int = 0
    duplicates_suppressed: int = 0
    #: Sessions that actually dispatched to target units (drove native
    #: discovery) — the unit the federation benchmarks count duplicate
    #: translations in.
    translated: int = 0
    #: Requests dropped because their gateway-forward hop budget ran out.
    hop_budget_drops: int = 0
    #: Probe re-dispatches after an empty translation (lossy-path retry;
    #: zero unless ``IndissConfig.translate_retries`` is set).
    retries: int = 0
    #: Sessions abandoned after every configured retry came back empty.
    gave_up: int = 0
    #: Final-retry fallbacks: the shard-ring owner gate suppressed every
    #: retry (dead or unreachable owner), so the last attempt was
    #: re-dispatched down the classic gateway-forward path instead of
    #: giving up silently.
    retry_fallbacks: int = 0


class RequestDeduper:
    """Sliding-window duplicate detection with O(1) amortized expiry.

    Keys are opaque hashables; entries expire ``window_us`` after they were
    recorded.  Expiry is lazy: each call prunes only the deque head, so the
    per-request cost stays constant even when thousands of distinct keys
    pass through (the old implementation rebuilt the entire dict per
    request).
    """

    def __init__(self, clock: Callable[[], int], window_us: int):
        self._clock = clock
        self.window_us = window_us
        self._seen: dict[Hashable, int] = {}
        self._order: deque[tuple[Hashable, int]] = deque()

    def __len__(self) -> int:
        self._expire(self._clock())
        return len(self._seen)

    def _expire(self, now: int) -> None:
        horizon = now - self.window_us
        while self._order and self._order[0][1] < horizon:
            key, stamped = self._order.popleft()
            # Only forget the key if it was not re-recorded since: a newer
            # timestamp in the dict belongs to a younger deque entry.
            if self._seen.get(key) == stamped:
                del self._seen[key]

    def seen_recently(self, key: Hashable) -> bool:
        """True when ``key`` was recorded within the window; records it
        (refreshing the window) otherwise."""
        now = self._clock()
        self._expire(now)
        if key in self._seen:
            return True
        self._seen[key] = now
        self._order.append((key, now))
        return False


class SessionManager:
    """Owns the open sessions, the dedup window, and the statistics."""

    def __init__(
        self,
        clock: Callable[[], int],
        dedup_window_us: int,
        dedup_scope: str = "requester",
        session_id_source: Optional[Callable[[], int]] = None,
    ):
        if dedup_scope not in ("requester", "service-type"):
            raise ValueError(f"unknown dedup scope {dedup_scope!r}")
        self._clock = clock
        self.dedup_scope = dedup_scope
        self.deduper = RequestDeduper(clock, dedup_window_us)
        self.sessions: list[TranslationSession] = []
        self.stats = SessionStats()
        #: Overrides the module-global session-id counter.  Partitioned
        #: topologies mint ids from per-district blocks so every execution
        #: backend allocates identical ids (see
        #: :meth:`repro.net.network.Network.session_id_source`).
        self._session_id_source = session_id_source

    # -- dedup ---------------------------------------------------------------

    def dedup_key(
        self,
        origin_sdp: str,
        requester: Optional[Endpoint],
        raw_type: str,
        service_type: str,
        xid,
    ) -> tuple:
        """The identity a request is deduplicated under.

        ``requester`` scope matches the native retransmission pattern (same
        client, same XID); ``service-type`` scope additionally collapses
        *different* requesters asking for the same thing — the loop-breaker
        for gateway chains, where each gateway would otherwise re-translate
        its neighbour's translations forever.
        """
        if self.dedup_scope == "service-type":
            return (origin_sdp, service_type or raw_type)
        return (origin_sdp, requester, raw_type, xid)

    def is_duplicate(self, key: tuple) -> bool:
        if self.deduper.seen_recently(key):
            self.stats.duplicates_suppressed += 1
            return True
        return False

    # -- lifecycle -----------------------------------------------------------

    def open(
        self,
        origin_sdp: str,
        requester: Optional[Endpoint],
        request_stream: list[Event],
        on_reply: Callable[[list[Event], TranslationSession], None],
    ) -> TranslationSession:
        source = self._session_id_source
        if source is None:
            session = TranslationSession(
                origin_sdp=origin_sdp,
                requester=requester,
                request_stream=request_stream,
                created_at_us=self._clock(),
            )
        else:
            session = TranslationSession(
                origin_sdp=origin_sdp,
                requester=requester,
                request_stream=request_stream,
                created_at_us=self._clock(),
                session_id=source(),
            )
        session.on_reply = on_reply
        self.sessions.append(session)
        self.stats.opened += 1
        return session

    def record_completed(self) -> None:
        self.stats.completed += 1

    def record_translated(self) -> None:
        self.stats.translated += 1

    def record_hop_budget_drop(self) -> None:
        self.stats.hop_budget_drops += 1

    def record_timeout(self) -> None:
        self.stats.timed_out += 1

    def record_retry(self) -> None:
        self.stats.retries += 1

    def record_gave_up(self) -> None:
        self.stats.gave_up += 1

    def record_retry_fallback(self) -> None:
        self.stats.retry_fallbacks += 1

    def record_cache_answer(self, session: TranslationSession) -> None:
        session.answered_from_cache = True
        session.vars["answered_by"] = "cache"
        self.stats.answered_from_cache += 1

    # -- introspection -------------------------------------------------------

    def active(self) -> list[TranslationSession]:
        return [s for s in self.sessions if not s.completed]

    def __len__(self) -> int:
        return len(self.sessions)


__all__ = ["SessionManager", "SessionStats", "RequestDeduper"]

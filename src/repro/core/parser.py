"""Parser side of the event-based translation (paper §2.2).

A parser "extracts semantic concepts as events from syntactic details of
the SDP detected": raw bytes in, a bracketed event stream out.  Units may
embed several parsers and switch between them mid-session — the paper's
UPnP unit switches from its SSDP parser to an XML parser when a reply
carries an XML body (``SDP_C_PARSER_SWITCH``, Fig. 4 step 3).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from ..net import Endpoint
from .events import Event


@dataclass(frozen=True)
class NetworkMeta:
    """Where a raw message came from; parsers turn this into NET events."""

    source: Optional[Endpoint] = None
    destination: Optional[Endpoint] = None
    multicast: bool = False
    transport: str = "udp"
    #: The delivering frame's shared decode memo
    #: (:class:`repro.net.FrameMemo`), letting every unit that parses the
    #: same fan-out frame share one event stream.  None for raw bytes that
    #: did not arrive as a datagram.  Excluded from equality.
    memo: Optional[object] = field(default=None, compare=False, repr=False)

    @classmethod
    def from_datagram(cls, datagram) -> "NetworkMeta":
        return cls(
            source=datagram.source,
            destination=datagram.destination,
            multicast=datagram.multicast,
            transport="udp",
            memo=datagram.memo,
        )


class ParseError(Exception):
    """Raised when raw data is not a message of the parser's protocol."""


class SdpParser(ABC):
    """Base class for per-protocol (or per-syntax) parsers.

    ``sdp_id`` names the protocol family ("slp", "upnp", "jini");
    ``syntax`` names the concrete syntax within the family ("slp", "ssdp",
    "xml", ...) — the handle ``SDP_C_PARSER_SWITCH`` events select by.
    """

    sdp_id: str = ""
    syntax: str = ""

    def __init__(self) -> None:
        self.messages_parsed = 0
        self.parse_errors = 0
        #: Optional :class:`repro.net.ParseCounter` for network-wide decode
        #: attribution; the owning :class:`~repro.core.unit.Unit` wires it.
        self.parse_counter = None

    @abstractmethod
    def parse(self, raw: bytes, meta: NetworkMeta) -> list[Event]:
        """Translate one raw message into a bracketed event stream.

        Must raise :class:`ParseError` for data that is not this syntax.
        """

    def try_parse(self, raw: bytes, meta: NetworkMeta) -> list[Event] | None:
        """Parse, returning None (and counting) instead of raising."""
        try:
            events = self.parse(raw, meta)
        except ParseError:
            self.parse_errors += 1
            return None
        self.messages_parsed += 1
        return events


__all__ = ["SdpParser", "NetworkMeta", "ParseError"]

"""The INDISS system-specification DSL (paper §3, Figure 5a).

The paper configures an instance with a textual specification::

    System SDP = {
        Component Monitor = {
            ScanPort = { 1900; 1846; 4160; 427 }
        }
        Component Unit SLP(port=1846,427);
        Component Unit UPnP(port=1900);
        Component Unit JINI(port=4160);
    }

and units / state machines with::

    Component Unit UPnP = {
        setFSM(fsm, UPNP);
        AddParser(component, SSDP);
        AddComposer(component, SSDP);
    }
    Component UPnP-FSM = {
        AddTuple(idle, SDP_SERVICE_REQUEST, , searching, send_msearch);
    }

This module parses that syntax into :class:`SystemSpec` /
:class:`UnitSpec` / :class:`FsmSpec` values, from which
:func:`build_indiss_config` derives an :class:`~repro.core.indiss.IndissConfig`
and :meth:`FsmSpec.to_definition` builds a runnable
:class:`~repro.core.fsm.StateMachineDefinition`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .events import REGISTRY
from .fsm import StateMachineDefinition


class ConfigError(Exception):
    """Raised for malformed specification text."""


@dataclass
class UnitSpec:
    name: str
    ports: tuple[int, ...] = ()
    fsm: str = ""
    parsers: tuple[str, ...] = ()
    composers: tuple[str, ...] = ()


@dataclass
class FsmSpec:
    name: str
    tuples: list[tuple[str, str, str, str, tuple[str, ...]]] = field(default_factory=list)
    accepting: tuple[str, ...] = ()

    def to_definition(self) -> StateMachineDefinition:
        """Compile into a runnable DFA; triggers resolve via the event
        registry, '*' is the wildcard."""
        if not self.tuples:
            raise ConfigError(f"FSM {self.name!r} has no AddTuple rows")
        initial = self.tuples[0][0]
        definition = StateMachineDefinition(self.name, initial)
        for current, trigger, guard, new, actions in self.tuples:
            if trigger == "*":
                triggers = "*"
            else:
                names = [t.strip() for t in trigger.split("|") if t.strip()]
                try:
                    triggers = [REGISTRY.get(name) for name in names]
                except KeyError as exc:
                    raise ConfigError(str(exc)) from exc
            definition.add_tuple(current, triggers, guard or None, new, actions)
        if self.accepting:
            definition.accept(*self.accepting)
        return definition


@dataclass
class SystemSpec:
    name: str = "SDP"
    scan_ports: tuple[int, ...] = ()
    units: dict[str, UnitSpec] = field(default_factory=dict)
    fsms: dict[str, FsmSpec] = field(default_factory=dict)

    def unit_names(self) -> tuple[str, ...]:
        return tuple(u.lower() for u in self.units)


_TOKEN = re.compile(
    r"""
    (?P<ws>\s+|//[^\n]*)
  | (?P<string>'[^']*')
  | (?P<brace>[{}])
  | (?P<semi>;)
  | (?P<comma>,)
  | (?P<eq>=)
  | (?P<lpar>\()
  | (?P<rpar>\))
  | (?P<word>[A-Za-z_][A-Za-z_0-9.\-*|]*|\d+|\*)
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            raise ConfigError(f"bad character at offset {pos}: {text[pos:pos+20]!r}")
        pos = match.end()
        if match.lastgroup == "ws":
            continue
        tokens.append((match.lastgroup, match.group()))
    return tokens


class _SpecParser:
    def __init__(self, text: str):
        self._tokens = _tokenize(text)
        self._pos = 0
        self.spec = SystemSpec()

    def _peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) else (None, None)

    def _next(self):
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> str:
        token_kind, token_value = self._next()
        if token_kind != kind or (value is not None and token_value != value):
            raise ConfigError(
                f"expected {value or kind!r}, found {token_value!r} (token {self._pos - 1})"
            )
        return token_value

    def parse(self) -> SystemSpec:
        while self._peek() != (None, None):
            kind, value = self._peek()
            if kind == "word" and value == "System":
                self._parse_system()
            elif kind == "word" and value == "Component":
                self._parse_component()
            else:
                raise ConfigError(f"unexpected top-level token {value!r}")
        return self.spec

    def _parse_system(self) -> None:
        self._expect("word", "System")
        _, name = self._next()
        self.spec.name = name
        self._expect("eq")
        self._expect("brace", "{")
        while self._peek() != ("brace", "}"):
            self._parse_component()
        self._expect("brace", "}")

    def _parse_component(self) -> None:
        self._expect("word", "Component")
        kind_token = self._expect("word")
        if kind_token == "Monitor":
            self._parse_monitor()
        elif kind_token == "Unit":
            self._parse_unit()
        else:
            # Component <Name>-FSM = { AddTuple(...); ... }
            self._parse_fsm(kind_token)

    def _parse_monitor(self) -> None:
        self._expect("eq")
        self._expect("brace", "{")
        self._expect("word", "ScanPort")
        self._expect("eq")
        self._expect("brace", "{")
        ports = []
        while self._peek() != ("brace", "}"):
            kind, value = self._next()
            if kind == "word" and value.isdigit():
                ports.append(int(value))
            elif kind in ("semi", "comma"):
                continue
            else:
                raise ConfigError(f"bad ScanPort entry {value!r}")
        self._expect("brace", "}")
        self._expect("brace", "}")
        self.spec.scan_ports = tuple(ports)

    def _parse_unit(self) -> None:
        name = self._expect("word")
        unit = self.spec.units.setdefault(name, UnitSpec(name=name))
        kind, value = self._peek()
        if (kind, value) == ("lpar", "("):
            self._next()
            self._expect("word", "port")
            self._expect("eq")
            ports = []
            while self._peek() != ("rpar", ")"):
                token_kind, token_value = self._next()
                if token_kind == "word" and token_value.isdigit():
                    ports.append(int(token_value))
                elif token_kind == "comma":
                    continue
                else:
                    raise ConfigError(f"bad port list entry {token_value!r}")
            self._expect("rpar")
            unit.ports = tuple(ports)
            self._consume_optional_semi()
            return
        if (kind, value) == ("eq", "="):
            self._next()
            self._expect("brace", "{")
            while self._peek() != ("brace", "}"):
                self._parse_unit_statement(unit)
            self._expect("brace", "}")
            self._consume_optional_semi()
            return
        self._consume_optional_semi()

    def _parse_unit_statement(self, unit: UnitSpec) -> None:
        fn = self._expect("word")
        self._expect("lpar")
        args = self._parse_call_args()
        self._expect("rpar")
        self._consume_optional_semi()
        if fn == "setFSM":
            unit.fsm = args[-1]
        elif fn == "AddParser":
            unit.parsers = unit.parsers + (args[-1],)
        elif fn == "AddComposer":
            unit.composers = unit.composers + (args[-1],)
        else:
            raise ConfigError(f"unknown unit statement {fn!r}")

    def _parse_fsm(self, raw_name: str) -> None:
        if not raw_name.endswith("-FSM"):
            raise ConfigError(f"unknown component kind {raw_name!r}")
        name = raw_name[: -len("-FSM")]
        fsm = self.spec.fsms.setdefault(name, FsmSpec(name=name))
        self._expect("eq")
        self._expect("brace", "{")
        while self._peek() != ("brace", "}"):
            statement = self._expect("word")
            self._expect("lpar")
            args = self._parse_call_args()
            self._expect("rpar")
            self._consume_optional_semi()
            if statement == "AddTuple":
                if len(args) < 4:
                    raise ConfigError(f"AddTuple needs >=4 arguments, got {args}")
                current, trigger, guard, new = args[0], args[1], args[2], args[3]
                actions = tuple(args[4:])
                fsm.tuples.append((current, trigger, guard, new, actions))
            elif statement == "Accept":
                fsm.accepting = fsm.accepting + tuple(args)
            else:
                raise ConfigError(f"unknown FSM statement {statement!r}")
        self._expect("brace", "}")
        self._consume_optional_semi()

    def _parse_call_args(self) -> list[str]:
        """Comma-separated words or 'quoted strings'; elided args become ''."""
        args: list[str] = []
        expecting_value = True
        while self._peek() != ("rpar", ")"):
            kind, value = self._next()
            if kind == "comma":
                if expecting_value:
                    args.append("")
                expecting_value = True
                continue
            if kind == "word":
                args.append(value)
                expecting_value = False
            elif kind == "string":
                args.append(value[1:-1])
                expecting_value = False
            else:
                raise ConfigError(f"bad call argument {value!r}")
        if expecting_value and args:
            args.append("")
        return args

    def _consume_optional_semi(self) -> None:
        if self._peek() == ("semi", ";"):
            self._next()


def parse_spec(text: str) -> SystemSpec:
    """Parse a specification document into a :class:`SystemSpec`."""
    return _SpecParser(text).parse()


#: The paper's own Figure 5a specification, usable as a default.
PAPER_SPEC = """
System SDP = {
    Component Monitor = {
        ScanPort = { 1900; 1846; 4160; 427 }
    }
    Component Unit SLP(port=1846,427);
    Component Unit UPnP(port=1900);
    Component Unit JINI(port=4160);
}
"""


def fsm_to_spec_text(definition: StateMachineDefinition) -> str:
    """Render a DFA back into the paper's ``Component X-FSM`` syntax.

    Named actions render directly; callable actions cannot be serialized
    and raise.  ``parse_spec(fsm_to_spec_text(d))`` compiles back to an
    equivalent definition — the round-trip the DSL tests verify.
    """
    lines = [f"Component {definition.name}-FSM = {{"]
    for transition in definition.transitions:
        if transition.triggers == "*":
            trigger_text = "*"
        else:
            trigger_text = "|".join(sorted(t.name for t in transition.triggers))
        guard_text = f"'{transition.guard.text}'" if transition.guard.text else ""
        action_parts = []
        for action in transition.actions:
            if callable(action):
                raise ConfigError(
                    f"FSM {definition.name!r} has a callable action; only "
                    "named actions serialize to the DSL"
                )
            action_parts.append(action)
        actions_text = ", ".join(action_parts)
        row = f"    AddTuple({transition.state}, {trigger_text}, {guard_text}, {transition.next_state}"
        if actions_text:
            row += f", {actions_text}"
        row += ");"
        lines.append(row)
    if definition.accepting_states:
        accepted = ", ".join(sorted(definition.accepting_states))
        lines.append(f"    Accept({accepted});")
    lines.append("}")
    return "\n".join(lines)


def build_indiss_config(spec: SystemSpec, **overrides):
    """Derive an :class:`~repro.core.indiss.IndissConfig` from a spec."""
    from .indiss import IndissConfig

    known = {"slp", "upnp", "jini"}
    units = tuple(u for u in spec.unit_names() if u in known)
    if not units:
        raise ConfigError(f"specification {spec.name!r} declares no known units")
    return IndissConfig(units=units, **overrides)


__all__ = [
    "ConfigError",
    "FsmSpec",
    "PAPER_SPEC",
    "SystemSpec",
    "UnitSpec",
    "build_indiss_config",
    "fsm_to_spec_text",
    "parse_spec",
]

"""Condition-guard expressions for unit state machines (paper §2.3, §3).

The paper specifies FSM transitions as
``AddTuple(CurrentState, triggers, condition-guards, NewState, actions)``
where *condition-guards are Boolean expressions on events*.  This module
implements that expression language safely (no ``eval``):

Grammar::

    expr     = or_expr
    or_expr  = and_expr { "or" and_expr }
    and_expr = not_expr { "and" not_expr }
    not_expr = "not" not_expr | comparison
    comparison = operand [ ("==" | "!=" | "<=" | ">=" | "<" | ">") operand ]
               | "exists" "(" path ")"
    operand  = string | number | "true" | "false" | path | "(" expr ")"
    path     = identifier { "." identifier }

Paths resolve against the evaluation context: ``event.type`` is the event's
type name, ``data.<key>`` reads event data, ``vars.<key>`` reads the unit's
recorded state variables (paper: "events data from previous states are
recorded using state variables").  Missing paths resolve to ``None``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Mapping

from .events import Event


class GuardError(Exception):
    """Raised for malformed guard expressions."""


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+)
  | (?P<op>==|!=|<=|>=|<|>|\(|\))
  | (?P<path>[A-Za-z_][A-Za-z_0-9]*(\.[A-Za-z_][A-Za-z_0-9]*)*)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"and", "or", "not", "true", "false", "exists"}


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise GuardError(f"bad character at {pos} in guard {text!r}")
        pos = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        value = match.group()
        if kind == "path" and value.lower() in _KEYWORDS:
            tokens.append(("kw", value.lower()))
        else:
            tokens.append((kind, value))
    return tokens


@dataclass(frozen=True)
class _Literal:
    value: Any

    def evaluate(self, context: Mapping) -> Any:
        return self.value


@dataclass(frozen=True)
class _Path:
    parts: tuple[str, ...]

    def evaluate(self, context: Mapping) -> Any:
        current: Any = context
        for part in self.parts:
            if isinstance(current, Mapping):
                current = current.get(part)
            else:
                current = getattr(current, part, None)
            if current is None:
                return None
        return current


@dataclass(frozen=True)
class _Exists:
    path: _Path

    def evaluate(self, context: Mapping) -> bool:
        return self.path.evaluate(context) is not None


@dataclass(frozen=True)
class _Compare:
    op: str
    left: Any
    right: Any

    def evaluate(self, context: Mapping) -> bool:
        left = self.left.evaluate(context)
        right = self.right.evaluate(context)
        if self.op == "==":
            return _coerce_eq(left, right)
        if self.op == "!=":
            return not _coerce_eq(left, right)
        left_n, right_n = _coerce_order(left, right)
        if left_n is None or right_n is None:
            return False
        if self.op == "<":
            return left_n < right_n
        if self.op == "<=":
            return left_n <= right_n
        if self.op == ">":
            return left_n > right_n
        if self.op == ">=":
            return left_n >= right_n
        raise GuardError(f"unknown operator {self.op!r}")  # pragma: no cover


def _coerce_eq(left: Any, right: Any) -> bool:
    if isinstance(left, str) and isinstance(right, int):
        try:
            return int(left) == right
        except ValueError:
            return False
    if isinstance(right, str) and isinstance(left, int):
        try:
            return left == int(right)
        except ValueError:
            return False
    return left == right


def _coerce_order(left: Any, right: Any):
    def as_number(value):
        if isinstance(value, (int, float)):
            return value
        if isinstance(value, str):
            try:
                return int(value)
            except ValueError:
                return None
        return None

    return as_number(left), as_number(right)


@dataclass(frozen=True)
class _Not:
    child: Any

    def evaluate(self, context: Mapping) -> bool:
        return not _truthy(self.child.evaluate(context))


@dataclass(frozen=True)
class _And:
    left: Any
    right: Any

    def evaluate(self, context: Mapping) -> bool:
        return _truthy(self.left.evaluate(context)) and _truthy(self.right.evaluate(context))


@dataclass(frozen=True)
class _Or:
    left: Any
    right: Any

    def evaluate(self, context: Mapping) -> bool:
        return _truthy(self.left.evaluate(context)) or _truthy(self.right.evaluate(context))


def _truthy(value: Any) -> bool:
    return bool(value)


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], text: str):
        self._tokens = tokens
        self._text = text
        self._pos = 0

    def _peek(self):
        return self._tokens[self._pos] if self._pos < len(self._tokens) else (None, None)

    def _next(self):
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str, value: str | None = None):
        token_kind, token_value = self._next()
        if token_kind != kind or (value is not None and token_value != value):
            raise GuardError(
                f"expected {value or kind} at token {self._pos - 1} in {self._text!r}"
            )
        return token_value

    def parse(self):
        node = self._or()
        if self._pos != len(self._tokens):
            raise GuardError(f"trailing tokens in guard {self._text!r}")
        return node

    def _or(self):
        node = self._and()
        while self._peek() == ("kw", "or"):
            self._next()
            node = _Or(node, self._and())
        return node

    def _and(self):
        node = self._not()
        while self._peek() == ("kw", "and"):
            self._next()
            node = _And(node, self._not())
        return node

    def _not(self):
        if self._peek() == ("kw", "not"):
            self._next()
            return _Not(self._not())
        return self._comparison()

    def _comparison(self):
        kind, value = self._peek()
        if kind == "kw" and value == "exists":
            self._next()
            self._expect("op", "(")
            path_kind, path_value = self._next()
            if path_kind != "path":
                raise GuardError(f"exists() needs a path in {self._text!r}")
            self._expect("op", ")")
            return _Exists(_Path(tuple(path_value.split("."))))
        left = self._operand()
        kind, value = self._peek()
        if kind == "op" and value in ("==", "!=", "<=", ">=", "<", ">"):
            self._next()
            right = self._operand()
            return _Compare(value, left, right)
        return left

    def _operand(self):
        kind, value = self._next()
        if kind == "string":
            return _Literal(value[1:-1])
        if kind == "number":
            return _Literal(int(value))
        if kind == "kw" and value in ("true", "false"):
            return _Literal(value == "true")
        if kind == "path":
            return _Path(tuple(value.split(".")))
        if kind == "op" and value == "(":
            node = self._or()
            self._expect("op", ")")
            return node
        raise GuardError(f"unexpected token {value!r} in guard {self._text!r}")


class Guard:
    """A compiled guard expression, evaluable against (event, vars)."""

    def __init__(self, text: str):
        self.text = text.strip()
        if not self.text:
            self._ast = _Literal(True)
        else:
            self._ast = _Parser(_tokenize(self.text), self.text).parse()

    def evaluate(self, event: Event, variables: Mapping | None = None) -> bool:
        context = {
            "event": {"type": event.type.name, "category": event.type.category.name},
            "data": dict(event.data),
            "vars": dict(variables or {}),
        }
        return _truthy(self._ast.evaluate(context))

    def __repr__(self) -> str:  # pragma: no cover - display convenience
        return f"Guard({self.text!r})"


ALWAYS = Guard("")


def compile_guard(guard: "str | Guard | None") -> Guard:
    """Accept a guard string, a pre-compiled Guard, or None (always true)."""
    if guard is None:
        return ALWAYS
    if isinstance(guard, Guard):
        return guard
    return Guard(guard)


__all__ = ["Guard", "GuardError", "ALWAYS", "compile_guard"]

"""The INDISS system: monitor + units + dynamic composition (paper §2-§3).

One :class:`Indiss` instance runs on a node (client host, service host, or
gateway — paper §4.2 analyses all three placements) and is *transparent*:
native clients and services keep using their own protocols; INDISS joins
the SDP multicast groups beside them and translates.

Message flow (Figures 2 and 3):

1. the monitor detects the SDP by arrival port and hands the raw data over;
2. the source unit's parser turns it into a bracketed event stream;
3. request streams open a :class:`TranslationSession` routed to every other
   instantiated unit (or answered straight from the service cache);
4. the target unit drives its native discovery process — possibly several
   recursive requests — and completes the session with a reply stream;
5. the origin unit's composer renders the native reply to the requester.

Advertisement streams update the cache, and — when advertisement
translation is enabled (the Fig. 6 active mode) — are re-announced through
the other units.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..net import Node
from ..sdp.base import ServiceRecord
from .cache import ServiceCache
from .events import (
    Event,
    SDP_REQ_ID,
    SDP_SERVICE_ALIVE,
    SDP_SERVICE_BYEBYE,
    SDP_SERVICE_REQUEST,
    SDP_SERVICE_RESPONSE,
    SDP_SERVICE_TYPE,
)
from .monitor import MonitorComponent
from .parser import NetworkMeta
from .registry import IanaRegistry, default_registry
from .session import TranslationSession
from .unit import IndissTimings, Unit, UnitRuntime

UnitFactory = Callable[["Indiss", UnitRuntime], Unit]


@dataclass
class IndissConfig:
    """Deployment-time configuration (paper §3: "Configuration of a INDISS
    instance is initially defined in terms of supported SDPs")."""

    #: SDP units this instance supports.
    units: tuple[str, ...] = ("slp", "upnp")
    #: Where this instance sits; informational plus used by benchmarks.
    deployment: str = "client"  # "client" | "service" | "gateway"
    #: "eager" instantiates all units up front; "on-detection" instantiates
    #: a unit the first time its SDP is detected (Fig. 5 dynamics).
    instantiate: str = "eager"
    #: Answer requests from the service cache when possible (Fig. 9b).
    answer_from_cache: bool = False
    #: Learn services from observed responses/advertisements.
    cache_discoveries: bool = True
    #: Re-announce foreign services through other units (Fig. 6 active mode).
    translate_advertisements: bool = False
    #: Suppress duplicate requests (native retransmissions) within window.
    #: SLP user agents retransmit with the same XID well after the first
    #: send, so the window spans whole convergence periods.
    dedup_window_us: int = 2_000_000
    timings: IndissTimings = field(default_factory=IndissTimings)
    #: SSDP responder jitter window for the UPnP unit answering remote
    #: requesters (calibration sets this to the CyberLink window).
    upnp_responder_delay_us: tuple[int, int] = (0, 0)
    #: UPnP unit search wait before giving up on a session.
    upnp_wait_us: int = 150_000
    #: SLP unit convergence wait.
    slp_wait_us: int = 15_000
    seed: int = 0


@dataclass
class SessionStats:
    opened: int = 0
    completed: int = 0
    answered_from_cache: int = 0
    timed_out: int = 0
    duplicates_suppressed: int = 0


class Indiss:
    """One deployed INDISS instance."""

    def __init__(
        self,
        node: Node,
        config: IndissConfig | None = None,
        registry: IanaRegistry | None = None,
        unit_factories: dict[str, UnitFactory] | None = None,
    ):
        self.node = node
        self.config = config if config is not None else IndissConfig()
        self.registry = registry if registry is not None else default_registry()
        self.monitor = MonitorComponent(node, self.registry, scan=self.config.units)
        self.monitor.on_raw = self._on_raw
        self.monitor.on_detected = self._on_detected
        self.cache = ServiceCache(lambda: node.now_us)
        self.units: dict[str, Unit] = {}
        self.sessions: list[TranslationSession] = []
        self.stats = SessionStats()
        self.detections: list[str] = []
        self._recent_requests: dict[tuple, int] = {}
        self._factories = dict(unit_factories or {})
        #: Application-layer listeners tracing every parsed stream
        #: (paper §2.3: upper layers "trace, in real time, SDP internal
        #: mechanisms").
        self.stream_listeners: list[Callable[[str, list[Event], NetworkMeta], None]] = []

        if self.config.instantiate == "eager":
            for sdp_id in self.config.units:
                self._ensure_unit(sdp_id)

    @classmethod
    def from_spec(cls, node: Node, spec_text: str, **overrides) -> "Indiss":
        """Build an instance from the paper's textual specification DSL.

        ``overrides`` are forwarded to :class:`IndissConfig` (deployment,
        cache behaviour, timings, ...).
        """
        from .config import build_indiss_config, parse_spec

        config = build_indiss_config(parse_spec(spec_text), **overrides)
        return cls(node, config)

    # -- unit lifecycle (Fig. 5 dynamic composition) --------------------------

    def _make_runtime(self) -> UnitRuntime:
        return UnitRuntime(
            self.node,
            timings=self.config.timings,
            register_own_port=self.monitor.ignore_endpoint,
        )

    def _default_factory(self, sdp_id: str) -> Unit:
        # Imported here: the units package builds on repro.core.
        from ..units.jini_unit import JiniUnit
        from ..units.slp_unit import SlpUnit
        from ..units.upnp_unit import UpnpUnit

        runtime = self._make_runtime()
        if sdp_id == "slp":
            return SlpUnit(runtime, wait_us=self.config.slp_wait_us)
        if sdp_id == "upnp":
            return UpnpUnit(
                runtime,
                wait_us=self.config.upnp_wait_us,
                responder_delay_us=self.config.upnp_responder_delay_us,
                seed=self.config.seed,
            )
        if sdp_id == "jini":
            return JiniUnit(runtime, cache=self.cache)
        raise KeyError(f"no unit factory for SDP {sdp_id!r}")

    def _ensure_unit(self, sdp_id: str) -> Unit:
        unit = self.units.get(sdp_id)
        if unit is None:
            factory = self._factories.get(sdp_id)
            unit = factory(self, self._make_runtime()) if factory else self._default_factory(sdp_id)
            self.units[sdp_id] = unit
        return unit

    @property
    def instantiated_units(self) -> list[str]:
        return sorted(self.units)

    def _on_detected(self, sdp_id: str) -> None:
        self.detections.append(sdp_id)
        if self.config.instantiate == "on-detection" and sdp_id in self.config.units:
            self._ensure_unit(sdp_id)

    # -- environment traffic ---------------------------------------------------

    def _on_raw(self, sdp_id: str, raw: bytes, meta: NetworkMeta) -> None:
        if sdp_id not in self.config.units:
            return
        if self.config.instantiate == "on-detection" and sdp_id not in self.units:
            self._ensure_unit(sdp_id)
        unit = self.units.get(sdp_id)
        if unit is None:
            return
        stream = unit.handle_environment_message(raw, meta)
        if stream is None:
            return
        for listener in self.stream_listeners:
            listener(sdp_id, stream, meta)
        kinds = {event.type for event in stream}
        if SDP_SERVICE_REQUEST in kinds:
            self._handle_request(sdp_id, stream, meta)
        elif SDP_SERVICE_ALIVE in kinds:
            self._handle_advertisement(sdp_id, stream)
        elif SDP_SERVICE_RESPONSE in kinds:
            self._observe_response(sdp_id, stream)
        elif SDP_SERVICE_BYEBYE in kinds:
            self._handle_byebye(sdp_id, stream)

    # -- request translation -------------------------------------------------------

    def _handle_request(self, origin_sdp: str, stream: list[Event], meta: NetworkMeta) -> None:
        service_type = ""
        raw_type = ""
        xid = None
        for event in stream:
            if event.type is SDP_SERVICE_TYPE:
                service_type = str(event.get("normalized") or "")
                raw_type = str(event.get("type") or "")
            elif event.type is SDP_REQ_ID:
                xid = event.get("xid")
        requester = meta.source
        dedup_key = (origin_sdp, requester, raw_type, xid)
        now = self.node.now_us
        self._recent_requests = {
            key: t
            for key, t in self._recent_requests.items()
            if now - t <= self.config.dedup_window_us
        }
        if dedup_key in self._recent_requests:
            self.stats.duplicates_suppressed += 1
            return
        self._recent_requests[dedup_key] = now

        session = TranslationSession(
            origin_sdp=origin_sdp,
            requester=requester,
            request_stream=stream,
            created_at_us=now,
        )
        session.vars["service_type"] = service_type
        session.vars["st"] = raw_type
        if xid is not None:
            session.vars["xid"] = xid
        session.on_reply = self._deliver_reply
        self.sessions.append(session)
        self.stats.opened += 1
        session.log(f"indiss: {origin_sdp} request for {service_type!r} entered")

        if self.config.answer_from_cache:
            records = [
                record
                for record in self.cache.lookup(service_type)
                if record.source_sdp != origin_sdp
            ]
            if records:
                from ..units.records import stream_from_record

                session.answered_from_cache = True
                self.stats.answered_from_cache += 1
                session.vars["answered_by"] = "cache"
                reply = stream_from_record(records[0], origin_sdp)
                session.log("indiss: answered from service cache")
                self.node.schedule(
                    self.config.timings.cache_lookup_us,
                    lambda: session.complete_with(reply),
                )
                return

        targets = [unit for sdp, unit in self.units.items() if sdp != origin_sdp]
        if not targets:
            session.complete_with([])
            return
        for target in targets:
            target.handle_foreign_request(stream, session)

    def _deliver_reply(self, reply_stream: list[Event], session: TranslationSession) -> None:
        self.stats.completed += 1
        origin_unit = self.units.get(session.origin_sdp)
        has_url = any(
            event.type.name == "SDP_RES_SERV_URL" and event.get("url")
            for event in reply_stream
        )
        if not has_url:
            # Discovery protocols stay silent on fruitless multicast
            # requests; composing an empty answer would be noise.
            self.stats.timed_out += 1
            session.log("indiss: no service found; staying silent")
            return
        if self.config.cache_discoveries:
            from ..units.records import record_from_stream

            record = record_from_stream(
                reply_stream, source_sdp=str(session.vars.get("answered_by", ""))
            )
            if record is not None and not session.answered_from_cache:
                self.cache.store(record)
        if origin_unit is not None:
            origin_unit.compose_reply(reply_stream, session)

    # -- advertisements --------------------------------------------------------------

    def _handle_advertisement(self, origin_sdp: str, stream: list[Event]) -> None:
        from ..units.records import record_from_stream

        record = record_from_stream(stream, source_sdp=origin_sdp)
        if record is None:
            # Advertisements like SSDP NOTIFY only name a description
            # document; ask the unit to resolve it to a full record (an
            # extra native request, like Fig. 4's recursive GET).
            unit = self.units.get(origin_sdp)
            if unit is not None:
                unit.resolve_advertisement(stream, self._advertisement_resolved)
            return
        self._advertisement_resolved(record)

    def _advertisement_resolved(self, record: ServiceRecord) -> None:
        if self.config.cache_discoveries:
            self.cache.store(record)
        if self.config.translate_advertisements:
            self.readvertise(record, exclude=record.source_sdp)

    def readvertise(self, record: ServiceRecord, exclude: str = "") -> None:
        """Announce a record through every unit except ``exclude``."""
        for sdp_id, unit in self.units.items():
            if sdp_id == exclude or sdp_id == record.source_sdp:
                continue
            unit.advertise_record(record)

    def _observe_response(self, origin_sdp: str, stream: list[Event]) -> None:
        """Passively learn from replies flying past the monitor."""
        if not self.config.cache_discoveries:
            return
        from ..units.records import record_from_stream

        record = record_from_stream(stream, source_sdp=origin_sdp)
        if record is not None:
            self.cache.store(record)

    def _handle_byebye(self, origin_sdp: str, stream: list[Event]) -> None:
        from ..sdp.base import normalize_service_type

        for event in stream:
            if event.type is SDP_SERVICE_BYEBYE:
                url = str(event.get("url", ""))
                if url:
                    self.cache.remove_url(url)
                    continue
                nt = str(event.get("type", ""))
                if nt:
                    self.cache.remove_type(normalize_service_type(nt), origin_sdp)

    # -- introspection -----------------------------------------------------------------

    def close(self) -> None:
        self.monitor.close()

    def describe(self) -> str:
        """One-line runtime architecture summary (Fig. 5 visualization)."""
        unit_list = ", ".join(self.instantiated_units) or "none"
        detected = ", ".join(self.monitor.detected_sdps()) or "none"
        return (
            f"INDISS@{self.node.address} [{self.config.deployment}] "
            f"units=({unit_list}) detected=({detected}) "
            f"sessions={self.stats.opened} cache={len(self.cache)}"
        )


__all__ = ["Indiss", "IndissConfig", "SessionStats"]

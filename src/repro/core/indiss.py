"""The INDISS system: monitor + units + dynamic composition (paper §2-§3).

One :class:`Indiss` instance runs on a node (client host, service host, or
gateway — paper §4.2 analyses all three placements) and is *transparent*:
native clients and services keep using their own protocols; INDISS joins
the SDP multicast groups beside them and translates.

The runtime is layered (see ARCHITECTURE.md):

    monitor -> StreamClassifier -> SessionManager -> DispatchPolicy
            -> units -> composer          (requests)
    monitor -> StreamClassifier -> AdvertisementPipeline -> cache
                                                (advertisements/responses)

``Indiss`` itself is the thin coordinator wiring those layers over one
node.  A gateway host bridged across several LAN segments (see
``repro.net.segment``) runs the same code with the ``gateway-forward``
dispatch policy, which is what lets discovery chain across an
internetwork of INDISS gateways.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Callable

from ..net import Node
from ..sdp.base import ServiceRecord
from .cache import ServiceCache
from .dispatch import (
    AdvertisementPipeline,
    ClassifiedStream,
    DispatchPolicy,
    KIND_ADVERTISEMENT,
    KIND_BYEBYE,
    KIND_REQUEST,
    KIND_RESPONSE,
    StreamClassifier,
    make_policy,
)
from .events import Event, SDP_C_START
from .monitor import MonitorComponent
from .parser import NetworkMeta
from .registry import IanaRegistry, default_registry
from .session import TranslationSession, stream_has_result
from .sessions import SessionManager, SessionStats
from .unit import IndissTimings, Unit, UnitRuntime

UnitFactory = Callable[["Indiss", UnitRuntime], Unit]


@dataclass
class IndissConfig:
    """Deployment-time configuration (paper §3: "Configuration of a INDISS
    instance is initially defined in terms of supported SDPs")."""

    #: SDP units this instance supports.
    units: tuple[str, ...] = ("slp", "upnp")
    #: Where this instance sits; informational plus used by benchmarks.
    deployment: str = "client"  # "client" | "service" | "gateway"
    #: "eager" instantiates all units up front; "on-detection" instantiates
    #: a unit the first time its SDP is detected (Fig. 5 dynamics).
    instantiate: str = "eager"
    #: Answer requests from the service cache when possible (Fig. 9b).
    answer_from_cache: bool = False
    #: Learn services from observed responses/advertisements.
    cache_discoveries: bool = True
    #: Re-announce foreign services through other units (Fig. 6 active mode).
    translate_advertisements: bool = False
    #: Dispatch policy name ("fanout", "cache-first", "gateway-forward");
    #: see :mod:`repro.core.dispatch` for the registry.
    dispatch: str = "fanout"
    #: Suppress duplicate requests (native retransmissions) within window.
    #: SLP user agents retransmit with the same XID well after the first
    #: send, so the window spans whole convergence periods.
    dedup_window_us: int = 2_000_000
    #: Forwarding hop budget a gateway grants a request that enters the
    #: internetwork through it; re-issued native requests carry the
    #: decremented budget on the wire (defence in depth against forwarding
    #: loops on cyclic topologies, on top of type-scoped dedup).
    hop_budget: int = 4
    #: Re-dispatch a request whose translation came back empty, up to this
    #: many times (lossy paths drop native re-issues, so one silent probe
    #: is not proof of absence).  0 — the default — disables retries and
    #: keeps the classic single-shot behaviour bit-identical.
    translate_retries: int = 0
    #: Backoff before the first retry; doubles on every further attempt.
    retry_backoff_us: int = 200_000
    timings: IndissTimings = field(default_factory=IndissTimings)
    #: SSDP responder jitter window for the UPnP unit answering remote
    #: requesters (calibration sets this to the CyberLink window).
    upnp_responder_delay_us: tuple[int, int] = (0, 0)
    #: UPnP unit search wait before giving up on a session.
    upnp_wait_us: int = 150_000
    #: SLP unit convergence wait.
    slp_wait_us: int = 15_000
    #: Bound on the SLP unit's recursive AttrRqst stall (a unicast round
    #: trip); raise it on high-latency links so attributes are not lost.
    slp_attr_wait_us: int = 30_000
    seed: int = 0


class Indiss:
    """One deployed INDISS instance."""

    def __init__(
        self,
        node: Node,
        config: IndissConfig | None = None,
        registry: IanaRegistry | None = None,
        unit_factories: dict[str, UnitFactory] | None = None,
        dispatch_policy: DispatchPolicy | None = None,
    ):
        self.node = node
        self.config = config if config is not None else IndissConfig()
        self.registry = registry if registry is not None else default_registry()
        self.monitor = MonitorComponent(node, self.registry, scan=self.config.units)
        self.monitor.on_raw = self._on_raw
        self.monitor.on_detected = self._on_detected
        self.cache = ServiceCache(lambda: node.now_us)
        self.units: dict[str, Unit] = {}
        self.classifier = StreamClassifier()
        self.policy = (
            dispatch_policy
            if dispatch_policy is not None
            else make_policy(self.config.dispatch or "fanout")
        )
        self.session_manager = SessionManager(
            clock=lambda: node.now_us,
            dedup_window_us=self.config.dedup_window_us,
            dedup_scope=self.policy.dedup_scope,
            session_id_source=node.network.session_id_source(node),
        )
        self.advertisements = AdvertisementPipeline(self)
        #: Set by :meth:`repro.federation.GatewayFleet.join`; the
        #: ``shard-ring`` dispatch policy consults it for ownership and
        #: election decisions.  None on stand-alone instances.
        self.federation = None
        #: Crash-stop state (see :meth:`crash`/:meth:`restart`): while
        #: True the instance is an inert shell whose stale timers must not
        #: touch the rebuilt volatile layers.
        self.crashed = False
        #: Incarnation counter; pre-crash closures capture it and compare
        #: on fire, so a timer scheduled by a dead incarnation can never
        #: act on a restarted one.
        self._epoch = 0
        self.detections: list[str] = []
        self._factories = dict(unit_factories or {})
        #: Flight-recorder state (only written while recording is on):
        #: the current frame's identity (crc32 of the raw payload — stable
        #: across forked workers, unlike salted ``hash()``) and this
        #: node's district, memoized on first use.
        self._obs_frame: int | None = None
        self._obs_pid: int | None = None
        #: Application-layer listeners tracing every parsed stream
        #: (paper §2.3: upper layers "trace, in real time, SDP internal
        #: mechanisms").
        self.stream_listeners: list[Callable[[str, list[Event], NetworkMeta], None]] = []

        if self.config.instantiate == "eager":
            for sdp_id in self.config.units:
                self._ensure_unit(sdp_id)

    @classmethod
    def from_spec(cls, node: Node, spec_text: str, **overrides) -> "Indiss":
        """Build an instance from the paper's textual specification DSL.

        ``overrides`` are forwarded to :class:`IndissConfig` (deployment,
        cache behaviour, timings, ...).
        """
        from .config import build_indiss_config, parse_spec

        config = build_indiss_config(parse_spec(spec_text), **overrides)
        return cls(node, config)

    # -- lifecycle state shared with the session layer --------------------------

    @property
    def stats(self) -> SessionStats:
        return self.session_manager.stats

    @property
    def sessions(self) -> list[TranslationSession]:
        return self.session_manager.sessions

    # -- unit lifecycle (Fig. 5 dynamic composition) --------------------------

    def _make_runtime(self) -> UnitRuntime:
        return UnitRuntime(
            self.node,
            timings=self.config.timings,
            register_own_port=self.monitor.ignore_endpoint,
        )

    def _default_factory(self, sdp_id: str) -> Unit:
        # Imported here: the units package builds on repro.core.
        from ..units.jini_unit import JiniUnit
        from ..units.slp_unit import SlpUnit
        from ..units.upnp_unit import UpnpUnit

        runtime = self._make_runtime()
        if sdp_id == "slp":
            return SlpUnit(
                runtime,
                wait_us=self.config.slp_wait_us,
                attr_wait_us=self.config.slp_attr_wait_us,
            )
        if sdp_id == "upnp":
            return UpnpUnit(
                runtime,
                wait_us=self.config.upnp_wait_us,
                responder_delay_us=self.config.upnp_responder_delay_us,
                seed=self.config.seed,
            )
        if sdp_id == "jini":
            return JiniUnit(runtime, cache=self.cache)
        raise KeyError(f"no unit factory for SDP {sdp_id!r}")

    def _ensure_unit(self, sdp_id: str) -> Unit:
        unit = self.units.get(sdp_id)
        if unit is None:
            factory = self._factories.get(sdp_id)
            unit = factory(self, self._make_runtime()) if factory else self._default_factory(sdp_id)
            self.units[sdp_id] = unit
        return unit

    @property
    def instantiated_units(self) -> list[str]:
        return sorted(self.units)

    def _on_detected(self, sdp_id: str) -> None:
        self.detections.append(sdp_id)
        if self.config.instantiate == "on-detection" and sdp_id in self.config.units:
            self._ensure_unit(sdp_id)

    # -- environment traffic ---------------------------------------------------

    def _on_raw(self, sdp_id: str, raw: bytes, meta: NetworkMeta) -> None:
        if sdp_id not in self.config.units:
            return
        if self.config.instantiate == "on-detection" and sdp_id not in self.units:
            self._ensure_unit(sdp_id)
        unit = self.units.get(sdp_id)
        if unit is None:
            return
        stream = unit.handle_environment_message(raw, meta)
        if stream is None:
            return
        if self.node.network.obs.on:
            self._obs_frame = zlib.crc32(raw)
        for listener in self.stream_listeners:
            listener(sdp_id, stream, meta)
        classified = self.classifier.classify(stream, meta)
        if classified.kind == KIND_REQUEST:
            self._handle_request(sdp_id, classified)
        elif classified.kind == KIND_ADVERTISEMENT:
            self.advertisements.handle_advertisement(sdp_id, stream)
        elif classified.kind == KIND_RESPONSE:
            self.advertisements.handle_response(sdp_id, stream)
        elif classified.kind == KIND_BYEBYE:
            self.advertisements.handle_byebye(sdp_id, stream)

    # -- request translation -------------------------------------------------------

    def _obs_district(self) -> int:
        pid = self._obs_pid
        if pid is None:
            pid = self._obs_pid = self.node.network.partition_of_node(self.node)
        return pid

    def _obs_session_open(self, session: TranslationSession, classified) -> None:
        """Record the request's entry into the translation pipeline, linked
        to the triggering frame (crc32) the monitor instants also carry."""
        obs = self.node.network.obs
        session.vars["_obs_frame"] = self._obs_frame
        obs.trace.instant(
            "session.open",
            self.node.now_us,
            self._obs_district(),
            tid=self.node.name,
            cat="session",
            args={
                "sid": session.session_id,
                "sdp": session.origin_sdp,
                "st": classified.service_type,
                "frame": self._obs_frame,
            },
        )

    def _obs_session_done(self, session: TranslationSession, reply_stream) -> None:
        """The closing span of the lifecycle: open -> reply delivery."""
        obs = self.node.network.obs
        now = self.node.now_us
        if session.answered_from_cache:
            outcome = "cache"
        elif stream_has_result(reply_stream):
            outcome = "translated"
        else:
            outcome = "silent"
        duration = now - session.created_at_us
        policy = getattr(self.policy, "name", "")
        obs.trace.span(
            "session",
            session.created_at_us,
            duration,
            self._obs_district(),
            tid=self.node.name,
            cat="session",
            args={
                "sid": session.session_id,
                "sdp": session.origin_sdp,
                "st": str(session.vars.get("service_type", "")),
                "frame": session.vars.get("_obs_frame"),
                "outcome": outcome,
                "policy": policy,
                "steps": len(session.steps),
            },
        )
        metrics = obs.metrics
        metrics.histogram("core.session.latency_us", sdp=session.origin_sdp).observe(duration)
        metrics.counter(
            "core.session.outcome", sdp=session.origin_sdp, outcome=outcome
        ).inc()

    def _handle_request(self, origin_sdp: str, classified: ClassifiedStream) -> None:
        obs = self.node.network.obs
        requester = classified.meta.source if classified.meta is not None else None
        key = self.session_manager.dedup_key(
            origin_sdp,
            requester,
            classified.raw_type,
            classified.service_type,
            classified.xid,
        )
        if self.session_manager.is_duplicate(key):
            if obs.on:
                obs.metrics.counter("core.dedup.suppressed", sdp=origin_sdp).inc()
            # Service-type-scoped dedup (gateway-forward) collapses
            # *different* requesters asking for the same thing; dropping a
            # second client outright would starve it, since the first
            # session's reply went unicast to the first requester only.
            # Once the first translation has warmed the cache, answer the
            # suppressed duplicate from it (unicast replies cannot loop:
            # a neighbouring gateway's completed session just drops them).
            if self.policy.dedup_scope == "service-type":
                record = self.policy.lookup_record(
                    self, origin_sdp, classified.service_type
                )
                if record is not None:
                    session = self.session_manager.open(
                        origin_sdp,
                        requester,
                        classified.stream,
                        on_reply=self._deliver_reply,
                    )
                    session.vars["service_type"] = classified.service_type
                    session.vars["st"] = classified.raw_type
                    if classified.xid is not None:
                        session.vars["xid"] = classified.xid
                    session.log(
                        "indiss: duplicate request answered from service cache"
                    )
                    if obs.on:
                        self._obs_session_open(session, classified)
                    self._answer_from_cache(session, record)
                else:
                    self._escalate_duplicate(origin_sdp, classified, requester)
            return

        session = self.session_manager.open(
            origin_sdp, requester, classified.stream, on_reply=self._deliver_reply
        )
        session.vars["service_type"] = classified.service_type
        session.vars["st"] = classified.raw_type
        if classified.xid is not None:
            session.vars["xid"] = classified.xid
        if classified.hops is not None:
            session.vars["hops"] = classified.hops
        session.log(
            f"indiss: {origin_sdp} request for {classified.service_type!r} entered"
        )
        if obs.on:
            self._obs_session_open(session, classified)

        record = self.policy.cache_answer(self, session)
        if record is not None:
            self._answer_from_cache(session, record)
            return

        targets = self.policy.select_targets(self, session)
        if obs.on:
            policy = getattr(self.policy, "name", "")
            name = "dispatch.forward" if targets else "dispatch.suppressed"
            obs.trace.instant(
                name,
                self.node.now_us,
                self._obs_district(),
                tid=self.node.name,
                cat="dispatch",
                args={
                    "sid": session.session_id,
                    "policy": policy,
                    "targets": len(targets),
                },
            )
            obs.metrics.counter(
                "core.dispatch.forwards" if targets else "core.dispatch.suppressed",
                policy=policy,
            ).inc()
        if not targets:
            session.complete_with([])
            return
        self.session_manager.record_translated()
        self.policy.mark_forwarded(self, session, targets)
        session.pending_targets = len(targets)
        for target in targets:
            target.handle_foreign_request(classified.stream, session)

    def _escalate_duplicate(
        self, origin_sdp: str, classified: ClassifiedStream, requester
    ) -> None:
        """Cold-start escalation of a suppressed duplicate the cache could
        not answer (see :meth:`DispatchPolicy.escalate_duplicate`).  The
        policy decides whether the duplicate is worth re-translating — the
        base policy never is, so this is a no-op outside a federation with
        ``cold_start_escalation`` armed."""
        targets = self.policy.escalate_duplicate(self, classified)
        if not targets:
            return
        obs = self.node.network.obs
        session = self.session_manager.open(
            origin_sdp, requester, classified.stream, on_reply=self._deliver_reply
        )
        session.vars["service_type"] = classified.service_type
        session.vars["st"] = classified.raw_type
        if classified.xid is not None:
            session.vars["xid"] = classified.xid
        hops = classified.hops
        session.vars["hops"] = hops if hops is not None else self.config.hop_budget
        session.log("indiss: cold-start escalation of the ring owner's re-issue")
        if obs.on:
            self._obs_session_open(session, classified)
            obs.metrics.counter(
                "federation.cold_start.escalations", sdp=origin_sdp
            ).inc()
        self.session_manager.record_translated()
        self.policy.mark_forwarded(self, session, targets)
        session.pending_targets = len(targets)
        for target in targets:
            target.handle_foreign_request(classified.stream, session)

    def _answer_from_cache(self, session: TranslationSession, record: ServiceRecord) -> None:
        from ..units.records import stream_from_record

        self.session_manager.record_cache_answer(session)
        reply = stream_from_record(record, session.origin_sdp)
        session.log("indiss: answered from service cache")
        obs = self.node.network.obs
        if obs.on:
            obs.trace.instant(
                "session.cache_answer",
                self.node.now_us,
                self._obs_district(),
                tid=self.node.name,
                cat="session",
                args={"sid": session.session_id, "sdp": session.origin_sdp},
            )
        self.node.schedule(
            self.config.timings.cache_lookup_us,
            lambda: session.complete_with(reply),
        )

    def _reply_source_sdp(self, reply_stream: list[Event], session: TranslationSession) -> str:
        """Which SDP the answering service natively speaks.

        Reply streams are bracketed with the emitting unit's SDP id; cache
        answers preserve the original record's provenance the same way.
        Falling back to ``answered_by`` keeps custom units working, but
        only when it names a real unit (the old code stamped records with
        ``"cache"`` or ``""``, which defeated the same-protocol filter on
        later lookups).
        """
        if reply_stream and reply_stream[0].type is SDP_C_START:
            sdp = str(reply_stream[0].get("sdp") or "")
            if sdp:
                return sdp
        candidate = str(session.vars.get("answered_by", ""))
        if candidate in self.units:
            return candidate
        return ""

    def _deliver_reply(self, reply_stream: list[Event], session: TranslationSession) -> None:
        self.session_manager.record_completed()
        if self.node.network.obs.on:
            self._obs_session_done(session, reply_stream)
        origin_unit = self.units.get(session.origin_sdp)
        if not stream_has_result(reply_stream):
            if self._maybe_retry(session):
                return
            # Discovery protocols stay silent on fruitless multicast
            # requests; composing an empty answer would be noise.
            self.session_manager.record_timeout()
            session.log("indiss: no service found; staying silent")
            return
        if self.config.cache_discoveries:
            from ..units.records import record_from_stream

            record = record_from_stream(
                reply_stream, source_sdp=self._reply_source_sdp(reply_stream, session)
            )
            if record is not None and not session.answered_from_cache:
                self.cache.store(record)
        if origin_unit is not None:
            origin_unit.compose_reply(reply_stream, session)

    # -- lossy-path retries ----------------------------------------------------------

    def _maybe_retry(self, session: TranslationSession) -> bool:
        """Re-dispatch an empty translation over a possibly-lossy path.

        A fresh session is opened per attempt (so every attempt's lifecycle
        is individually recorded), the backoff doubles per attempt, and the
        give-up after the last attempt is counted in
        :attr:`SessionStats.gave_up`.  Returns True when a retry was
        scheduled — the caller then skips the usual timeout accounting.
        """
        retries = self.config.translate_retries
        if retries <= 0 or session.answered_from_cache:
            return False
        attempt = int(session.vars.get("attempt", 1))
        if attempt > retries:
            if self._retry_fallback(session):
                return True
            self.session_manager.record_gave_up()
            session.log("indiss: retries exhausted; giving up")
            return False
        backoff = self.config.retry_backoff_us * (2 ** (attempt - 1))
        self.session_manager.record_retry()
        session.log(f"indiss: empty translation; retry {attempt} in {backoff}us")
        obs = self.node.network.obs
        if obs.on:
            obs.metrics.counter(
                "core.session.retry", sdp=session.origin_sdp
            ).inc()
        epoch = self._epoch
        self.node.schedule(
            backoff, lambda: self._retry_dispatch(session, attempt + 1, epoch)
        )
        return True

    def _retry_fallback(self, failed: TranslationSession) -> bool:
        """Last resort after the final retry: dispatch once down the classic
        gateway-forward path.

        Every ``shard-ring`` retry re-runs the owner gate, so when the ring
        owner is dead (or unreachable) the re-dispatch is suppressed on
        every attempt and the request would go silent forever.  Rather
        than give up, translate locally — exactly once per chain — and
        count it in :attr:`SessionStats.retry_fallbacks`.
        """
        if failed.vars.get("fellback"):
            return False
        if getattr(self.policy, "name", "") != "shard-ring":
            return False  # non-owner-gated policies already fanned out
        hops = failed.vars.get("hops")
        if hops is not None and hops <= 0:
            return False  # budget already exhausted on the wire
        targets = list(self.units.values())
        if not targets:
            return False
        session = self.session_manager.open(
            failed.origin_sdp,
            failed.requester,
            failed.request_stream,
            on_reply=self._deliver_reply,
        )
        for name, value in failed.vars.items():
            if not name.startswith("_obs"):
                session.vars[name] = value
        session.vars["fellback"] = True
        session.log("indiss: retries suppressed by the ring owner gate; "
                    "falling back to gateway-forward dispatch")
        self.policy.consume_hop_budget(self, session)
        self.session_manager.record_retry_fallback()
        obs = self.node.network.obs
        if obs.on:
            obs.metrics.counter(
                "core.session.retry_fallback", sdp=session.origin_sdp
            ).inc()
        self.session_manager.record_translated()
        self.policy.mark_forwarded(self, session, targets)
        session.pending_targets = len(targets)
        for target in targets:
            target.handle_foreign_request(session.request_stream, session)
        return True

    def _retry_dispatch(
        self, failed: TranslationSession, attempt: int, epoch: int | None = None
    ) -> None:
        """One retry attempt: a fresh session carrying the failed one's
        request, re-run through the cache-then-dispatch pipeline (the cache
        may have warmed in the meantime — gossip keeps running during the
        backoff)."""
        if epoch is not None and epoch != self._epoch:
            return  # scheduled by a crashed incarnation
        session = self.session_manager.open(
            failed.origin_sdp,
            failed.requester,
            failed.request_stream,
            on_reply=self._deliver_reply,
        )
        for name, value in failed.vars.items():
            if not name.startswith("_obs"):
                session.vars[name] = value
        session.vars["attempt"] = attempt
        session.log(f"indiss: retry attempt {attempt}")
        record = self.policy.cache_answer(self, session)
        if record is not None:
            self._answer_from_cache(session, record)
            return
        targets = self.policy.select_targets(self, session)
        if not targets:
            session.complete_with([])
            return
        self.session_manager.record_translated()
        self.policy.mark_forwarded(self, session, targets)
        session.pending_targets = len(targets)
        for target in targets:
            target.handle_foreign_request(session.request_stream, session)

    # -- advertisements --------------------------------------------------------------

    def readvertise(self, record: ServiceRecord, exclude: str = "") -> None:
        """Announce a record through every unit except ``exclude``."""
        self.advertisements.readvertise(record, exclude=exclude)

    # -- crash-stop / crash-recovery ---------------------------------------------------

    def crash(self) -> None:
        """Crash-stop: the process dies and every piece of volatile state
        dies with it — open sessions, instantiated units, the service
        cache, the monitor's sockets, the dedup window.

        The object survives only as an inert shell :meth:`restart` can
        revive (the simulator's stand-in for restarting the process on the
        same host).  Call *before* :meth:`Network.crash_node`, which tears
        down the remaining transport state; stale timers scheduled by the
        dead incarnation are fenced by the epoch counter and by the
        completed flag forced onto every open session.
        """
        if self.crashed:
            raise RuntimeError(f"INDISS@{self.node.address} is already crashed")
        self.crashed = True
        self._epoch += 1
        self.monitor.close()
        for session in self.session_manager.active():
            # A completed session swallows complete_with() from any unit
            # timer still in flight, so nothing composes a reply on behalf
            # of a dead process.
            session.completed = True
        self.units.clear()
        self.cache = ServiceCache(lambda: self.node.now_us)
        self.detections.clear()

    def restart(self) -> None:
        """Crash-recovery: rebuild the volatile layers exactly as
        ``__init__`` wired them, on the node's *restarted* stacks.

        The node must already be back on the network
        (:meth:`Network.restart_node`), because the rebuilt monitor and
        units bind fresh sockets and index fresh multicast memberships.
        The new session manager draws ids from the restart block the
        network minted, so no pre-crash session id is ever reused.
        Config, registry, policy, and unit factories are deployment-time
        state and survive the crash (they live on disk in a real
        deployment).
        """
        if not self.crashed:
            raise RuntimeError(f"INDISS@{self.node.address} is not crashed")
        self.crashed = False
        node = self.node
        self.monitor = MonitorComponent(node, self.registry, scan=self.config.units)
        self.monitor.on_raw = self._on_raw
        self.monitor.on_detected = self._on_detected
        self.cache = ServiceCache(lambda: node.now_us)
        self.classifier = StreamClassifier()
        self.session_manager = SessionManager(
            clock=lambda: node.now_us,
            dedup_window_us=self.config.dedup_window_us,
            dedup_scope=self.policy.dedup_scope,
            session_id_source=node.network.session_id_source(node),
        )
        self.advertisements = AdvertisementPipeline(self)
        if self.config.instantiate == "eager":
            for sdp_id in self.config.units:
                self._ensure_unit(sdp_id)

    # -- introspection -----------------------------------------------------------------

    def close(self) -> None:
        self.monitor.close()

    def describe(self) -> str:
        """One-line runtime architecture summary (Fig. 5 visualization)."""
        unit_list = ", ".join(self.instantiated_units) or "none"
        detected = ", ".join(self.monitor.detected_sdps()) or "none"
        return (
            f"INDISS@{self.node.address} [{self.config.deployment}] "
            f"units=({unit_list}) detected=({detected}) "
            f"sessions={self.stats.opened} cache={len(self.cache)}"
        )


__all__ = ["Indiss", "IndissConfig", "SessionStats"]

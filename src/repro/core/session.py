"""Translation sessions (paper §2.2, Figure 3).

"The translation of SDP functions ... is actually achieved in terms of
translation of processes and not simply of exchanged messages."  A session
is one such process: it starts when a native request enters INDISS, spans
any recursive requests the target unit must issue (Fig. 4's extra GET), and
ends when the origin unit's composer has sent the native reply back to the
requester.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..net import Endpoint
from .events import Event, SDP_RES_SERV_URL

_session_ids = itertools.count(1)


def stream_has_result(stream: list[Event]) -> bool:
    """True when a reply stream actually names a service."""
    return any(
        event.type is SDP_RES_SERV_URL and event.get("url") for event in stream
    )


@dataclass
class TranslationSession:
    """State shared by the units cooperating on one translated exchange."""

    origin_sdp: str
    requester: Optional[Endpoint]
    request_stream: list[Event] = field(default_factory=list)
    created_at_us: int = 0
    session_id: int = field(default_factory=lambda: next(_session_ids))
    #: Scratch variables recorded along the way (xid, service type, ...).
    vars: dict[str, Any] = field(default_factory=dict)
    #: Set by the bridge: receives the reply event stream for composition.
    on_reply: Optional[Callable[[list[Event], "TranslationSession"], None]] = None
    completed: bool = False
    answered_from_cache: bool = False
    #: How many target units are still driving native discovery for this
    #: session.  A reply that names a service completes the session at
    #: once; an empty give-up (timeout/error) only completes it when every
    #: other target has given up too — so a fast protocol's fruitless
    #: timeout cannot clip a slower protocol's answer.
    pending_targets: int = 1
    #: Human-readable log of the translation steps (Fig. 4 reproduction).
    steps: list[str] = field(default_factory=list)

    def log(self, step: str) -> None:
        self.steps.append(step)

    def complete_with(self, reply_stream: list[Event]) -> bool:
        """Deliver the reply stream once; duplicates are ignored.

        Returns True when this call actually completed the session.
        """
        if self.completed:
            return False
        if self.pending_targets > 1 and not stream_has_result(reply_stream):
            self.pending_targets -= 1
            self.log(
                "session: target gave up empty-handed; "
                f"{self.pending_targets} target(s) still searching"
            )
            return False
        self.completed = True
        if self.on_reply is not None:
            self.on_reply(reply_stream, self)
        return True


__all__ = ["TranslationSession", "stream_has_result"]

"""SDP units: parser + composer + coordination FSM (paper §2.2-§2.3).

A unit "implements event-based interoperability for a specific SDP by (i)
translating to and from semantic events ... and (ii) implementing
coordination processes over the events according to the behaviour of the
SDP functions".  The base class here provides the plumbing every unit
shares:

* a :class:`UnitRuntime` giving node I/O (an ephemeral UDP socket whose
  replies feed back into the unit, HTTP requests, timers) plus the INDISS
  processing-cost charges;
* embedded parsers with ``SDP_C_PARSER_SWITCH`` handling;
* listener registration (the bridge and any application-layer tracer);
* the hosted :class:`~repro.core.fsm.StateMachine`.

Protocol behaviour lives in the SDP-specific subclasses
(:mod:`repro.units`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net import Endpoint, MEMO_MISS, Node
from ..sdp.upnp.http import Headers
from ..sdp.upnp.httpclient import http_request
from .composer import SdpComposer
from .events import (
    Event,
    SDP_C_PARSER_SWITCH,
)
from .fsm import StateMachine, StateMachineDefinition
from .parser import NetworkMeta, SdpParser
from .session import TranslationSession


@dataclass
class IndissTimings:
    """INDISS's own processing costs, charged in virtual time.

    The paper's §4.3 analysis attributes almost all translated-path latency
    to the native stacks; INDISS's event parsing/composition is tens of
    microseconds.  These defaults keep that shape; the calibrated profile
    lives with the rest in ``repro.bench.calibration``.
    """

    parse_us: int = 30
    compose_us: int = 40
    dispatch_us: int = 5
    xml_parse_us: int = 150
    cache_lookup_us: int = 10


StreamListener = Callable[[list[Event], NetworkMeta], None]


class UnitRuntime:
    """Node-facing I/O for one unit."""

    def __init__(self, node: Node, timings: IndissTimings | None = None,
                 register_own_port: Callable[[str, int], None] | None = None):
        self.node = node
        self.timings = timings if timings is not None else IndissTimings()
        self._register_own_port = register_own_port
        self._socket = node.udp.socket()
        self._socket.on_datagram(self._dispatch_datagram)
        self._datagram_handler: Optional[Callable[[bytes, NetworkMeta], None]] = None
        self.messages_sent = 0

    @property
    def address(self) -> str:
        return self.node.address

    @property
    def now_us(self) -> int:
        return self.node.now_us

    def on_datagram(self, handler: Callable[[bytes, NetworkMeta], None]) -> None:
        self._datagram_handler = handler

    def _dispatch_datagram(self, datagram) -> None:
        if self._datagram_handler is not None:
            self._datagram_handler(datagram.payload, NetworkMeta.from_datagram(datagram))

    def send_udp(
        self, payload: bytes, destination: Endpoint, decode_hint: tuple | None = None
    ) -> None:
        self._socket.sendto(payload, destination, decode_hint=decode_hint)
        self.messages_sent += 1
        if self._register_own_port is not None and self._socket.port is not None:
            self._register_own_port(self.node.address, self._socket.port)

    def send_udp_from_new_socket(
        self, payload: bytes, destination: Endpoint, decode_hint: tuple | None = None
    ) -> None:
        """Fire-and-forget from a throwaway socket (replies not expected)."""
        socket = self.node.udp.socket()
        socket.sendto(payload, destination, decode_hint=decode_hint)
        if self._register_own_port is not None and socket.port is not None:
            self._register_own_port(self.node.address, socket.port)
        self.messages_sent += 1

    def http(
        self,
        method: str,
        url: str,
        body: bytes = b"",
        headers: Headers | None = None,
        on_response: Callable | None = None,
        on_error: Callable[[Exception], None] | None = None,
    ) -> None:
        http_request(
            self.node, method, url, headers=headers, body=body,
            on_response=on_response, on_error=on_error,
        )
        self.messages_sent += 1

    def schedule(self, delay_us: int, callback: Callable[[], None]) -> None:
        self.node.schedule(delay_us, callback)


class Unit:
    """Base class for SDP units."""

    sdp_id: str = ""

    def __init__(
        self,
        runtime: UnitRuntime,
        parsers: dict[str, SdpParser],
        composer: SdpComposer,
        fsm_definition: StateMachineDefinition,
        default_syntax: str,
    ):
        if default_syntax not in parsers:
            raise ValueError(f"default syntax {default_syntax!r} not among parsers")
        self.runtime = runtime
        self.parsers = parsers
        self.composer = composer
        #: Per-protocol decode accounting shared network-wide; the unit
        #: registers one observation per frame it handles (stream-level
        #: shares here, wire-level decodes inside the parsers).
        self.parse_counter = runtime.node.network.parse_counter(self.sdp_id)
        for parser in parsers.values():
            parser.parse_counter = self.parse_counter
        self.machine = StateMachine(fsm_definition, trace=True)
        self._default_syntax = default_syntax
        self.current_syntax = default_syntax
        self._listeners: list[StreamListener] = []
        #: Sessions this unit is currently driving as the *target* side.
        self.active_sessions: dict[int, TranslationSession] = {}
        self.streams_parsed = 0
        #: Streams obtained from another receiver's parse of the same frame
        #: (the per-frame memo), rather than parsed here.
        self.streams_shared = 0
        self.streams_dispatched = 0
        runtime.on_datagram(self._on_native_datagram)

    # -- listeners (event-based architecture: units are generators/listeners) --

    def add_listener(self, listener: StreamListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: StreamListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    def _notify(self, stream: list[Event], meta: NetworkMeta) -> None:
        self.streams_dispatched += 1
        for listener in self._listeners:
            listener(stream, meta)

    # -- parsing with parser-switch handling ------------------------------------

    @property
    def parser(self) -> SdpParser:
        return self.parsers[self.current_syntax]

    def switch_parser(self, syntax: str) -> None:
        if syntax not in self.parsers:
            raise KeyError(f"unit {self.sdp_id!r} has no parser for syntax {syntax!r}")
        self.current_syntax = syntax

    def reset_parser(self) -> None:
        self.current_syntax = self._default_syntax

    def parse_raw(self, raw: bytes, meta: NetworkMeta) -> list[Event] | None:
        """Parse with the current parser, honouring SDP_C_PARSER_SWITCH.

        When the parser emits a switch event (Fig. 4 step 3: the SSDP parser
        meets an XML body), the unit re-parses the remaining payload with
        the requested parser and splices the streams.

        When the frame carries a decode memo (multicast fan-out), the first
        unit to parse it stores the event stream and every later receiver —
        typically the same unit type on another gateway hearing the same
        backbone frame — gets a shallow copy instead of re-parsing.  Events
        are immutable, so sharing them across instances is safe; the list
        is copied so no receiver can alias another's stream.
        """
        memo = meta.memo if meta is not None else None
        if memo is None:
            return self._parse_raw_uncached(raw, meta)
        key = ("indiss", self.sdp_id, self.current_syntax)
        cached = memo.lookup(key, raw)
        if cached is not MEMO_MISS:
            self.streams_shared += 1
            self.parse_counter.shared += 1
            return None if cached is None else list(cached)
        stream = self._parse_raw_uncached(raw, meta)
        memo.store(key, raw, None if stream is None else list(stream))
        return stream

    def _parse_raw_uncached(self, raw: bytes, meta: NetworkMeta) -> list[Event] | None:
        stream = self.parser.try_parse(raw, meta)
        if stream is None:
            return None
        self.streams_parsed += 1
        out: list[Event] = []
        for index, event in enumerate(stream):
            if event.type is SDP_C_PARSER_SWITCH:
                target = event.get("syntax", "")
                remainder = event.get("payload", b"")
                out.append(event)
                self.switch_parser(target)
                switched = self.parser.try_parse(remainder, meta)
                self.reset_parser()
                if switched is not None:
                    # splice, dropping the inner brackets
                    out.extend(switched[1:-1])
                out.extend(stream[index + 1:])
                return out
            out.append(event)
        return out

    # -- environment-facing entry points (overridden by subclasses) ------------------

    def handle_environment_message(self, raw: bytes, meta: NetworkMeta) -> list[Event] | None:
        """Raw data from the monitor: parse and publish the stream."""
        stream = self.parse_raw(raw, meta)
        if stream is not None:
            self._notify(stream, meta)
        return stream

    def handle_foreign_request(self, stream: list[Event], session: TranslationSession) -> None:
        """Drive this SDP's native discovery on behalf of a foreign request.

        Subclasses compose the native request(s), await replies on the
        runtime socket, and finally call ``session.complete_with(stream)``.
        """
        raise NotImplementedError

    def compose_reply(self, stream: list[Event], session: TranslationSession) -> None:
        """Assemble and send the native reply to the original requester."""
        raise NotImplementedError

    def advertise_record(self, record) -> None:
        """Announce a foreign-learnt service in this SDP (active mode)."""
        raise NotImplementedError

    def resolve_advertisement(self, stream: list[Event], on_record) -> None:
        """Complete an advertisement that lacks a service URL.

        Default: nothing to resolve.  The UPnP unit overrides this to fetch
        the description document behind a NOTIFY's LOCATION.
        """
        return None

    def _on_native_datagram(self, raw: bytes, meta: NetworkMeta) -> None:
        """Unicast replies to requests this unit issued; subclasses route
        them into the session they belong to."""
        raise NotImplementedError


__all__ = ["Unit", "UnitRuntime", "IndissTimings", "StreamListener"]

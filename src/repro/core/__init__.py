"""INDISS core: the paper's contribution (S5 in DESIGN.md).

Event model (Table 1), DFA engine with the AddTuple/guard specification
language, parser/composer framework, units, monitor component, translation
bridge, service cache, configuration DSL and the adaptation manager.
"""

from .adaptation import AdaptationEvent, AdaptationManager
from .cache import CacheEntry, ServiceCache
from .composer import ComposeError, OutboundMessage, SdpComposer
from .config import (
    ConfigError,
    FsmSpec,
    PAPER_SPEC,
    SystemSpec,
    UnitSpec,
    build_indiss_config,
    parse_spec,
)
from .events import (
    Event,
    EventCategory,
    EventType,
    EventTypeRegistry,
    MANDATORY_EVENTS,
    REGISTRY,
    bracket,
    is_bracketed,
    payload_events,
)
from .fsm import (
    FsmError,
    StateMachine,
    StateMachineDefinition,
    Transition,
    TransitionRecord,
    WILDCARD,
)
from .guardlang import ALWAYS, Guard, GuardError, compile_guard
from .indiss import Indiss, IndissConfig, SessionStats
from .monitor import MonitorComponent, SdpSighting
from .parser import NetworkMeta, ParseError, SdpParser
from .registry import IanaRegistry, SdpEntry, default_registry
from .session import TranslationSession
from .unit import IndissTimings, Unit, UnitRuntime

__all__ = [
    "ALWAYS",
    "AdaptationEvent",
    "AdaptationManager",
    "CacheEntry",
    "ComposeError",
    "ConfigError",
    "Event",
    "EventCategory",
    "EventType",
    "EventTypeRegistry",
    "FsmError",
    "FsmSpec",
    "Guard",
    "GuardError",
    "IanaRegistry",
    "Indiss",
    "IndissConfig",
    "IndissTimings",
    "MANDATORY_EVENTS",
    "MonitorComponent",
    "NetworkMeta",
    "OutboundMessage",
    "PAPER_SPEC",
    "ParseError",
    "REGISTRY",
    "SdpComposer",
    "SdpEntry",
    "SdpParser",
    "SdpSighting",
    "ServiceCache",
    "SessionStats",
    "StateMachine",
    "StateMachineDefinition",
    "SystemSpec",
    "Transition",
    "TransitionRecord",
    "TranslationSession",
    "Unit",
    "UnitRuntime",
    "UnitSpec",
    "WILDCARD",
    "bracket",
    "build_indiss_config",
    "compile_guard",
    "default_registry",
    "is_bracketed",
    "parse_spec",
    "payload_events",
]

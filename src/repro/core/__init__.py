"""INDISS core: the paper's contribution (S5 in DESIGN.md).

Event model (Table 1), DFA engine with the AddTuple/guard specification
language, parser/composer framework, units, monitor component, translation
bridge, service cache, configuration DSL and the adaptation manager.
"""

from .adaptation import AdaptationEvent, AdaptationManager, segment_utilization
from .cache import CacheEntry, ServiceCache
from .composer import ComposeError, OutboundMessage, SdpComposer
from .dispatch import (
    AdvertisementPipeline,
    CacheFirstPolicy,
    ClassifiedStream,
    DISPATCH_POLICIES,
    DispatchPolicy,
    FanOutAllPolicy,
    GatewayForwardPolicy,
    ShardRingPolicy,
    StreamClassifier,
    make_policy,
)
from .config import (
    ConfigError,
    FsmSpec,
    PAPER_SPEC,
    SystemSpec,
    UnitSpec,
    build_indiss_config,
    parse_spec,
)
from .events import (
    Event,
    EventCategory,
    EventType,
    EventTypeRegistry,
    MANDATORY_EVENTS,
    REGISTRY,
    bracket,
    is_bracketed,
    payload_events,
)
from .fsm import (
    FsmError,
    StateMachine,
    StateMachineDefinition,
    Transition,
    TransitionRecord,
    WILDCARD,
)
from .guardlang import ALWAYS, Guard, GuardError, compile_guard
from .indiss import Indiss, IndissConfig, SessionStats
from .monitor import MonitorComponent, SdpSighting
from .parser import NetworkMeta, ParseError, SdpParser
from .registry import IanaRegistry, SdpEntry, default_registry
from .session import TranslationSession, stream_has_result
from .sessions import RequestDeduper, SessionManager
from .unit import IndissTimings, Unit, UnitRuntime

__all__ = [
    "ALWAYS",
    "AdaptationEvent",
    "AdaptationManager",
    "AdvertisementPipeline",
    "CacheEntry",
    "CacheFirstPolicy",
    "ClassifiedStream",
    "ComposeError",
    "ConfigError",
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "Event",
    "FanOutAllPolicy",
    "GatewayForwardPolicy",
    "EventCategory",
    "EventType",
    "EventTypeRegistry",
    "FsmError",
    "FsmSpec",
    "Guard",
    "GuardError",
    "IanaRegistry",
    "Indiss",
    "IndissConfig",
    "IndissTimings",
    "MANDATORY_EVENTS",
    "MonitorComponent",
    "NetworkMeta",
    "OutboundMessage",
    "PAPER_SPEC",
    "ParseError",
    "REGISTRY",
    "SdpComposer",
    "SdpEntry",
    "RequestDeduper",
    "SdpParser",
    "SdpSighting",
    "ServiceCache",
    "SessionManager",
    "SessionStats",
    "ShardRingPolicy",
    "StateMachine",
    "StreamClassifier",
    "StateMachineDefinition",
    "SystemSpec",
    "Transition",
    "TransitionRecord",
    "TranslationSession",
    "Unit",
    "UnitRuntime",
    "UnitSpec",
    "WILDCARD",
    "bracket",
    "build_indiss_config",
    "compile_guard",
    "default_registry",
    "is_bracketed",
    "make_policy",
    "parse_spec",
    "payload_events",
    "segment_utilization",
    "stream_has_result",
]

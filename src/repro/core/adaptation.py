"""Context-aware self-adaptation (paper §3 and Figure 6).

When clients and services are both *passive* (clients listen, services
listen), nothing on the network initiates discovery in a protocol INDISS
can translate, and the side hosting INDISS is blocked (Fig. 6 top right).
The paper's answer: "we must define a network traffic threshold below
which INDISS, hosted on the service host, must become active so as to
intercept messages generated from the local services in order to translate
them to any known SDPs".

The manager here does exactly that: it samples segment utilization and
toggles the instance's advertisement-translation (active) mode — on when
the segment is quiet, off when traffic exceeds the threshold, so
interoperability never saturates the bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..net import Node
from .indiss import Indiss


def segment_utilization(
    node: Node, segment: str | None = None, window_us: int = 1_000_000
) -> float:
    """Trailing-window utilization of one of ``node``'s attached segments.

    With ``segment=None`` the *worst* (highest) utilization across every
    attached segment is returned — the conservative reading a multi-homed
    gateway should adapt to.  This is the per-segment refinement of the
    Fig. 6 traffic threshold: the network-wide monitor sees the sum of all
    LANs, while a boundary-placed instance cares about each LAN it serves.
    The federation layer's :class:`~repro.federation.GatewayElector` ranks
    fleet members with exactly this measurement.
    """
    now = node.network.scheduler.now_us
    segments = node.segments
    if segment is not None:
        segments = [s for s in segments if s.name == segment]
    return max(
        (s.traffic.utilization(now, window_us) for s in segments), default=0.0
    )


@dataclass
class AdaptationEvent:
    """One recorded mode flip (for tests and the Fig. 6 benchmark)."""

    time_us: int
    active: bool
    utilization: float


class AdaptationManager:
    """Traffic-threshold-driven passive/active reconfiguration."""

    def __init__(
        self,
        indiss: Indiss,
        threshold: float = 0.05,
        check_period_us: int = 500_000,
        window_us: int = 1_000_000,
        readvertise_period_us: int = 1_000_000,
        utilization_source: Optional[Callable[[], float]] = None,
    ):
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.indiss = indiss
        self.threshold = threshold
        self.window_us = window_us
        #: Pluggable measurement: defaults to the network-wide monitor
        #: (the paper's single-segment testbed); pass e.g.
        #: ``lambda: segment_utilization(node, "leaf0")`` to adapt to one
        #: LAN of a multi-homed gateway.
        self.utilization_source = utilization_source
        self.active = False
        self.history: list[AdaptationEvent] = []
        self.readvertisements = 0
        self._check_task = indiss.node.every(
            check_period_us, self._check, initial_delay_us=check_period_us
        )
        self._readvertise_period_us = readvertise_period_us
        self._readvertise_task = None

    def stop(self) -> None:
        self._check_task.stop()
        if self._readvertise_task is not None:
            self._readvertise_task.stop()
            self._readvertise_task = None

    # -- the control loop ---------------------------------------------------

    def current_utilization(self) -> float:
        if self.utilization_source is not None:
            return self.utilization_source()
        network = self.indiss.node.network
        return network.traffic.utilization(network.scheduler.now_us, self.window_us)

    def _check(self) -> None:
        utilization = self.current_utilization()
        should_be_active = utilization < self.threshold
        if should_be_active and not self.active:
            self._enter_active(utilization)
        elif not should_be_active and self.active:
            self._enter_passive(utilization)

    def _enter_active(self, utilization: float) -> None:
        self.active = True
        self.indiss.config.translate_advertisements = True
        self.history.append(
            AdaptationEvent(self.indiss.node.now_us, True, utilization)
        )
        self._notify_mode_switch("active", utilization)
        self._readvertise_task = self.indiss.node.every(
            self._readvertise_period_us, self._readvertise, initial_delay_us=0
        )

    def _enter_passive(self, utilization: float) -> None:
        self.active = False
        self.indiss.config.translate_advertisements = False
        self.history.append(
            AdaptationEvent(self.indiss.node.now_us, False, utilization)
        )
        self._notify_mode_switch("passive", utilization)
        if self._readvertise_task is not None:
            self._readvertise_task.stop()
            self._readvertise_task = None

    def _notify_mode_switch(self, mode: str, utilization: float) -> None:
        """Publish an SDP_C_SOCKET_SWITCH control stream to registered
        listeners (paper §2.3: control events let upper layers trace the
        run-time reconfiguration)."""
        from .events import Event, SDP_C_SOCKET_SWITCH, bracket
        from .parser import NetworkMeta

        stream = bracket(
            [Event.of(SDP_C_SOCKET_SWITCH, mode=mode, utilization=round(utilization, 4))],
            source="adaptation-manager",
        )
        for listener in self.indiss.stream_listeners:
            listener("control", stream, NetworkMeta())

    def _readvertise(self) -> None:
        """Push every cached record out through the other units."""
        if not self.active:
            return
        for record in self.indiss.cache.lookup_any():
            self.indiss.readvertise(record, exclude="")
            self.readvertisements += 1


__all__ = ["AdaptationManager", "AdaptationEvent", "segment_utilization"]

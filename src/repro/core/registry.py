"""The IANA correspondence table driving SDP detection (paper §2.1).

"All SDPs use a multicast group address and a UDP/TCP port that must have
been assigned by IANA ... These two characteristics are sufficient to
provide simple but efficient environmental SDP detection."

The monitor component keys detection purely on *which port data arrived
on* — the table below is the static correspondence the paper's Figure 2
shows (``239.255.255.250:1900 : UPnP``, ``239.255.255.253:1848 : SLP``,
...).  The paper's configuration example also scans 1846/1848 for SLP and
4160 for Jini; we register those aliases too.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class SdpEntry:
    """One protocol's registered identification tag(s)."""

    sdp_id: str
    #: (multicast group, port) pairs to join and watch.
    groups: tuple[tuple[str, int], ...]
    #: Extra ports identifying the SDP regardless of group.
    ports: tuple[int, ...] = ()

    def all_ports(self) -> frozenset[int]:
        return frozenset(port for _, port in self.groups) | frozenset(self.ports)


class IanaRegistry:
    """sdp_id <-> (groups, ports) correspondence, port -> sdp lookup."""

    def __init__(self) -> None:
        self._entries: dict[str, SdpEntry] = {}
        self._port_to_sdp: dict[int, str] = {}

    def register(self, entry: SdpEntry) -> None:
        if entry.sdp_id in self._entries:
            raise ValueError(f"SDP {entry.sdp_id!r} already registered")
        for port in entry.all_ports():
            owner = self._port_to_sdp.get(port)
            if owner is not None and owner != entry.sdp_id:
                raise ValueError(
                    f"port {port} already identifies {owner!r}; IANA tags are unambiguous"
                )
            self._port_to_sdp[port] = entry.sdp_id
        self._entries[entry.sdp_id] = entry

    def entry(self, sdp_id: str) -> SdpEntry:
        try:
            return self._entries[sdp_id]
        except KeyError:
            raise KeyError(f"unknown SDP {sdp_id!r}") from None

    def sdp_for_port(self, port: int) -> str | None:
        """The paper's detection primitive: port -> protocol, no parsing."""
        return self._port_to_sdp.get(port)

    def known_sdps(self) -> list[str]:
        return sorted(self._entries)

    def __contains__(self, sdp_id: str) -> bool:
        return sdp_id in self._entries


def default_registry() -> IanaRegistry:
    """The correspondence table from the paper's Figures 2 and 5."""
    registry = IanaRegistry()
    registry.register(
        SdpEntry(
            sdp_id="upnp",
            groups=(("239.255.255.250", 1900),),
        )
    )
    registry.register(
        SdpEntry(
            sdp_id="slp",
            groups=(("239.255.255.253", 427),),
            # The paper's monitor configuration also scans 1846/1848.
            ports=(1846, 1848),
        )
    )
    registry.register(
        SdpEntry(
            sdp_id="jini",
            groups=(("224.0.1.84", 4160), ("224.0.1.85", 4160)),
        )
    )
    return registry


__all__ = ["IanaRegistry", "SdpEntry", "default_registry"]

"""The monitor component (paper §2.1, Figure 1).

Joins every configured SDP multicast group, listens on the registered
ports, and detects which SDPs are active "upon the arrival of the data at
the monitored ports without doing any computation, data interpretation or
data transformation".  Raw data plus the identified SDP are handed to the
raw handler (the INDISS bridge); detection callbacks let the adaptation
layer react to protocols appearing and disappearing.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Optional

from ..net import Datagram, Node, UdpSocket
from .parser import NetworkMeta
from .registry import IanaRegistry, default_registry


@dataclass
class SdpSighting:
    """Detection statistics for one SDP."""

    sdp_id: str
    first_seen_us: int
    last_seen_us: int
    messages: int = 0
    bytes: int = 0
    #: Frames whose decode memo already held an entry when this monitor
    #: saw them — i.e. the sender seeded the decode, or another receiver
    #: got there first.  ``frames_seeded / messages`` is the per-protocol
    #: share of monitored traffic that arrives pre-decoded, which is how
    #: the benchmarks attribute the parse-once win per SDP.
    frames_seeded: int = 0


RawHandler = Callable[[str, bytes, NetworkMeta], None]
DetectionHandler = Callable[[str], None]


class MonitorComponent:
    """Passive, port-keyed SDP detection on one node."""

    def __init__(
        self,
        node: Node,
        registry: IanaRegistry | None = None,
        scan: tuple[str, ...] | None = None,
        stale_after_us: int = 30_000_000,
    ):
        self.node = node
        self.registry = registry if registry is not None else default_registry()
        self.sightings: dict[str, SdpSighting] = {}
        self.on_detected: Optional[DetectionHandler] = None
        self.on_raw: Optional[RawHandler] = None
        self.unknown_port_messages = 0
        self._stale_after_us = stale_after_us
        self._sockets: list[UdpSocket] = []
        #: (host, port) pairs whose outbound traffic must be ignored —
        #: INDISS's own sockets, registered by the unit runtime so the
        #: system never re-translates its own messages.
        self._own_endpoints: set[tuple[str, int]] = set()

        sdp_ids = scan if scan is not None else tuple(self.registry.known_sdps())
        bound: set[int] = set()
        for sdp_id in sdp_ids:
            entry = self.registry.entry(sdp_id)
            for group, port in entry.groups:
                socket = self._listen(port, bound)
                socket.join_group(group)
            for port in entry.ports:
                self._listen(port, bound)

    def _listen(self, port: int, bound: set[int]) -> UdpSocket:
        for socket in self._sockets:
            if socket.port == port:
                return socket
        socket = self.node.udp.socket().bind(port, reuse=True)
        socket.on_datagram(self._on_datagram)
        self._sockets.append(socket)
        bound.add(port)
        return socket

    def close(self) -> None:
        for socket in self._sockets:
            socket.close()
        self._sockets.clear()

    # -- self-traffic suppression -------------------------------------------

    def ignore_endpoint(self, host: str, port: int) -> None:
        self._own_endpoints.add((host, port))

    def _is_own_traffic(self, datagram: Datagram) -> bool:
        return (datagram.source.host, datagram.source.port) in self._own_endpoints

    # -- detection ----------------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        if self._is_own_traffic(datagram):
            return
        port = datagram.destination.port
        sdp_id = self.registry.sdp_for_port(port)
        if sdp_id is None:
            self.unknown_port_messages += 1
            return
        now = self.node.now_us
        sighting = self.sightings.get(sdp_id)
        newly_detected = sighting is None or (now - sighting.last_seen_us) > self._stale_after_us
        if sighting is None:
            sighting = SdpSighting(sdp_id=sdp_id, first_seen_us=now, last_seen_us=now)
            self.sightings[sdp_id] = sighting
        sighting.last_seen_us = now
        sighting.messages += 1
        sighting.bytes += len(datagram.payload)
        if newly_detected and self.on_detected is not None:
            self.on_detected(sdp_id)
        seeded = False
        if self.on_raw is not None:
            # Monitored frames fan out to every co-segment INDISS instance;
            # force the shared decode memo into existence so the first
            # unit parse is visible to all of them.
            if len(datagram.ensure_memo()):
                sighting.frames_seeded += 1
                seeded = True
        obs = self.node.network.obs
        if obs.on:
            self._obs_frame(datagram, sdp_id, now, newly_detected, seeded)
        if self.on_raw is not None:
            self.on_raw(sdp_id, datagram.payload, NetworkMeta.from_datagram(datagram))

    def _obs_frame(
        self, datagram: Datagram, sdp_id: str, now: int,
        newly_detected: bool, seeded: bool,
    ) -> None:
        """Flight-recorder instants for one monitored frame.

        ``frame`` is the payload crc32 — the identity that links this
        detection to the translation session the frame opens downstream.
        """
        obs = self.node.network.obs
        pid = self.node.network.partition_of_node(self.node)
        if newly_detected:
            obs.trace.instant(
                "monitor.detect", now, pid, tid=self.node.name, cat="monitor",
                args={"sdp": sdp_id},
            )
        obs.trace.instant(
            "monitor.rx", now, pid, tid=self.node.name, cat="monitor",
            args={
                "sdp": sdp_id,
                "frame": zlib.crc32(datagram.payload),
                "seeded": seeded,
            },
        )
        obs.metrics.counter("core.monitor.frames", sdp=sdp_id).inc()
        if seeded:
            obs.metrics.counter("core.monitor.seeded", sdp=sdp_id).inc()

    # -- queries ---------------------------------------------------------------------

    def detected_sdps(self, now_us: int | None = None) -> list[str]:
        """SDPs seen recently (within the staleness window)."""
        now = now_us if now_us is not None else self.node.now_us
        return sorted(
            sdp_id
            for sdp_id, sighting in self.sightings.items()
            if now - sighting.last_seen_us <= self._stale_after_us
        )

    def ever_detected(self) -> list[str]:
        return sorted(self.sightings)

    def parse_attribution(self) -> dict[str, dict[str, int]]:
        """Per-SDP monitored-frame counts and how many arrived pre-decoded.

        One row per detected protocol: ``frames`` is every monitored
        datagram, ``seeded`` the subset whose frame memo was already
        populated on arrival (sender seed or an earlier receiver's decode).
        """
        return {
            sdp_id: {"frames": sighting.messages, "seeded": sighting.frames_seeded}
            for sdp_id, sighting in self.sightings.items()
        }


__all__ = ["MonitorComponent", "SdpSighting"]

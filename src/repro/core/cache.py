"""INDISS's cross-SDP service cache.

Composers and the adaptation layer need to remember services learnt from
any protocol: passively observed advertisements, and the results of earlier
translation sessions (the unit FSMs "record events data from previous
states", paper §2.3 — this cache is the system-level counterpart).  Entries
carry the advertised TTL and expire in virtual time.

The cache is what makes the paper's best case (Fig. 9b, 0.12 ms) possible:
a warm INDISS instance answers a local M-SEARCH for an SLP-hosted service
without any network round trip.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..sdp.base import ServiceRecord, normalize_service_type


@dataclass
class CacheEntry:
    record: ServiceRecord
    stored_at_us: int
    expires_at_us: float


class ServiceCache:
    """TTL'd store of normalized service records, keyed by (type, url).

    Removals plant short-lived **tombstones** (``tombstone_ttl_s``): while
    a tombstone is live, :meth:`merge` refuses to re-adopt the key from a
    federation peer, so a byebye retraction cannot be re-learnt from a
    stale gossip partner before the retraction has propagated.  A local
    :meth:`store` — the authoritative path a re-announcing service takes —
    clears the tombstone immediately.
    """

    def __init__(self, clock: Callable[[], int], tombstone_ttl_s: int = 15):
        self._clock = clock
        self._entries: dict[tuple[str, str], CacheEntry] = {}
        self.tombstone_ttl_s = tombstone_ttl_s
        #: key -> (deleted_at_us, tombstone_expires_at_us); see the
        #: class docstring.  Gossip digests and deltas carry these.
        self._tombstones: dict[tuple[str, str], tuple[int, float]] = {}
        self.hits = 0
        self.misses = 0
        #: Monotonic mutation counter: bumped whenever the entry set (or an
        #: entry's freshness) changes, including TTL evictions and
        #: tombstone plants/expiries.  Consumers that derive something
        #: expensive from the contents — the gossiper's serialized digest —
        #: reuse their result while the version stands still.
        self.version = 0
        #: Attached secondary indexes (``repro.serving.index.CacheIndex``).
        #: Every path that inserts or drops an entry notifies them, so an
        #: index never holds a key the per-type dict no longer does.
        self._indexes: list = []

    def attach_index(self, index) -> None:
        """Register a secondary index for incremental maintenance.

        ``index`` must expose ``on_store(key, entry)`` and
        ``on_remove(key)``; both are invoked synchronously from every
        mutation path (store / merge / byebye removal / remote tombstone /
        TTL eviction) *before* ``version`` is bumped for that mutation.
        """
        if index not in self._indexes:
            self._indexes.append(index)

    def detach_index(self, index) -> None:
        if index in self._indexes:
            self._indexes.remove(index)

    def _note_store(self, key: tuple[str, str], entry: CacheEntry) -> None:
        for index in self._indexes:
            index.on_store(key, entry)

    def _note_remove(self, key: tuple[str, str]) -> None:
        for index in self._indexes:
            index.on_remove(key)

    def __len__(self) -> int:
        self._evict()
        return len(self._entries)

    def store(self, record: ServiceRecord) -> None:
        now = self._clock()
        expires = now + record.lifetime_s * 1_000_000
        key = (record.service_type, record.url)
        # A locally observed (re-)announcement is authoritative: the
        # service is demonstrably back, so any retraction tombstone dies.
        self._tombstones.pop(key, None)
        entry = CacheEntry(record=record, stored_at_us=now, expires_at_us=expires)
        self._entries[key] = entry
        self._note_store(key, entry)
        self.version += 1

    def merge(self, record: ServiceRecord, expires_at_us: float) -> bool:
        """Adopt a record learnt from a federation peer, newest-expiry wins.

        Unlike :meth:`store`, the expiry is the *absolute* virtual time the
        originating cache advertised, so a record never outlives its first
        TTL by being gossiped around — and an already-expired record is
        never resurrected.  A key under a live tombstone is refused unless
        the record was demonstrably observed *after* the retraction (its
        implied observation time, ``expiry - lifetime``, postdates the
        deletion — a genuine re-announcement, which also clears the
        tombstone); a stale pre-retraction copy can never sneak back in.
        Returns True when adopted.
        """
        now = self._clock()
        if expires_at_us <= now:
            return False
        key = (record.service_type, record.url)
        tombstone = self._tombstones.get(key)
        if tombstone is not None and tombstone[1] > now:
            implied_observed_us = expires_at_us - record.lifetime_s * 1_000_000
            if implied_observed_us <= tombstone[0]:
                return False
        existing = self._entries.get(key)
        if existing is not None and existing.expires_at_us >= expires_at_us:
            return False
        # Only an *adopted* record clears the tombstone — a copy rejected
        # as staler than what we hold must not erase retraction protection.
        self._tombstones.pop(key, None)
        entry = CacheEntry(
            record=record, stored_at_us=now, expires_at_us=expires_at_us
        )
        self._entries[key] = entry
        self._note_store(key, entry)
        self.version += 1
        return True

    def refresh_location(self, location: str) -> int:
        """A device re-announced an already-resolved description: every
        live record resolved from that ``location`` was just observed
        alive, so its TTL restarts now (UPnP max-age semantics).  Returns
        the number of entries refreshed — one version bump covers them
        all, and no index notification is needed because neither the keys
        nor the records change, only their freshness.
        """
        if not location:
            return 0
        self._evict()
        now = self._clock()
        refreshed = 0
        for entry in self._entries.values():
            if entry.record.location != location:
                continue
            entry.stored_at_us = now
            entry.expires_at_us = now + entry.record.lifetime_s * 1_000_000
            refreshed += 1
        if refreshed:
            self.version += 1
        return refreshed

    def digest(self) -> dict[tuple[str, str], float]:
        """Anti-entropy summary: every live key with its absolute expiry.

        Two caches whose digests match hold the same records (at the same
        freshness), so a gossip round between them moves no record data.
        """
        self._evict()
        return {key: entry.expires_at_us for key, entry in self._entries.items()}

    def live_entries(self) -> list[tuple[tuple[str, str], CacheEntry]]:
        """All live (key, entry) pairs — the gossip delta source."""
        self._evict()
        return list(self._entries.items())

    def remove_url(self, url: str) -> int:
        """Drop every record for ``url`` (byebye handling); returns count.

        Each removed key gets a tombstone for ``tombstone_ttl_s``, so
        gossip retracts the record fleet-wide instead of resurrecting it.
        Entries already past their TTL are swept first (one version bump)
        rather than counted and tombstoned as retractions — a record that
        died naturally needs no resurrection protection.
        """
        self._evict()
        keys = [key for key in self._entries if key[1] == url]
        self._remove_keys(keys)
        return len(keys)

    def remove_type(self, service_type: str, source_sdp: str = "") -> int:
        """Drop records of one normalized type (SSDP byebye names only the
        NT, never a service URL); returns count.  Tombstoned like
        :meth:`remove_url` (and, like it, sweeps TTL-expired entries first
        so they are neither counted nor tombstoned)."""
        self._evict()
        wanted = normalize_service_type(service_type)
        keys = [
            key
            for key, entry in self._entries.items()
            if entry.record.service_type == wanted
            and (not source_sdp or entry.record.source_sdp == source_sdp)
        ]
        self._remove_keys(keys)
        return len(keys)

    def _remove_keys(self, keys) -> None:
        if not keys:
            return
        now = self._clock()
        expires = now + self.tombstone_ttl_s * 1_000_000
        for key in keys:
            del self._entries[key]
            self._tombstones[key] = (now, expires)
            self._note_remove(key)
        self.version += 1

    # -- tombstones ---------------------------------------------------------

    def tombstones(self) -> dict[tuple[str, str], tuple[int, float]]:
        """Live tombstones: key -> (deleted_at_us, expires_at_us)."""
        self._evict()
        return dict(self._tombstones)

    def apply_tombstone(
        self, key: tuple[str, str], deleted_at_us: int, expires_at_us: float
    ) -> bool:
        """Adopt a retraction learnt from a federation peer.

        Drops the local entry only when it was stored at or before the
        deletion (a record learnt *after* the retraction is a genuine
        re-announcement and survives).  Returns True when anything
        changed — the tombstone was news, or an entry was dropped.
        """
        now = self._clock()
        if expires_at_us <= now:
            return False
        existing = self._tombstones.get(key)
        if existing is not None and existing[1] >= expires_at_us:
            return False
        self._tombstones[key] = (deleted_at_us, expires_at_us)
        entry = self._entries.get(key)
        if entry is not None and entry.stored_at_us <= deleted_at_us:
            del self._entries[key]
            self._note_remove(key)
        self.version += 1
        return True

    def lookup(self, service_type: str) -> list[ServiceRecord]:
        """All live records whose normalized type matches."""
        self._evict()
        wanted = normalize_service_type(service_type)
        found = [
            entry.record
            for entry in self._entries.values()
            if entry.record.service_type == wanted
        ]
        if found:
            self.hits += 1
        else:
            self.misses += 1
        return found

    def lookup_any(self) -> list[ServiceRecord]:
        self._evict()
        return [entry.record for entry in self._entries.values()]

    def records_from(self, source_sdp: str) -> list[ServiceRecord]:
        self._evict()
        return [
            entry.record
            for entry in self._entries.values()
            if entry.record.source_sdp == source_sdp
        ]

    def evict_expired(self) -> None:
        """Drop entries and tombstones past their TTL now (bumps
        ``version`` if any go)."""
        self._evict()

    def _evict(self) -> None:
        # One sweep bumps ``version`` exactly once, however many entries
        # and tombstones fall out of it together.
        now = self._clock()
        expired = [key for key, entry in self._entries.items() if entry.expires_at_us <= now]
        for key in expired:
            del self._entries[key]
            self._note_remove(key)
        dead_tombstones = [
            key for key, (_, expires) in self._tombstones.items() if expires <= now
        ]
        for key in dead_tombstones:
            del self._tombstones[key]
        if expired or dead_tombstones:
            self.version += 1


__all__ = ["ServiceCache", "CacheEntry"]

"""Composer side of the event-based translation (paper §2.2).

A composer assembles event streams back into native SDP messages "totally
hidden to components outside INDISS".  Composers must understand every
mandatory event and are free to handle or ignore SDP-specific ones; ignored
events are counted, which the interoperability tests use to verify the
discard rule (paper §2.3: richer SDPs' extra events "are simply discarded
... as they are unknown").
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from ..net import Endpoint
from .events import Event, EventType, MANDATORY_EVENTS

if TYPE_CHECKING:  # pragma: no cover
    from .session import TranslationSession


@dataclass(frozen=True)
class OutboundMessage:
    """A native message a composer wants on the wire.

    ``transport`` selects the path: ``"udp"`` datagrams go to
    ``destination``; ``"http"`` messages are requests for ``url`` (the unit
    runtime runs the TCP exchange and feeds the response back to the unit's
    parser).
    """

    payload: bytes
    destination: Endpoint | None = None
    transport: str = "udp"
    url: str = ""
    #: Label for traces/tests ("msearch", "srvrply", "get-description"...).
    label: str = ""
    #: Optional (memo_key, decoded_form) pair seeding the outgoing frame's
    #: :class:`repro.net.FrameMemo` — the composer just built the payload
    #: from this structured form, so receivers need not re-derive it.
    decode_hint: tuple | None = None


class ComposeError(Exception):
    """Raised when a composer cannot build a message from a stream."""


class SdpComposer(ABC):
    """Base class for per-protocol composers."""

    sdp_id: str = ""

    #: Event types beyond the mandatory set this composer understands.
    extra_understood: frozenset[EventType] = frozenset()

    def __init__(self) -> None:
        self.messages_composed = 0
        self.events_discarded = 0
        self.discarded_types: set[str] = set()

    def understands(self, event_type: EventType) -> bool:
        return event_type in MANDATORY_EVENTS or event_type in self.extra_understood

    def filter_stream(self, events: Iterable[Event]) -> list[Event]:
        """Keep understood events; count and drop unknown ones."""
        kept = []
        for event in events:
            if self.understands(event.type):
                kept.append(event)
            else:
                self.events_discarded += 1
                self.discarded_types.add(event.type.name)
        return kept

    @abstractmethod
    def compose(self, events: list[Event], session: "TranslationSession") -> list[OutboundMessage]:
        """Assemble native messages from a bracketed event stream."""


__all__ = ["SdpComposer", "OutboundMessage", "ComposeError"]

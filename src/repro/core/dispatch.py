"""Stream classification and pluggable request dispatch.

This is the layer between the monitor and the units.  ``Indiss`` used to
hard-wire the whole pipeline inside ``_on_raw``/``_handle_request``; it is
now split into three replaceable pieces:

* :class:`StreamClassifier` — inspects a parsed event stream and decides
  what kind of exchange it is (request / advertisement / response /
  byebye), extracting the fields the rest of the pipeline keys on;
* :class:`DispatchPolicy` — decides how a classified request is served:
  which units drive their native discovery, whether the service cache may
  answer, and what identity requests are deduplicated under.  Policies are
  registered by name so deployments (and future sharded dispatchers) can
  swap them via :class:`~repro.core.indiss.IndissConfig`;
* :class:`AdvertisementPipeline` — the resolve → cache → re-announce path
  for advertisement, response, and byebye streams.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from ..sdp.base import ServiceRecord
from .events import (
    Event,
    SDP_DEVICE_URL_DESC,
    SDP_REQ_HOPS,
    SDP_REQ_ID,
    SDP_SERVICE_ALIVE,
    SDP_SERVICE_BYEBYE,
    SDP_SERVICE_REQUEST,
    SDP_SERVICE_RESPONSE,
    SDP_SERVICE_TYPE,
)
from .parser import NetworkMeta
from .session import TranslationSession

if TYPE_CHECKING:  # pragma: no cover
    from .indiss import Indiss
    from .unit import Unit

#: Stream kinds, in classification precedence order.
KIND_REQUEST = "request"
KIND_ADVERTISEMENT = "advertisement"
KIND_RESPONSE = "response"
KIND_BYEBYE = "byebye"
KIND_OTHER = "other"


@dataclass
class ClassifiedStream:
    """One parsed stream plus everything dispatch keys on."""

    kind: str
    stream: list[Event] = field(default_factory=list)
    service_type: str = ""
    raw_type: str = ""
    xid: Optional[int] = None
    meta: Optional[NetworkMeta] = None
    #: Remaining forward-hop budget a gateway-forwarded request carried on
    #: the wire; None for requests issued by native clients.
    hops: Optional[int] = None


class StreamClassifier:
    """Event-stream -> :class:`ClassifiedStream` (kind + key fields).

    Precedence mirrors the protocol semantics: a stream carrying a request
    event is a request even if it also mentions response events (SLP
    retransmissions carry previous-responder lists).
    """

    _PRECEDENCE = (
        (SDP_SERVICE_REQUEST, KIND_REQUEST),
        (SDP_SERVICE_ALIVE, KIND_ADVERTISEMENT),
        (SDP_SERVICE_RESPONSE, KIND_RESPONSE),
        (SDP_SERVICE_BYEBYE, KIND_BYEBYE),
    )

    def classify(
        self, stream: list[Event], meta: NetworkMeta | None = None
    ) -> ClassifiedStream:
        kinds = set()
        service_type = ""
        raw_type = ""
        xid = None
        hops = None
        for event in stream:
            kinds.add(event.type)
            if event.type is SDP_SERVICE_TYPE:
                service_type = str(event.get("normalized") or "")
                raw_type = str(event.get("type") or "")
            elif event.type is SDP_REQ_ID:
                xid = event.get("xid")
            elif event.type is SDP_REQ_HOPS:
                try:
                    hops = int(event.get("hops"))
                except (TypeError, ValueError):
                    hops = None
        kind = KIND_OTHER
        for event_type, candidate in self._PRECEDENCE:
            if event_type in kinds:
                kind = candidate
                break
        return ClassifiedStream(
            kind=kind,
            stream=stream,
            service_type=service_type,
            raw_type=raw_type,
            xid=xid,
            meta=meta,
            hops=hops,
        )


class DispatchPolicy:
    """How one classified request is served by an INDISS instance.

    Subclasses override :meth:`select_targets` (which units drive native
    discovery) and :meth:`cache_answer` (whether the service cache may
    short-circuit the network).  ``dedup_scope`` feeds the
    :class:`~repro.core.sessions.SessionManager`.
    """

    name = "fanout"
    dedup_scope = "requester"

    def select_targets(self, indiss: "Indiss", session: TranslationSession) -> list["Unit"]:
        """Units that should drive their native discovery for this session.

        Default: every instantiated unit except the origin protocol's.
        """
        return [
            unit for sdp, unit in indiss.units.items() if sdp != session.origin_sdp
        ]

    def cache_answer(
        self, indiss: "Indiss", session: TranslationSession
    ) -> Optional[ServiceRecord]:
        """A cached record to answer with, or None to go to the network.

        The base policy honours the legacy ``answer_from_cache`` deployment
        flag; records learnt from the requester's own protocol are excluded
        (the native service would have answered it directly).
        """
        if not indiss.config.answer_from_cache:
            return None
        return self.lookup_record(
            indiss, session.origin_sdp, str(session.vars.get("service_type", ""))
        )

    def lookup_record(
        self, indiss: "Indiss", origin_sdp: str, service_type: str
    ) -> Optional[ServiceRecord]:
        """First cached record of ``service_type`` not native to the
        requester's own protocol."""
        records = [
            record
            for record in indiss.cache.lookup(service_type)
            if record.source_sdp != origin_sdp
        ]
        return records[0] if records else None

    def mark_forwarded(
        self, indiss: "Indiss", session: TranslationSession, targets: list["Unit"]
    ) -> None:
        """Hook invoked after a session fans out to ``targets``; the base
        policy does nothing."""

    def escalate_duplicate(
        self, indiss: "Indiss", classified: ClassifiedStream
    ) -> list["Unit"]:
        """Targets for re-translating a *suppressed duplicate* that the
        cache could not answer, or ``[]`` to stay silent (the default —
        only the federated shard-ring policy ever escalates)."""
        return []


class FanOutAllPolicy(DispatchPolicy):
    """The default: fan the request out to every non-origin unit."""


class CacheFirstPolicy(DispatchPolicy):
    """Always try the service cache before touching the network (Fig. 9b),
    regardless of the deployment flag."""

    name = "cache-first"

    def cache_answer(self, indiss, session):
        return self.lookup_record(
            indiss, session.origin_sdp, str(session.vars.get("service_type", ""))
        )


class GatewayForwardPolicy(DispatchPolicy):
    """Gateway dispatch for multi-segment chains.

    Adds the *origin* protocol's unit to the target set, so a bridged
    gateway re-issues the request natively on every segment it is homed on
    — the mechanism that lets discovery hop across a chain of INDISS
    gateways.  Dedup switches to service-type scope: without it two
    gateways in multicast range of each other would re-translate each
    other's re-issued requests forever.

    Defence in depth for cyclic topologies: each forwarded request carries
    an explicit hop budget on the wire (parsed back into the session as
    ``vars["hops"]``); a request whose budget is spent is dropped instead
    of re-issued, so even with duplicate suppression defeated a loop of
    gateways quiesces after ``hop_budget`` re-translations.
    """

    name = "gateway-forward"
    dedup_scope = "service-type"

    def select_targets(self, indiss, session):
        if not self.consume_hop_budget(indiss, session):
            return []
        return list(indiss.units.values())

    def mark_forwarded(self, indiss, session, targets):
        """Pre-record the dedup identity of our own re-issued requests.

        The units are about to multicast this request natively in every
        target protocol; when a neighbouring gateway re-translates one of
        those and the echo arrives back here, it must read as a duplicate
        of the wave *we* started — otherwise two gateways re-translate each
        other's echoes until the hop budget runs out.
        """
        service_type = str(session.vars.get("service_type", ""))
        raw_type = str(session.vars.get("st", ""))
        for unit in targets:
            if unit.sdp_id == session.origin_sdp:
                continue  # the incoming request already recorded this key
            key = indiss.session_manager.dedup_key(
                unit.sdp_id, None, raw_type, service_type, None
            )
            indiss.session_manager.deduper.seen_recently(key)

    def consume_hop_budget(self, indiss: "Indiss", session: TranslationSession) -> bool:
        """Charge one hop; False when the request must not be forwarded.

        A request with no wire-carried budget (a native client's original
        request entering the fleet) starts from the deployment's
        ``hop_budget``; the units' composers stamp ``hops - 1`` into every
        re-issued native request.
        """
        hops = session.vars.get("hops")
        if hops is None:
            hops = indiss.config.hop_budget
            session.vars["hops"] = hops
        if hops <= 0:
            indiss.session_manager.record_hop_budget_drop()
            session.log("gateway: forward hop budget exhausted; not re-issuing")
            return False
        return True


class ShardRingPolicy(GatewayForwardPolicy):
    """Federated gateway dispatch: consistent-hash ownership + election.

    On a gateway that joined a :class:`~repro.federation.GatewayFleet`,
    requests heard on the shared backbone segment are partitioned across
    the fleet: the ring owner of the normalized service type drives the
    translation (and only when the federated cache cannot already answer),
    while the responder elected from per-segment utilization answers from
    the gossiped cache.  Everyone else stays silent — this is what collapses
    ``campus_fanout``'s per-leaf duplicate translations to at most one owner
    plus one elected responder.

    Requests from the gateway's own edge (leaf) segments are served exactly
    like ``gateway-forward``: an entry gateway always translates for its
    own clients.  Without a bound fleet (``indiss.federation is None``) the
    policy degrades to plain gateway-forward.
    """

    name = "shard-ring"

    def select_targets(self, indiss, session):
        federation = getattr(indiss, "federation", None)
        if federation is None:
            return super().select_targets(indiss, session)
        if not self.consume_hop_budget(indiss, session):
            return []
        if not federation.is_backbone_request(session):
            federation.stats.edge_translations += 1
            return list(indiss.units.values())
        service_type = str(session.vars.get("service_type", ""))
        exclude = federation.requester_exclusion(session)
        if federation.should_translate(service_type, session.origin_sdp, exclude):
            return list(indiss.units.values())
        session.log("shard-ring: suppressed (peer owns or cache already answers)")
        return []

    def cache_answer(self, indiss, session):
        federation = getattr(indiss, "federation", None)
        if federation is None:
            return super().cache_answer(indiss, session)
        service_type = str(session.vars.get("service_type", ""))
        if federation.is_backbone_request(session):
            exclude = federation.requester_exclusion(session)
            role = federation.cache_role(service_type, session.origin_sdp, exclude)
            if role is None:
                return None
            record = self.lookup_record(indiss, session.origin_sdp, service_type)
            if record is not None:
                federation.note_cache_answer(role)
            return record
        return super().cache_answer(indiss, session)

    def escalate_duplicate(self, indiss, classified):
        """Cold-start escalation (knob-gated; off by default).

        The ring owner re-issues a request natively on the backbone only
        when its federated cache could not answer (``cache_answer`` runs
        before ``select_targets``), so the owner's own re-issue echoing
        back as a service-type duplicate is a genuine cold-start signal:
        the record exists in no fleet cache the owner can see.  Normally
        every non-owner stays silent on that echo; with
        ``GatewayFleet.cold_start_escalation`` on, a member re-multicasts
        the request on its own segments with the decremented wire hop
        budget — so a service hiding behind a cold, partition-lagged edge
        is still found, and the wave quiesces because the escalated
        re-issues come from non-owners (members stay silent on those).
        """
        from ..sdp.base import normalize_service_type

        federation = getattr(indiss, "federation", None)
        if federation is None or not federation.fleet.cold_start_escalation:
            return []
        meta = classified.meta
        requester = meta.source if meta is not None else None
        if requester is None:
            return []
        fleet = federation.fleet
        if requester.host == federation.member_id:
            return []
        if requester.host not in fleet.members:
            return []
        wanted = normalize_service_type(
            classified.service_type or classified.raw_type
        )
        if fleet.ring.owner(wanted) != requester.host:
            return []
        if classified.hops is not None and classified.hops <= 0:
            return []
        federation.stats.cold_start_escalations += 1
        return list(indiss.units.values())


DISPATCH_POLICIES: dict[str, type[DispatchPolicy]] = {
    FanOutAllPolicy.name: FanOutAllPolicy,
    CacheFirstPolicy.name: CacheFirstPolicy,
    GatewayForwardPolicy.name: GatewayForwardPolicy,
    ShardRingPolicy.name: ShardRingPolicy,
}


def make_policy(name: str) -> DispatchPolicy:
    """Instantiate a registered dispatch policy by name."""
    try:
        return DISPATCH_POLICIES[name]()
    except KeyError:
        known = ", ".join(sorted(DISPATCH_POLICIES))
        raise KeyError(f"unknown dispatch policy {name!r} (known: {known})") from None


class AdvertisementPipeline:
    """Resolve -> cache -> re-announce for non-request streams.

    Advertisements that lack a service URL (SSDP NOTIFY only names a
    description document) are handed back to the origin unit to resolve
    with a recursive native request, like Fig. 4's extra GET.
    """

    def __init__(self, indiss: "Indiss"):
        self.indiss = indiss

    def handle_advertisement(self, origin_sdp: str, stream: list[Event]) -> None:
        from ..units.records import record_from_stream

        record = record_from_stream(stream, source_sdp=origin_sdp)
        if record is None:
            # A NOTIFY names only the description document.  When earlier
            # resolution already produced records from that location, the
            # re-announcement just restarts their TTL (UPnP max-age
            # semantics) — only a genuinely new location is worth the
            # recursive description fetch.
            if self.indiss.config.cache_discoveries and self._refresh_alive(stream):
                return
            unit = self.indiss.units.get(origin_sdp)
            if unit is not None:
                unit.resolve_advertisement(stream, self.resolved)
            return
        self.resolved(record)

    def _refresh_alive(self, stream: list[Event]) -> bool:
        for event in stream:
            if event.type is SDP_DEVICE_URL_DESC:
                url = str(event.get("url", ""))
                if url:
                    return self.indiss.cache.refresh_location(url) > 0
        return False

    def resolved(self, record: ServiceRecord) -> None:
        if self.indiss.config.cache_discoveries:
            self.indiss.cache.store(record)
        if self.indiss.config.translate_advertisements:
            self.readvertise(record, exclude=record.source_sdp)

    def readvertise(self, record: ServiceRecord, exclude: str = "") -> None:
        """Announce a record through every unit except ``exclude``."""
        for sdp_id, unit in self.indiss.units.items():
            if sdp_id == exclude or sdp_id == record.source_sdp:
                continue
            unit.advertise_record(record)

    def handle_response(self, origin_sdp: str, stream: list[Event]) -> None:
        """Passively learn from replies flying past the monitor."""
        if not self.indiss.config.cache_discoveries:
            return
        from ..units.records import record_from_stream

        record = record_from_stream(stream, source_sdp=origin_sdp)
        if record is not None:
            self.indiss.cache.store(record)

    def handle_byebye(self, origin_sdp: str, stream: list[Event]) -> None:
        from ..sdp.base import normalize_service_type

        for event in stream:
            if event.type is SDP_SERVICE_BYEBYE:
                url = str(event.get("url", ""))
                if url:
                    self.indiss.cache.remove_url(url)
                    continue
                nt = str(event.get("type", ""))
                if nt:
                    self.indiss.cache.remove_type(
                        normalize_service_type(nt), origin_sdp
                    )


__all__ = [
    "AdvertisementPipeline",
    "CacheFirstPolicy",
    "ClassifiedStream",
    "DISPATCH_POLICIES",
    "DispatchPolicy",
    "FanOutAllPolicy",
    "GatewayForwardPolicy",
    "KIND_ADVERTISEMENT",
    "KIND_BYEBYE",
    "KIND_OTHER",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "ShardRingPolicy",
    "StreamClassifier",
    "make_policy",
]

"""``python -m repro.world`` — validate and inspect the scenario catalog.

Commands:

* ``list`` — one row per registered scenario spec (validated first);
* ``describe <scenario> [param=value ...]`` — validate and pretty-print
  one spec, optionally re-parameterized (ints parse as ints), including
  the computed district partition map the parallel engine would use;
* ``validate`` — schema + subnet-budget checks over **every** registered
  spec, exiting non-zero on the first failure.  CI runs this as a fast
  pre-test step: a malformed scenario fails in milliseconds, before any
  simulation runs.

No command ever builds a network — validation is pure spec analysis.
"""

from __future__ import annotations

import sys

from .partition import spec_partition_map
from .scenarios import SCENARIO_SPECS
from .spec import SpecError, WorldSpec


def _parse_params(args: list[str]) -> dict:
    params: dict = {}
    for arg in args:
        key, sep, value = arg.partition("=")
        if not sep:
            raise SystemExit(f"expected param=value, got {arg!r}")
        try:
            params[key] = int(value)
        except ValueError:
            if value in ("True", "False"):
                params[key] = value == "True"
            else:
                params[key] = value
    return params


def _spec_for(name: str, params: dict) -> WorldSpec:
    try:
        builder = SCENARIO_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_SPECS))
        raise SystemExit(f"unknown scenario {name!r}; known: {known}") from None
    return builder(**params)


def cmd_list() -> int:
    width = max(len(name) for name in SCENARIO_SPECS)
    failures = 0
    for name, builder in SCENARIO_SPECS.items():
        spec = builder()
        problems = spec.problems()
        row = spec.summary()
        status = "ok" if not problems else f"INVALID ({problems[0]})"
        print(
            f"{name:<{width}}  segs={row['segments']:<3} hosts={row['hosts']:<4} "
            f"fill={row['fill']:<5} fleets={row['fleets']} "
            f"steps={row['steps']:<2} probes={row['probes']:<2} {status}"
        )
        failures += bool(problems)
    return 1 if failures else 0


def cmd_describe(name: str, params: dict) -> int:
    spec = _spec_for(name, params)
    try:
        spec.validate()
    except SpecError as exc:
        print(spec.describe())
        print(f"\nINVALID: {exc}", file=sys.stderr)
        return 1
    print(spec.describe())
    try:
        pmap, hosts_of = spec_partition_map(spec)
    except SpecError as exc:
        print(f"\npartitions: unresolvable from the spec ({exc})")
    else:
        print()
        print(pmap.describe(hosts_of))
    print("\nvalid: schema and subnet budgets check out")
    return 0


def cmd_validate() -> int:
    failures = []
    for name, builder in SCENARIO_SPECS.items():
        try:
            spec = builder()
            spec.validate()
        except (SpecError, ValueError) as exc:
            failures.append(f"{name}: {exc}")
            continue
        print(f"{name}: ok")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"all {len(SCENARIO_SPECS)} scenario specs valid")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    command = argv[1]
    if command == "list":
        return cmd_list()
    if command == "describe":
        if len(argv) < 3:
            print("usage: python -m repro.world describe <scenario> [param=value ...]",
                  file=sys.stderr)
            return 2
        return cmd_describe(argv[2], _parse_params(argv[3:]))
    if command == "validate":
        return cmd_validate()
    print(f"unknown command {command!r}; try list, describe, validate", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

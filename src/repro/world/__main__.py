"""``python -m repro.world`` — validate, inspect and run the scenario catalog.

Commands:

* ``list`` — one row per registered scenario spec (validated first);
* ``describe <scenario> [param=value ...]`` — validate and pretty-print
  one spec, optionally re-parameterized (ints parse as ints), including
  the computed district partition map the parallel engine would use;
* ``validate`` — schema + subnet-budget checks over **every** registered
  spec, exiting non-zero on the first failure.  CI runs this as a fast
  pre-test step: a malformed scenario fails in milliseconds, before any
  simulation runs;
* ``run <scenario> [param=value ...] [--seed N] [--engine single|partitioned|mp]
  [--trace[=PATH]] [--metrics[=PATH]]`` — build the scenario, execute its
  workload, and print the outcome.  ``--trace`` turns on the flight
  recorder and writes a Perfetto-loadable Chrome trace-event file
  (default ``<scenario>.trace.json``); ``--metrics`` writes the metrics
  registry as JSONL (default ``<scenario>.metrics.jsonl``).  Either flag
  also prints the ``python -m repro.obs report`` text digest.

Only ``run`` builds a network — validation is pure spec analysis.
"""

from __future__ import annotations

import sys

from .partition import spec_partition_map
from .scenarios import SCENARIO_SPECS
from .spec import SpecError, WorldSpec


def _parse_params(args: list[str]) -> dict:
    params: dict = {}
    for arg in args:
        key, sep, value = arg.partition("=")
        if not sep:
            raise SystemExit(f"expected param=value, got {arg!r}")
        try:
            params[key] = int(value)
        except ValueError:
            if value in ("True", "False"):
                params[key] = value == "True"
            else:
                params[key] = value
    return params


def _spec_for(name: str, params: dict) -> WorldSpec:
    try:
        builder = SCENARIO_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(SCENARIO_SPECS))
        raise SystemExit(f"unknown scenario {name!r}; known: {known}") from None
    return builder(**params)


def cmd_list() -> int:
    width = max(len(name) for name in SCENARIO_SPECS)
    failures = 0
    for name, builder in SCENARIO_SPECS.items():
        spec = builder()
        problems = spec.problems()
        row = spec.summary()
        status = "ok" if not problems else f"INVALID ({problems[0]})"
        print(
            f"{name:<{width}}  segs={row['segments']:<3} hosts={row['hosts']:<4} "
            f"fill={row['fill']:<5} fleets={row['fleets']} "
            f"steps={row['steps']:<2} probes={row['probes']:<2} {status}"
        )
        failures += bool(problems)
    return 1 if failures else 0


def cmd_describe(name: str, params: dict) -> int:
    spec = _spec_for(name, params)
    try:
        spec.validate()
    except SpecError as exc:
        print(spec.describe())
        print(f"\nINVALID: {exc}", file=sys.stderr)
        return 1
    print(spec.describe())
    try:
        pmap, hosts_of = spec_partition_map(spec)
    except SpecError as exc:
        print(f"\npartitions: unresolvable from the spec ({exc})")
    else:
        print()
        print(pmap.describe(hosts_of))
    print("\nvalid: schema and subnet budgets check out")
    return 0


def _split_run_args(args: list[str]) -> tuple[dict, dict]:
    """Separate ``param=value`` spec parameters from ``--flag`` options."""
    options = {"seed": 0, "engine": "single", "trace": None, "metrics": None}
    plain: list[str] = []
    index = 0
    while index < len(args):
        arg = args[index]
        if not arg.startswith("--"):
            plain.append(arg)
            index += 1
            continue
        flag, sep, value = arg[2:].partition("=")
        if flag not in options:
            raise SystemExit(f"unknown option --{flag}")
        if flag in ("seed", "engine"):
            if not sep:
                index += 1
                if index >= len(args):
                    raise SystemExit(f"--{flag} needs a value")
                value = args[index]
            options[flag] = int(value) if flag == "seed" else value
        else:  # --trace / --metrics: optional value, "" means default path
            options[flag] = value if sep else ""
        index += 1
    return _parse_params(plain), options


def cmd_run(name: str, args: list[str]) -> int:
    from ..obs import Recording, sort_records
    from ..obs.export import text_summary, write_chrome_trace, write_metrics_jsonl
    from .build import World
    from .engine import run_world_mp

    params, options = _split_run_args(args)
    engine = options["engine"]
    if engine not in ("single", "partitioned", "mp"):
        raise SystemExit(f"unknown engine {engine!r}; try single, partitioned, mp")
    trace_path = options["trace"]
    metrics_path = options["metrics"]
    if trace_path == "":
        trace_path = f"{name}.trace.json"
    if metrics_path == "":
        metrics_path = f"{name}.metrics.jsonl"
    recording = None
    if trace_path is not None or metrics_path is not None:
        recording = Recording(metrics=True, trace=trace_path is not None)
    spec = _spec_for(name, params)
    spec.validate()

    meta = {"scenario": name, "seed": options["seed"], "engine": engine,
            "params": params}
    if engine == "mp":
        result = run_world_mp(
            spec, seed=options["seed"],
            record=recording if recording is not None else False,
        )
        print(f"{name}: backend={result['backend']} "
              f"partitions={result['partitions']} "
              f"events={result['events_fired']} "
              f"latency_us={result['latency_us']} results={result['results']}")
        obs = result.get("obs") or {}
        snapshot = obs.get("metrics") or {}
        spans = obs.get("spans") or []
    else:
        world = World.build(
            spec, seed=options["seed"], engine=engine,
            record=recording if recording is not None else False,
        )
        world.run_workload()
        outcome = world.outcome()
        print(f"{name}: engine={engine} "
              f"events={world.net.scheduler.events_fired} "
              f"latency_us={outcome.latency_us} results={outcome.results}")
        snapshot = outcome.metrics or {}
        spans = [] if recording is None else sort_records(recording.trace.records)

    if metrics_path is not None:
        count = write_metrics_jsonl(metrics_path, snapshot, meta)
        print(f"metrics: {count} lines -> {metrics_path}")
    if trace_path is not None:
        count = write_chrome_trace(trace_path, spans, meta)
        print(f"trace: {count} records -> {trace_path}")
    if recording is not None:
        print(text_summary(snapshot, spans, title=name))
    return 0


def cmd_validate() -> int:
    failures = []
    for name, builder in SCENARIO_SPECS.items():
        try:
            spec = builder()
            spec.validate()
        except (SpecError, ValueError) as exc:
            failures.append(f"{name}: {exc}")
            continue
        print(f"{name}: ok")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    if failures:
        return 1
    print(f"all {len(SCENARIO_SPECS)} scenario specs valid")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) < 2 or argv[1] in ("-h", "--help"):
        print(__doc__)
        return 0 if len(argv) >= 2 else 2
    command = argv[1]
    if command == "list":
        return cmd_list()
    if command == "describe":
        if len(argv) < 3:
            print("usage: python -m repro.world describe <scenario> [param=value ...]",
                  file=sys.stderr)
            return 2
        return cmd_describe(argv[2], _parse_params(argv[3:]))
    if command == "validate":
        return cmd_validate()
    if command == "run":
        if len(argv) < 3:
            print("usage: python -m repro.world run <scenario> [param=value ...] "
                  "[--seed N] [--engine single|partitioned|mp] "
                  "[--trace[=PATH]] [--metrics[=PATH]]", file=sys.stderr)
            return 2
        return cmd_run(argv[2], argv[3:])
    print(f"unknown command {command!r}; try list, describe, validate, run",
          file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))

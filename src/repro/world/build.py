"""``World.build``: compile a :class:`WorldSpec` into a running simulation.

The compiler walks the spec's ordered element list and issues exactly the
same construction calls a hand-written builder would — ``Network`` /
``add_segment`` / ``add_node`` / agent constructors / ``GatewayFleet`` —
then the workload interpreter executes the phased steps.  Ordering is
preserved element-for-element, which is why spec-built worlds reproduce
the legacy builders' event schedules bit-for-bit (the golden-parity tests
in ``tests/world`` pin this).

The returned :class:`World` is the run-control surface:

* ``run(duration_us)`` / ``run_until(predicate, horizon_us)`` advance
  virtual time, the latter until a condition on the world holds;
* named probes (``world.probe("local")``) expose each discovery's results;
* the observer API (``collect``/``add_observer``) feeds one reusable
  metrics pipeline into ``ScenarioOutcome.extras``.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Optional

from ..core import Indiss, IndissConfig
from ..net import Endpoint, Network, NetworkError
from ..net.parallel import ShardedScheduler
from ..net.partition import network_partition_map
from ..obs import Recording
from ..sdp.slp import (
    ServiceAgent,
    ServiceType,
    SlpConfig,
    SlpRegistration,
    UserAgent,
)
from ..sdp.upnp import UpnpControlPoint, make_clock_device
from .observers import COLLECTORS, global_metrics, note_row_latency
from .outcome import ScenarioOutcome
from .spec import (
    BridgeSpec,
    Chatter,
    Check,
    Churn,
    ClockDevice,
    Collect,
    ControlPoint,
    CpChatter,
    Crash,
    Delta,
    Emit,
    Fault,
    Fill,
    FleetSpec,
    Heal,
    Restart,
    GenaFeed,
    GenaSubscriber,
    HostSpec,
    IndissApp,
    JiniListener,
    JiniRegistrar,
    Ping,
    Probe,
    QueryFrontendApp,
    QueryLoad,
    RingOwnerLeaf,
    Run,
    SegmentSpec,
    SetConfig,
    SlpClient,
    SlpService,
    Snapshot,
    SpecError,
    TypeSweepReport,
    TypedDevice,
    WorldSpec,
)


class BuildError(RuntimeError):
    """A validated spec could not be realised against the simulator."""


class ProbeHandle:
    """One named discovery: its pending search and derived readings.

    Readings come from the live search handle, so a probe's partial
    results are visible before its convergence timer fires — what
    ``run_until(lambda w: w.probe("x").results > 0)`` loops poll.
    """

    def __init__(self, name: str, kind: str):
        self.name = name
        self.kind = kind
        self.done: list = []
        #: The agent's pending-search handle, set at issue time.
        self.pending = None

    @property
    def search(self):
        return self.done[0] if self.done else self.pending

    @property
    def completed(self) -> bool:
        return bool(self.done)

    @property
    def results(self) -> int:
        search = self.search
        if search is None:
            return 0
        found = search.responses if self.kind == "upnp" else search.results
        return len(found)

    @property
    def latency_us(self) -> Optional[int]:
        search = self.search
        return None if search is None else search.first_latency_us


class World:
    """A built world: the network, its hosts/agents, and run control."""

    def __init__(self, spec: WorldSpec, net: Network, seed: int, costs):
        self.spec = spec
        self.net = net
        self.seed = seed
        self.costs = costs
        #: host name -> Node (spec hosts only; fill/chatter hosts excluded).
        self.hosts: dict = {}
        #: (host, slot) -> app object; slots: "ua", "sa", "cp", "indiss",
        #: "device", "jini", "gena".
        self._apps: dict = {}
        #: Every INDISS instance, in creation order.
        self.instances: list[Indiss] = []
        #: Every UPnP device, in creation order.
        self.devices: list = []
        self.gena_subscribers: list = []
        #: Every serving-tier query frontend, in creation order.
        self.serving_frontends: list = []
        #: fleet name -> GatewayFleet.
        self.fleets: dict = {}
        self._fleet_specs: dict[str, FleetSpec] = {}
        #: service type -> segment name a TypedDevice was placed on.
        self.placements: dict[str, str] = {}
        #: load group -> per-client accounting dicts (Chatter/CpChatter/Churn).
        self.load_groups: dict[str, list] = {}
        self.probes: dict[str, ProbeHandle] = {}
        #: host name -> home segments, for ``Fault(kind="detach")`` /
        #: ``Heal(kind="attach")`` round trips.
        self._detached_hosts: dict[str, list] = {}
        self.extras: dict = {}
        self._snapshots: dict[str, dict] = {}
        self._headline: Optional[str] = None
        self._pending_probe_extras: list[tuple[str, str]] = []
        self._observers: dict[str, Callable] = {}
        #: Which execution backend built this world ("single"/"partitioned").
        self.engine_kind = "single"
        #: The live flight recorder, or ``None`` when recording is off
        #: (``net.obs`` then stays the shared no-op ``NULL_RECORDING``).
        self.recording: Optional[Recording] = None

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        spec: WorldSpec,
        seed: int = 0,
        costs=None,
        capture: Optional[bool] = None,
        parse_once: Optional[bool] = None,
        engine: str = "single",
        record=False,
    ) -> "World":
        """Validate ``spec`` and compile its elements into a live world.

        The workload has not run yet — call :meth:`run_workload` (or the
        one-shot :func:`run_world`).  ``capture``/``parse_once`` override
        the spec's settings for A/B runs.

        ``record`` turns on the flight recorder: pass ``True`` for a
        fresh :class:`~repro.obs.Recording` (metrics + trace), or an
        existing ``Recording`` to control what is captured.  The
        recording is reachable as ``world.recording`` and its snapshot
        lands on :attr:`ScenarioOutcome.metrics`.

        ``engine`` selects the execution backend:

        * ``"single"`` — the classic one-wheel scheduler.  When the spec
          declares ``partitioned=True`` the spec's district map is still
          frozen onto the network, so cross-district delivery already
          takes the deterministic path: this run is the golden oracle the
          partitioned backends are compared against, bit for bit.
        * ``"partitioned"`` — district-sharded wheels with conservative
          lookahead windows (:class:`~repro.net.parallel.ShardedScheduler`).
          The district map is computed from the spec *before* the network
          exists, and the built topology is cross-checked against it.
        """
        if costs is None:
            from ..bench.calibration import PAPER_TESTBED

            costs = PAPER_TESTBED
        if engine not in ("single", "partitioned"):
            raise BuildError(f"unknown engine {engine!r}")
        spec.validate()
        pmap = None
        if engine == "partitioned" or spec.partitioned:
            from .partition import spec_partition_map

            pmap, _ = spec_partition_map(spec)
        kwargs = dict(
            latency=costs.latency_model(seed),
            subnet=spec.subnet if spec.subnet is not None else "192.168.1",
            capture=spec.capture if capture is None else capture,
            parse_once=spec.parse_once if parse_once is None else parse_once,
        )
        if engine == "partitioned":
            shards = ShardedScheduler(pmap)
            net = Network(scheduler=shards, **kwargs)
            net.attach_engine(shards)
        else:
            net = Network(**kwargs)
            if pmap is not None:
                net.freeze_partitions(pmap)
        world = cls(spec, net, seed, costs)
        world.engine_kind = engine
        if any(isinstance(s, (Fault, Heal, Crash, Restart)) for s in spec.workload):
            # Armed before any traffic, so frames already in flight when a
            # later Fault cuts their link take the trunk path and drop.
            net.enable_faults()
        if record:
            recording = record if isinstance(record, Recording) else Recording()
            net.obs = recording
            world.recording = recording
        for element in spec.elements:
            world._apply_element(element)
        if pmap is not None:
            live = network_partition_map(net)
            if live.pid_of != pmap.pid_of or live.lookahead_us != pmap.lookahead_us:
                raise BuildError(
                    f"spec {spec.name!r}: the spec-level partition map "
                    "disagrees with the built topology (a placement "
                    "resolver or fleet bridged across the analysed districts?)"
                )
        return world

    def _apply_element(self, element) -> None:
        if isinstance(element, SegmentSpec):
            latency = None
            if element.seed_offset is not None:
                latency = self.costs.latency_model(self.seed + element.seed_offset)
            segment = self.net.add_segment(
                element.name, subnet=element.subnet, latency=latency
            )
            if element.link_to is not None:
                if element.link_latency_us is not None:
                    self.net.link(
                        element.link_to, segment, latency_us=element.link_latency_us
                    )
                else:
                    self.net.link(element.link_to, segment)
        elif isinstance(element, HostSpec):
            segment = self._resolve_segment(element.segment)
            node = self.net.add_node(element.name, segment=segment)
            self.hosts[element.name] = node
            for app in element.apps:
                self._apply_app(app, element.name)
        elif isinstance(element, BridgeSpec):
            self.net.bridge(self.hosts[element.host], *element.segments)
        elif isinstance(element, FleetSpec):
            from ..federation import GatewayFleet

            fleet = GatewayFleet(
                self.net,
                element.backbone,
                wire_utilization=element.wire_utilization,
                cold_start_escalation=element.cold_start_escalation,
                suspect_after=element.suspect_after,
                dead_after=element.dead_after,
            )
            for member in element.members:
                fleet.join(
                    self._app(member, "indiss"),
                    gossip_period_us=element.gossip_period_us,
                    catchup_after=element.catchup_after,
                )
            self.fleets[element.name] = fleet
            self._fleet_specs[element.name] = element
        elif isinstance(element, Fill):
            self._fill(element.total_nodes)
        elif isinstance(element, Ping):
            self._start_ping(element)
        elif isinstance(element, (Chatter, CpChatter, QueryLoad)):
            self._apply_step(element)
        else:  # a standalone app spec carrying its own host reference
            host = getattr(element, "host", None)
            if host is None and isinstance(element, GenaFeed):
                host = element.publisher_host
            self._apply_app(element, host)

    def _resolve_segment(self, ref):
        if ref is None:
            return None
        if isinstance(ref, RingOwnerLeaf):
            fleet = self.fleets.get(ref.fleet)
            if fleet is None:
                raise BuildError(f"RingOwnerLeaf before fleet {ref.fleet!r} exists")
            owner = fleet.ring.owner(ref.key)
            if owner is None:
                raise BuildError(f"fleet {ref.fleet!r} has an empty ring")
            return fleet.members[owner].indiss.node.segments[0]
        return self.net.segment(ref)

    # -- application construction -------------------------------------------

    def _slp_config(self, wait_us: int = 400_000, retries: int = 0) -> SlpConfig:
        return SlpConfig(timings=self.costs.slp, wait_us=wait_us, retries=retries)

    def _indiss_config(self, app: IndissApp) -> IndissConfig:
        costs = self.costs
        seed = self.seed + app.seed_offset
        if app.profile == "paper":
            return IndissConfig(
                units=("slp", "upnp"),
                deployment=app.deployment,
                answer_from_cache=app.answer_from_cache,
                timings=costs.indiss,
                upnp_responder_delay_us=costs.indiss_upnp_responder_delay_us,
                upnp_wait_us=300_000,
                slp_wait_us=15_000,
                seed=seed,
            )
        if app.profile == "chain":
            return IndissConfig(
                units=("slp", "upnp"),
                deployment="gateway",
                dispatch="gateway-forward",
                timings=costs.indiss,
                upnp_responder_delay_us=costs.indiss_upnp_responder_delay_us,
                upnp_wait_us=300_000,
                slp_wait_us=350_000,
                seed=seed,
            )
        if app.profile == "fleet":
            return IndissConfig(
                units=("slp", "upnp"),
                deployment="gateway",
                dispatch="shard-ring",
                timings=costs.indiss,
                upnp_responder_delay_us=costs.indiss_upnp_responder_delay_us,
                upnp_wait_us=300_000,
                slp_wait_us=350_000,
                seed=seed,
            )
        if app.profile == "slp-jini":
            return IndissConfig(
                units=("slp", "jini"),
                deployment="gateway",
                timings=costs.indiss,
                slp_wait_us=15_000,
                seed=seed,
            )
        if app.profile == "media":
            return IndissConfig(
                units=("slp", "upnp", "jini"),
                deployment="gateway",
                dispatch="shard-ring",
                timings=costs.indiss,
                upnp_responder_delay_us=costs.indiss_upnp_responder_delay_us,
                upnp_wait_us=300_000,
                slp_wait_us=350_000,
                seed=seed,
            )
        raise BuildError(f"unknown INDISS profile {app.profile!r}")

    def _apply_app(self, app, host: Optional[str]) -> None:
        if host is None:
            raise BuildError(f"{type(app).__name__} has no host")
        node = self.hosts[host]
        if isinstance(app, SlpClient):
            agent = UserAgent(
                node, config=self._slp_config(wait_us=app.wait_us, retries=app.retries)
            )
            self._apps[(host, "ua")] = agent
        elif isinstance(app, SlpService):
            agent = ServiceAgent(node, config=self._slp_config())
            for reg in app.registrations:
                agent.register(
                    SlpRegistration(
                        url=reg.url.format(address=node.address),
                        service_type=ServiceType.parse(reg.service_type),
                        attributes=dict(reg.attributes),
                    )
                )
            self._apps[(host, "sa")] = agent
        elif isinstance(app, ClockDevice):
            kwargs = {}
            if app.notify_period_us is not None:
                kwargs["notify_period_us"] = app.notify_period_us
            device = make_clock_device(
                node,
                timings=self.costs.upnp,
                seed=self.seed + app.seed_offset,
                advertise=app.advertise,
                **kwargs,
            )
            self.devices.append(device)
            self._apps[(host, "device")] = device
        elif isinstance(app, TypedDevice):
            device = _make_typed_device(
                node,
                app.type_name,
                self.costs,
                self.seed + app.seed_offset,
                advertise=app.advertise,
                notify_period_us=app.notify_period_us,
                udn_suffix=app.udn_suffix,
            )
            self.devices.append(device)
            self._apps[(host, "device")] = device
            self.placements[app.type_name] = node.segments[0].name
        elif isinstance(app, ControlPoint):
            self._apps[(host, "cp")] = UpnpControlPoint(node, timings=self.costs.upnp)
        elif isinstance(app, IndissApp):
            instance = Indiss(node, self._indiss_config(app))
            self.instances.append(instance)
            self._apps[(host, "indiss")] = instance
        elif isinstance(app, QueryFrontendApp):
            from ..serving import QueryFrontend

            frontend = QueryFrontend(
                self._app(host, "indiss"),
                port=app.port,
                stale_after_us=app.stale_after_us,
                fallback=app.fallback,
                fallback_window_us=app.fallback_window_us,
            )
            self.serving_frontends.append(frontend)
            self._apps[(host, "frontend")] = frontend
        elif isinstance(app, JiniRegistrar):
            from ..sdp.jini import JiniTimings, LookupService, ServiceItem

            kwargs = {}
            if app.announce_period_us is not None:
                kwargs["announce_period_us"] = app.announce_period_us
            if app.service_id_seed is not None:
                kwargs["service_id_seed"] = app.service_id_seed
            registrar = LookupService(node, timings=JiniTimings(), **kwargs)
            for item in app.items:
                registrar.registry[item.service_id] = ServiceItem(
                    service_id=item.service_id,
                    class_names=item.class_names,
                    attributes=dict(item.attributes),
                    endpoint_url=item.endpoint_url.format(address=node.address),
                )
            self._apps[(host, "jini")] = registrar
        elif isinstance(app, JiniListener):
            from ..sdp.jini import LookupDiscovery

            self._apps[(host, "jini")] = LookupDiscovery(node)
        elif isinstance(app, GenaSubscriber):
            from ..sdp.upnp.gena import EventSubscriber

            publisher = self._app(app.publisher_host, "device")
            subscriber = EventSubscriber(node, callback_port=app.callback_port)
            self.gena_subscribers.append(subscriber)
            service = publisher.description.services[app.service_index]
            sub_url = (
                f"http://{publisher.node.address}:{publisher.http_port}"
                f"{service.event_sub_url}"
            )
            node.schedule(
                app.subscribe_delay_us, lambda u=sub_url, s=subscriber: s.subscribe(u)
            )
            self._apps[(host, "gena")] = subscriber
        elif isinstance(app, GenaFeed):
            publisher = self._app(app.publisher_host, "device")
            properties = dict(app.properties)
            publisher.node.every(
                app.period_us,
                lambda p=publisher, pr=properties: p.notify_state_change(pr),
                initial_delay_us=app.initial_delay_us,
            )
        else:
            raise BuildError(f"unsupported app spec {type(app).__name__}")

    def _app(self, host: str, slot: str):
        try:
            return self._apps[(host, slot)]
        except KeyError:
            raise BuildError(f"host {host!r} carries no {slot!r} app") from None

    def _fill(self, total_nodes: int) -> None:
        """Pad segments round-robin with idle hosts up to ``total_nodes``."""
        segments = list(self.net.segments.values())
        existing = len(self.net.nodes)
        for i in range(max(0, total_nodes - existing)):
            segment = segments[i % len(segments)]
            if not segment.has_free_address():
                open_segments = [s for s in segments if s.has_free_address()]
                if not open_segments:
                    raise NetworkError(
                        f"all subnets exhausted after {len(self.net.nodes)} nodes; "
                        f"use wider (two-octet) segment subnets for this scale"
                    )
                segment = open_segments[i % len(open_segments)]
            self.net.add_node(f"bg-{segment.name}-{i}", segment=segment)

    # -- run control --------------------------------------------------------

    def run(self, duration_us: Optional[int] = None) -> None:
        """Advance virtual time (until idle when no duration is given)."""
        self.net.run(duration_us=duration_us)

    def run_until(
        self,
        predicate: Optional[Callable[["World"], bool]] = None,
        horizon_us: Optional[int] = None,
        check_every_us: int = 25_000,
    ) -> bool:
        """Run until ``predicate(world)`` holds or ``horizon_us`` elapses.

        With no predicate this is ``run(horizon_us)``; with no horizon the
        run continues until the predicate holds or the scheduler goes
        idle.  Returns whether the predicate held when the run stopped.
        """
        if predicate is None:
            self.net.run(duration_us=horizon_us)
            return True
        engine = self.net.engine
        if engine is not None and engine._exchange is not None:
            # Each multiprocess worker evaluates predicates on local state
            # only; divergent verdicts would desynchronise the barrier
            # sequence.  Multiprocess workloads use bounded Run steps.
            raise BuildError(
                "run_until(predicate) is not available in a multiprocess "
                "partition worker; use bounded Run steps"
            )
        scheduler = self.net.scheduler
        deadline = None if horizon_us is None else scheduler.now_us + horizon_us
        while True:
            if predicate(self):
                return True
            if deadline is not None and scheduler.now_us >= deadline:
                return False
            if not scheduler.pending:
                return predicate(self)
            slice_us = check_every_us
            if deadline is not None:
                slice_us = min(slice_us, deadline - scheduler.now_us)
            self.net.run(duration_us=slice_us)

    def run_workload(self) -> None:
        """Execute the spec's phased workload steps, in order."""
        for step in self.spec.workload:
            self._apply_step(step)

    # -- probes and observers ------------------------------------------------

    def probe(self, name: str) -> ProbeHandle:
        try:
            return self.probes[name]
        except KeyError:
            raise BuildError(f"no probe named {name!r}") from None

    def add_observer(self, name: str, collector: Callable[["World"], dict]) -> None:
        """Register a scenario-specific collector for ``Collect(name)``."""
        self._observers[name] = collector

    def collect(self, provider: str, **params) -> dict:
        fn = self._observers.get(provider) or COLLECTORS.get(provider)
        if fn is None:
            raise BuildError(f"no collector named {provider!r}")
        return fn(self, **params)

    def metric(self, metric: str) -> int:
        """One live counter; the closed vocabulary Snapshot/Delta use."""
        name, _, arg = metric.partition(":")
        if name == "translations":
            return sum(i.stats.translated for i in self.instances)
        if name == "cache_answers":
            return self._app(arg, "indiss").stats.answered_from_cache
        raise BuildError(f"unknown metric {metric!r}")

    def outcome(self) -> ScenarioOutcome:
        """Resolve probes into the scenario's ScenarioOutcome."""
        for prefix, probe_name in self._pending_probe_extras:
            handle = self.probes[probe_name]
            self.extras[f"{prefix}_results"] = handle.results
            self.extras[f"{prefix}_latency_us"] = handle.latency_us
        self._pending_probe_extras = []
        handle = None if self._headline is None else self.probes[self._headline]
        if handle is None or handle.latency_us is None:
            result = ScenarioOutcome(None, 0, self.net, extras=self.extras)
        else:
            result = ScenarioOutcome(
                handle.latency_us, handle.results, self.net, extras=self.extras
            )
        if self.recording is not None and self.recording.on:
            result.metrics = {
                "global": global_metrics(self),
                **self.recording.metrics.snapshot(),
            }
        return result

    # -- workload interpreter -------------------------------------------------

    def _apply_step(self, step) -> None:
        if isinstance(step, Run):
            self.net.run(duration_us=step.duration_us)
        elif isinstance(step, Fill):
            self._fill(step.total_nodes)
        elif isinstance(step, Probe):
            self._issue_probe(step)
        elif isinstance(step, Chatter):
            self._start_chatter(step)
        elif isinstance(step, CpChatter):
            self._start_cp_chatter(step)
        elif isinstance(step, QueryLoad):
            self._start_query_load(step)
        elif isinstance(step, Churn):
            self._run_churn(step)
        elif isinstance(step, Fault):
            self._apply_fault(step)
        elif isinstance(step, Heal):
            self._apply_heal(step)
        elif isinstance(step, Crash):
            self._apply_crash(step)
        elif isinstance(step, Restart):
            self._apply_restart(step)
        elif isinstance(step, SetConfig):
            self._set_config(step)
        elif isinstance(step, Snapshot):
            self._snapshots[step.name] = {m: self.metric(m) for m in step.metrics}
        elif isinstance(step, Delta):
            base = self._snapshots[step.since][step.metric]
            self.extras[step.key] = self.metric(step.metric) - base
        elif isinstance(step, Collect):
            row = self.collect(step.provider, **dict(step.params))
            if step.key is None:
                self.extras.update(row)
            elif len(row) == 1 and step.key in row:
                self.extras[step.key] = row[step.key]
            else:
                self.extras[step.key] = row
        elif isinstance(step, Emit):
            self.extras[step.key] = step.value
        elif isinstance(step, Check):
            self._check(step)
        elif isinstance(step, TypeSweepReport):
            self._type_sweep_report(step)
        else:
            raise BuildError(f"unsupported workload step {type(step).__name__}")

    def _issue_probe(self, step: Probe) -> None:
        if step.host is not None:
            node = self.hosts[step.host]
            agent = self._apps.get((step.host, "cp" if step.kind == "upnp" else "ua"))
            if agent is None:
                raise BuildError(f"probe {step.name!r}: host {step.host!r} has no agent")
        else:
            node = self.net.add_node(
                step.node_name or step.name, segment=self.net.segment(step.segment)
            )
            if step.kind == "upnp":
                agent = UpnpControlPoint(node, timings=self.costs.upnp)
            else:
                agent = UserAgent(node, config=self._slp_config())
        handle = ProbeHandle(step.name, step.kind)
        self.probes[step.name] = handle
        if step.kind == "upnp":
            handle.pending = agent.search(
                step.target,
                wait_us=step.wait_us if step.wait_us is not None else 300_000,
                on_complete=handle.done.append,
            )
        else:
            kwargs = {}
            if step.wait_us is not None:
                kwargs["wait_us"] = step.wait_us
            handle.pending = agent.find_services(
                step.target, on_complete=handle.done.append, **kwargs
            )
        if step.headline:
            self._headline = step.name
        if step.extras_prefix is not None:
            self._pending_probe_extras.append((step.extras_prefix, step.name))
        if step.horizon_us is not None:
            self.net.run(duration_us=step.horizon_us)

    def _start_chatter(self, step: Chatter) -> None:
        """Background SLP clients, staggered across one period."""
        group = self.load_groups.setdefault(step.group, [])
        leaves = [self.net.segment(name) for name in step.leaves]
        total = max(1, len(leaves) * step.per_leaf)
        idx = 0
        for leaf in leaves:
            for j in range(step.per_leaf):
                node = self.net.add_node(f"chat-{leaf.name}-{j}", segment=leaf)
                ua = UserAgent(node, config=self._slp_config())
                target = step.types[idx % len(step.types)]
                stats = {"target": target, "issued": 0, "completed": 0, "found": 0}

                def kick(ua=ua, target=target, stats=stats, net=self.net,
                         group_name=step.group) -> None:
                    stats["issued"] += 1

                    def done(search, stats=stats, net=net,
                             group_name=group_name) -> None:
                        stats["completed"] += 1
                        if search.results:
                            stats["found"] += 1
                        # Completion callbacks fire in event context, so in
                        # the multiprocess backend only the owner worker
                        # records — merged rows stay exact.
                        if net.obs.on and search.first_latency_us is not None:
                            note_row_latency(stats, search.first_latency_us)
                            net.obs.metrics.histogram(
                                "world.search.latency_us", group=group_name
                            ).observe(search.first_latency_us)

                    ua.find_services(f"service:{target}", on_complete=done)

                node.every(
                    step.period_us,
                    kick,
                    initial_delay_us=step.start_delay_us
                    + (idx * step.period_us) // total,
                )
                group.append(stats)
                idx += 1

    def _start_cp_chatter(self, step: CpChatter) -> None:
        """Background control points; the stagger spans a global cohort."""
        group = self.load_groups.setdefault(step.group, [])
        index = step.index0
        for leaf_name in step.leaves:
            leaf = self.net.segment(leaf_name)
            for j in range(step.per_leaf):
                cp_node = self.net.add_node(f"cp-{leaf.name}n{j}", segment=leaf)
                cp = UpnpControlPoint(cp_node, timings=self.costs.upnp)
                target = step.types[index % len(step.types)]
                st = f"urn:schemas-upnp-org:device:{target}:1"
                stats = {"issued": 0, "completed": 0, "found": 0}

                def kick(cp=cp, st=st, stats=stats, net=self.net,
                         group_name=step.group) -> None:
                    stats["issued"] += 1

                    def done(search, stats=stats, net=net,
                             group_name=group_name) -> None:
                        stats["completed"] += 1
                        if search.responses:
                            stats["found"] += 1
                        if net.obs.on and search.first_latency_us is not None:
                            note_row_latency(stats, search.first_latency_us)
                            net.obs.metrics.histogram(
                                "world.search.latency_us", group=group_name
                            ).observe(search.first_latency_us)

                    cp.search(st, wait_us=step.wait_us, on_complete=done)

                cp_node.every(
                    step.period_us,
                    kick,
                    initial_delay_us=step.stagger_base_us
                    + (index * step.period_us) // max(1, step.total),
                )
                group.append(stats)
                index += 1

    def _start_ping(self, step: Ping) -> None:
        """One standing unicast flow with per-flow send/receive counters.

        The payload is fixed at build time and the sink counts frames, so
        the flow's accounting is purely event-driven — which is what lets
        the multiprocess backend sum per-worker counters exactly.
        """
        group = self.load_groups.setdefault(step.group, [])
        src = self.hosts[step.src_host]
        dst = self.hosts[step.dst_host]
        stats = {
            "src": step.src_host, "dst": step.dst_host, "sent": 0, "received": 0,
        }
        sink = dst.udp.socket().bind(step.port, reuse=True)
        sink.on_datagram(lambda datagram, stats=stats: stats.__setitem__(
            "received", stats["received"] + 1
        ))
        payload = f"ping:{step.src_host}:".encode() + b"\x00" * step.payload_bytes
        target = Endpoint(dst.address, step.port)
        tx = src.udp.socket()

        def kick(tx=tx, payload=payload, target=target, stats=stats) -> None:
            stats["sent"] += 1
            tx.sendto(payload, target)

        src.every(step.period_us, kick, initial_delay_us=step.start_delay_us)
        group.append(stats)

    def _start_query_load(self, step: QueryLoad) -> None:
        """Open-loop clients against the serving tier's query frontends.

        Every client's full arrival schedule is drawn *now* from a seeded
        RNG — build and step application run identically in every
        multiprocess worker, so the schedule (and the query byte stream it
        produces) is the same under all three engines.  Sends never wait
        for responses; per-client accounting is event-driven, so only the
        owning worker's counters move and merged rows stay exact.
        """
        group = self.load_groups.setdefault(step.group, [])
        frontends = [(name, self.hosts[name]) for name in step.frontends]
        client_index = 0
        for seg_name in step.segments:
            segment = self.net.segment(seg_name)
            for j in range(step.clients_per_segment):
                node = self.net.add_node(
                    f"q{step.seed_offset}-{segment.name}-{j}", segment=segment
                )
                fe_name, fe_node = frontends[client_index % len(frontends)]
                rng = random.Random(
                    (self.seed + step.seed_offset) * 1_000_003 + client_index
                )
                stats = {
                    "client": node.name,
                    "frontend": fe_name,
                    "sent": 0,
                    "responses": 0,
                    "hits": 0,
                    "misses": 0,
                    "stale": 0,
                    "staleness_max_us": 0,
                    "batch_sent": 0,
                    "districts_sent": 0,
                    "url_sent": 0,
                    "decode_errors": 0,
                }
                self._start_query_client(
                    step,
                    node,
                    Endpoint(fe_node.address, step.port),
                    _arrival_offsets(step, rng),
                    stats,
                )
                group.append(stats)
                client_index += 1

    def _start_query_client(self, step, node, target, times, stats) -> None:
        """One client: its socket, response handler, and send chain.

        A factory method so every closure binds *this* client's state —
        a loop-local ``def`` would rebind the recursive ``fire`` name.
        """
        from ..serving import wire as serving_wire

        net = self.net
        state = {"inflight": {}, "last_url": None}
        sock = node.udp.socket()

        def on_response(datagram) -> None:
            reply = serving_wire.decode(datagram.payload)
            if reply is None or reply.get("kind") != "resp":
                stats["decode_errors"] += 1
                return
            sent_at = state["inflight"].pop(reply.get("rid"), None)
            stats["responses"] += 1
            if reply.get("status") == "ok":
                stats["hits"] += 1
                records = reply.get("records") or []
                if records:
                    state["last_url"] = records[0].get("u")
            else:
                stats["misses"] += 1
            if reply.get("stale"):
                stats["stale"] += 1
            stamp = int(reply.get("staleness_us", 0))
            if stamp > stats["staleness_max_us"]:
                stats["staleness_max_us"] = stamp
            if sent_at is not None and net.obs.on:
                latency = node.now_us - sent_at
                note_row_latency(stats, latency)
                net.obs.metrics.histogram(
                    "serving.query.latency_us", group=step.group
                ).observe(latency)

        sock.on_datagram(on_response)

        def fire(i: int) -> None:
            message = _build_query(step, i, state)
            state["inflight"][i] = node.now_us
            stats["sent"] += 1
            kind = message["kind"]
            if kind == "batch":
                stats["batch_sent"] += 1
            elif kind == "districts":
                stats["districts_sent"] += 1
            elif kind == "url":
                stats["url_sent"] += 1
            sock.sendto(serving_wire.encode(message), target)
            if i + 1 < len(times):
                node.schedule(times[i + 1] - times[i], lambda: fire(i + 1))

        node.schedule(step.start_delay_us + times[0], lambda: fire(0))

    def _run_churn(self, step: Churn) -> None:
        """Sustained membership churn over one fleet.

        Every cycle detaches the victim's host from the internetwork
        (dropping route plans and multicast index entries), removes it
        from the fleet (releasing its ring keys, stopping its gossiper),
        runs degraded, then re-attaches, re-joins, and runs the recovery
        window.  Per-cycle records land in the step's load group.
        """
        fleet = self.fleets[step.fleet]
        spec = self._fleet_specs[step.fleet]
        group = self.load_groups.setdefault(step.group, [])
        rotation = sorted(fleet.members)
        for cycle in range(step.cycles):
            member_id = rotation[cycle % len(rotation)]
            member = fleet.members[member_id]
            instance = member.indiss
            node = instance.node
            home_segments = list(node.segments)
            fleet.leave(member_id)
            self.net.detach_node(node)
            record = {
                "cycle": cycle,
                "member": member_id,
                "down_at_us": self.net.scheduler.now_us,
                "ring_size_down": len(fleet.ring),
                "rejoined": False,
            }
            group.append(record)
            self.net.run(duration_us=step.down_us)
            self.net.reattach_node(node, home_segments)
            fleet.join(
                instance,
                gossip_period_us=spec.gossip_period_us,
                catchup_after=spec.catchup_after,
            )
            record["rejoined"] = True
            record["ring_size_up"] = len(fleet.ring)
            self.net.run(duration_us=step.recover_us)

    def _apply_fault(self, step: Fault) -> None:
        """Inject one adversity condition, effective at the current time."""
        net = self.net
        if step.kind == "cut":
            net.cut_link(*step.link)
        elif step.kind == "isolate":
            net.isolate_segment(net.segment(step.segment))
        elif step.kind == "degrade":
            from ..net import make_loss_model

            seed = self.seed + step.seed_offset
            if step.link is not None:
                edge = "-".join(sorted(step.link))
                model = make_loss_model(step.model, step.rate, seed, edge)
                net.set_link_loss(step.link[0], step.link[1], model)
            else:
                segment = net.segment(step.segment)
                model = make_loss_model(step.model, step.rate, seed, segment.name)
                net.set_segment_loss(segment, model)
        elif step.kind == "detach":
            node = self.hosts[step.host]
            self._detached_hosts[step.host] = list(node.segments)
            net.detach_node(node)
        else:
            raise BuildError(f"unknown fault kind {step.kind!r}")

    def _apply_heal(self, step: Heal) -> None:
        net = self.net
        if step.kind == "link":
            net.heal_link(*step.link)
        elif step.kind == "segment":
            net.heal_segment(net.segment(step.segment))
        elif step.kind == "attach":
            home = self._detached_hosts.pop(step.host, None)
            if home is None:
                raise BuildError(
                    f"heal attach: host {step.host!r} is not detached"
                )
            net.reattach_node(self.hosts[step.host], home)
        elif step.kind == "clear":
            if step.link is not None:
                net.set_link_loss(step.link[0], step.link[1], None)
            else:
                net.set_segment_loss(net.segment(step.segment), None)
        elif step.kind == "all":
            for pair in sorted(net.router.down_pairs()):
                net.heal_link(*pair)
            for pair in sorted(net._link_loss):
                net.set_link_loss(pair[0], pair[1], None)
            for segment in net.segments.values():
                if segment.loss is not None:
                    net.set_segment_loss(segment, None)
            for host in sorted(self._detached_hosts):
                net.reattach_node(self.hosts[host], self._detached_hosts[host])
            self._detached_hosts.clear()
        else:
            raise BuildError(f"unknown heal kind {step.kind!r}")

    def _member_fleet(self, host: str) -> Optional[str]:
        """The fleet a host's address is (still) a member of, if any."""
        address = self.hosts[host].address
        for name in sorted(self.fleets):
            if address in self.fleets[name].members:
                return name
        return None

    def _apply_crash(self, step: Crash) -> None:
        """Crash-stop one host, teardown ordered from the top down:

        1. fleet bookkeeping (the member's gossiper timer dies with the
           process; membership record and ring points deliberately stay —
           peers learn of the death only via the failure detector);
        2. INDISS volatile state (the monitor's sockets close while the
           node's stacks are still live, open sessions are fenced so
           pre-crash unit timers cannot complete into the restarted
           instance);
        3. the transport (sockets crash-closed, in-flight frames to the
           host drop exactly once, segments detach).
        """
        node = self.hosts[step.host]
        address = node.address
        fleet_name = self._member_fleet(step.host)
        if fleet_name is not None:
            self.fleets[fleet_name].crash_member(address)
        indiss = self._apps.get((step.host, "indiss"))
        if indiss is not None:
            indiss.crash()
        self.net.crash_node(node)

    def _apply_restart(self, step: Restart) -> None:
        """Bring a crashed host back, rebuild ordered bottom-up: transport
        reattaches first (the monitor's multicast sockets need live
        segments to index under), then the INDISS cold rebuild, then
        fleet re-join (plus the bootstrap handshake when asked)."""
        node = self.net.crashed_node(self.hosts[step.host].address)
        if node is None:
            raise BuildError(f"restart: host {step.host!r} is not crashed")
        self.net.restart_node(node)
        indiss = self._apps.get((step.host, "indiss"))
        if indiss is not None:
            indiss.restart()
            fleet_name = self._member_fleet(step.host)
            if fleet_name is not None:
                fleet_spec = self._fleet_specs[fleet_name]
                self.fleets[fleet_name].restart_member(
                    indiss,
                    gossip_period_us=fleet_spec.gossip_period_us,
                    catchup_after=fleet_spec.catchup_after,
                    bootstrap=step.bootstrap,
                )

    def _set_config(self, step: SetConfig) -> None:
        targets: list[Indiss] = []
        if step.fleet is not None:
            targets.extend(
                member.indiss for member in self.fleets[step.fleet].members.values()
            )
        for host in step.hosts:
            targets.append(self._app(host, "indiss"))
        for instance in targets:
            setattr(instance.config, step.attr, step.value)

    def _check(self, step: Check) -> None:
        if step.kind == "cache_nonempty":
            instance = self._app(step.host, "indiss")
            if len(instance.cache) < 1:
                raise BuildError(
                    f"check failed: INDISS on {step.host!r} has an empty cache"
                )
        else:
            raise BuildError(f"unknown check kind {step.kind!r}")

    def _type_sweep_report(self, step: TypeSweepReport) -> None:
        fleet = self.fleets[step.fleet]
        report = {}
        for type_name, warm, probe_name in step.entries:
            handle = self.probes[probe_name]
            report[type_name] = {
                "warm": warm,
                "owner": fleet.ring.owner(type_name),
                "placed_on": self.placements.get(type_name),
                "results": handle.results,
                "latency_us": handle.latency_us,
            }
        self.extras[step.key] = report


def _arrival_offsets(step: QueryLoad, rng: random.Random) -> list[int]:
    """The client's send offsets (µs after its start delay), one per query.

    Drawn entirely up front from the caller's seeded RNG — no draw ever
    happens in event context, which is what keeps the open-loop schedule
    byte-identical across engines.
    """
    mean = step.mean_interval_us
    times: list[int] = []
    t = 0
    if step.process == "poisson":
        for _ in range(step.queries_per_client):
            t += max(1, int(rng.expovariate(1.0 / mean)))
            times.append(t)
    elif step.process == "bursty":
        # Trains of ``burst`` near-back-to-back queries, train gaps scaled
        # so the long-run rate matches the poisson process.
        intra = max(1, mean // 10)
        while len(times) < step.queries_per_client:
            t += max(1, int(rng.expovariate(1.0 / (mean * step.burst))))
            for _ in range(step.burst):
                if len(times) >= step.queries_per_client:
                    break
                times.append(t)
                t += intra
    else:  # diurnal: the mean gap sweeps 0.5x..1.5x over one period
        period = step.diurnal_period_us
        for _ in range(step.queries_per_client):
            phase = math.sin((2.0 * math.pi * t) / period)
            local_mean = max(1.0, mean * (1.0 + 0.5 * phase))
            t += max(1, int(rng.expovariate(1.0 / local_mean)))
            times.append(t)
    return times


def _build_query(step: QueryLoad, i: int, state: dict) -> dict:
    """The i-th query in the step's mix (see :class:`QueryLoad`)."""
    from ..serving import wire as serving_wire

    if step.url_every and (i + 1) % step.url_every == 0 and state["last_url"]:
        return serving_wire.request("url", i, url=state["last_url"])
    if step.batch_every and (i + 1) % step.batch_every == 0:
        return serving_wire.request("batch", i, targets=list(step.types))
    if step.districts_every and (i + 1) % step.districts_every == 0:
        return serving_wire.request(
            "districts", i, st=step.types[i % len(step.types)]
        )
    message = serving_wire.request("type", i, st=step.types[i % len(step.types)])
    if step.scope_districts:
        message["scope"] = {"districts": list(step.scope_districts)}
    return message


def _make_typed_device(node, type_name: str, costs, seed: int, advertise: bool,
                       notify_period_us=None, udn_suffix: str = ""):
    """A one-service UPnP device of a synthetic ``type_name`` type."""
    from ..sdp.upnp import DeviceDescription, ServiceDescription, UpnpDevice

    description = DeviceDescription(
        device_type=f"urn:schemas-upnp-org:device:{type_name}:1",
        friendly_name=f"Sensor {type_name}",
        udn=f"uuid:{type_name}-device{udn_suffix}",
        manufacturer="INDISS bench",
        model_name=type_name,
        services=[
            ServiceDescription(
                service_type=f"urn:schemas-upnp-org:service:{type_name}:1",
                service_id=f"urn:upnp-org:serviceId:{type_name}:1",
                scpd_url=f"/service/{type_name}/scpd.xml",
                control_url=f"/service/{type_name}/control",
                event_sub_url=f"/service/{type_name}/event",
            )
        ],
    )
    kwargs = {}
    if notify_period_us is not None:
        kwargs["notify_period_us"] = notify_period_us
    return UpnpDevice(
        node, description, timings=costs.upnp, seed=seed, advertise=advertise,
        **kwargs,
    )


def run_world(
    spec: WorldSpec,
    seed: int = 0,
    costs=None,
    capture: Optional[bool] = None,
    parse_once: Optional[bool] = None,
    engine: str = "single",
    record=False,
) -> ScenarioOutcome:
    """Build ``spec``, run its workload, and return the outcome."""
    world = World.build(
        spec, seed=seed, costs=costs, capture=capture, parse_once=parse_once,
        engine=engine, record=record,
    )
    world.run_workload()
    return world.outcome()


__all__ = ["World", "BuildError", "ProbeHandle", "run_world", "SpecError"]

"""The world's reusable metrics collectors (the observer API).

One collector registry replaces the per-scenario stat plumbing the legacy
builders carried around (``_hotpath_stats`` / ``_chatter_extras`` /
``_fleet_extras``): a workload's :class:`~repro.world.spec.Collect` steps
name a provider, the provider reads the built world, and the rows merge
into ``ScenarioOutcome.extras``.  Scenario-specific observers register at
runtime through :meth:`World.add_observer`.

Providers receive ``(world, **params)`` and return a dict.  Values are
captured *when the step runs* — a ``Collect`` placed right after warmup
reports the warmed-up state, not the end-of-run state.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Optional

from ..obs import LATENCY_BUCKETS_US, Histogram


def hotpath_stats(world) -> dict:
    """Core hot-path counters the perf benchmarks read.

    Written defensively with ``getattr`` so the same benchmark script can
    measure a pre-optimization core (no wheel compactions, no route cache,
    no parse memo) and report zeros instead of crashing.

    ``parse_dedup_rate`` is decode-level across *every* memo-aware
    receiver (native endpoints and units alike, from the network's
    per-protocol :class:`~repro.net.ParseCounter` registry); per-protocol
    rates ride along as ``parse_dedup_rate_<proto>``.  The unit-level
    stream counters (``streams_parsed``/``streams_shared``) keep their
    historical meaning.
    """
    net = world.net
    sched = net.scheduler
    units = [u for inst in world.instances for u in inst.units.values()]
    parsed = sum(u.streams_parsed for u in units)
    shared = sum(getattr(u, "streams_shared", 0) for u in units)
    hits = getattr(net, "route_cache_hits", 0)
    misses = getattr(net, "route_cache_misses", 0)
    row = {
        "events_fired": sched.events_fired,
        "sched_compactions": getattr(sched, "compactions", 0),
        "route_cache_hits": hits,
        "route_cache_misses": misses,
        "route_cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "streams_parsed": parsed,
        "streams_shared": shared,
        "parse_dedup_rate": shared / (parsed + shared) if parsed + shared else 0.0,
    }
    counters = getattr(net, "parse_stats", None) or {}
    if counters:
        decoded_total = sum(c.decoded for c in counters.values())
        shared_total = sum(c.shared for c in counters.values())
        row["parse_decoded"] = decoded_total
        row["parse_shared"] = shared_total
        row["parse_seeded"] = sum(c.seeded for c in counters.values())
        if decoded_total + shared_total:
            row["parse_dedup_rate"] = shared_total / (decoded_total + shared_total)
        for proto, counter in sorted(counters.items()):
            row[f"parse_dedup_rate_{proto}"] = round(counter.dedup_rate, 4)
    return row


def note_row_latency(row: dict, latency_us: int) -> None:
    """Fold one observed latency into a load-group row, as flat fields.

    The fields are plain numeric keys (``lat_b<i>`` per fixed bucket,
    ``lat_count``, ``lat_sum``) so the multiprocess driver's row merge —
    which sums numeric fields across workers — reconstructs the combined
    histogram exactly.  Only called when flight recording is on, so the
    legacy extras key set is unchanged for unrecorded runs.
    """
    index = bisect_left(LATENCY_BUCKETS_US, latency_us)
    row[f"lat_b{index}"] = row.get(f"lat_b{index}", 0) + 1
    row["lat_count"] = row.get("lat_count", 0) + 1
    row["lat_sum"] = row.get("lat_sum", 0) + latency_us


def rows_latency_histogram(rows) -> Optional[Histogram]:
    """Rebuild one :class:`~repro.obs.Histogram` from a group's rows,
    or ``None`` when no row carries latency fields (recording was off)."""
    if not any(row.get("lat_count") for row in rows):
        return None
    hist = Histogram(LATENCY_BUCKETS_US)
    for row in rows:
        count = row.get("lat_count", 0)
        if not count:
            continue
        hist.count += count
        hist.sum += row.get("lat_sum", 0)
        for index in range(len(hist.buckets)):
            hist.buckets[index] += row.get(f"lat_b{index}", 0)
    return hist


def summarize_rows(
    rows,
    count_key: str,
    sums: tuple = (),
    rates: tuple = (),
    latency_prefix: Optional[str] = None,
) -> dict:
    """One aggregation for every load-group family.

    ``sums`` are ``(out_key, row_field)`` pairs; ``rates`` are
    ``(out_key, numerator_field, denominator_field)`` triples (0.0 when
    the denominator is zero).  When ``latency_prefix`` is given and the
    rows carry the flat latency fields written by :func:`note_row_latency`,
    p50/p95/p99 percentiles ride along — recorded runs only, so the
    legacy key set is stable.
    """
    out = {count_key: len(rows)}
    for key, column in sums:
        out[key] = sum(row.get(column, 0) for row in rows)
    for key, numerator, denominator in rates:
        num = sum(row.get(numerator, 0) for row in rows)
        den = sum(row.get(denominator, 0) for row in rows)
        out[key] = num / den if den else 0.0
    if latency_prefix is not None:
        hist = rows_latency_histogram(rows)
        if hist is not None:
            out[f"{latency_prefix}_latency_count"] = hist.count
            out[f"{latency_prefix}_latency_p50_us"] = hist.percentile(50)
            out[f"{latency_prefix}_latency_p95_us"] = hist.percentile(95)
            out[f"{latency_prefix}_latency_p99_us"] = hist.percentile(99)
    return out


def chatter_rows_summary(rows) -> dict:
    """Sums over one chatter group's per-client records.

    Shared with the multiprocess partition driver, which aggregates the
    merged per-worker rows with the same arithmetic the inline collector
    uses — so both backends report comparable fields.
    """
    return summarize_rows(
        rows,
        "chatter_clients",
        sums=(
            ("chatter_searches_issued", "issued"),
            ("chatter_searches_completed", "completed"),
        ),
        rates=(("chatter_found_rate", "found", "completed"),),
        latency_prefix="chatter",
    )


def chatter_stats(world, group: str = "chatter") -> dict:
    """Aggregate the per-client accounting of one SLP chatter group."""
    return chatter_rows_summary(world.load_groups.get(group, []))


def ping_rows_summary(rows) -> dict:
    """Sums over one ping group's per-flow records (see ``Ping``)."""
    return summarize_rows(
        rows,
        "ping_flows",
        sums=(("ping_sent", "sent"), ("ping_received", "received")),
    )


def ping_stats(world, group: str = "ping") -> dict:
    """Aggregate the standing unicast flows of one ``Ping`` group."""
    return ping_rows_summary(world.load_groups.get(group, []))


def cp_chatter_stats(world, group: str = "cp") -> dict:
    """Aggregate one control-point chatter group (UPnP M-SEARCH load)."""
    return summarize_rows(
        world.load_groups.get(group, []),
        "cp_clients",
        sums=(("cp_searches_completed", "completed"),),
        rates=(("cp_found_rate", "found", "completed"),),
        latency_prefix="cp",
    )


def query_rows_summary(rows) -> dict:
    """Sums over one query-load group's per-client records (``QueryLoad``).

    Shared with the multiprocess partition driver so both backends report
    identical serving extras: counters sum, the hit rate is recomputed
    from the summed counters, the staleness bound is the max over rows
    (each row is owned by exactly one worker, so merged rows carry the
    owner's value and zeros elsewhere).
    """
    out = summarize_rows(
        rows,
        "query_clients",
        sums=(
            ("queries_sent", "sent"),
            ("query_responses", "responses"),
            ("query_hits", "hits"),
            ("query_misses", "misses"),
            ("query_stale", "stale"),
            ("query_batch_sent", "batch_sent"),
            ("query_districts_sent", "districts_sent"),
            ("query_url_sent", "url_sent"),
            ("query_decode_errors", "decode_errors"),
        ),
        rates=(("query_hit_rate", "hits", "responses"),),
        latency_prefix="query",
    )
    out["query_staleness_max_us"] = max(
        (row.get("staleness_max_us", 0) for row in rows), default=0
    )
    return out


def serving_stats(world, group: str = "query") -> dict:
    """The serving tier's extras block: client-side query accounting plus
    the frontends' own endpoint counters and staleness aggregates."""
    extras = query_rows_summary(world.load_groups.get(group, []))
    frontends = getattr(world, "serving_frontends", [])
    extras["serving_frontends"] = len(frontends)
    if frontends:
        extras["serving_queries"] = sum(f.stats.queries for f in frontends)
        extras["serving_hits"] = sum(f.stats.hits for f in frontends)
        extras["serving_misses"] = sum(f.stats.misses for f in frontends)
        extras["serving_stale_answers"] = sum(
            f.stats.stale_answers for f in frontends
        )
        extras["serving_fallbacks"] = sum(f.stats.fallbacks for f in frontends)
        extras["serving_staleness_max_us"] = max(
            f.stats.staleness_max_us for f in frontends
        )
        answered = sum(f.stats.hits for f in frontends)
        stamped = sum(f.stats.staleness_sum_us for f in frontends)
        extras["serving_staleness_mean_us"] = (
            stamped // answered if answered else 0
        )
        extras["serving_index_rebuilds"] = sum(
            f.index.rebuilds for f in frontends
        )
    return extras


def fleet_stats(world, fleet=None) -> dict:
    """The federation family's shared extras block: instance-level cache
    and translation counters over every INDISS in the world, plus the
    named fleet's federation and gossip aggregates."""
    instances = world.instances
    extras = {
        "fleet_size": len(instances),
        "translations_total": sum(i.stats.translated for i in instances),
        "cache_hits": sum(i.cache.hits for i in instances),
        "cache_misses": sum(i.cache.misses for i in instances),
        "cache_sizes": {i.node.address: len(i.cache) for i in instances},
    }
    handle = world.fleets.get(fleet) if fleet is not None else None
    if handle is not None:
        extras["federation"] = handle.aggregate_stats()
        extras["gossip"] = handle.aggregate_gossip_stats()
        extras["election_flaps"] = handle.elector.flaps
        extras["session_retries"] = sum(i.stats.retries for i in instances)
        extras["session_gave_up"] = sum(i.stats.gave_up for i in instances)
    return extras


def fleet_health(world, fleet=None) -> dict:
    """Failure-detector and self-healing extras for one named fleet:
    every detector transition, completed ring repairs, the current
    suspect/dead boards, and the crash-path session/bootstrap counters."""
    handle = world.fleets[fleet]
    health = handle.health
    row = {
        "detector_transitions": [list(t) for t in health.transitions],
        "ring_repairs": [list(r) for r in handle.repairs],
        "suspects_now": sorted(m for m, s in health.status.items() if s == "suspect"),
        "dead_now": sorted(m for m, s in health.status.items() if s == "dead"),
        "session_retry_fallbacks": sum(
            i.stats.retry_fallbacks for i in world.instances
        ),
        "owner_down_fallbacks": handle.aggregate_stats()["owner_down_fallbacks"],
        "bootstrap_completed_at": {
            member_id: member.gossiper.bootstrap_completed_at
            for member_id, member in sorted(handle.members.items())
            if member.gossiper is not None
            and member.gossiper.bootstrap_completed_at is not None
        },
    }
    return row


def warm_members(world, fleet=None) -> dict:
    """How many gateways hold at least one cached record (fleet members
    when a fleet is named, every INDISS instance otherwise)."""
    if fleet is not None:
        instances = [m.indiss for m in world.fleets[fleet].members.values()]
    else:
        instances = world.instances
    count = sum(1 for instance in instances if len(instance.cache) > 0)
    return {"warm_members_after_gossip": count}


def gateway_count(world) -> dict:
    return {"gateways": len(world.instances)}


def node_count(world) -> dict:
    return {"total_nodes": len(world.net.nodes)}


def device_count(world) -> dict:
    return {"devices": len(world.devices)}


def gena_events(world) -> dict:
    return {"gena_events": sum(s.events_received for s in world.gena_subscribers)}


def monitor_attribution(world) -> dict:
    """Per-SDP frame/seed attribution summed over every INDISS monitor."""
    aggregated: dict[str, dict[str, int]] = {}
    for instance in world.instances:
        for sdp_id, row in instance.monitor.parse_attribution().items():
            agg = aggregated.setdefault(sdp_id, {"frames": 0, "seeded": 0})
            agg["frames"] += row["frames"]
            agg["seeded"] += row["seeded"]
    return {"monitor_attribution": aggregated}


def ring_spread(world, fleet: str, keys: tuple = ()) -> dict:
    return {"owner_spread": world.fleets[fleet].ring.spread(tuple(keys))}


def parse_once_flag(world) -> dict:
    return {"parse_once": world.net.parse_once}


def partition_stats(world) -> dict:
    """The frozen district map and, when partitioned, per-shard counters."""
    pmap = world.net.partition_map
    if pmap is None:
        return {"partitions": 1}
    row = {"partitions": pmap.count, "lookahead_us": pmap.lookahead_us}
    engine = world.net.engine
    if engine is not None:
        row["events_by_partition"] = engine.events_by_partition()
        row["barrier_windows"] = engine.windows
    return row


def churn_stats(world, group: str = "churn") -> dict:
    """Aggregate the Churn step's per-cycle records."""
    cycles = world.load_groups.get(group, [])
    row = summarize_rows(
        cycles, "churn_cycles", sums=(("churn_rejoins", "rejoined"),)
    )
    row["churn_members_hit"] = len({c["member"] for c in cycles})
    row["churn_log"] = list(cycles)
    return row


def global_metrics(world) -> dict:
    """End-of-run global counters mirrored into ``ScenarioOutcome.metrics``.

    Read once from existing simulator statistics when the outcome is
    resolved — nothing here touches the event hot path, so the mirror is
    free even for recorded runs.
    """
    net = world.net
    sched = net.scheduler
    return {
        "events_fired": sched.events_fired,
        "nodes": len(net.nodes),
        "unrouted": net.unrouted,
        "route_cache_hits": getattr(net, "route_cache_hits", 0),
        "route_cache_misses": getattr(net, "route_cache_misses", 0),
        "translations": sum(i.stats.translated for i in world.instances),
        "cache_answers": sum(i.stats.answered_from_cache for i in world.instances),
    }


#: provider name -> callable(world, **params) -> dict
COLLECTORS: dict[str, Callable[..., dict]] = {
    "hotpaths": hotpath_stats,
    "chatter": chatter_stats,
    "cp_chatter": cp_chatter_stats,
    "fleet": fleet_stats,
    "fleet_health": fleet_health,
    "warm_members": warm_members,
    "gateway_count": gateway_count,
    "node_count": node_count,
    "device_count": device_count,
    "gena_events": gena_events,
    "monitor_attribution": monitor_attribution,
    "ring_spread": ring_spread,
    "parse_once": parse_once_flag,
    "churn": churn_stats,
    "ping": ping_stats,
    "serving": serving_stats,
    "partitions": partition_stats,
}


__all__ = [
    "COLLECTORS",
    "hotpath_stats",
    "chatter_stats",
    "chatter_rows_summary",
    "ping_stats",
    "ping_rows_summary",
    "query_rows_summary",
    "serving_stats",
    "partition_stats",
    "fleet_stats",
    "summarize_rows",
    "note_row_latency",
    "rows_latency_histogram",
    "global_metrics",
]

"""The multiprocess partition driver: one forked worker per district.

The inline partitioned backend (``World.build(engine="partitioned")``)
already runs every district in lookahead windows; this module is the step
to *true* parallelism: the world is built **once** in the parent, the
process forks one worker per district (copy-on-write, so the 20k-node
build cost is paid a single time), and each worker runs only its own
shard's windows.  At every barrier the workers swap their cross-district
frame batches with the parent over pipes:

    worker  ->  parent:  ("window", edge_us, [CrossFrame, ...])
    parent  ->  worker:  ("window", edge_us, union of all batches)
    worker  ->  parent:  ("done", result payload)           (at the end)

No negotiation is needed: every worker replays the same build + workload
script, so the barrier-edge sequence is identical arithmetic everywhere
(see ``repro.net.parallel``).  Frames carry wire bytes and primitives
only, so they pickle through the pipe; sequence numbers assigned at send
time make the injection order — and therefore every shard's event stream —
identical to the inline backend's.

Result merging is exact, not approximate, because the workloads this
backend accepts keep *event-driven* counters only: a worker's non-local
shards never run, so its copies of their counters stay zero, and summing
across workers reconstructs the inline totals bit-for-bit (the parity
suite pins this).  Workloads needing run-until-idle, predicates, or churn
belong on the inline backend, which shares the same window protocol.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Optional

from ..obs import MetricsRegistry, sort_records
from .build import World
from .observers import chatter_rows_summary, ping_rows_summary, query_rows_summary
from .partition import spec_partition_map
from .spec import WorldSpec

#: Seconds a barrier may stall before the parent declares the run wedged.
BARRIER_TIMEOUT_S = 300.0


def _worker_result(world: World) -> dict:
    """What one process (or the inline run) reports: per-shard counters
    plus the raw load-group rows (merged by :func:`_merge_rows`)."""
    outcome = world.outcome()
    engine = world.net.engine
    payload = {
        "events_by_partition": engine.events_by_partition(),
        "windows": engine.windows,
        "unrouted": world.net.unrouted,
        "latency_us": outcome.latency_us,
        "results": outcome.results,
        "load_groups": {
            name: [dict(row) for row in rows]
            for name, rows in world.load_groups.items()
        },
    }
    recording = world.recording
    if recording is not None and recording.on:
        # A worker's snapshot covers only its owned districts (the
        # ``Recording.restrict`` contract), so summing snapshots and
        # concatenating span streams reconstructs the inline timeline
        # exactly; canonical (ts, district, seq) order makes the merge
        # deterministic.
        payload["obs"] = {
            "metrics": recording.metrics.snapshot(),
            "spans": sort_records(recording.trace.records),
        }
    return payload


def _worker_main(world: World, pid: int, conn) -> None:
    """Run one district's shard to completion, swapping barrier batches."""
    try:
        def exchange(edge_us: int, frames: list) -> list:
            conn.send(("window", edge_us, frames))
            kind, got_edge, inbound = conn.recv()
            if kind != "window" or got_edge != edge_us:
                raise RuntimeError(
                    f"worker {pid}: barrier mismatch ({kind} @ {got_edge} "
                    f"vs window @ {edge_us})"
                )
            return inbound

        world.net.engine.configure_worker(pid, exchange)
        world.run_workload()
        conn.send(("done", _worker_result(world)))
    except BaseException:  # noqa: BLE001 - shipped to the parent verbatim
        conn.send(("error", traceback.format_exc()))
    finally:
        conn.close()


def _merge_rows(payloads: list[dict]) -> dict[str, list[dict]]:
    """Element-wise merge of each group's rows across workers.

    Every worker replays the same build, so group lists line up row for
    row; numeric fields sum (event-driven counters are zero outside their
    owner worker), everything else keeps the first non-null value.
    """
    merged: dict[str, list[dict]] = {}
    for payload in payloads:
        for name, rows in payload["load_groups"].items():
            if name not in merged:
                merged[name] = [dict(row) for row in rows]
                continue
            for target, row in zip(merged[name], rows):
                for key, value in row.items():
                    if isinstance(value, bool):
                        target[key] = bool(target.get(key)) or value
                    elif isinstance(value, (int, float)):
                        target[key] = target.get(key, 0) + value
                    elif target.get(key) is None:
                        target[key] = value
    return merged


def _summarise(pmap, payloads: list[dict], backend: str, wall_s: float) -> dict:
    count = pmap.count
    per_pid = [0] * count
    for payload in payloads:
        for pid, events in enumerate(payload["events_by_partition"]):
            per_pid[pid] += events
    groups = _merge_rows(payloads)
    extras: dict = {}
    if "ping" in groups:
        extras.update(ping_rows_summary(groups["ping"]))
    if "chatter" in groups:
        extras.update(chatter_rows_summary(groups["chatter"]))
    if "query" in groups:
        extras.update(query_rows_summary(groups["query"]))
    latency = next(
        (p["latency_us"] for p in payloads if p["latency_us"] is not None), None
    )
    obs: Optional[dict] = None
    obs_payloads = [p["obs"] for p in payloads if p.get("obs")]
    if obs_payloads:
        spans: list = []
        for payload in obs_payloads:
            spans.extend(payload["spans"])
        obs = {
            "metrics": MetricsRegistry.merge_snapshots(
                [p["metrics"] for p in obs_payloads]
            ),
            "spans": sort_records(spans),
        }
    return {
        "backend": backend,
        "processes": len(payloads),
        "partitions": count,
        "lookahead_us": pmap.lookahead_us,
        "events_fired": sum(per_pid),
        "events_by_partition": per_pid,
        "windows": max(p["windows"] for p in payloads),
        "unrouted": sum(p["unrouted"] for p in payloads),
        "latency_us": latency,
        "results": max(p["results"] for p in payloads),
        "extras": extras,
        "load_groups": groups,
        "obs": obs,
        "wall_s": round(wall_s, 4),
    }


def run_world_partitioned(
    spec: WorldSpec, seed: int = 0, costs=None, record=False
) -> dict:
    """Inline partitioned run, reported in the same shape as the
    multiprocess result (the A/B row benchmarks put next to it)."""
    start = time.perf_counter()
    world = World.build(
        spec, seed=seed, costs=costs, engine="partitioned", record=record
    )
    world.run_workload()
    result = _worker_result(world)
    wall = time.perf_counter() - start
    return _summarise(world.net.engine.pmap, [result], "inline", wall)


def run_world_mp(
    spec: WorldSpec,
    seed: int = 0,
    costs=None,
    timeout_s: Optional[float] = BARRIER_TIMEOUT_S,
    record=False,
) -> dict:
    """Build once, fork one worker per district, merge the results.

    Falls back to the inline backend when the topology has a single
    district or the platform cannot fork.  Raises :class:`RuntimeError`
    when a worker dies or a barrier stalls past ``timeout_s``.
    """
    pmap, _ = spec_partition_map(spec)
    if pmap.count == 1 or not hasattr(os, "fork"):
        return run_world_partitioned(spec, seed=seed, costs=costs, record=record)

    ctx = multiprocessing.get_context("fork")
    start = time.perf_counter()
    world = World.build(
        spec, seed=seed, costs=costs, engine="partitioned", record=record
    )
    conns = []
    workers = []
    try:
        for pid in range(pmap.count):
            parent_conn, child_conn = ctx.Pipe()
            worker = ctx.Process(
                target=_worker_main, args=(world, pid, child_conn), daemon=True
            )
            worker.start()
            child_conn.close()
            conns.append(parent_conn)
            workers.append(worker)

        payloads: list[Optional[dict]] = [None] * pmap.count
        pending = set(range(pmap.count))
        while pending:
            batch: dict[int, tuple[int, list]] = {}
            for pid in sorted(pending):
                if timeout_s is not None and not conns[pid].poll(timeout_s):
                    raise RuntimeError(
                        f"partition worker {pid} stalled for {timeout_s}s"
                    )
                kind, *rest = conns[pid].recv()
                if kind == "done":
                    payloads[pid] = rest[0]
                elif kind == "error":
                    raise RuntimeError(f"partition worker {pid} failed:\n{rest[0]}")
                else:
                    batch[pid] = (rest[0], rest[1])
            pending -= {pid for pid in pending if payloads[pid] is not None}
            if not batch:
                continue
            edges = {edge for edge, _ in batch.values()}
            if len(edges) != 1 or len(batch) != len(pending):
                raise RuntimeError(
                    f"barrier desync: edges {sorted(edges)} from "
                    f"{sorted(batch)} while {sorted(pending)} still run"
                )
            edge = edges.pop()
            union: list = []
            for pid in sorted(batch):
                union.extend(batch[pid][1])
            for pid in sorted(batch):
                conns[pid].send(("window", edge, union))
        wall = time.perf_counter() - start
    finally:
        for conn in conns:
            conn.close()
        for worker in workers:
            worker.join(timeout=10)
            if worker.is_alive():
                worker.terminate()
                worker.join(timeout=10)
    return _summarise(pmap, [p for p in payloads if p is not None], "multiprocess", wall)


__all__ = ["run_world_mp", "run_world_partitioned", "BARRIER_TIMEOUT_S"]

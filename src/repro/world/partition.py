"""Spec-level district analysis: partition a :class:`WorldSpec` by name.

``World.build`` needs the partition map *before* any network object exists
— the partitioned engine's shards are constructed first and every
build-time guard (``add_segment`` / ``link`` / ``bridge``) checks against
the frozen map.  This module runs the same union-find the live network
uses (:func:`repro.net.partition.compute_partition_map`) over the spec's
declared topology:

* segment order is the implicit default segment (``lan0``) followed by
  the :class:`~repro.world.spec.SegmentSpec` elements in declaration
  order — the order fixes the deterministic district numbering;
* ``link_to`` edges are the router links (latency-bearing cut edges);
* a :class:`~repro.world.spec.BridgeSpec` merges the bridged host's home
  segment with every segment it bridges onto (multi-homing is what fuses
  segments into one district).

``World.build`` cross-checks the result against the *built* network's map
(:func:`repro.net.partition.network_partition_map`), so a spec construct
this analysis cannot see — a placement resolver bridging somewhere
unexpected — fails loudly instead of silently misgrouping.
"""

from __future__ import annotations

from ..net import DEFAULT_LINK_LATENCY_US
from ..net.partition import PartitionMap, compute_partition_map
from .spec import BridgeSpec, HostSpec, SegmentSpec, SpecError, WorldSpec

DEFAULT_SEGMENT = "lan0"


def spec_partition_map(spec: WorldSpec) -> tuple[PartitionMap, dict[int, list[str]]]:
    """The spec's district map plus each district's declared hosts.

    Returns ``(pmap, hosts_of)`` where ``hosts_of[pid]`` lists the spec's
    host names homed in district ``pid`` (placement-resolver hosts, whose
    segment is only known at build time, are omitted).  Raises
    :class:`SpecError` when a bridged host's home segment cannot be
    resolved from the spec alone.
    """
    segment_names: list[str] = [DEFAULT_SEGMENT]
    links: list[tuple[str, str, int]] = []
    home_of: dict[str, object] = {}
    bridge_groups: list[list[str]] = []

    for element in spec.elements:
        if isinstance(element, SegmentSpec):
            segment_names.append(element.name)
            if element.link_to is not None:
                latency = (
                    element.link_latency_us
                    if element.link_latency_us is not None
                    else DEFAULT_LINK_LATENCY_US
                )
                links.append((element.link_to, element.name, latency))
        elif isinstance(element, HostSpec):
            home_of[element.name] = element.segment
        elif isinstance(element, BridgeSpec):
            home = home_of.get(element.host, None)
            if home is not None and not isinstance(home, str):
                raise SpecError(
                    f"spec {spec.name!r}: cannot partition — bridged host "
                    f"{element.host!r} uses a placement resolver for its "
                    "home segment"
                )
            bridge_groups.append([home or DEFAULT_SEGMENT, *element.segments])

    pmap = compute_partition_map(segment_names, bridge_groups, links)

    hosts_of: dict[int, list[str]] = {}
    for host, home in home_of.items():
        if home is None or isinstance(home, str):
            pid = pmap.pid_of.get(home or DEFAULT_SEGMENT)
            if pid is not None:
                hosts_of.setdefault(pid, []).append(host)
    return pmap, hosts_of


__all__ = ["spec_partition_map", "DEFAULT_SEGMENT"]

"""The declarative World API: spec-built topologies with run control.

``repro.world`` is the repo's public construction surface:

* :mod:`repro.world.spec` — the validated spec vocabulary
  (:class:`WorldSpec` → :class:`SegmentSpec` / :class:`HostSpec` /
  :class:`BridgeSpec` / :class:`FleetSpec` plus app specs and the phased
  workload steps ``Run`` / ``Probe`` / ``Chatter`` / ``Churn`` / ...);
* :mod:`repro.world.build` — ``World.build`` compiles a spec into the
  ``Network``/``Segment``/``GatewayFleet`` runtime and returns the
  :class:`World` run-control handle (``run_until``, named probes, the
  observer/metrics API feeding ``ScenarioOutcome.extras``);
* :mod:`repro.world.partition` / :mod:`repro.world.engine` — spec-level
  district analysis and the partition run drivers: ``World.build(...,
  engine="partitioned")`` shards the event loop per district with
  conservative lookahead, and :func:`run_world_mp` forks one worker
  process per district;
* :mod:`repro.world.scenarios` — the registered scenario catalog
  (``SCENARIO_SPECS``), from the paper's Figs. 7-9 configurations to the
  metro/media scale workloads and the spec-only churn/district sweeps;
* ``python -m repro.world list|describe|validate`` — schema and
  subnet-budget validation of every registered spec, without running one.
"""

from .build import BuildError, ProbeHandle, World, run_world
from .engine import run_world_mp, run_world_partitioned
from .outcome import ScenarioOutcome
from .partition import spec_partition_map
from .spec import (
    BridgeSpec,
    Chatter,
    Check,
    Churn,
    ClockDevice,
    Collect,
    ControlPoint,
    CpChatter,
    Crash,
    Delta,
    Emit,
    Fault,
    Fill,
    FleetSpec,
    Heal,
    GenaFeed,
    GenaSubscriber,
    HostSpec,
    IndissApp,
    JiniItem,
    JiniListener,
    JiniRegistrar,
    Ping,
    Probe,
    QueryFrontendApp,
    QueryLoad,
    Restart,
    RingOwnerLeaf,
    Run,
    SegmentSpec,
    SetConfig,
    SlpClient,
    SlpService,
    SlpServiceReg,
    Snapshot,
    SpecError,
    TypeSweepReport,
    TypedDevice,
    WorldSpec,
)

__all__ = [
    "World",
    "WorldSpec",
    "BuildError",
    "SpecError",
    "ProbeHandle",
    "ScenarioOutcome",
    "run_world",
    "run_world_mp",
    "run_world_partitioned",
    "spec_partition_map",
    "SegmentSpec",
    "HostSpec",
    "BridgeSpec",
    "FleetSpec",
    "Fill",
    "RingOwnerLeaf",
    "SlpClient",
    "SlpService",
    "SlpServiceReg",
    "ClockDevice",
    "TypedDevice",
    "ControlPoint",
    "IndissApp",
    "JiniRegistrar",
    "JiniListener",
    "JiniItem",
    "GenaSubscriber",
    "GenaFeed",
    "QueryFrontendApp",
    "QueryLoad",
    "Run",
    "Probe",
    "Ping",
    "Chatter",
    "CpChatter",
    "Churn",
    "Fault",
    "Heal",
    "Crash",
    "Restart",
    "SetConfig",
    "Snapshot",
    "Delta",
    "Collect",
    "Emit",
    "Check",
    "TypeSweepReport",
]

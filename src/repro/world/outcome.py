"""The result of running one scenario (spec-built or hand-built)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..net import Network


@dataclass
class ScenarioOutcome:
    """What one trial produced."""

    latency_us: Optional[int]
    results: int
    world: Network
    #: Scenario-specific measurements beyond the headline latency — fed by
    #: the world's observer collectors (hot-path counters, fleet and
    #: gossip aggregates, chatter accounting, probe extras).
    extras: dict = field(default_factory=dict)
    #: Flight-recorder snapshot (``repro.obs``): ``{"global": {...},
    #: "counters": {...}, "gauges": {...}, "histograms": {...}}``.  Only
    #: populated when the world was built with recording enabled.
    metrics: Optional[dict] = None

    @property
    def latency_ms(self) -> Optional[float]:
        return None if self.latency_us is None else self.latency_us / 1000.0


__all__ = ["ScenarioOutcome"]

"""Declarative world specifications: the repo's construction vocabulary.

A :class:`WorldSpec` is a validated, ordered description of a simulated
deployment — segments, links, hosts, the applications riding on them,
gateway fleets — plus a phased workload (``Run`` / ``Probe`` / ``Chatter``
/ ``Churn`` / measurement steps).  ``World.build`` (see ``build.py``)
compiles a spec into today's :class:`~repro.net.Network` /
:class:`~repro.net.Segment` / :class:`~repro.federation.GatewayFleet`
objects; the spec itself never touches the simulator.

Ordering is semantic: elements build in list order, and workload steps run
in list order.  The simulator draws shared randomness (latency models) in
event order, so two specs that differ only in element order are two
different (both valid) worlds.  Standing-load steps (``Chatter``,
``CpChatter``, ``Fill``) may appear in ``elements`` too, for worlds whose
load must start mid-construction (the UPnP ``media_city`` family interleaves
device fleets and control-point chatter per district).

Every spec class is a frozen dataclass: hashable, comparable, printable —
``python -m repro.world describe <scenario>`` renders them directly.
"""

from __future__ import annotations

from dataclasses import MISSING, dataclass, fields
from typing import Optional


class SpecError(ValueError):
    """A world spec failed validation."""


# -- placement resolvers ----------------------------------------------------


@dataclass(frozen=True)
class RingOwnerLeaf:
    """Resolves, at build time, to the edge segment of the fleet member
    that owns ``key`` on the fleet's shard ring.

    This is how a spec places a *cold* (non-advertising) service where its
    ring owner can natively reach it — the ``sharded_backbone`` invariant
    that a cold type costs exactly one owner translation.
    """

    fleet: str
    key: str


# -- topology elements ------------------------------------------------------


@dataclass(frozen=True)
class SegmentSpec:
    """One LAN segment, optionally linked to an earlier segment.

    ``seed_offset`` selects the segment's latency model:
    ``costs.latency_model(seed + seed_offset)``; ``None`` shares the
    network's default model.  ``subnet`` may be a two-octet prefix for a
    /16 (thousand-node fills) or three octets for a /24; ``None``
    auto-allocates ``192.168.x``.
    """

    name: str
    subnet: Optional[str] = None
    seed_offset: Optional[int] = None
    link_to: Optional[str] = None
    link_latency_us: Optional[int] = None


@dataclass(frozen=True)
class HostSpec:
    """One host, with optional applications built right after the node.

    ``segment`` may be a segment name or a :class:`RingOwnerLeaf`
    resolver; ``None`` lands on the default segment.  Order-sensitive
    worlds attach applications as standalone elements (each app spec
    carries a ``host`` field) instead of nesting them here.
    """

    name: str
    segment: object = None  # str | RingOwnerLeaf | None
    apps: tuple = ()


@dataclass(frozen=True)
class BridgeSpec:
    """Multi-home ``host`` onto additional segments (gateway placement)."""

    host: str
    segments: tuple[str, ...] = ()


@dataclass(frozen=True)
class FleetSpec:
    """Federate gateways sharing ``backbone`` into one
    :class:`~repro.federation.GatewayFleet`; ``members`` join in order."""

    name: str
    backbone: str
    members: tuple[str, ...] = ()
    gossip_period_us: Optional[int] = 500_000
    #: Arm the gossipers' silent-peer catch-up: after this many rounds
    #: without hearing a peer, push it a full live-state delta (see
    #: :class:`~repro.federation.CacheGossiper`).  None — off.
    catchup_after: Optional[int] = None
    #: Elections rank from wire-carried utilization samples piggybacked on
    #: gossip digests instead of the shared traffic monitors.
    wire_utilization: bool = False
    #: Members re-translate a request the ring owner re-issued when the
    #: owner's own translation came back empty (cold start).
    cold_start_escalation: bool = False
    #: Arm the fleet's heartbeat failure detector: a member unheard for
    #: this many of an observer's gossip rounds is suspected (see
    #: :class:`~repro.federation.FailureDetector`).  None — off, and the
    #: fleet is byte-identical to one built before the detector existed.
    suspect_after: Optional[int] = None
    #: Missed rounds beyond ``suspect_after`` before a suspect is declared
    #: dead (ring repair fires).  Defaults to ``suspect_after``.
    dead_after: Optional[int] = None


@dataclass(frozen=True)
class Fill:
    """Pad the world with idle background hosts up to ``total_nodes``,
    round-robin across segments (skipping exhausted subnets)."""

    total_nodes: int


@dataclass(frozen=True)
class Ping:
    """A standing unicast stream: ``src_host`` periodically sends a fixed
    payload to a UDP sink bound on ``dst_host``.

    This is the district-crossing load generator for the partitioned
    engine's worlds (``district_grid``): plain UDP with no protocol on
    top, so a flow between districts exercises exactly the conservative
    cross-frame path.  Per-flow counters (``sent``/``received``) aggregate
    under ``group`` (see ``Collect("ping")``).  Give each flow its own
    ``dst_host`` — sinks sharing a node and port would each count every
    arriving frame.
    """

    src_host: str
    dst_host: str
    period_us: int
    payload_bytes: int = 64
    port: int = 4999
    start_delay_us: int = 100_000
    group: str = "ping"


# -- applications -----------------------------------------------------------
#
# Each app spec may be nested in a HostSpec's ``apps`` (host implied) or
# appear as a standalone element with an explicit ``host``.


@dataclass(frozen=True)
class SlpClient:
    """A native SLP user agent."""

    host: Optional[str] = None
    wait_us: int = 400_000
    retries: int = 0


@dataclass(frozen=True)
class SlpServiceReg:
    """One SLP registration; ``{address}`` in the URL resolves to the
    owning host's address at build time."""

    url: str
    service_type: str
    attributes: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class SlpService:
    """A native SLP service agent with its registrations."""

    host: Optional[str] = None
    registrations: tuple[SlpServiceReg, ...] = ()


@dataclass(frozen=True)
class ClockDevice:
    """The paper's UPnP clock device (``make_clock_device``)."""

    host: Optional[str] = None
    seed_offset: int = 0
    advertise: bool = False
    notify_period_us: Optional[int] = None


@dataclass(frozen=True)
class TypedDevice:
    """A one-service synthetic UPnP device of ``type_name``."""

    type_name: str
    host: Optional[str] = None
    seed_offset: int = 0
    advertise: bool = True
    notify_period_us: Optional[int] = None
    udn_suffix: str = ""


@dataclass(frozen=True)
class ControlPoint:
    """A native UPnP control point."""

    host: Optional[str] = None


@dataclass(frozen=True)
class IndissApp:
    """An INDISS instance.  ``profile`` selects one of the repo's
    calibrated configuration recipes:

    * ``"paper"`` — the §4.3 placement configs (slp+upnp units, fanout
      dispatch, paper waits; honours ``deployment``/``answer_from_cache``);
    * ``"chain"`` — a bridged gateway-forward gateway (multi-hop waits);
    * ``"fleet"`` — a federated fleet member (shard-ring dispatch);
    * ``"slp-jini"`` — the SLP↔Jini gateway ablation config;
    * ``"media"`` — the three-unit (slp+upnp+jini) shard-ring gateway.
    """

    host: Optional[str] = None
    profile: str = "paper"
    deployment: str = "gateway"
    answer_from_cache: bool = False
    seed_offset: int = 0

    PROFILES = ("paper", "chain", "fleet", "slp-jini", "media")


@dataclass(frozen=True)
class JiniItem:
    """A pre-registered Jini service item (``{address}`` resolves to the
    registrar host's address)."""

    service_id: str
    class_names: tuple[str, ...]
    endpoint_url: str
    attributes: tuple[tuple[str, str], ...] = ()


@dataclass(frozen=True)
class JiniRegistrar:
    """A Jini lookup service, optionally announcing periodically."""

    host: Optional[str] = None
    announce_period_us: Optional[int] = None
    service_id_seed: Optional[int] = None
    items: tuple[JiniItem, ...] = ()


@dataclass(frozen=True)
class JiniListener:
    """A passive Jini multicast-discovery listener."""

    host: Optional[str] = None


@dataclass(frozen=True)
class GenaSubscriber:
    """A GENA event subscriber that SUBSCRIBEs to ``publisher_host``'s
    ``service_index``-th service shortly after boot."""

    publisher_host: str
    host: Optional[str] = None
    callback_port: int = 5004
    service_index: int = 0
    subscribe_delay_us: int = 50_000


@dataclass(frozen=True)
class GenaFeed:
    """Periodic state-variable pushes from ``publisher_host``'s device.

    The feed runs *on* the publisher, so unlike other app specs it has no
    ``host`` field — it appears standalone, or nested under any host.
    """

    publisher_host: str
    period_us: int
    properties: tuple[tuple[str, str], ...]
    initial_delay_us: int = 0


@dataclass(frozen=True)
class QueryFrontendApp:
    """A discovery query endpoint (:class:`repro.serving.QueryFrontend`)
    riding on the same host's INDISS instance.

    Serves lookup-by-type / lookup-by-url / batched / district queries
    from the gateway's gossiped service cache over UDP ``port``, stamping
    every answer with its staleness (µs since the answering records'
    implied observation).  Answers stamped beyond ``stale_after_us``
    still ship but are counted stale; a type miss re-issues the request
    through the gateway's translation units when ``fallback`` is set
    (at most once per type per ``fallback_window_us``).
    """

    host: Optional[str] = None
    port: int = 4620
    stale_after_us: int = 2_000_000
    fallback: bool = True
    fallback_window_us: int = 500_000


#: App spec classes, for validation and HostSpec.apps checking.
APP_SPECS = (
    SlpClient,
    SlpService,
    ClockDevice,
    TypedDevice,
    ControlPoint,
    IndissApp,
    JiniRegistrar,
    JiniListener,
    GenaSubscriber,
    GenaFeed,
    QueryFrontendApp,
)


# -- workload steps ---------------------------------------------------------


@dataclass(frozen=True)
class Run:
    """Advance virtual time by ``duration_us``."""

    duration_us: int


@dataclass(frozen=True)
class Probe:
    """Issue one named discovery and (optionally) run a horizon for it.

    ``host`` names an existing host carrying an :class:`SlpClient` /
    :class:`ControlPoint`; alternatively ``segment`` creates a fresh
    probe host (named ``node_name`` or the probe name) with its own agent.
    ``horizon_us`` runs the simulation immediately after issuing —
    omit it when a later :class:`Run` step advances time for a batch of
    probes.  ``headline=True`` makes this probe the scenario's headline
    latency; ``extras_prefix`` records ``<prefix>_results`` and
    ``<prefix>_latency_us`` into the outcome extras.
    """

    name: str
    target: str
    kind: str = "slp"  # "slp" | "upnp"
    host: Optional[str] = None
    segment: Optional[str] = None
    node_name: Optional[str] = None
    wait_us: Optional[int] = None
    horizon_us: Optional[int] = None
    headline: bool = False
    extras_prefix: Optional[str] = None


@dataclass(frozen=True)
class Chatter:
    """Background native SLP clients spread across ``leaves``.

    Each client periodically re-searches one of ``types`` (round-robin,
    staggered start); per-client accounting aggregates under ``group``
    (see ``Collect("chatter")``).
    """

    leaves: tuple[str, ...]
    types: tuple[str, ...]
    per_leaf: int
    period_us: int
    start_delay_us: int = 200_000
    group: str = "chatter"


@dataclass(frozen=True)
class CpChatter:
    """Background UPnP control points re-issuing M-SEARCHes.

    The kick stagger divides one period across a *global* cohort:
    ``index0`` is this batch's first index and ``total`` the cohort size,
    so multi-district worlds keep their cohorts out of phase.
    """

    leaves: tuple[str, ...]
    types: tuple[str, ...]
    per_leaf: int
    period_us: int
    wait_us: int = 200_000
    stagger_base_us: int = 100_000
    index0: int = 0
    total: int = 1
    group: str = "cp"


@dataclass(frozen=True)
class QueryLoad:
    """An open-loop query workload against :class:`QueryFrontendApp`s.

    ``clients_per_segment`` fresh client nodes are created on each of
    ``segments``; each client fires ``queries_per_client`` requests at the
    frontends (round-robin over ``frontends``) following a **seeded
    arrival process** — every inter-arrival gap is drawn at build time
    from ``random.Random(seed + seed_offset + client_index)``, so the
    schedule (and therefore the whole query/response byte stream) is
    identical under the single, partitioned, and multiprocess engines.

    Processes: ``"poisson"`` (exponential gaps of mean
    ``mean_interval_us``), ``"bursty"`` (trains of ``burst`` back-to-back
    queries separated by ``burst × mean`` gaps — same long-run rate,
    bursty arrivals), ``"diurnal"`` (sinusoidal rate modulation with
    period ``diurnal_period_us``: the mean gap sweeps between
    0.5× and 1.5× of ``mean_interval_us``).

    Query mix: lookup-by-type over ``types`` (round-robin) by default;
    every ``batch_every``-th query instead batches *all* the types in one
    request, every ``districts_every``-th asks "which districts have X",
    and every ``url_every``-th re-looks-up the last URL the client saw
    (skipped until a response delivered one).  Zero disables a mix arm.

    Open loop: sends never wait for responses.  Per-client accounting
    (sent / responses / hits / stale / latency histogram) aggregates
    under ``group`` (see ``Collect("serving")``).
    """

    frontends: tuple[str, ...]
    types: tuple[str, ...]
    segments: tuple[str, ...]
    clients_per_segment: int
    queries_per_client: int
    mean_interval_us: int
    process: str = "poisson"
    burst: int = 4
    diurnal_period_us: int = 1_000_000
    batch_every: int = 0
    districts_every: int = 0
    url_every: int = 0
    #: When set, type lookups carry a district-scope bound: answers are
    #: filtered to records resolving into these districts.
    scope_districts: tuple[int, ...] = ()
    port: int = 4620
    start_delay_us: int = 100_000
    seed_offset: int = 0
    group: str = "query"

    PROCESSES = ("poisson", "bursty", "diurnal")


@dataclass(frozen=True)
class Churn:
    """Sustained fleet membership churn: detach a member's host from the
    network (dropping its route plans and multicast index entries), let the
    fleet run degraded, then re-attach and re-join.

    ``cycles`` victims rotate round-robin over the fleet; each cycle holds
    the member down for ``down_us`` and lets the fleet recover for
    ``recover_us`` before the next leave.  Per-cycle accounting lands in
    the ``churn`` collector group.
    """

    fleet: str
    cycles: int
    down_us: int
    recover_us: int
    group: str = "churn"


@dataclass(frozen=True)
class Fault:
    """Inject one adversity condition, effective immediately.

    Kinds (see :mod:`repro.net.faults` for the underlying semantics):

    * ``"cut"`` — take ``link=(a, b)`` down; unicast reroutes around it
      (or drops when no path survives) and frames in flight on it are lost;
    * ``"isolate"`` — cut every up link incident to ``segment``;
    * ``"degrade"`` — attach a seeded loss model (``model`` is
      ``"bernoulli"`` or ``"gilbert"``, ``rate`` its loss/burst-entry
      probability) to exactly one of ``link``/``segment``;
    * ``"detach"`` — take ``host`` off the network entirely (its route
      plans and multicast index entries drop), remembering its home
      segments for a later ``Heal(kind="attach")``.

    ``World.build`` arms the network's adversity machinery whenever the
    spec carries a Fault step; specs without one stay bit-identical to
    their goldens.
    """

    kind: str
    link: Optional[tuple[str, str]] = None
    segment: Optional[str] = None
    host: Optional[str] = None
    rate: float = 0.0
    model: str = "bernoulli"
    seed_offset: int = 0

    KINDS = ("cut", "isolate", "degrade", "detach")


@dataclass(frozen=True)
class Heal:
    """Undo prior :class:`Fault` conditions, effective immediately.

    Kinds: ``"link"`` — bring ``link=(a, b)`` back up; ``"segment"`` —
    restore every link incident to ``segment``; ``"attach"`` — re-attach
    a detached ``host`` onto its remembered home segments; ``"clear"`` —
    remove the loss model from exactly one of ``link``/``segment``;
    ``"all"`` — heal every down link, clear every loss model, re-attach
    every detached host.
    """

    kind: str = "all"
    link: Optional[tuple[str, str]] = None
    segment: Optional[str] = None
    host: Optional[str] = None

    KINDS = ("link", "segment", "attach", "clear", "all")


@dataclass(frozen=True)
class Crash:
    """Crash-stop ``host``, effective immediately.

    Harsher than ``Fault(detach)`` in every observable way: frames in
    flight to the host drop exactly once (detach lands them), its open TCP
    connections die without a FIN, and all volatile application state —
    INDISS units, sessions, cache, session-id counter — is lost.  If the
    host is a fleet member, its gossiper dies with it while its membership
    record and ring points *stay*: peers learn of the death only through
    the fleet's failure detector (or never, if the detector is unarmed).

    Applied at a barrier-synchronized step boundary, so it is legal under
    the partitioned engine (unlike ``FaultPlan`` self-scheduling).
    """

    host: str


@dataclass(frozen=True)
class Restart:
    """Bring a crashed ``host`` back, effective immediately.

    The transport reattaches to its crash-time home segments, and the
    node's future sessions mint ids from a fresh restart block (see
    ``RESTART_SESSION_BLOCK``) so pre- and post-crash sessions can never
    collide.  A host that carried an INDISS instance gets a cold rebuild:
    empty cache, fresh session manager, re-created units.  A fleet member
    additionally re-joins its fleet; with ``bootstrap=True`` its new
    gossiper immediately requests a full cache transfer from one live
    peer instead of waiting for anti-entropy.
    """

    host: str
    bootstrap: bool = False


@dataclass(frozen=True)
class SetConfig:
    """Flip one config field on a fleet's members (or named hosts)."""

    attr: str
    value: object
    fleet: Optional[str] = None
    hosts: tuple[str, ...] = ()


@dataclass(frozen=True)
class Snapshot:
    """Capture named metrics now, for later :class:`Delta` steps."""

    name: str
    metrics: tuple[str, ...]


@dataclass(frozen=True)
class Delta:
    """Record ``extras[key] = metric(now) - metric(at snapshot)``."""

    key: str
    metric: str
    since: str


@dataclass(frozen=True)
class Collect:
    """Run one registered collector now and merge its rows into extras.

    ``key=None`` merges the collector's dict at top level; a string key
    nests it (``Collect("hotpaths", key="hotpaths")``).  ``params`` are
    collector-specific (e.g. ``("group", "cp")``).
    """

    provider: str
    key: Optional[str] = None
    params: tuple[tuple[str, object], ...] = ()


@dataclass(frozen=True)
class Emit:
    """Record a constant into extras (world parameters worth reporting)."""

    key: str
    value: object


@dataclass(frozen=True)
class Check:
    """An in-workload invariant (build fails loudly when it does not hold).

    Kinds: ``"cache_nonempty"`` — the INDISS instance on ``host`` has at
    least one cached record (the Fig. 9b priming guarantee).
    """

    kind: str
    host: Optional[str] = None


@dataclass(frozen=True)
class TypeSweepReport:
    """Build the per-type ownership/answer report of a sharded fleet:
    for every ``(type_name, warm, probe_name)`` entry record the ring
    owner, recorded device placement, and the probe's results/latency."""

    fleet: str
    entries: tuple[tuple[str, bool, str], ...]
    key: str = "per_type"


WORKLOAD_STEPS = (
    Run,
    Probe,
    Chatter,
    CpChatter,
    QueryLoad,
    Churn,
    Fault,
    Heal,
    Crash,
    Restart,
    SetConfig,
    Snapshot,
    Delta,
    Collect,
    Emit,
    Check,
    TypeSweepReport,
    Fill,
)

#: Everything legal in WorldSpec.elements.
ELEMENT_SPECS = (SegmentSpec, HostSpec, BridgeSpec, FleetSpec, Fill, Ping) + APP_SPECS + (
    Chatter,
    CpChatter,
    QueryLoad,
)


# -- the world spec ---------------------------------------------------------


@dataclass(frozen=True)
class WorldSpec:
    """A complete declarative scenario: topology + phased workload."""

    name: str
    elements: tuple = ()
    workload: tuple = ()
    description: str = ""
    #: Default segment's subnet (``Network(subnet=...)``).
    subnet: Optional[str] = None
    capture: bool = False
    parse_once: bool = True
    #: Declares this world district-partitionable: ``World.build`` freezes
    #: the spec's partition map even under the single-threaded engine, so
    #: cross-district delivery takes the deterministic (jitter-free) path
    #: in *every* backend and single<->partitioned runs stay bit-identical.
    #: Leave False for worlds that never run partitioned — frozen maps
    #: change cross-district delay draws, which would shift their goldens.
    partitioned: bool = False

    # -- validation ---------------------------------------------------------

    def validate(self) -> None:
        """Schema and budget checks; raises :class:`SpecError` on the
        first problem.  Never builds a network — this is what the
        ``python -m repro.world`` CLI runs over every registered spec."""
        problems = self.problems()
        if problems:
            raise SpecError(f"spec {self.name!r}: " + "; ".join(problems))

    def problems(self) -> list[str]:
        """All validation problems (empty when the spec is well-formed)."""
        problems: list[str] = []
        segments: dict[str, SegmentSpec] = {}
        hosts: dict[str, HostSpec] = {}
        fleets: dict[str, FleetSpec] = {}
        host_apps: dict[str, list] = {}
        #: (where, QueryLoad) pairs, validated after host_apps is complete.
        query_loads: list[tuple[str, QueryLoad]] = []
        default_name = "lan0"

        def check_subnet(subnet: Optional[str], where: str) -> None:
            if subnet is None:
                return
            parts = subnet.split(".")
            if len(parts) not in (2, 3) or not all(
                p.isdigit() and int(p) <= 255 for p in parts
            ):
                problems.append(f"{where}: bad subnet prefix {subnet!r}")

        check_subnet(self.subnet, "network")

        def note_app(app, host_name: Optional[str], where: str) -> None:
            if not isinstance(app, APP_SPECS):
                problems.append(f"{where}: {type(app).__name__} is not an app spec")
                return
            owner = getattr(app, "host", None) or host_name
            feed_like = isinstance(app, (GenaSubscriber, GenaFeed))
            if owner is None and not isinstance(app, GenaFeed):
                problems.append(f"{where}: {type(app).__name__} names no host")
            elif owner is not None and owner not in hosts and not feed_like:
                problems.append(f"{where}: unknown host {owner!r}")
            if feed_like and app.publisher_host not in hosts:
                problems.append(
                    f"{where}: unknown publisher host {app.publisher_host!r}"
                )
            if isinstance(app, GenaSubscriber) and owner is not None and owner not in hosts:
                problems.append(f"{where}: unknown host {owner!r}")
            if isinstance(app, IndissApp) and app.profile not in IndissApp.PROFILES:
                problems.append(f"{where}: unknown INDISS profile {app.profile!r}")
            if owner is not None:
                host_apps.setdefault(owner, []).append(app)

        for i, element in enumerate(self.elements):
            where = f"elements[{i}]"
            if isinstance(element, SegmentSpec):
                if element.name in segments or element.name == default_name:
                    problems.append(f"{where}: duplicate segment {element.name!r}")
                if element.link_to is not None and (
                    element.link_to != default_name and element.link_to not in segments
                ):
                    problems.append(
                        f"{where}: link_to unknown segment {element.link_to!r}"
                    )
                check_subnet(element.subnet, where)
                segments[element.name] = element
            elif isinstance(element, HostSpec):
                if element.name in hosts:
                    problems.append(f"{where}: duplicate host {element.name!r}")
                hosts[element.name] = element
                self._check_segment_ref(element.segment, segments, fleets, where, problems)
                for app in element.apps:
                    note_app(app, element.name, where)
            elif isinstance(element, BridgeSpec):
                if element.host not in hosts:
                    problems.append(f"{where}: bridge names unknown host {element.host!r}")
                for seg in element.segments:
                    if seg != default_name and seg not in segments:
                        problems.append(f"{where}: bridge onto unknown segment {seg!r}")
            elif isinstance(element, FleetSpec):
                if element.name in fleets:
                    problems.append(f"{where}: duplicate fleet {element.name!r}")
                if element.backbone != default_name and element.backbone not in segments:
                    problems.append(
                        f"{where}: fleet backbone {element.backbone!r} unknown"
                    )
                for member in element.members:
                    apps = host_apps.get(member, ())
                    if member not in hosts:
                        problems.append(f"{where}: fleet member {member!r} unknown")
                    elif not any(isinstance(a, IndissApp) for a in apps):
                        problems.append(
                            f"{where}: fleet member {member!r} has no INDISS app"
                        )
                for knob in ("suspect_after", "dead_after"):
                    value = getattr(element, knob)
                    if value is not None and value < 1:
                        problems.append(f"{where}: {knob} must be >= 1")
                if element.dead_after is not None and element.suspect_after is None:
                    problems.append(f"{where}: dead_after needs suspect_after")
                fleets[element.name] = element
            elif isinstance(element, Fill):
                if element.total_nodes < 0:
                    problems.append(f"{where}: negative fill")
            elif isinstance(element, Ping):
                for role, host in (("src", element.src_host), ("dst", element.dst_host)):
                    if host not in hosts:
                        problems.append(f"{where}: ping {role} host {host!r} unknown")
                if element.period_us <= 0 or element.payload_bytes < 0:
                    problems.append(f"{where}: bad ping sizing")
            elif isinstance(element, (Chatter, CpChatter)):
                self._check_load_step(element, segments, where, problems)
            elif isinstance(element, QueryLoad):
                query_loads.append((where, element))
            elif isinstance(element, APP_SPECS):
                note_app(element, None, where)
            else:
                problems.append(
                    f"{where}: {type(element).__name__} is not a topology element"
                )

        for j, step in enumerate(self.workload):
            where = f"workload[{j}]"
            if not isinstance(step, WORKLOAD_STEPS):
                problems.append(f"{where}: {type(step).__name__} is not a workload step")
                continue
            if isinstance(step, Probe):
                if step.kind not in ("slp", "upnp"):
                    problems.append(f"{where}: unknown probe kind {step.kind!r}")
                if step.host is None and step.segment is None:
                    problems.append(f"{where}: probe needs a host or a segment")
                if step.host is not None and step.host not in hosts:
                    problems.append(f"{where}: probe host {step.host!r} unknown")
                if step.segment is not None and (
                    step.segment != default_name and step.segment not in segments
                ):
                    problems.append(f"{where}: probe segment {step.segment!r} unknown")
            elif isinstance(step, (Chatter, CpChatter)):
                self._check_load_step(step, segments, where, problems)
            elif isinstance(step, QueryLoad):
                query_loads.append((where, step))
            elif isinstance(step, (Churn, TypeSweepReport)):
                if step.fleet not in fleets:
                    problems.append(f"{where}: unknown fleet {step.fleet!r}")
            elif isinstance(step, SetConfig):
                if step.fleet is not None and step.fleet not in fleets:
                    problems.append(f"{where}: unknown fleet {step.fleet!r}")
                for host in step.hosts:
                    if host not in hosts:
                        problems.append(f"{where}: unknown host {host!r}")
            elif isinstance(step, (Fault, Heal)):
                self._check_fault_step(step, segments, hosts, where, problems)
            elif isinstance(step, (Crash, Restart)):
                if step.host not in hosts:
                    problems.append(f"{where}: unknown host {step.host!r}")
            elif isinstance(step, Check) and step.host is not None:
                if step.host not in hosts:
                    problems.append(f"{where}: unknown host {step.host!r}")

        for host_name, apps in host_apps.items():
            if any(isinstance(a, QueryFrontendApp) for a in apps) and not any(
                isinstance(a, IndissApp) for a in apps
            ):
                problems.append(
                    f"host {host_name!r}: QueryFrontendApp needs an IndissApp "
                    f"on the same host"
                )
        for where, step in query_loads:
            self._check_query_load(step, segments, hosts, host_apps, where, problems)

        problems.extend(self._subnet_budget_problems(segments, hosts))
        return problems

    @staticmethod
    def _check_query_load(step, segments, hosts, host_apps, where, problems) -> None:
        if not step.frontends:
            problems.append(f"{where}: QueryLoad names no frontends")
        for host in step.frontends:
            if host not in hosts:
                problems.append(f"{where}: QueryLoad frontend host {host!r} unknown")
            elif not any(
                isinstance(a, QueryFrontendApp) for a in host_apps.get(host, ())
            ):
                problems.append(
                    f"{where}: QueryLoad frontend {host!r} has no QueryFrontendApp"
                )
        for segment in step.segments:
            if segment != "lan0" and segment not in segments:
                problems.append(f"{where}: QueryLoad segment {segment!r} unknown")
        if not step.types:
            problems.append(f"{where}: QueryLoad has no target types")
        if (
            step.clients_per_segment <= 0
            or step.queries_per_client <= 0
            or step.mean_interval_us <= 0
        ):
            problems.append(f"{where}: bad QueryLoad sizing")
        if step.process not in QueryLoad.PROCESSES:
            problems.append(f"{where}: unknown arrival process {step.process!r}")
        if step.process == "bursty" and step.burst <= 0:
            problems.append(f"{where}: bursty process needs burst >= 1")
        if step.process == "diurnal" and step.diurnal_period_us <= 0:
            problems.append(f"{where}: diurnal process needs a positive period")

    @staticmethod
    def _check_segment_ref(segment, segments, fleets, where, problems) -> None:
        if segment is None or isinstance(segment, RingOwnerLeaf):
            if isinstance(segment, RingOwnerLeaf) and segment.fleet not in fleets:
                problems.append(f"{where}: RingOwnerLeaf names unknown fleet {segment.fleet!r}")
            return
        if not isinstance(segment, str):
            problems.append(f"{where}: bad segment reference {segment!r}")
        elif segment != "lan0" and segment not in segments:
            problems.append(f"{where}: unknown segment {segment!r}")

    @staticmethod
    def _check_fault_step(step, segments, hosts, where, problems) -> None:
        is_fault = isinstance(step, Fault)
        label = "fault" if is_fault else "heal"
        if step.kind not in type(step).KINDS:
            problems.append(f"{where}: unknown {label} kind {step.kind!r}")
            return

        def known_segment(name: str) -> bool:
            return name == "lan0" or name in segments

        # Which operand each kind requires: exactly that one, nothing else.
        needs = {
            "cut": "link",
            "isolate": "segment",
            "detach": "host",
            "link": "link",
            "segment": "segment",
            "attach": "host",
        }.get(step.kind)
        if step.kind in ("degrade", "clear"):
            if (step.link is None) == (step.segment is None):
                problems.append(
                    f"{where}: {label} {step.kind!r} needs exactly one of "
                    f"link/segment"
                )
        elif needs is not None and getattr(step, needs) is None:
            problems.append(f"{where}: {label} {step.kind!r} needs {needs}")
        if step.link is not None:
            if len(step.link) != 2:
                problems.append(f"{where}: link must be a (a, b) pair")
            else:
                for end in step.link:
                    if not known_segment(end):
                        problems.append(f"{where}: link end {end!r} unknown")
        if step.segment is not None and not known_segment(step.segment):
            problems.append(f"{where}: unknown segment {step.segment!r}")
        if step.host is not None and step.host not in hosts:
            problems.append(f"{where}: unknown host {step.host!r}")
        if is_fault and step.kind == "degrade":
            if not (0.0 <= step.rate < 1.0):
                problems.append(f"{where}: degrade rate {step.rate!r} not in [0, 1)")
            if step.model not in ("bernoulli", "gilbert"):
                problems.append(f"{where}: unknown loss model {step.model!r}")

    @staticmethod
    def _check_load_step(step, segments, where, problems) -> None:
        for leaf in step.leaves:
            if leaf != "lan0" and leaf not in segments:
                problems.append(f"{where}: chatter leaf {leaf!r} unknown")
        if step.per_leaf < 0 or step.period_us <= 0:
            problems.append(f"{where}: bad chatter sizing")
        if not step.types:
            problems.append(f"{where}: chatter has no target types")

    def _subnet_budget_problems(self, segments, hosts) -> list[str]:
        """The address-budget guard: explicit hosts plus the background
        fill must fit the declared subnets, and /16 leaf prefixes must not
        collide with each other or the default segment."""
        problems: list[str] = []
        prefixes: dict[str, str] = {"lan0": self.subnet or "192.168.1"}
        for name, seg in segments.items():
            if seg.subnet is not None:
                prefixes[name] = seg.subnet
        seen: dict[str, str] = {}
        for name, prefix in prefixes.items():
            if prefix in seen:
                problems.append(
                    f"segments {seen[prefix]!r} and {name!r} share subnet {prefix!r}"
                )
            seen[prefix] = name

        def capacity(prefix: Optional[str]) -> int:
            if prefix is None:
                return 254  # auto-allocated /24
            return 255 * 254 if len(prefix.split(".")) == 2 else 254

        per_segment: dict[str, int] = {}
        for host in hosts.values():
            seg = host.segment if isinstance(host.segment, str) else None
            per_segment[seg or "lan0"] = per_segment.get(seg or "lan0", 0) + 1
        declared = {"lan0": capacity(self.subnet)}
        for name, seg in segments.items():
            declared[name] = capacity(seg.subnet)
        for name, used in per_segment.items():
            if name in declared and used > declared[name]:
                problems.append(
                    f"segment {name!r} declares {used} hosts but its subnet "
                    f"holds only {declared[name]}"
                )
        fill = sum(e.total_nodes for e in self.elements if isinstance(e, Fill))
        fill += sum(s.total_nodes for s in self.workload if isinstance(s, Fill))
        total_capacity = sum(declared.values())
        if fill > total_capacity:
            problems.append(
                f"fill of {fill} nodes exceeds the combined subnet capacity "
                f"({total_capacity})"
            )
        return problems

    # -- description --------------------------------------------------------

    def summary(self) -> dict:
        """Compact structural stats (the CLI's ``list`` row)."""
        counts: dict[str, int] = {}
        for element in self.elements:
            kind = type(element).__name__
            counts[kind] = counts.get(kind, 0) + 1
        return {
            "segments": 1 + counts.get("SegmentSpec", 0),
            "hosts": counts.get("HostSpec", 0),
            "fleets": counts.get("FleetSpec", 0),
            "fill": sum(
                e.total_nodes
                for e in tuple(self.elements) + tuple(self.workload)
                if isinstance(e, Fill)
            ),
            "steps": len(self.workload),
            "probes": sum(1 for s in self.workload if isinstance(s, Probe)),
        }

    def describe(self) -> str:
        """A human-readable rendering (the CLI's ``describe`` output)."""
        lines = [f"world {self.name}"]
        if self.description:
            lines.append(f"  {self.description}")
        row = self.summary()
        lines.append(
            "  {segments} segments, {hosts} hosts (+{fill} fill), "
            "{fleets} fleets, {steps} workload steps".format(**row)
        )
        lines.append("  elements:")
        for element in self.elements:
            lines.append(f"    - {_render(element)}")
        lines.append("  workload:")
        for step in self.workload:
            lines.append(f"    - {_render(step)}")
        return "\n".join(lines)


def _render(spec) -> str:
    """One-line rendering that omits default-valued fields."""
    parts = []
    for f in fields(spec):
        value = getattr(spec, f.name)
        if f.default is not MISSING:
            if value == f.default:
                continue
        elif f.default_factory is not MISSING and value == f.default_factory():
            continue
        text = repr(value)
        if len(text) > 48:
            text = text[:45] + "..."
        parts.append(f"{f.name}={text}")
    return f"{type(spec).__name__}({', '.join(parts)})"


__all__ = [
    "SpecError",
    "WorldSpec",
    "SegmentSpec",
    "HostSpec",
    "BridgeSpec",
    "FleetSpec",
    "Fill",
    "Ping",
    "RingOwnerLeaf",
    "SlpClient",
    "SlpService",
    "SlpServiceReg",
    "ClockDevice",
    "TypedDevice",
    "ControlPoint",
    "IndissApp",
    "JiniRegistrar",
    "JiniListener",
    "JiniItem",
    "GenaSubscriber",
    "GenaFeed",
    "QueryFrontendApp",
    "Run",
    "Probe",
    "Chatter",
    "CpChatter",
    "QueryLoad",
    "Churn",
    "Fault",
    "Heal",
    "Crash",
    "Restart",
    "SetConfig",
    "Snapshot",
    "Delta",
    "Collect",
    "Emit",
    "Check",
    "TypeSweepReport",
    "APP_SPECS",
    "ELEMENT_SPECS",
    "WORKLOAD_STEPS",
]

"""The scenario catalog: every measured world, expressed as a WorldSpec.

Each function here returns a pure :class:`~repro.world.spec.WorldSpec` —
no network is touched until ``World.build``.  The catalog covers the
paper's §4.3 configurations (Figs. 7-9 plus the gateway ablations), the
multi-segment and federation families, the metro/media scale workloads,
and the spec-only scenarios the imperative builders made painful
(sustained fleet churn, parameterized deep-chain district sweeps).

Element order is load-bearing: the simulator draws shared randomness in
event order, so these specs list elements in exactly the order the
legacy hand-rolled builders constructed them — the golden-parity tests in
``tests/world`` assert the compiled worlds fire identical event
schedules.

``SCENARIO_SPECS`` maps scenario names to their (parameterized) spec
builders; ``repro.bench.scenarios`` wraps them into the classic
callable-per-scenario registry, and ``python -m repro.world`` validates
and describes them without running anything.
"""

from __future__ import annotations

from typing import Callable

from .spec import (
    BridgeSpec,
    Chatter,
    Check,
    Churn,
    ClockDevice,
    Collect,
    ControlPoint,
    CpChatter,
    Crash,
    Delta,
    Emit,
    Fault,
    Fill,
    FleetSpec,
    Heal,
    GenaFeed,
    GenaSubscriber,
    HostSpec,
    IndissApp,
    JiniItem,
    JiniListener,
    JiniRegistrar,
    Ping,
    Probe,
    QueryFrontendApp,
    QueryLoad,
    Restart,
    RingOwnerLeaf,
    Run,
    SegmentSpec,
    SetConfig,
    SlpClient,
    SlpService,
    SlpServiceReg,
    Snapshot,
    TypedDevice,
    TypeSweepReport,
    WorldSpec,
)

#: The paper's clock device, as registered by its SLP stand-in.
CLOCK_REG = SlpServiceReg(
    url="service:clock:soap://{address}:4005/service/timer/control",
    service_type="service:clock:soap",
    attributes=(
        ("friendlyName", "CyberGarage Clock Device"),
        ("modelName", "Clock"),
    ),
)

CLOCK_DEVICE_TYPE = "urn:schemas-upnp-org:device:clock:1"


# -- Figure 7: native baselines -------------------------------------------------


def native_slp_spec() -> WorldSpec:
    return WorldSpec(
        name="native_slp",
        description="SLP client -> SLP service, no INDISS (paper: 0.7 ms).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            SlpClient(host="client"),
            SlpService(host="service", registrations=(CLOCK_REG,)),
        ),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


def native_upnp_spec() -> WorldSpec:
    return WorldSpec(
        name="native_upnp",
        description="UPnP control point -> UPnP device, no INDISS (paper: 40 ms).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            ControlPoint(host="client"),
            ClockDevice(host="service"),
        ),
        workload=(
            Probe(
                "main", CLOCK_DEVICE_TYPE, kind="upnp", host="client",
                wait_us=300_000, horizon_us=2_000_000, headline=True,
            ),
        ),
    )


# -- Figure 8: INDISS on the service side --------------------------------------


def slp_to_upnp_service_side_spec() -> WorldSpec:
    return WorldSpec(
        name="slp_to_upnp_service_side",
        description="SLP client -> [SLP-UPnP] -> UPnP service (paper: 65 ms).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            SlpClient(host="client"),
            ClockDevice(host="service"),
            IndissApp(host="service", deployment="service"),
        ),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


def upnp_to_slp_service_side_spec() -> WorldSpec:
    return WorldSpec(
        name="upnp_to_slp_service_side",
        description="UPnP client -> [UPnP-SLP] -> SLP service (paper: 40 ms).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            ControlPoint(host="client"),
            SlpService(host="service", registrations=(CLOCK_REG,)),
            IndissApp(host="service", deployment="service"),
        ),
        workload=(
            Probe(
                "main", CLOCK_DEVICE_TYPE, kind="upnp", host="client",
                wait_us=300_000, horizon_us=2_000_000, headline=True,
            ),
        ),
    )


# -- Figure 9: INDISS on the client side ----------------------------------------


def slp_to_upnp_client_side_spec() -> WorldSpec:
    return WorldSpec(
        name="slp_to_upnp_client_side",
        description="[SLP-UPnP] client -> UPnP service across the LAN (paper: 80 ms).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            SlpClient(host="client"),
            ClockDevice(host="service"),
            IndissApp(host="client", deployment="client"),
        ),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


def upnp_to_slp_client_side_spec(warm_cache: bool = True) -> WorldSpec:
    """Fig. 9b: the paper's best case is only reachable warm — a priming
    search populates the cache, then the measured search runs past the
    duplicate-suppression window (see DESIGN.md)."""
    workload: tuple = ()
    if warm_cache:
        workload = (
            Probe(
                "priming", CLOCK_DEVICE_TYPE, kind="upnp", host="client",
                wait_us=300_000, horizon_us=2_500_000,
            ),
            Check("cache_nonempty", host="client"),
        )
    workload += (
        Probe(
            "main", CLOCK_DEVICE_TYPE, kind="upnp", host="client",
            wait_us=300_000, horizon_us=2_000_000, headline=True,
        ),
    )
    return WorldSpec(
        name="upnp_to_slp_client_side",
        description="[UPnP-SLP] client -> SLP service (paper: 0.12 ms, warm).",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            ControlPoint(host="client"),
            SlpService(host="service", registrations=(CLOCK_REG,)),
            IndissApp(
                host="client", deployment="client", answer_from_cache=warm_cache
            ),
        ),
        workload=workload,
    )


# -- Gateway placement (paper §4.2's dedicated-node configuration) ---------------


def slp_to_upnp_gateway_spec() -> WorldSpec:
    return WorldSpec(
        name="slp_to_upnp_gateway",
        description="SLP client -> gateway INDISS -> UPnP service.",
        elements=(
            HostSpec("client"),
            HostSpec("service"),
            HostSpec("gateway"),
            SlpClient(host="client"),
            ClockDevice(host="service"),
            IndissApp(host="gateway", deployment="gateway"),
        ),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


def slp_to_jini_gateway_spec() -> WorldSpec:
    return WorldSpec(
        name="slp_to_jini_gateway",
        description="SLP client -> gateway INDISS -> Jini registrar.",
        elements=(
            HostSpec("client"),
            HostSpec("registrar"),
            HostSpec("gateway"),
            SlpClient(host="client"),
            JiniRegistrar(
                host="registrar",
                items=(
                    JiniItem(
                        service_id="sid-clock",
                        class_names=("org.amigo.Clock",),
                        attributes=(("friendlyName", "Jini Clock"),),
                        endpoint_url="jini://{address}:4161/clock",
                    ),
                ),
            ),
            IndissApp(host="gateway", profile="slp-jini"),
        ),
        workload=(
            Run(1_500_000),  # hear at least one registrar announcement
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


# -- Multi-segment internetworks ------------------------------------------------


def multi_segment_home_spec(nodes: int = 50) -> WorldSpec:
    return WorldSpec(
        name="multi_segment_home",
        description="Two-segment home: SLP upstairs, UPnP in the den, one bridge.",
        elements=(
            SegmentSpec("den", seed_offset=1000, link_to="lan0"),
            HostSpec("client"),
            HostSpec("service", segment="den"),
            HostSpec("gateway"),
            BridgeSpec("gateway", ("den",)),
            SlpClient(host="client"),
            ClockDevice(host="service"),
            IndissApp(host="gateway", profile="chain"),
            Fill(nodes),
        ),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=2_000_000, headline=True,
            ),
        ),
    )


def gateway_chain_spec(segments: int = 3) -> WorldSpec:
    if segments < 2:
        raise ValueError("gateway_chain needs at least two segments")
    chain = ["lan0"] + [f"seg{i}" for i in range(1, segments)]
    elements: list = [
        SegmentSpec(chain[i], seed_offset=i, link_to=chain[i - 1])
        for i in range(1, segments)
    ]
    elements += [
        HostSpec("client", segment=chain[0]),
        HostSpec("service", segment=chain[-1]),
    ]
    for i in range(segments - 1):
        elements += [
            HostSpec(f"gateway{i}", segment=chain[i]),
            BridgeSpec(f"gateway{i}", (chain[i + 1],)),
            IndissApp(host=f"gateway{i}", profile="chain", seed_offset=i),
        ]
    elements += [SlpClient(host="client"), ClockDevice(host="service")]
    return WorldSpec(
        name="gateway_chain",
        description="A bridged INDISS gateway on every boundary of a segment chain.",
        elements=tuple(elements),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=3_000_000, headline=True,
            ),
        ),
    )


def campus_fanout_spec(segments: int = 6, nodes: int = 120) -> WorldSpec:
    if segments < 3:
        raise ValueError("campus_fanout needs a backbone plus at least two leaves")
    elements: list = []
    leaves = []
    for i in range(segments - 1):
        leaf = f"leaf{i}"
        leaves.append(leaf)
        elements += [
            SegmentSpec(leaf, seed_offset=1 + i, link_to="lan0"),
            HostSpec(f"gateway{i}", segment=leaf),
            BridgeSpec(f"gateway{i}", ("lan0",)),
            IndissApp(host=f"gateway{i}", profile="chain", seed_offset=i),
        ]
    elements += [
        HostSpec("client", segment=leaves[0]),
        HostSpec("service", segment=leaves[-1]),
        SlpClient(host="client"),
        ClockDevice(host="service"),
        Fill(nodes),
    ]
    return WorldSpec(
        name="campus_fanout",
        description="A campus backbone with leaf LANs, one bridged gateway per leaf.",
        elements=tuple(elements),
        workload=(
            Probe(
                "main", "service:clock", host="client",
                horizon_us=3_000_000, headline=True,
            ),
        ),
    )


# -- Federated gateway fleets ----------------------------------------------------


def _campus_fleet_elements(
    segments: int,
    nodes: int,
    gossip_period_us,
    federated: bool,
    wide_subnets: bool,
    fleet_name: str = "fleet",
):
    """Backbone + leaves, one gateway per leaf, optionally federated —
    ending with the background fill, exactly like the imperative helper."""
    if segments < 3:
        raise ValueError("the campus needs a backbone plus at least two leaves")
    elements: list = []
    leaves = []
    members = []
    for i in range(segments - 1):
        leaf = f"leaf{i}"
        leaves.append(leaf)
        elements += [
            SegmentSpec(
                leaf,
                subnet=f"10.{i + 1}" if wide_subnets else None,
                seed_offset=1 + i,
                link_to="lan0",
            ),
            HostSpec(f"gateway{i}", segment=leaf),
            BridgeSpec(f"gateway{i}", ("lan0",)),
            IndissApp(
                host=f"gateway{i}",
                profile="fleet" if federated else "chain",
                seed_offset=i,
            ),
        ]
        members.append(f"gateway{i}")
    if federated:
        elements.append(
            FleetSpec(fleet_name, "lan0", tuple(members), gossip_period_us)
        )
    elements.append(Fill(nodes))
    return elements, leaves, members


def federated_campus_spec(
    segments: int = 6,
    nodes: int = 500,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    federated: bool = True,
) -> WorldSpec:
    elements, leaves, members = _campus_fleet_elements(
        segments, nodes, gossip_period_us, federated,
        wide_subnets=nodes > 200 * segments,
    )
    elements += [
        HostSpec("client", segment=leaves[0]),
        HostSpec("service", segment=leaves[-1]),
        SlpClient(host="client"),
        ClockDevice(host="service", advertise=True),
    ]
    fleet_params = (("fleet", "fleet" if federated else None),)
    workload = (
        Run(warmup_us),
        Collect("warm_members", key="warm_members_after_gossip", params=fleet_params),
        Snapshot("pre_query", ("translations",)),
        Probe(
            "main", "service:clock", host="client",
            horizon_us=1_500_000, headline=True,
        ),
        Collect("fleet", params=fleet_params),
        Delta("query_translations", "translations", "pre_query"),
        # Repeat query inside the dedup window: the edge gateway must
        # answer from its cache without any fleet re-discovery.
        Snapshot("pre_repeat", ("translations", f"cache_answers:{members[0]}")),
        Probe(
            "repeat", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="repeat",
        ),
        Delta("repeat_cache_answers", f"cache_answers:{members[0]}", "pre_repeat"),
        Delta("repeat_translations", "translations", "pre_repeat"),
        # Warm-edge phase: past the dedup window, with cache answering
        # enabled, the gossiped record alone serves the query.
        SetConfig("answer_from_cache", True, hosts=tuple(members)),
        Run(2_500_000),
        Snapshot("pre_warm", ("translations",)),
        Probe(
            "warm_edge", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="warm_edge",
        ),
        Delta("warm_edge_translations", "translations", "pre_warm"),
    )
    return WorldSpec(
        name="federated_campus",
        description="The campus backbone with the leaf gateways running as one fleet.",
        elements=tuple(elements),
        workload=workload,
    )


def partitioned_campus_spec(
    segments: int = 6,
    nodes: int = 500,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    hold_us: int = 2_000_000,
    recover_us: int = 2_000_000,
    catchup_after: int = 2,
    degrade_rate: float = 0.05,
) -> WorldSpec:
    """The federated campus under a scripted partition/heal cycle.

    The fleet runs with every adversity knob on (wire-carried election
    samples, silent-peer catch-up, cold-start escalation).  After gossip
    warms the caches, the service-side leaf is partitioned off — its
    backbone link cut and its gateway detached — while the client-side
    backbone link degrades to a lossy Bernoulli link; a mid-partition
    probe must still succeed from the client edge's gossiped cache, and a
    post-heal probe confirms recovery.
    """
    from dataclasses import replace

    elements, leaves, members = _campus_fleet_elements(
        segments, nodes, gossip_period_us, True,
        wide_subnets=nodes > 200 * segments,
    )
    elements = [
        replace(
            el,
            catchup_after=catchup_after,
            wire_utilization=True,
            cold_start_escalation=True,
        )
        if isinstance(el, FleetSpec)
        else el
        for el in elements
    ]
    elements += [
        HostSpec("client", segment=leaves[0]),
        HostSpec("service", segment=leaves[-1]),
        SlpClient(host="client"),
        ClockDevice(host="service", advertise=True),
    ]
    far_leaf, far_gateway = leaves[-1], members[-1]
    fleet_params = (("fleet", "fleet"),)
    workload = (
        Run(warmup_us),
        Collect("warm_members", key="warm_members_after_gossip", params=fleet_params),
        SetConfig("answer_from_cache", True, hosts=tuple(members)),
        Probe(
            "pre", "service:clock", host="client",
            horizon_us=1_000_000, headline=True, extras_prefix="pre",
        ),
        Snapshot("pre_partition", ("translations",)),
        # Partition the service leaf; degrade the client leaf's backbone
        # link so the surviving fleet gossips over a lossy path.
        Fault("degrade", link=(leaves[0], "lan0"), rate=degrade_rate),
        Fault("cut", link=(far_leaf, "lan0")),
        Fault("detach", host=far_gateway),
        Run(hold_us),
        Probe(
            "during", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="during",
        ),
        Heal("link", link=(far_leaf, "lan0")),
        Heal("attach", host=far_gateway),
        Heal("clear", link=(leaves[0], "lan0")),
        Run(recover_us),
        Probe(
            "post", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="post",
        ),
        Delta("cycle_translations", "translations", "pre_partition"),
        Collect("fleet", params=fleet_params),
        Emit("partitioned_leaf", far_leaf),
    )
    return WorldSpec(
        name="partitioned_campus",
        description="The federated campus across one partition/heal cycle "
        "with lossy backbone gossip and every adversity knob on.",
        elements=tuple(elements),
        workload=workload,
    )


def crash_recovery_spec(
    segments: int = 5,
    nodes: int = 120,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    suspect_after: int = 6,
    dead_after: int = 4,
    down_us: int = 4_000_000,
    recover_us: int = 2_500_000,
) -> WorldSpec:
    """The federated campus through one crash/restart cycle.

    The fleet runs with the heartbeat failure detector armed.  After
    gossip warms every cache, the service-side gateway crash-stops: its
    volatile state dies, in-flight frames to it drop, and — crucially —
    no peer is told.  The detector must notice from missed gossip rounds
    (``suspect`` then ``dead``, within ``(suspect_after + dead_after)``
    rounds), repair the ring, and exclude the corpse from elections; a
    mid-outage probe is answered from the surviving members' gossiped
    caches.  The gateway then restarts cold with ``bootstrap=True``, so
    one state-transfer exchange — not slow anti-entropy — refills its
    cache, and a post-recovery probe confirms the fleet is whole again.

    ``suspect_after`` must exceed the round-robin hearing gap (a fleet of
    n members hears any given peer about every n-1 rounds), or a healthy
    fleet would suspect itself.
    """
    from dataclasses import replace

    elements, leaves, members = _campus_fleet_elements(
        segments, nodes, gossip_period_us, True,
        wide_subnets=nodes > 200 * segments,
    )
    elements = [
        replace(el, suspect_after=suspect_after, dead_after=dead_after)
        if isinstance(el, FleetSpec)
        else el
        for el in elements
    ]
    elements += [
        HostSpec("client", segment=leaves[0]),
        HostSpec("service", segment=leaves[-1]),
        SlpClient(host="client"),
        ClockDevice(host="service", advertise=True),
    ]
    victim = members[-1]
    fleet_params = (("fleet", "fleet"),)
    workload = (
        Run(warmup_us),
        Collect("warm_members", key="warm_members_after_gossip", params=fleet_params),
        SetConfig("answer_from_cache", True, hosts=tuple(members)),
        Probe(
            "pre", "service:clock", host="client",
            horizon_us=1_000_000, headline=True, extras_prefix="pre",
        ),
        Snapshot("pre_crash", ("translations",)),
        Crash(victim),
        Run(down_us),
        Probe(
            "during", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="during",
        ),
        Restart(victim, bootstrap=True),
        Run(recover_us),
        Probe(
            "post", "service:clock", host="client",
            horizon_us=1_000_000, extras_prefix="post",
        ),
        Delta("cycle_translations", "translations", "pre_crash"),
        Collect("fleet", params=fleet_params),
        Collect("fleet_health", key="health", params=fleet_params),
        Emit("crashed_member", victim),
        Emit("gossip_period_us", gossip_period_us),
        Emit("detect_bound_us", (suspect_after + dead_after) * gossip_period_us),
    )
    return WorldSpec(
        name="crash_recovery",
        description="The federated campus through one gateway crash-stop: "
        "heartbeat detection, ring repair, cold restart with a cache "
        "bootstrap handshake.",
        elements=tuple(elements),
        workload=workload,
    )


def sharded_backbone_spec(
    members: int = 6,
    nodes: int = 800,
    service_types: int = 4,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    chatter_per_leaf: int = 0,
    chatter_period_us: int = 400_000,
) -> WorldSpec:
    if members < 2:
        raise ValueError("sharded_backbone needs at least two fleet members")
    if service_types < 1:
        raise ValueError("sharded_backbone needs at least one service type")
    elements, leaves, _ = _campus_fleet_elements(
        members + 1, 0, gossip_period_us, True,
        wide_subnets=nodes > 200 * (members + 1),
    )
    type_names = [f"sensor{i}" for i in range(service_types)]
    entries = []
    for i, type_name in enumerate(type_names):
        warm = i % 2 == 0
        if warm:
            segment: object = leaves[i % members]
        else:
            # Cold types must live where their ring owner can reach them.
            segment = RingOwnerLeaf("fleet", type_name)
        elements += [
            HostSpec(f"device-{type_name}", segment=segment),
            TypedDevice(type_name, host=f"device-{type_name}", advertise=warm),
        ]
        entries.append((type_name, warm, f"q-{type_name}"))
    for type_name in type_names:
        elements += [
            HostSpec(f"client-{type_name}"),
            SlpClient(host=f"client-{type_name}"),
        ]
    if chatter_per_leaf > 0:
        warm_types = tuple(type_names[0::2]) or tuple(type_names)
        elements.append(
            Chatter(tuple(leaves), warm_types, chatter_per_leaf, chatter_period_us)
        )
    elements.append(Fill(nodes))
    workload: list = [
        Run(warmup_us),
        Snapshot("pre_query", ("translations",)),
    ]
    for i, type_name in enumerate(type_names):
        workload.append(
            Probe(
                f"q-{type_name}", f"service:{type_name}",
                host=f"client-{type_name}", headline=i == 0,
            )
        )
    workload += [
        Run(2_500_000),
        Collect("fleet", params=(("fleet", "fleet"),)),
        TypeSweepReport("fleet", tuple(entries)),
        Delta("query_translations", "translations", "pre_query"),
        Collect(
            "ring_spread", key="owner_spread",
            params=(("fleet", "fleet"), ("keys", tuple(type_names))),
        ),
        Collect("hotpaths", key="hotpaths"),
    ]
    if chatter_per_leaf > 0:
        workload.append(Collect("chatter"))
    return WorldSpec(
        name="sharded_backbone",
        description="Many service types sharded across a fleet on one backbone.",
        elements=tuple(elements),
        workload=tuple(workload),
    )


# -- Metro-scale internetwork -----------------------------------------------------


def _district_backbones(districts: int, prefix: str) -> tuple[list, list]:
    """Chained district backbone segments (``lan0`` plus /16 siblings)."""
    backbones = ["lan0"]
    elements = []
    for d in range(1, districts):
        name = f"{prefix}{d}"
        elements.append(
            SegmentSpec(
                name, subnet=f"10.{200 + d}", seed_offset=10 + d,
                link_to=backbones[d - 1],
            )
        )
        backbones.append(name)
    return backbones, elements


def _guard_metro_shape(name: str, districts: int, leaves_per_district: int) -> None:
    if districts * leaves_per_district > 199:
        raise ValueError(
            f"{name} supports at most 199 leaves total "
            f"(got {districts * leaves_per_district}): leaf /16 subnets "
            "10.1-10.199 must not collide with backbone subnets 10.200+"
        )
    if districts > 56:
        raise ValueError(f"{name} supports at most 56 districts")


def metro_backbone_spec(
    districts: int = 5,
    leaves_per_district: int = 8,
    nodes: int = 5000,
    types_per_district: int = 4,
    chatter_per_leaf: int = 10,
    chatter_period_us: int = 200_000,
    gossip_period_us: int = 250_000,
    warmup_us: int = 1_200_000,
    run_us: int = 5_000_000,
) -> WorldSpec:
    if districts < 2:
        raise ValueError("metro_backbone needs at least two districts")
    if leaves_per_district < 1 or types_per_district < 1:
        raise ValueError("metro_backbone needs at least one leaf and one type")
    _guard_metro_shape("metro_backbone", districts, leaves_per_district)
    backbones, elements = _district_backbones(districts, "metro")
    district_leaves: list[list[str]] = []
    district_types: list[list[str]] = []
    for d, backbone in enumerate(backbones):
        leaves = []
        members = []
        for l in range(leaves_per_district):
            leaf = f"d{d}l{l}"
            leaves.append(leaf)
            gateway = f"gw-d{d}l{l}"
            members.append(gateway)
            elements += [
                SegmentSpec(
                    leaf,
                    subnet=f"10.{d * leaves_per_district + l + 1}",
                    seed_offset=100 * d + l,
                    link_to=backbone,
                ),
                HostSpec(gateway, segment=leaf),
                BridgeSpec(gateway, (backbone,)),
                IndissApp(host=gateway, profile="fleet", seed_offset=100 * d + l),
            ]
        district_leaves.append(leaves)
        elements.append(
            FleetSpec(f"fleet{d}", backbone, tuple(members), gossip_period_us)
        )
        type_names = [f"m{d}t{t}" for t in range(types_per_district)]
        district_types.append(type_names)
        for t, type_name in enumerate(type_names):
            host = f"dev-{type_name}"
            elements += [
                HostSpec(host, segment=leaves[t % leaves_per_district]),
                TypedDevice(type_name, host=host),
            ]
    for d in range(districts - 1):
        inter = f"inter-{d}{d + 1}"
        elements += [
            HostSpec(inter, segment=backbones[d]),
            BridgeSpec(inter, (backbones[d + 1],)),
            IndissApp(host=inter, profile="chain", seed_offset=900 + d),
        ]
    far_district = min(2, districts - 1)
    workload: list = [
        Chatter(
            tuple(district_leaves[d]), tuple(district_types[d]),
            chatter_per_leaf, chatter_period_us,
        )
        for d in range(districts)
    ]
    workload += [
        Fill(nodes),
        Run(warmup_us),
        # Intra-district probe (headline) + cross-district probe (extras).
        Probe(
            "local", f"service:{district_types[0][0]}",
            segment=district_leaves[0][0], node_name="probe-local", headline=True,
        ),
        Probe(
            "far", f"service:{district_types[far_district][0]}",
            segment=district_leaves[0][1 % leaves_per_district],
            node_name="probe-far", wait_us=1_500_000,
            extras_prefix="cross_district",
        ),
        Run(run_us),
        Emit("districts", districts),
        Collect("gateway_count", key="gateways"),
        Collect("node_count", key="total_nodes"),
        Collect("hotpaths", key="hotpaths"),
        Collect("chatter"),
    ]
    return WorldSpec(
        name="metro_backbone",
        description="Chained district backbones, one federated fleet per district, "
        "under sustained edge query load.",
        subnet="10.200",
        elements=tuple(elements),
        workload=tuple(workload),
    )


# -- Media city (the UPnP-dominated parse-once workload) ---------------------------


def media_city_spec(
    districts: int = 3,
    leaves_per_district: int = 6,
    nodes: int = 3000,
    types_per_district: int = 4,
    devices_per_leaf: int = 8,
    cp_per_leaf: int = 5,
    cp_period_us: int = 500_000,
    notify_period_us: int = 1_200_000,
    slp_island_leaves: int = 2,
    slp_chatter_per_island: int = 5,
    slp_chatter_period_us: int = 400_000,
    jini_registrars_per_district: int = 1,
    jini_listeners_per_district: int = 3,
    gossip_period_us: int = 250_000,
    warmup_us: int = 800_000,
    run_us: int = 4_000_000,
) -> WorldSpec:
    if districts < 1 or leaves_per_district < 1:
        raise ValueError("media_city needs at least one district and leaf")
    _guard_metro_shape("media_city", districts, leaves_per_district)
    backbones, elements = _district_backbones(districts, "city")
    district_types: list[list[str]] = []
    first_leaf = None
    for d, backbone in enumerate(backbones):
        leaves = []
        members = []
        for l in range(leaves_per_district):
            leaf = f"c{d}l{l}"
            leaves.append(leaf)
            gateway = f"gw-c{d}l{l}"
            members.append(gateway)
            elements += [
                SegmentSpec(
                    leaf,
                    subnet=f"10.{d * leaves_per_district + l + 1}",
                    seed_offset=100 * d + l,
                    link_to=backbone,
                ),
                HostSpec(gateway, segment=leaf),
                BridgeSpec(gateway, (backbone,)),
                IndissApp(host=gateway, profile="media", seed_offset=100 * d + l),
            ]
        if first_leaf is None:
            first_leaf = leaves[0]
        elements.append(
            FleetSpec(f"fleet{d}", backbone, tuple(members), gossip_period_us)
        )
        type_names = [f"media{d}t{t}" for t in range(types_per_district)]
        district_types.append(type_names)

        # Device fleets: every leaf hosts several advertising root devices
        # cycling through the district's types.
        for l, leaf in enumerate(leaves):
            for i in range(devices_per_leaf):
                type_name = type_names[(l * devices_per_leaf + i) % len(type_names)]
                host = f"dev-c{d}l{l}n{i}"
                elements += [
                    HostSpec(host, segment=leaf),
                    TypedDevice(
                        type_name, host=host, seed_offset=i,
                        notify_period_us=notify_period_us,
                        udn_suffix=f"-c{d}l{l}n{i}",
                    ),
                ]

        # Control-point chatter; the kick stagger divides one period across
        # the whole *city* cohort, so the index base counts across districts.
        elements.append(
            CpChatter(
                tuple(leaves), tuple(type_names), cp_per_leaf, cp_period_us,
                index0=d * leaves_per_district * cp_per_leaf,
                total=districts * leaves_per_district * cp_per_leaf,
            )
        )

        # GENA-style chatter: one subscriber per district receives periodic
        # state-variable pushes from the district's first device.
        if devices_per_leaf > 0:
            publisher = f"dev-c{d}l0n0"
            elements += [
                HostSpec(f"gena-c{d}", segment=leaves[0]),
                GenaSubscriber(publisher, host=f"gena-c{d}"),
                GenaFeed(
                    publisher, notify_period_us,
                    (("Status", f"tick{d}"),), initial_delay_us=300_000,
                ),
            ]

        # SLP islands: a registered service agent plus chatter UAs on the
        # first few leaves.
        island = leaves[:slp_island_leaves]
        if island and slp_chatter_per_island > 0:
            elements += [
                HostSpec(f"slp-sa-c{d}", segment=island[0]),
                SlpService(
                    host=f"slp-sa-c{d}",
                    registrations=(
                        SlpServiceReg(
                            url=f"service:media{d}slp://{{address}}:4005/ctl",
                            service_type=f"service:media{d}slp",
                        ),
                    ),
                ),
                Chatter(
                    tuple(island), (f"media{d}slp",),
                    slp_chatter_per_island, slp_chatter_period_us,
                ),
            ]

        # Jini corner: announcing registrars plus passive listeners.
        if jini_registrars_per_district > 0:
            jini_leaf = leaves[-1]
            for r in range(jini_registrars_per_district):
                host = f"jini-reg-c{d}n{r}"
                elements += [
                    HostSpec(host, segment=jini_leaf),
                    JiniRegistrar(
                        host=host, announce_period_us=1_000_000,
                        service_id_seed=5000 + 100 * d + r,
                    ),
                ]
            for r in range(jini_listeners_per_district):
                host = f"jini-ld-c{d}n{r}"
                elements += [HostSpec(host, segment=jini_leaf), JiniListener(host=host)]

    for d in range(districts - 1):
        inter = f"inter-{d}{d + 1}"
        elements += [
            HostSpec(inter, segment=backbones[d]),
            BridgeSpec(inter, (backbones[d + 1],)),
            IndissApp(host=inter, profile="chain", seed_offset=900 + d),
        ]
    elements.append(Fill(nodes))

    workload = (
        Run(warmup_us),
        # Headline probe: a native control-point search on district 0.
        Probe(
            "probe",
            f"urn:schemas-upnp-org:device:{district_types[0][0]}:1",
            kind="upnp", segment=first_leaf, node_name="probe-cp",
            wait_us=300_000, headline=True,
        ),
        Run(run_us),
        Emit("districts", districts),
        Collect("gateway_count", key="gateways"),
        Collect("node_count", key="total_nodes"),
        Collect("device_count", key="devices"),
        Collect("parse_once", key="parse_once"),
        Collect("cp_chatter"),
        Collect("gena_events", key="gena_events"),
        Collect("monitor_attribution", key="monitor_attribution"),
        Collect("hotpaths", key="hotpaths"),
        Collect("chatter"),
    )
    return WorldSpec(
        name="media_city",
        description="A UPnP-dominated internetwork: device fleets, CP and GENA "
        "chatter, SLP islands, Jini corners — the parse-once workload.",
        subnet="10.200",
        elements=tuple(elements),
        workload=workload,
    )


# -- Spec-only scenarios (the worlds the imperative API made painful) --------------


def churn_backbone_spec(
    members: int = 6,
    nodes: int = 400,
    service_types: int = 4,
    gossip_period_us: int = 150_000,
    warmup_us: int = 1_200_000,
    chatter_per_leaf: int = 2,
    chatter_period_us: int = 300_000,
    churn_cycles: int = 4,
    down_us: int = 400_000,
    recover_us: int = 600_000,
) -> WorldSpec:
    """Sustained join/leave churn over the sharded backbone.

    The fleet serves steady edge chatter while members rotate through
    leave (host detached from the internetwork, ring keys released,
    gossiper stopped) and rejoin (reattach, ring rebalance, gossip
    catch-up).  The closing probes assert the fleet still answers for a
    gossip-warmed type after every cycle.
    """
    if members < 3:
        raise ValueError("churn_backbone needs at least three fleet members")
    elements, leaves, _ = _campus_fleet_elements(
        members + 1, 0, gossip_period_us, True,
        wide_subnets=nodes > 200 * (members + 1),
    )
    type_names = [f"sensor{i}" for i in range(service_types)]
    for i, type_name in enumerate(type_names):
        elements += [
            HostSpec(f"device-{type_name}", segment=leaves[i % members]),
            TypedDevice(type_name, host=f"device-{type_name}", advertise=True),
        ]
    elements += [
        HostSpec("prober"),
        SlpClient(host="prober"),
        Chatter(tuple(leaves), tuple(type_names), chatter_per_leaf, chatter_period_us),
        Fill(nodes),
    ]
    workload = (
        Run(warmup_us),
        Snapshot("pre_churn", ("translations",)),
        Churn("fleet", churn_cycles, down_us, recover_us),
        Delta("churn_translations", "translations", "pre_churn"),
        Probe(
            "post_churn", f"service:{type_names[0]}", host="prober",
            horizon_us=2_000_000, headline=True, extras_prefix="post_churn",
        ),
        Collect("churn"),
        Collect("fleet", params=(("fleet", "fleet"),)),
        Collect("chatter"),
        Collect("hotpaths", key="hotpaths"),
    )
    return WorldSpec(
        name="churn_backbone",
        description="The sharded backbone under sustained fleet membership churn "
        "(detach/rejoin, ring rebalance, gossip catch-up).",
        elements=tuple(elements),
        workload=workload,
    )


def district_sweep_spec(
    districts: int = 4,
    leaves_per_district: int = 2,
    chatter_per_leaf: int = 0,
    chatter_period_us: int = 300_000,
    gossip_period_us: int = 250_000,
    warmup_us: int = 1_200_000,
    run_us: int = 6_000_000,
    probe_wait_us: int = 4_000_000,
) -> WorldSpec:
    """Parameterized deep-chain discovery: one probe per district distance.

    A metro-style chain of ``districts`` backbones; district 0 issues one
    probe per target district (distance 0 .. districts-1), so a single run
    reports how discovery degrades with gateway-forward depth — the
    cross-district depth measurement the ROADMAP asks for, and exactly the
    kind of sweep the hand-rolled builders made painful.
    """
    if districts < 2:
        raise ValueError("district_sweep needs at least two districts")
    if leaves_per_district < 1:
        raise ValueError("district_sweep needs at least one leaf per district")
    _guard_metro_shape("district_sweep", districts, leaves_per_district)
    backbones, elements = _district_backbones(districts, "metro")
    district_leaves: list[list[str]] = []
    for d, backbone in enumerate(backbones):
        leaves = []
        members = []
        for l in range(leaves_per_district):
            leaf = f"d{d}l{l}"
            leaves.append(leaf)
            gateway = f"gw-d{d}l{l}"
            members.append(gateway)
            elements += [
                SegmentSpec(
                    leaf,
                    subnet=f"10.{d * leaves_per_district + l + 1}",
                    seed_offset=100 * d + l,
                    link_to=backbone,
                ),
                HostSpec(gateway, segment=leaf),
                BridgeSpec(gateway, (backbone,)),
                IndissApp(host=gateway, profile="fleet", seed_offset=100 * d + l),
            ]
        district_leaves.append(leaves)
        elements += [
            FleetSpec(f"fleet{d}", backbone, tuple(members), gossip_period_us),
            HostSpec(f"dev-m{d}t0", segment=leaves[0]),
            TypedDevice(f"m{d}t0", host=f"dev-m{d}t0"),
        ]
    for d in range(districts - 1):
        inter = f"inter-{d}{d + 1}"
        elements += [
            HostSpec(inter, segment=backbones[d]),
            BridgeSpec(inter, (backbones[d + 1],)),
            IndissApp(host=inter, profile="chain", seed_offset=900 + d),
        ]
    workload: list = []
    if chatter_per_leaf > 0:
        workload += [
            Chatter(
                tuple(district_leaves[d]), (f"m{d}t0",),
                chatter_per_leaf, chatter_period_us,
            )
            for d in range(districts)
        ]
    workload.append(Run(warmup_us))
    for d in range(districts):
        workload.append(
            Probe(
                f"depth{d}", f"service:m{d}t0",
                segment=district_leaves[0][0], node_name=f"probe-depth{d}",
                wait_us=probe_wait_us, headline=d == 0,
                extras_prefix=f"depth{d}",
            )
        )
    workload += [
        Run(run_us),
        Emit("districts", districts),
        Collect("gateway_count", key="gateways"),
        Collect("node_count", key="total_nodes"),
        Collect("hotpaths", key="hotpaths"),
    ]
    if chatter_per_leaf > 0:
        workload.append(Collect("chatter"))
    return WorldSpec(
        name="district_sweep",
        description="Deep-chain district sweep: one probe per gateway-forward "
        "distance across a chained metro backbone.",
        subnet="10.200",
        elements=tuple(elements),
        workload=tuple(workload),
    )


# -- District grid (the partitioned engine's workload) -----------------------------


def district_grid_spec(
    districts: int = 4,
    leaves_per_district: int = 3,
    nodes: int = 0,
    chatter_per_leaf: int = 2,
    chatter_period_us: int = 300_000,
    ping_period_us: int = 150_000,
    ping_payload: int = 96,
    link_latency_us: int = 30_000,
    warmup_us: int = 500_000,
    run_us: int = 3_000_000,
) -> WorldSpec:
    """A world that actually *has* districts: chained backbones that are
    never bridged, so each one (plus its leaves) is its own partition.

    The metro/media worlds collapse to a single district — their
    inter-district gateways are multi-homed bridges, which is exactly what
    fuses segments.  Here the backbones touch only through router links
    (latency ``link_latency_us``, which becomes the conservative
    lookahead), intra-district load is native SLP chatter against each
    leaf's own service, and cross-district load is a ring of plain-UDP
    ping flows, including the wrap flow that transits every intermediate
    district.  ``partitioned=True`` freezes the district map on the
    single-threaded engine too, keeping the two engines bit-identical.

    Every segment carries an explicit ``seed_offset`` so no latency model
    is shared across districts: a shard draws jitter only from its own
    events and the streams stay identical under any engine.
    """
    if districts < 1 or leaves_per_district < 1:
        raise ValueError("district_grid needs at least one district and leaf")
    _guard_metro_shape("district_grid", districts, leaves_per_district)
    backbones = ["lan0"]
    elements: list = []
    for d in range(1, districts):
        name = f"grid{d}"
        elements.append(
            SegmentSpec(
                name, subnet=f"10.{200 + d}", seed_offset=10 + d,
                link_to=backbones[d - 1], link_latency_us=link_latency_us,
            )
        )
        backbones.append(name)
    for d, backbone in enumerate(backbones):
        for l in range(leaves_per_district):
            leaf = f"g{d}l{l}"
            type_name = f"grid{d}t{l}"
            elements += [
                SegmentSpec(
                    leaf,
                    subnet=f"10.{d * leaves_per_district + l + 1}",
                    seed_offset=100 * d + l + 20,
                    link_to=backbone,
                ),
                HostSpec(f"gw-{leaf}", segment=leaf),
                BridgeSpec(f"gw-{leaf}", (backbone,)),
                HostSpec(f"svc-{leaf}", segment=leaf),
                SlpService(
                    host=f"svc-{leaf}",
                    registrations=(
                        SlpServiceReg(
                            url=f"service:{type_name}://{{address}}",
                            service_type=f"service:{type_name}",
                        ),
                    ),
                ),
                # Multicast never leaves a segment, so each leaf's chatter
                # searches only the service registered on that same leaf.
                Chatter((leaf,), (type_name,), chatter_per_leaf, chatter_period_us),
            ]
    for d in range(districts):
        if districts < 2:
            break
        dst_district = (d + 1) % districts
        elements += [
            HostSpec(f"ping-src-{d}", segment=backbones[d]),
            HostSpec(f"ping-dst-{d}", segment=backbones[dst_district]),
            Ping(
                f"ping-src-{d}", f"ping-dst-{d}", ping_period_us,
                payload_bytes=ping_payload,
                start_delay_us=100_000 + 10_000 * d,
            ),
        ]
    workload: list = [
        Fill(nodes),
        Run(warmup_us),
        # Headline: an intra-district query on district 0's first leaf —
        # native SLP, so it must be untouched by the engine's sharding.
        Probe(
            "local", "service:grid0t0", segment="g0l0",
            node_name="probe-local", headline=True,
        ),
        Run(run_us),
        Emit("districts", districts),
        Collect("node_count", key="total_nodes"),
        Collect("ping"),
        Collect("chatter"),
    ]
    return WorldSpec(
        name="district_grid",
        description="Unbridged chained backbones (one district each) under "
        "leaf-local SLP chatter and a cross-district UDP ping ring.",
        subnet="10.200",
        partitioned=True,
        elements=tuple(elements),
        workload=tuple(workload),
    )


# -- Serving tier (discovery-as-a-service) -----------------------------------------


def serving_backbone_spec(
    members: int = 4,
    nodes: int = 200,
    service_types: int = 4,
    cold_types: int = 1,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    clients_per_leaf: int = 2,
    queries_per_client: int = 40,
    mean_interval_us: int = 25_000,
    process: str = "poisson",
    run_us: int = 4_000_000,
    batch_every: int = 16,
    url_every: int = 8,
    districts_every: int = 24,
    stale_after_us: int = 2_000_000,
    notify_period_us: int = 800_000,
) -> WorldSpec:
    """The serving tier's headline world: a federated campus whose gateway
    caches are warmed by gossip, a :class:`QueryFrontend` on every
    gateway, and an open-loop query population on every leaf.

    Advertised ``TypedDevice``s announce during warmup and the fleet
    gossips the records to every member, so by the time the ``QueryLoad``
    opens fire each frontend answers nearly every type lookup from its
    own cache — the warm hit rate the serving bench gates on.  The
    ``cold_types`` tail is deliberately *not* advertised: first touch
    misses, the frontend's fallback re-issues the query through the
    translation units, and the answer then gossips fleet-wide — keeping
    the miss, fallback, and staleness paths honest under load.
    """
    if members < 2:
        raise ValueError("serving_backbone needs at least two fleet members")
    if service_types < 1:
        raise ValueError("serving_backbone needs at least one service type")
    if cold_types < 0 or cold_types > service_types:
        raise ValueError("cold_types must be within the service type count")
    elements, leaves, gateways = _campus_fleet_elements(
        members + 1, 0, gossip_period_us, True,
        wide_subnets=nodes > 200 * (members + 1),
    )
    type_names = [f"svc{i}" for i in range(service_types)]
    for i, type_name in enumerate(type_names):
        warm = i < service_types - cold_types
        elements += [
            HostSpec(f"device-{type_name}", segment=leaves[i % len(leaves)]),
            # Warm devices re-NOTIFY periodically, so their gossiped
            # records keep a fresh implied-observation time and the
            # honesty stamps stay near announcement period + gossip lag.
            TypedDevice(
                type_name,
                host=f"device-{type_name}",
                advertise=warm,
                notify_period_us=notify_period_us if warm else None,
            ),
        ]
    for gateway in gateways:
        elements.append(
            QueryFrontendApp(host=gateway, stale_after_us=stale_after_us)
        )
    elements.append(Fill(nodes))
    load = QueryLoad(
        frontends=tuple(gateways),
        types=tuple(f"service:{name}" for name in type_names),
        segments=tuple(leaves),
        clients_per_segment=clients_per_leaf,
        queries_per_client=queries_per_client,
        mean_interval_us=mean_interval_us,
        process=process,
        batch_every=batch_every,
        url_every=url_every,
        districts_every=districts_every,
    )
    fleet_params = (("fleet", "fleet"),)
    workload = (
        Run(warmup_us),
        Collect("warm_members", key="warm_members_after_gossip", params=fleet_params),
        load,
        Run(run_us),
        Collect("serving"),
        Collect("fleet", params=fleet_params),
        Collect("node_count", key="total_nodes"),
        Emit("service_types", service_types),
        Emit("cold_types", cold_types),
        Emit(
            "queries_offered",
            clients_per_leaf * len(leaves) * queries_per_client,
        ),
    )
    return WorldSpec(
        name="serving_backbone",
        description="Federated campus gateways serving open-loop discovery "
        "queries from their gossip-warmed caches.",
        elements=tuple(elements),
        workload=workload,
    )


def serving_grid_spec(
    districts: int = 3,
    leaves_per_district: int = 2,
    nodes: int = 0,
    clients_per_leaf: int = 1,
    queries_per_client: int = 12,
    mean_interval_us: int = 60_000,
    link_latency_us: int = 30_000,
    warmup_us: int = 800_000,
    run_us: int = 3_000_000,
) -> WorldSpec:
    """``district_grid``'s serving twin: unbridged chained backbones (one
    district each), a frontend gateway per district, and both intra- and
    cross-district query populations.

    Intra-district clients query their own district's frontend for the
    type advertised on that district's first leaf; a cross-district ring
    of clients on each backbone queries the *next* district's frontend
    over the router links, so query datagrams transit the conservative
    lookahead exactly like ``district_grid``'s ping ring.  Everything a
    client or frontend draws is scheduled from build-time randomness, so
    the single-threaded, inline-partitioned, and multiprocess engines
    produce byte-identical query and response streams — the serving
    parity suite pins this.
    """
    if districts < 1 or leaves_per_district < 1:
        raise ValueError("serving_grid needs at least one district and leaf")
    _guard_metro_shape("serving_grid", districts, leaves_per_district)
    backbones = ["lan0"]
    elements: list = []
    for d in range(1, districts):
        name = f"grid{d}"
        elements.append(
            SegmentSpec(
                name, subnet=f"10.{200 + d}", seed_offset=10 + d,
                link_to=backbones[d - 1], link_latency_us=link_latency_us,
            )
        )
        backbones.append(name)
    district_leaves: list[list[str]] = []
    for d, backbone in enumerate(backbones):
        own_leaves = []
        for l in range(leaves_per_district):
            leaf = f"g{d}l{l}"
            own_leaves.append(leaf)
            elements += [
                SegmentSpec(
                    leaf,
                    subnet=f"10.{d * leaves_per_district + l + 1}",
                    seed_offset=100 * d + l + 20,
                    link_to=backbone,
                ),
                HostSpec(f"gw-{leaf}", segment=leaf),
                BridgeSpec(f"gw-{leaf}", (backbone,)),
            ]
        district_leaves.append(own_leaves)
        # One INDISS + frontend per district, on the first leaf's gateway;
        # the district's own device advertises on that same leaf, so the
        # frontend's cache warms from the announcement it observes.
        front = f"gw-g{d}l0"
        elements += [
            IndissApp(host=front, profile="chain", seed_offset=d),
            QueryFrontendApp(host=front),
            HostSpec(f"svc-g{d}l0", segment=f"g{d}l0"),
            TypedDevice(f"grid{d}", host=f"svc-g{d}l0", advertise=True),
        ]
    loads: list = []
    for d in range(districts):
        loads.append(
            QueryLoad(
                frontends=(f"gw-g{d}l0",),
                types=(f"service:grid{d}",),
                segments=tuple(district_leaves[d]),
                clients_per_segment=clients_per_leaf,
                queries_per_client=queries_per_client,
                mean_interval_us=mean_interval_us,
                seed_offset=d,
            )
        )
    for d in range(districts):
        if districts < 2:
            break
        # The ring's wrap flow transits every intermediate district, so
        # cross-district query datagrams cross the lookahead windows.
        dst = (d + 1) % districts
        loads.append(
            QueryLoad(
                frontends=(f"gw-g{dst}l0",),
                types=(f"service:grid{dst}",),
                segments=(backbones[d],),
                clients_per_segment=1,
                queries_per_client=queries_per_client,
                mean_interval_us=mean_interval_us * 2,
                start_delay_us=150_000 + 10_000 * d,
                seed_offset=50 + d,
            )
        )
    workload: list = [
        Fill(nodes),
        Run(warmup_us),
    ]
    workload += loads
    workload += [
        Run(run_us),
        Collect("serving"),
        Emit("districts", districts),
        Collect("node_count", key="total_nodes"),
    ]
    return WorldSpec(
        name="serving_grid",
        description="Unbridged chained backbones with one query frontend "
        "per district under intra- and cross-district open-loop query load.",
        subnet="10.200",
        partitioned=True,
        elements=tuple(elements),
        workload=tuple(workload),
    )


#: scenario name -> parameterized spec builder.
SCENARIO_SPECS: dict[str, Callable[..., WorldSpec]] = {
    "native_slp": native_slp_spec,
    "native_upnp": native_upnp_spec,
    "slp_to_upnp_service_side": slp_to_upnp_service_side_spec,
    "upnp_to_slp_service_side": upnp_to_slp_service_side_spec,
    "slp_to_upnp_client_side": slp_to_upnp_client_side_spec,
    "upnp_to_slp_client_side": upnp_to_slp_client_side_spec,
    "slp_to_upnp_gateway": slp_to_upnp_gateway_spec,
    "slp_to_jini_gateway": slp_to_jini_gateway_spec,
    "multi_segment_home": multi_segment_home_spec,
    "gateway_chain": gateway_chain_spec,
    "campus_fanout": campus_fanout_spec,
    "federated_campus": federated_campus_spec,
    "partitioned_campus": partitioned_campus_spec,
    "crash_recovery": crash_recovery_spec,
    "sharded_backbone": sharded_backbone_spec,
    "metro_backbone": metro_backbone_spec,
    "media_city": media_city_spec,
    "churn_backbone": churn_backbone_spec,
    "district_sweep": district_sweep_spec,
    "district_grid": district_grid_spec,
    "serving_backbone": serving_backbone_spec,
    "serving_grid": serving_grid_spec,
}


__all__ = ["SCENARIO_SPECS", "CLOCK_REG", "CLOCK_DEVICE_TYPE"] + [
    f"{name}_spec" for name in SCENARIO_SPECS
]

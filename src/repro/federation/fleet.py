"""The gateway fleet: membership, per-instance handles, aggregate stats.

A :class:`GatewayFleet` turns the independent INDISS gateways sharing one
backbone segment into a cooperating federation:

* joining adds the gateway to the :class:`~repro.federation.ShardRing`
  (sharded dispatch), optionally starts a
  :class:`~repro.federation.CacheGossiper` (federated cache), and binds a
  :class:`FederationHandle` onto the instance for the ``shard-ring``
  dispatch policy to consult;
* the fleet-level :class:`~repro.federation.GatewayElector` picks one
  responder per service type from per-segment utilization;
* leaving removes the member's ring points (its keys fall to ring
  successors — the rebalancing the tests pin) and stops its gossiper.

The handle's decision methods are where the federation semantics live, so
``core/dispatch.py`` stays free of any federation import (the policy duck-
types against ``indiss.federation``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from ..net import Network, Segment
from ..sdp.base import normalize_service_type
from .election import GatewayElector
from .gossip import CacheGossiper
from .health import FailureDetector
from .shard import ShardRing

if TYPE_CHECKING:  # pragma: no cover
    from ..core.indiss import Indiss
    from ..core.session import TranslationSession


@dataclass
class FederationStats:
    """Per-member decision counters (benchmarks sum them fleet-wide)."""

    edge_translations: int = 0
    owner_translations: int = 0
    owner_skipped_warm: int = 0
    shard_suppressed: int = 0
    election_suppressed: int = 0
    elected_cache_answers: int = 0
    #: Cache answers served by the ring owner because the elected
    #: responder's cache could not answer (gossip lag, or no gossip).
    owner_cache_answers: int = 0
    #: Cold-start escalations: a member re-translated a request the ring
    #: owner re-issued because the owner's own translation came back empty
    #: (knob-gated; see ``GatewayFleet.cold_start_escalation``).
    cold_start_escalations: int = 0
    #: Owner-gated dispatch degraded to gateway-forward because the
    #: failure detector holds the ring owner suspect or dead: rather than
    #: stall the request on a corpse, every live member translates (the
    #: classic pre-sharding behavior) until ring repair installs a live
    #: owner.  Zero without the detector.
    owner_down_fallbacks: int = 0


@dataclass
class FederatedMember:
    """One gateway's membership record inside the fleet."""

    indiss: "Indiss"
    handle: "FederationHandle"
    gossiper: Optional[CacheGossiper] = None


class FederationHandle:
    """What the ``shard-ring`` dispatch policy consults on one instance."""

    def __init__(self, fleet: "GatewayFleet", indiss: "Indiss", member_id: str):
        self.fleet = fleet
        self.indiss = indiss
        self.member_id = member_id
        self.stats = FederationStats()
        self.gossiper: Optional[CacheGossiper] = None
        #: Wire-carried utilization samples, one per peer:
        #: member_id -> (sampled_at_us, load).  Filled by the gossiper when
        #: the fleet runs with ``wire_utilization``; the elector then ranks
        #: from *this member's view* instead of the shared monitors — so a
        #: partitioned member's elections can genuinely disagree.
        self.util_samples: dict[str, tuple[int, float]] = {}

    # -- request classification ---------------------------------------------

    def is_backbone_request(self, session: "TranslationSession") -> bool:
        """True when the request reached us over the fleet's shared segment.

        The requester's host and ours must share *only* the backbone: a
        host that also shares one of our edge (leaf) segments is our own
        client and is always served, and an unknown or unattached
        requester defaults to edge handling (translate rather than risk
        silence).
        """
        requester = session.requester
        if requester is None:
            return False
        our_segments = {seg.name for seg in self.indiss.node.segments}
        if self.fleet.segment_name not in our_segments:
            return False
        source = self.indiss.node.network.node_at(requester.host)
        if source is None:
            return False
        shared = {seg.name for seg in source.segments} & our_segments
        return bool(shared) and shared == {self.fleet.segment_name}

    def requester_exclusion(self, session: "TranslationSession") -> frozenset[str]:
        """Members that must not own/answer this request: the requester
        itself, when the requester is a fleet member's forwarded request (a
        gateway never hears its own re-issued traffic, so electing it would
        leave the request unanswered)."""
        requester = session.requester
        if requester is not None and requester.host in self.fleet.members:
            return frozenset((requester.host,))
        return frozenset()

    # -- dispatch decisions ---------------------------------------------------

    def _member_cache_answers(self, member_id: str, wanted: str, origin_sdp: str) -> bool:
        """Whether ``member_id``'s cache holds a record that can answer a
        ``origin_sdp`` requester for the normalized type ``wanted``.

        Peeking a peer's cache is the in-simulator stand-in for what a
        real deployment reads off its last-received gossip digest (which
        carries exactly these keys); see the elector's module docstring
        for the same convention.
        """
        member = self.fleet.members.get(member_id)
        if member is None:
            return False
        return any(
            record.source_sdp != origin_sdp
            for record in member.indiss.cache.lookup(wanted)
        )

    def should_translate(
        self,
        service_type: str,
        origin_sdp: str,
        exclude: frozenset[str] = frozenset(),
    ) -> bool:
        """Whether this member drives the translation of a backbone request.

        Only the ring owner of the normalized type translates — and it
        stands down only when the *elected responder* can actually answer
        from its cache, never merely because the owner's own cache is warm
        (an owner that can answer has already done so on the cache path; a
        warm owner with a cold elected peer must still translate, or the
        request would go silently unanswered).  Ownership deliberately
        ignores who forwarded the request: when the owner's own re-issue
        echoes around the backbone, every other member still sees the
        owner owning the type and stays silent, so a wave is translated at
        most once fleet-wide.
        """
        wanted = normalize_service_type(service_type)
        owner = self.fleet.ring.owner(wanted)
        if owner != self.member_id:
            if owner is not None and self.fleet.health.is_down(owner):
                # The owner crashed (or is suspected): degrade to
                # gateway-forward rather than stall the request on a
                # corpse — every live member translates until the
                # detector's ring repair installs a live owner.  Requests
                # arriving *before* suspicion still stall; that window is
                # the availability dip the chaos sweep measures.
                self.stats.owner_down_fallbacks += 1
                self.stats.owner_translations += 1
                return True
            self.stats.shard_suppressed += 1
            return False
        elected = self.fleet.elector.responder(
            wanted, exclude=exclude, viewer=self.member_id
        )
        if (
            elected is not None
            and elected != self.member_id
            and self._member_cache_answers(elected, wanted, origin_sdp)
        ):
            self.stats.owner_skipped_warm += 1
            return False
        self.stats.owner_translations += 1
        return True

    def cache_role(
        self,
        service_type: str,
        origin_sdp: str,
        exclude: frozenset[str] = frozenset(),
    ) -> Optional[str]:
        """This member's cache-answering role for a backbone request.

        ``"elected"`` — the utilization election picked us; ``"owner"`` —
        we own the type and the elected responder's cache cannot answer
        (gossip lag, or a fleet running without gossip), so the owner
        falls back to answering; None — stay silent.
        """
        wanted = normalize_service_type(service_type)
        elected = self.fleet.elector.responder(
            wanted, exclude=exclude, viewer=self.member_id
        )
        if elected == self.member_id:
            return "elected"
        if self.fleet.ring.owner(wanted) == self.member_id and (
            elected is None
            or not self._member_cache_answers(elected, wanted, origin_sdp)
        ):
            return "owner"
        self.stats.election_suppressed += 1
        return None

    def note_cache_answer(self, role: str) -> None:
        if role == "elected":
            self.stats.elected_cache_answers += 1
        else:
            self.stats.owner_cache_answers += 1


class GatewayFleet:
    """A set of federated INDISS gateways sharing one backbone segment."""

    def __init__(
        self,
        network: Network,
        segment: Segment | str,
        vnodes: int = 64,
        election_window_us: int = 1_000_000,
        election_hold_us: int = 1_000_000,
        wire_utilization: bool = False,
        cold_start_escalation: bool = False,
        suspect_after: Optional[int] = None,
        dead_after: Optional[int] = None,
    ):
        self.network = network
        self.segment_name = segment if isinstance(segment, str) else segment.name
        if self.segment_name not in network.segments:
            raise ValueError(f"network has no segment named {self.segment_name!r}")
        self.ring = ShardRing(vnodes=vnodes)
        self.members: dict[str, FederatedMember] = {}
        #: Heartbeat failure detection piggybacked on gossip traffic;
        #: inert (never counts, never transitions) unless ``suspect_after``
        #: is set.  See :mod:`repro.federation.health`.
        self.health = FailureDetector(
            self, suspect_after=suspect_after, dead_after=dead_after
        )
        #: Completed ring repairs: (virtual time, dead member) — the chaos
        #: bench reads time-to-repair off these.
        self.repairs: list[tuple[int, str]] = []
        #: Elections rank from wire-carried utilization samples (each
        #: member's own view) instead of the shared traffic monitors.
        #: Off by default: the shared-monitor path and its goldens are
        #: untouched unless a spec opts in.
        self.wire_utilization = wire_utilization
        #: A member may re-translate a request the ring owner re-issued
        #: when the owner's own translation found nothing (cold start
        #: behind a partition).  Off by default.
        self.cold_start_escalation = cold_start_escalation
        self.elector = GatewayElector(
            self, window_us=election_window_us, hold_us=election_hold_us
        )

    def __len__(self) -> int:
        return len(self.members)

    # -- membership -----------------------------------------------------------

    def join(
        self,
        indiss: "Indiss",
        gossip_period_us: Optional[int] = 500_000,
        max_delta_records: Optional[int] = None,
        catchup_after: Optional[int] = None,
    ) -> FederationHandle:
        """Federate one gateway; returns the handle bound to the instance.

        ``gossip_period_us=None`` joins without a gossiper (sharding and
        election only).  ``catchup_after=k`` arms the gossiper's silent-
        peer escalation (see :class:`~repro.federation.CacheGossiper`).
        """
        member_id = indiss.node.address
        if member_id in self.members:
            raise ValueError(f"{member_id} already joined the fleet")
        if all(seg.name != self.segment_name for seg in indiss.node.segments):
            raise ValueError(
                f"{member_id} is not attached to fleet segment {self.segment_name!r}"
            )
        handle = FederationHandle(self, indiss, member_id)
        gossiper = None
        if gossip_period_us is not None:
            kwargs = {}
            if max_delta_records is not None:
                kwargs["max_delta_records"] = max_delta_records
            if catchup_after is not None:
                kwargs["catchup_after"] = catchup_after
            gossiper = CacheGossiper(
                indiss, self, member_id, period_us=gossip_period_us, **kwargs
            )
        handle.gossiper = gossiper
        self.members[member_id] = FederatedMember(indiss, handle, gossiper)
        self.ring.add(member_id)
        indiss.federation = handle
        self.elector.invalidate()
        return handle

    def leave(self, member_id: str) -> None:
        """Remove a member: ring points released, gossiper stopped."""
        member = self.members.pop(member_id, None)
        if member is None:
            raise KeyError(f"{member_id} is not a fleet member")
        self.ring.remove(member_id)
        if member.gossiper is not None:
            member.gossiper.stop()
        member.indiss.federation = None
        self.health.reset(member_id)
        self.elector.invalidate()

    # -- crash faults and self-healing ----------------------------------------

    def crash_member(self, member_id: str) -> None:
        """Note a member's process crash (the world's ``Crash`` step).

        Deliberately *asymmetric* with :meth:`leave`: the membership record
        and the ring points stay — peers must not learn of the death
        synchronously; only the failure detector (or an operator-driven
        restart) may repair the ring.  What does stop is the member's own
        machinery: its gossiper's timer dies with the process, and its
        handle is unbound so a restarted instance cannot alias stale state.
        """
        member = self.members.get(member_id)
        if member is None:
            raise KeyError(f"{member_id} is not a fleet member")
        if member.gossiper is not None:
            member.gossiper.stop()
            member.gossiper = None
            member.handle.gossiper = None
        member.indiss.federation = None
        self.elector.invalidate()

    def restart_member(
        self,
        indiss: "Indiss",
        gossip_period_us: Optional[int] = 500_000,
        max_delta_records: Optional[int] = None,
        catchup_after: Optional[int] = None,
        bootstrap: bool = False,
    ) -> FederationHandle:
        """Re-federate a restarted (or replacement) gateway.

        Drops whatever membership record survives from before the crash —
        whether the detector already declared it dead and repaired the ring
        or not (``ShardRing.remove`` is idempotent) — clears the detector's
        verdict, and joins fresh.  With ``bootstrap=True`` the new gossiper
        immediately requests a full cache transfer from one live peer
        instead of waiting for anti-entropy to converge.
        """
        member_id = indiss.node.address
        self.members.pop(member_id, None)
        self.ring.remove(member_id)
        self.health.reset(member_id)
        handle = self.join(
            indiss,
            gossip_period_us=gossip_period_us,
            max_delta_records=max_delta_records,
            catchup_after=catchup_after,
        )
        if bootstrap and handle.gossiper is not None:
            handle.gossiper.request_bootstrap()
        return handle

    def _on_member_dead(self, member_id: str, now_us: int) -> None:
        """Self-heal after the detector's ``dead`` verdict: release the
        dead member's ring points (only *its* keys rebalance to ring
        successors) and invalidate held elections so no request is routed
        at a corpse.  The membership record stays for the bench's
        post-mortem reads; a restart replaces it wholesale."""
        if member_id in self.ring:
            self.ring.remove(member_id)
            self.repairs.append((now_us, member_id))
            obs = self.network.obs
            if obs.on:
                obs.metrics.counter("ring.repair", member=member_id).inc()
                obs.trace.instant(
                    "ring.repair", now_us, 0, tid=member_id, cat="fleet",
                    args={"member": member_id},
                )
        self.elector.invalidate()

    def is_electable(self, member_id: str) -> bool:
        """Whether a member may win elections (and serve bootstraps).

        Excludes the dead and the suspected (detector verdict), the
        crashed (local knowledge: our own process observed the crash), and
        the detached (a member with no attached segments cannot hear the
        request it would be elected to answer — the churn bug where a
        ``Fault(detach)`` victim stayed on the candidate board).
        """
        member = self.members.get(member_id)
        if member is None:
            return False
        if not self.health.is_alive(member_id):
            return False
        if getattr(member.indiss, "crashed", False):
            return False
        return bool(member.indiss.node.segments)

    def peer_addresses(self, member_id: str) -> list[str]:
        """Every other member's address, in stable order (gossip targets)."""
        return sorted(address for address in self.members if address != member_id)

    # -- aggregate views -------------------------------------------------------

    def aggregate_stats(self) -> dict[str, int]:
        """Fleet-wide sums of the per-member federation counters."""
        totals = {name: 0 for name in FederationStats.__dataclass_fields__}
        for member in self.members.values():
            for name in totals:
                totals[name] += getattr(member.handle.stats, name)
        return totals

    def aggregate_gossip_stats(self) -> dict[str, int]:
        """Fleet-wide sums of the gossip counters (zeros without gossip)."""
        totals: dict[str, int] = {}
        for member in self.members.values():
            if member.gossiper is None:
                continue
            stats = member.gossiper.stats
            for name in stats.__dataclass_fields__:
                totals[name] = totals.get(name, 0) + getattr(stats, name)
        return totals

    def translated_total(self) -> int:
        """Sessions that drove native discovery, summed over the fleet."""
        return sum(
            member.indiss.stats.translated for member in self.members.values()
        )

    def cache_sizes(self) -> dict[str, int]:
        return {
            member_id: len(member.indiss.cache)
            for member_id, member in self.members.items()
        }


__all__ = [
    "FederatedMember",
    "FederationHandle",
    "FederationStats",
    "GatewayFleet",
]

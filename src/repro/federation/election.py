"""Route-aware responder election for a gateway fleet (extends Fig. 6).

The paper's adaptation manager flips one instance between passive and
active from a *network-wide* traffic threshold.  A fleet on a shared
backbone needs the per-segment refinement: when several gateways could all
answer a backbone request from their (gossip-warmed) caches, exactly one
should — and it should be the one whose *edge* LANs are quietest, so the
answer costs bandwidth where there is bandwidth to spare.

:class:`GatewayElector` ranks fleet members by the
:func:`repro.core.adaptation.segment_utilization` of their non-backbone
segments (ties broken by member id, so elections are deterministic) and
holds each election for ``hold_us`` of virtual time — hysteresis against
electing a different responder for every request while utilization
fluctuates.  By default every member evaluates the same shared traffic
monitors, so the fleet agrees on the responder without extra protocol
traffic.

With the fleet's ``wire_utilization`` knob on, the election instead ranks
from **wire-carried samples**: each member's gossip digests piggyback its
locally measured load, peers collect the samples on their handle's board,
and :meth:`GatewayElector.responder` evaluates from the *viewer's* board
(own load measured locally; an unheard peer ranks worst).  Members can
then genuinely disagree while partitioned — the disagreement window the
adversity benchmarks measure via :meth:`GatewayElector.disagreement` —
and re-converge as gossip resumes.  Elections that flip a viewer's choice
count as ``election.flap`` on the flight recorder.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.adaptation import segment_utilization

if TYPE_CHECKING:  # pragma: no cover
    from .fleet import GatewayFleet


class GatewayElector:
    """Per-(segment, service-type) responder election for one fleet."""

    def __init__(
        self,
        fleet: "GatewayFleet",
        window_us: int = 1_000_000,
        hold_us: int = 1_000_000,
    ):
        self.fleet = fleet
        self.window_us = window_us
        self.hold_us = hold_us
        #: (viewer, service_type, excluded-members) -> (elected_at_us,
        #: member_id).  ``viewer`` is "" on the shared-monitor path, so
        #: wire-mode keys never collide with classic ones.
        self._elected: dict[
            tuple[str, str, tuple[str, ...]], tuple[int, str]
        ] = {}
        #: Every (time_us, service_type, member_id) decision, for tests and
        #: the Fig. 6-style benchmark traces.
        self.history: list[tuple[int, str, str]] = []
        #: Elections that *changed* an existing choice for the same key —
        #: the flapping measure the adversity bench reads.
        self.flaps: int = 0

    def member_load(self, member_id: str) -> float:
        """A member's edge-side load: the worst utilization among its
        non-backbone segments (its own leaf LANs).

        A member homed only on the backbone is ranked by the backbone
        itself — it has no edge to protect.
        """
        member = self.fleet.members.get(member_id)
        if member is None:
            return float("inf")
        node = member.indiss.node
        edge_segments = [
            seg.name for seg in node.segments if seg.name != self.fleet.segment_name
        ]
        if not edge_segments:
            return segment_utilization(
                node, self.fleet.segment_name, window_us=self.window_us
            )
        return max(
            segment_utilization(node, name, window_us=self.window_us)
            for name in edge_segments
        )

    def _viewed_load(self, viewer: str, member_id: str) -> float:
        """``member_id``'s load as ``viewer`` sees it from wire samples.

        The viewer's own load is measured locally (a member always knows
        its own segments); a peer it has no sample for ranks worst — an
        unheard peer may be unreachable, so electing it risks silence.
        """
        if member_id == viewer:
            return self.member_load(member_id)
        member = self.fleet.members.get(viewer)
        if member is None:
            return float("inf")
        sample = member.handle.util_samples.get(member_id)
        return sample[1] if sample is not None else float("inf")

    def responder(
        self,
        service_type: str,
        exclude: frozenset[str] = frozenset(),
        viewer: Optional[str] = None,
    ) -> Optional[str]:
        """The member elected to answer backbone requests for this type.

        ``exclude`` removes candidates — the requester of a forwarded
        request, when it is itself a fleet member, must not be elected to
        answer its own question.  ``viewer`` names the member asking; with
        the fleet's ``wire_utilization`` knob on, the ranking then uses
        that member's wire-sample board (and hysteresis is held per
        viewer), so partitioned members can disagree.  Without the knob,
        ``viewer`` is ignored and the classic shared-monitor election is
        byte-identical to before.
        """
        # Electability filters the board: a detached member (Fault-step
        # victim whose segments are gone) or a crashed/suspect/dead one
        # cannot hear the request it would be elected to answer, so
        # electing it guarantees silence.  Detector off + no churn leaves
        # every member electable — the classic board, byte-identical.
        candidates = [
            m
            for m in self.fleet.members
            if m not in exclude and self.fleet.is_electable(m)
        ]
        if not candidates:
            return None
        wire = self.fleet.wire_utilization and viewer is not None
        now = self.fleet.network.scheduler.now_us
        key = (viewer if wire else "", service_type, tuple(sorted(exclude)))
        held = self._elected.get(key)
        if held is not None and now - held[0] < self.hold_us and held[1] in candidates:
            return held[1]
        if wire:
            elected = min(
                candidates, key=lambda m: (self._viewed_load(viewer, m), m)
            )
        else:
            elected = min(candidates, key=lambda m: (self.member_load(m), m))
        if held is not None and held[1] != elected:
            self.flaps += 1
            self._obs_flap(key[0], service_type, now)
        self._elected[key] = (now, elected)
        if not self.history or self.history[-1][1:] != (service_type, elected):
            self.history.append((now, service_type, elected))
        return elected

    def _obs_flap(self, viewer: str, service_type: str, now: int) -> None:
        obs = self.fleet.network.obs
        if obs.on:
            obs.metrics.counter(
                "election.flap", member=viewer or "fleet", type=service_type
            ).inc()

    def disagreement(self, service_type: str) -> dict[str, Optional[str]]:
        """Each member's current elected responder, keyed by viewer.

        More than one distinct value means the fleet disagrees — the
        window the adversity bench measures across a partition/heal
        cycle.  Only meaningful under ``wire_utilization`` (the shared-
        monitor path cannot disagree by construction).
        """
        return {
            member_id: self.responder(service_type, viewer=member_id)
            for member_id in sorted(self.fleet.members)
        }

    def invalidate(self) -> None:
        """Drop held elections (membership changed)."""
        self._elected.clear()


__all__ = ["GatewayElector"]

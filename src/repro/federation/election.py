"""Route-aware responder election for a gateway fleet (extends Fig. 6).

The paper's adaptation manager flips one instance between passive and
active from a *network-wide* traffic threshold.  A fleet on a shared
backbone needs the per-segment refinement: when several gateways could all
answer a backbone request from their (gossip-warmed) caches, exactly one
should — and it should be the one whose *edge* LANs are quietest, so the
answer costs bandwidth where there is bandwidth to spare.

:class:`GatewayElector` ranks fleet members by the
:func:`repro.core.adaptation.segment_utilization` of their non-backbone
segments (ties broken by member id, so elections are deterministic) and
holds each election for ``hold_us`` of virtual time — hysteresis against
electing a different responder for every request while utilization
fluctuates.  Every member evaluates the same shared traffic monitors, so
the fleet agrees on the responder without extra protocol traffic; a real
deployment would piggyback utilization samples on the gossip digests (see
ROADMAP follow-ons).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..core.adaptation import segment_utilization

if TYPE_CHECKING:  # pragma: no cover
    from .fleet import GatewayFleet


class GatewayElector:
    """Per-(segment, service-type) responder election for one fleet."""

    def __init__(
        self,
        fleet: "GatewayFleet",
        window_us: int = 1_000_000,
        hold_us: int = 1_000_000,
    ):
        self.fleet = fleet
        self.window_us = window_us
        self.hold_us = hold_us
        #: (service_type, excluded-members) -> (elected_at_us, member_id).
        self._elected: dict[tuple[str, tuple[str, ...]], tuple[int, str]] = {}
        #: Every (time_us, service_type, member_id) decision, for tests and
        #: the Fig. 6-style benchmark traces.
        self.history: list[tuple[int, str, str]] = []

    def member_load(self, member_id: str) -> float:
        """A member's edge-side load: the worst utilization among its
        non-backbone segments (its own leaf LANs).

        A member homed only on the backbone is ranked by the backbone
        itself — it has no edge to protect.
        """
        member = self.fleet.members.get(member_id)
        if member is None:
            return float("inf")
        node = member.indiss.node
        edge_segments = [
            seg.name for seg in node.segments if seg.name != self.fleet.segment_name
        ]
        if not edge_segments:
            return segment_utilization(
                node, self.fleet.segment_name, window_us=self.window_us
            )
        return max(
            segment_utilization(node, name, window_us=self.window_us)
            for name in edge_segments
        )

    def responder(
        self, service_type: str, exclude: frozenset[str] = frozenset()
    ) -> Optional[str]:
        """The member elected to answer backbone requests for this type.

        ``exclude`` removes candidates — the requester of a forwarded
        request, when it is itself a fleet member, must not be elected to
        answer its own question.
        """
        candidates = [m for m in self.fleet.members if m not in exclude]
        if not candidates:
            return None
        now = self.fleet.network.scheduler.now_us
        key = (service_type, tuple(sorted(exclude)))
        held = self._elected.get(key)
        if held is not None and now - held[0] < self.hold_us and held[1] in candidates:
            return held[1]
        elected = min(candidates, key=lambda m: (self.member_load(m), m))
        self._elected[key] = (now, elected)
        if not self.history or self.history[-1][1:] != (service_type, elected):
            self.history.append((now, service_type, elected))
        return elected

    def invalidate(self) -> None:
        """Drop held elections (membership changed)."""
        self._elected.clear()


__all__ = ["GatewayElector"]

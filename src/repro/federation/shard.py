"""Consistent-hash partitioning of service types across a gateway fleet.

The surveys the ROADMAP cites (Talal & Rachid; Ali et al.'s multi-interface
Grid discovery) both observe that boundary-placed discovery nodes scale by
*partitioning* the directory between them rather than replicating every
lookup.  The :class:`ShardRing` is that partition: each fleet member claims
``vnodes`` points on a 64-bit ring, and the owner of a normalized service
type is the member whose point follows the type's hash.  Adding or removing
one member therefore only remaps the keys that member owned (or now owns) —
the property the rebalancing tests pin down.

Hashing uses ``blake2b`` rather than Python's ``hash`` so ownership is
stable across processes and ``PYTHONHASHSEED`` values (benchmark runs must
be reproducible).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Optional


def ring_hash(value: str) -> int:
    """Stable 64-bit hash used for both vnode points and lookup keys."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class ShardRing:
    """A consistent-hash ring over fleet member identifiers."""

    def __init__(self, members: Iterable[str] = (), vnodes: int = 64):
        if vnodes < 1:
            raise ValueError(f"vnodes must be >= 1, got {vnodes}")
        self._vnodes = vnodes
        self._members: set[str] = set()
        #: Sorted (point, member) pairs; lookups bisect this.
        self._ring: list[tuple[int, str]] = []
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member_id: str) -> bool:
        return member_id in self._members

    @property
    def members(self) -> list[str]:
        return sorted(self._members)

    @property
    def vnodes(self) -> int:
        return self._vnodes

    def add(self, member_id: str) -> None:
        """Claim ``vnodes`` ring points for a new member (idempotent)."""
        if member_id in self._members:
            return
        self._members.add(member_id)
        for i in range(self._vnodes):
            point = (ring_hash(f"{member_id}#{i}"), member_id)
            bisect.insort(self._ring, point)

    def remove(self, member_id: str) -> None:
        """Release a member's points; its keys fall to their successors."""
        if member_id not in self._members:
            return
        self._members.discard(member_id)
        self._ring = [entry for entry in self._ring if entry[1] != member_id]

    def owner(self, key: str, exclude: frozenset[str] = frozenset()) -> Optional[str]:
        """The member owning ``key`` (None on an empty ring).

        ``exclude`` skips members while walking the ring, answering "who
        would own this key without those members" (used by rebalancing
        analyses; returns None when every member is excluded).  The
        dispatch path itself never excludes anyone from *ownership* — a
        requester-owned type is fine, because the requesting gateway
        already re-issued the request natively before it reached the
        backbone — requester exclusion applies to responder *election*
        only (see :meth:`repro.federation.GatewayElector.responder`).
        """
        if not self._ring:
            return None
        point = ring_hash(key)
        index = bisect.bisect_left(self._ring, (point, ""))
        size = len(self._ring)
        for step in range(size):
            member = self._ring[(index + step) % size][1]
            if member not in exclude:
                return member
        return None

    def assignment(self, keys: Iterable[str]) -> dict[str, str]:
        """key -> owner for a batch of keys (rebalancing tests/benchmarks)."""
        return {key: self.owner(key) for key in keys}

    def spread(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each member owns."""
        counts = {member: 0 for member in self._members}
        for key in keys:
            owner = self.owner(key)
            if owner is not None:
                counts[owner] += 1
        return counts


__all__ = ["ShardRing", "ring_hash"]

"""Anti-entropy gossip of ServiceCache records between fleet gateways.

After PR 1 every gateway on a backbone re-discovered every service on its
own; the federated cache replaces that with periodic peer exchange.  The
protocol is classic two-message anti-entropy over the simulated UDP layer:

1. every ``period_us`` a gossiper unicasts a **digest** — each live cache
   key with its absolute expiry — to the next peer in round-robin order;
2. a peer receiving a digest pushes back a **delta** containing only the
   records the sender is missing or holds staler than the peer does; when
   the digests already agree, *no record data moves* (steady-state gossip
   is delta-only, which the convergence tests assert).

Records travel with their absolute virtual-time expiry, so a record never
outlives its originally advertised TTL by being passed around, and an
expired record can never be resurrected by a slow peer
(:meth:`repro.core.cache.ServiceCache.merge` enforces both).  Provenance
(``source_sdp``) rides along, so a gossiped record still answers only
requesters of *other* protocols, exactly like a locally learnt one.

Retractions propagate as fast as discoveries: a removal (byebye) plants a
short-lived **tombstone** in the cache, digests and deltas carry live
tombstones, and a peer adopting one drops its stale copy — while the
tombstone lives, the record cannot be re-learnt from a lagging peer, but a
record whose implied observation time postdates the deletion (a genuine
re-announcement) still wins.

Rounds are staggered per member so a fleet does not gossip in lockstep.

**Tombstone TTL contract.**  A tombstone lives for
``ServiceCache.tombstone_ttl_s`` (15 s) of *virtual* time from the
deletion; ``_evict`` drops it afterwards.  While it lives, the retraction
is monotone: no digest/delta exchange can re-learn the dead record (only a
genuine re-announcement observed after the deletion wins).  After it
expires, the only remaining guard is the record's own absolute expiry — a
member that was **detached for longer than the TTL** (fleet churn, a
partition outlasting 15 s) never saw the tombstone, still holds the
retracted record, and on reattach will advertise it again; peers whose
tombstones have TTL'd out will re-adopt it until the record's own lifetime
runs out.  That resurrection window is pinned by
``tests/federation/test_adversity.py`` — extending the contract (e.g.
tombstone catch-up on reattach) must move that test deliberately.

**Loss tolerance.**  Every message here is fire-and-forget UDP: a dropped
digest simply delays convergence one round, a dropped delta leaves the
digest disagreement in place so the next round retries.  With
``catchup_after=k`` set, a member escalates on a peer that stayed silent
for ``k`` consecutive digests it sent them: it pushes a full catch-up
delta (live records + live tombstones) directly, skipping the
digest/delta handshake that keeps being dropped.  Off by default — a
lossless fleet must gossip byte-identically with the knob absent.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..net import Datagram, Endpoint
from ..sdp.base import ServiceRecord
from .shard import ring_hash

if TYPE_CHECKING:  # pragma: no cover
    from ..core.indiss import Indiss
    from .fleet import GatewayFleet

#: UDP port the gossipers bind (unassigned in the IANA registry the
#: monitor scans, so gossip traffic is never mistaken for SDP traffic).
GOSSIP_PORT = 4610

#: Records per delta message; a digest round moves at most this many and
#: the remainder follows in later rounds (bounds datagram size).
DEFAULT_MAX_DELTA_RECORDS = 32


@dataclass
class GossipStats:
    """Counters the convergence tests and federation benchmarks read."""

    rounds: int = 0
    digests_sent: int = 0
    digests_received: int = 0
    deltas_sent: int = 0
    deltas_received: int = 0
    records_sent: int = 0
    records_applied: int = 0
    records_ignored: int = 0
    records_expired: int = 0
    #: Retraction tombstones pushed to peers still holding the record.
    tombstones_sent: int = 0
    #: Tombstones adopted from a peer (entry dropped and/or news learnt).
    tombstones_applied: int = 0
    decode_errors: int = 0
    #: Digest payloads actually serialized (encode-once: a digest is
    #: rebuilt only when the cache's version moved; steady-state rounds
    #: reuse the previous round's bytes, so ``digests_sent`` grows while
    #: this stands still).
    digest_encodes: int = 0
    #: Per-record wire forms actually built for deltas; records re-sent at
    #: the same freshness reuse the cached form (``records_sent`` counts
    #: every record that travelled).
    record_encodes: int = 0
    #: Catch-up escalations fired at peers silent for ``catchup_after``
    #: consecutive digest rounds (0 unless the knob is set).
    catchup_escalations: int = 0
    #: Records pushed inside catch-up deltas.
    catchup_records: int = 0
    #: Wire bytes spent on catch-up deltas.
    catchup_bytes: int = 0
    #: State-transfer bootstraps this member requested (restart path).
    bootstrap_requests: int = 0
    #: Bootstrap requests this member answered as the donor.
    bootstrap_served: int = 0
    #: Live records shipped inside served bootstraps (uncapped — a
    #: bootstrap is one full cache transfer, not a paced delta).
    bootstrap_records_sent: int = 0
    #: Wire bytes spent serving bootstraps.
    bootstrap_bytes: int = 0
    #: Records this member adopted from a received bootstrap.
    bootstrap_records_applied: int = 0


def _record_to_wire(key: tuple[str, str], entry) -> dict:
    record = entry.record
    return {
        "t": record.service_type,
        "u": record.url,
        "a": dict(record.attributes),
        "l": record.lifetime_s,
        "s": record.source_sdp,
        "loc": record.location,
        "x": entry.expires_at_us,
    }


def _record_from_wire(wire: dict) -> tuple[ServiceRecord, float]:
    record = ServiceRecord(
        service_type=str(wire.get("t", "")),
        url=str(wire.get("u", "")),
        attributes={str(k): str(v) for k, v in dict(wire.get("a", {})).items()},
        lifetime_s=int(wire.get("l", 3600)),
        source_sdp=str(wire.get("s", "")),
        location=str(wire.get("loc", "")),
    )
    return record, float(wire.get("x", 0))


class CacheGossiper:
    """Periodic cache anti-entropy for one fleet member."""

    def __init__(
        self,
        indiss: "Indiss",
        fleet: "GatewayFleet",
        member_id: str,
        period_us: int = 500_000,
        max_delta_records: int = DEFAULT_MAX_DELTA_RECORDS,
        port: int = GOSSIP_PORT,
        catchup_after: int | None = None,
    ):
        if period_us <= 0:
            raise ValueError(f"period_us must be positive, got {period_us}")
        if catchup_after is not None and catchup_after < 1:
            raise ValueError(f"catchup_after must be >= 1, got {catchup_after}")
        self.indiss = indiss
        self.fleet = fleet
        self.member_id = member_id
        self.period_us = period_us
        self.max_delta_records = max_delta_records
        self.port = port
        self.catchup_after = catchup_after
        #: Consecutive digests sent to each peer without hearing anything
        #: back from it (loss-tolerance escalation; see module docstring).
        self._silent_rounds: dict[str, int] = {}
        self.stats = GossipStats()
        self._peer_cursor = 0
        #: Encode-once digest: (cache version it was built at, payload).
        self._digest_payload: tuple[int, bytes] | None = None
        #: Per-record wire-form cache for deltas: key -> (expiry, wire dict).
        self._wire_cache: dict[tuple[str, str], tuple[float, dict]] = {}
        self._socket = indiss.node.udp.socket().bind(port, reuse=True)
        self._socket.on_datagram(self._on_datagram)
        #: Virtual time this member finished applying a requested
        #: bootstrap (state transfer complete); None until then.  The
        #: chaos bench reads time-to-recover off this.
        self.bootstrap_completed_at: int | None = None
        #: Virtual time of the latest digest send (flight recorder only):
        #: a delta arriving back closes a ``gossip.exchange`` span — the
        #: digest -> delta round duration.
        self._obs_digest_sent_us: int | None = None
        # Deterministic per-member stagger keeps fleet rounds out of phase.
        offset = ring_hash(member_id) % period_us
        self._task = indiss.node.every(period_us, self.run_round, initial_delay_us=offset)

    def stop(self) -> None:
        self._task.stop()
        self._socket.close()

    # -- sending ------------------------------------------------------------

    def run_round(self) -> None:
        """One gossip round: digest to the next round-robin peer."""
        peers = self.fleet.peer_addresses(self.member_id)
        if not peers:
            return
        self.stats.rounds += 1
        # Each round doubles as a heartbeat tick: the fleet's failure
        # detector ages every peer this member has not heard from (a
        # no-op unless the detector is armed).
        self.fleet.health.note_round(self.member_id, self.indiss.node.now_us)
        peer = peers[self._peer_cursor % len(peers)]
        self._peer_cursor += 1
        payload = self._digest_bytes()
        self._send_raw(peer, payload)
        self.stats.digests_sent += 1
        if self.catchup_after is not None:
            silent = self._silent_rounds.get(peer, 0) + 1
            if silent >= self.catchup_after:
                self._catch_up(peer)
                silent = 0
            self._silent_rounds[peer] = silent
        obs = self.indiss.node.network.obs
        if obs.on:
            now = self.indiss.node.now_us
            self._obs_digest_sent_us = now
            obs.trace.instant(
                "gossip.round", now, self._obs_district(),
                tid=self.member_id, cat="gossip",
                args={"peer": peer, "digest_bytes": len(payload)},
            )
            obs.metrics.counter("federation.rounds", member=self.member_id).inc()
            obs.metrics.histogram("federation.digest_bytes").observe(len(payload))

    def _digest_bytes(self) -> bytes:
        """The serialized digest, rebuilt only when the cache changed.

        The cache's digest is a pure function of its live entries (absolute
        expiries, so nothing in it depends on *when* it is serialized), and
        the ``from`` field is fixed — so one payload serves every peer and
        every steady-state round until the cache's version moves.  TTL
        expiry is folded in by evicting first, which bumps the version.
        """
        cache = self.indiss.cache
        cache.evict_expired()
        wire_util = self.fleet.wire_utilization
        cached = self._digest_payload
        if not wire_util and cached is not None and cached[0] == cache.version:
            return cached[1]
        entries = {
            f"{key[0]}|{key[1]}": expires
            for key, expires in cache.digest().items()
        }
        tombstones = {
            f"{key[0]}|{key[1]}": [deleted, expires]
            for key, (deleted, expires) in cache.tombstones().items()
        }
        message = {"kind": "digest", "from": self.member_id, "entries": entries}
        if tombstones:
            message["tombstones"] = tombstones
        if wire_util:
            # Piggyback this member's *locally measured* utilization so
            # peers elect from wire-carried samples, not shared monitors.
            # The sample changes every round, so the encode-once cache is
            # bypassed while the knob is on (off keeps it byte-identical).
            message["util"] = [
                self.indiss.node.now_us,
                round(self.fleet.elector.member_load(self.member_id), 6),
            ]
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        if not wire_util:
            self._digest_payload = (cache.version, payload)
        self.stats.digest_encodes += 1
        return payload

    def _catch_up(self, peer: str) -> None:
        """Escalate at a silent peer: push a full delta unsolicited.

        ``catchup_after`` consecutive digests to this peer produced no
        reply of any kind — on a lossy path the two-message handshake may
        keep failing at either leg, so skip it: send every live record
        (bounded by ``max_delta_records``) plus live tombstones directly.
        The peer's ordinary merge path applies whatever it lacks; absolute
        expiries make replayed records harmless.
        """
        records = []
        for key, entry in self.indiss.cache.live_entries():
            records.append(self._wire_record(key, entry))
            if len(records) >= self.max_delta_records:
                break
        tombstones = {
            f"{key[0]}|{key[1]}": [deleted, expires]
            for key, (deleted, expires) in self.indiss.cache.tombstones().items()
        }
        if not records and not tombstones:
            return
        delta = {"kind": "delta", "from": self.member_id, "records": records}
        if tombstones:
            delta["tombstones"] = tombstones
            self.stats.tombstones_sent += len(tombstones)
        payload = json.dumps(delta, sort_keys=True).encode("utf-8")
        self._send_raw(peer, payload)
        self.stats.deltas_sent += 1
        self.stats.records_sent += len(records)
        self.stats.catchup_escalations += 1
        self.stats.catchup_records += len(records)
        self.stats.catchup_bytes += len(payload)
        obs = self.indiss.node.network.obs
        if obs.on:
            obs.metrics.counter(
                "gossip.catchup.escalations", member=self.member_id
            ).inc()
            obs.metrics.counter(
                "gossip.catchup.bytes", member=self.member_id
            ).inc(len(payload))
            obs.trace.instant(
                "gossip.catchup", self.indiss.node.now_us, self._obs_district(),
                tid=self.member_id, cat="gossip",
                args={"peer": peer, "records": len(records)},
            )

    def request_bootstrap(self) -> None:
        """Ask one live peer for a full cache transfer (the restart path).

        A gateway that just restarted (or replaced a dead one) holds an
        empty cache; waiting for anti-entropy to refill it takes one
        digest/delta round trip per ``max_delta_records`` batch.  The
        bootstrap handshake collapses that to a single exchange: pick the
        first *electable* peer in stable order (a suspect or detached
        donor would serve silence) and request its entire live cache,
        tombstones included.  Fire-and-forget like all gossip — if the
        request or the reply drops, ordinary anti-entropy still converges;
        bootstrap is an accelerator, not a correctness mechanism.
        """
        for peer in self.fleet.peer_addresses(self.member_id):
            if not self.fleet.is_electable(peer):
                continue
            message = {"kind": "bootstrap_req", "from": self.member_id}
            self._send_raw(
                peer, json.dumps(message, sort_keys=True).encode("utf-8")
            )
            self.stats.bootstrap_requests += 1
            obs = self.indiss.node.network.obs
            if obs.on:
                obs.metrics.counter(
                    "cache.bootstrap.requests", member=self.member_id
                ).inc()
                obs.trace.instant(
                    "cache.bootstrap.request", self.indiss.node.now_us,
                    self._obs_district(), tid=self.member_id, cat="gossip",
                    args={"donor": peer},
                )
            return

    def _obs_district(self) -> int:
        node = self.indiss.node
        return node.network.partition_of_node(node)

    def _send(self, peer_address: str, message: dict) -> None:
        payload = json.dumps(message, sort_keys=True).encode("utf-8")
        obs = self.indiss.node.network.obs
        if obs.on and message.get("kind") == "delta":
            obs.metrics.histogram("federation.delta_bytes").observe(len(payload))
            obs.metrics.counter(
                "federation.delta_records", member=self.member_id
            ).inc(len(message.get("records", ())))
        self._send_raw(peer_address, payload)

    def _send_raw(self, peer_address: str, payload: bytes) -> None:
        self._socket.sendto(payload, Endpoint(peer_address, self.port))

    # -- receiving ----------------------------------------------------------

    def _on_datagram(self, datagram: Datagram) -> None:
        try:
            message = json.loads(datagram.payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self.stats.decode_errors += 1
            return
        kind = message.get("kind")
        sender = str(message.get("from", ""))
        if sender and sender in self.fleet.members:
            # Any traffic from a member resets its silent-round counter
            # and feeds the failure detector's heartbeat accounting.
            if self._silent_rounds.get(sender):
                self._silent_rounds[sender] = 0
            self.fleet.health.note_heard(
                self.member_id, sender, self.indiss.node.now_us
            )
            util = message.get("util")
            if isinstance(util, (list, tuple)) and len(util) == 2:
                self._note_util_sample(sender, util)
        if kind == "digest":
            self._handle_digest(message, datagram.source)
        elif kind == "delta":
            self._handle_delta(message)
        elif kind == "bootstrap_req":
            self._handle_bootstrap_request(message, datagram.source)
        elif kind == "bootstrap":
            self._handle_bootstrap(message)
        else:
            self.stats.decode_errors += 1

    def _note_util_sample(self, sender: str, util) -> None:
        """Adopt a piggybacked utilization sample onto our handle's board."""
        handle = self.indiss.federation
        if handle is None:
            return
        try:
            handle.util_samples[sender] = (int(util[0]), float(util[1]))
        except (TypeError, ValueError):
            self.stats.decode_errors += 1

    def _apply_tombstones(self, wires) -> None:
        """Adopt a peer's retraction tombstones (digests carry them too,
        so retractions propagate as fast as discoveries)."""
        if not isinstance(wires, dict):
            self.stats.decode_errors += 1
            return
        for wire_key, pair in wires.items():
            try:
                deleted, expires = int(pair[0]), float(pair[1])
                service_type, _, url = str(wire_key).partition("|")
            except (TypeError, ValueError, IndexError):
                self.stats.decode_errors += 1
                continue
            if self.indiss.cache.apply_tombstone((service_type, url), deleted, expires):
                self.stats.tombstones_applied += 1

    def _handle_digest(self, message: dict, source: Endpoint) -> None:
        self.stats.digests_received += 1
        theirs = message.get("entries", {})
        if not isinstance(theirs, dict):
            self.stats.decode_errors += 1
            return
        if "tombstones" in message:
            self._apply_tombstones(message["tombstones"])
        records = []
        for key, entry in self.indiss.cache.live_entries():
            wire_key = f"{key[0]}|{key[1]}"
            try:
                their_expiry = float(theirs.get(wire_key, 0))
            except (TypeError, ValueError):
                self.stats.decode_errors += 1
                return  # a digest we cannot read is a digest we ignore
            if their_expiry >= entry.expires_at_us:
                continue  # peer is already at least as fresh
            records.append(self._wire_record(key, entry))
            if len(records) >= self.max_delta_records:
                break
        # The peer advertises entries we hold tombstones for: push the
        # retraction back so it stops offering (and serving) dead records.
        tombstones = {}
        our_tombstones = self.indiss.cache.tombstones()
        if our_tombstones:
            for key, (deleted, expires) in our_tombstones.items():
                wire_key = f"{key[0]}|{key[1]}"
                if wire_key in theirs:
                    tombstones[wire_key] = [deleted, expires]
        if not records and not tombstones:
            return  # digests agree: steady state moves no record data
        # Reply only to fleet members: a spoofed "from" must not steer the
        # delta (or crash the handler with an unroutable address).
        peer = str(message.get("from", ""))
        if peer not in self.fleet.members:
            peer = source.host
        if peer == self.member_id:
            self.stats.decode_errors += 1
            return
        delta = {"kind": "delta", "from": self.member_id, "records": records}
        if tombstones:
            delta["tombstones"] = tombstones
            self.stats.tombstones_sent += len(tombstones)
        self._send(peer, delta)
        self.stats.deltas_sent += 1
        self.stats.records_sent += len(records)

    def _wire_record(self, key: tuple[str, str], entry) -> dict:
        """Encode-once per record: the wire form depends only on the entry
        (record + absolute expiry), so a record pushed to several laggard
        peers across rounds is built once while its freshness stands."""
        cached = self._wire_cache.get(key)
        if cached is not None and cached[0] == entry.expires_at_us:
            return cached[1]
        wire = _record_to_wire(key, entry)
        if len(self._wire_cache) > 4 * self.max_delta_records:
            self._wire_cache.clear()  # bound memory under heavy churn
        self._wire_cache[key] = (entry.expires_at_us, wire)
        self.stats.record_encodes += 1
        return wire

    def _handle_delta(self, message: dict) -> None:
        self.stats.deltas_received += 1
        obs = self.indiss.node.network.obs
        if obs.on:
            now_us = self.indiss.node.now_us
            sent = self._obs_digest_sent_us
            if sent is not None and now_us >= sent:
                # The digest -> delta round trip this member initiated.
                obs.trace.span(
                    "gossip.exchange", sent, now_us - sent,
                    self._obs_district(), tid=self.member_id, cat="gossip",
                    args={"peer": str(message.get("from", ""))},
                )
                self._obs_digest_sent_us = None
        if "tombstones" in message:
            self._apply_tombstones(message["tombstones"])
        now = self.indiss.node.now_us
        records = message.get("records", ())
        if not isinstance(records, (list, tuple)):
            self.stats.decode_errors += 1
            return
        for wire in records:
            if not isinstance(wire, dict):
                self.stats.decode_errors += 1
                continue
            try:
                record, expires_at_us = _record_from_wire(wire)
            except (TypeError, ValueError):
                self.stats.decode_errors += 1
                continue
            if not record.url:
                self.stats.decode_errors += 1
                continue
            if expires_at_us <= now:
                self.stats.records_expired += 1
                continue
            if self.indiss.cache.merge(record, expires_at_us):
                self.stats.records_applied += 1
                if obs.on:
                    # Last virtual time gossip changed this member's state:
                    # the convergence-to-quiescence marker the report reads.
                    obs.metrics.counter(
                        "federation.records_applied", member=self.member_id
                    ).inc()
                    obs.metrics.gauge(
                        "federation.quiescence_us", member=self.member_id
                    ).set(now)
            else:
                self.stats.records_ignored += 1

    def _handle_bootstrap_request(self, message: dict, source: Endpoint) -> None:
        """Serve a full state transfer: every live record (uncapped — this
        is one cache handoff, not a paced delta) plus every live
        tombstone, so the requester inherits retractions as well as
        discoveries and the tombstone TTL contract survives the restart.
        Absolute expiries travel as always: a bootstrapped record keeps
        exactly the lifetime its original advertisement promised."""
        peer = str(message.get("from", ""))
        if peer not in self.fleet.members:
            peer = source.host
        if peer == self.member_id:
            self.stats.decode_errors += 1
            return
        records = [
            self._wire_record(key, entry)
            for key, entry in self.indiss.cache.live_entries()
        ]
        tombstones = {
            f"{key[0]}|{key[1]}": [deleted, expires]
            for key, (deleted, expires) in self.indiss.cache.tombstones().items()
        }
        reply = {"kind": "bootstrap", "from": self.member_id, "records": records}
        if tombstones:
            reply["tombstones"] = tombstones
            self.stats.tombstones_sent += len(tombstones)
        payload = json.dumps(reply, sort_keys=True).encode("utf-8")
        self._send_raw(peer, payload)
        self.stats.bootstrap_served += 1
        self.stats.bootstrap_records_sent += len(records)
        self.stats.bootstrap_bytes += len(payload)
        obs = self.indiss.node.network.obs
        if obs.on:
            obs.metrics.counter(
                "cache.bootstrap.served", member=self.member_id
            ).inc()
            obs.metrics.counter(
                "cache.bootstrap.bytes", member=self.member_id
            ).inc(len(payload))
            obs.trace.instant(
                "cache.bootstrap.serve", self.indiss.node.now_us,
                self._obs_district(), tid=self.member_id, cat="gossip",
                args={"peer": peer, "records": len(records)},
            )

    def _handle_bootstrap(self, message: dict) -> None:
        """Adopt a donor's full cache transfer through the ordinary merge
        path (absolute expiries, provenance, tombstone precedence all
        enforced by :meth:`ServiceCache.merge`), then stamp
        ``bootstrap_completed_at`` — the bench's recovery marker."""
        if "tombstones" in message:
            self._apply_tombstones(message["tombstones"])
        now = self.indiss.node.now_us
        records = message.get("records", ())
        if not isinstance(records, (list, tuple)):
            self.stats.decode_errors += 1
            return
        applied = 0
        for wire in records:
            if not isinstance(wire, dict):
                self.stats.decode_errors += 1
                continue
            try:
                record, expires_at_us = _record_from_wire(wire)
            except (TypeError, ValueError):
                self.stats.decode_errors += 1
                continue
            if not record.url:
                self.stats.decode_errors += 1
                continue
            if expires_at_us <= now:
                self.stats.records_expired += 1
                continue
            if self.indiss.cache.merge(record, expires_at_us):
                applied += 1
            else:
                self.stats.records_ignored += 1
        self.stats.bootstrap_records_applied += applied
        self.bootstrap_completed_at = now
        obs = self.indiss.node.network.obs
        if obs.on:
            obs.metrics.counter(
                "cache.bootstrap.applied", member=self.member_id
            ).inc(applied)
            obs.trace.instant(
                "cache.bootstrap.complete", now, self._obs_district(),
                tid=self.member_id, cat="gossip",
                args={"donor": str(message.get("from", "")), "applied": applied},
            )


__all__ = [
    "CacheGossiper",
    "GossipStats",
    "GOSSIP_PORT",
    "DEFAULT_MAX_DELTA_RECORDS",
]

"""Heartbeat failure detection for a gateway fleet (crash-stop model).

A crashed gateway is the one fault the paper's architecture cannot hide:
the gateway is the only bridge between its SDP islands, so its death
silently blinds whole segments.  The fleet therefore watches itself — and
it does so **without one extra wire message**: gossip digests already flow
peer-to-peer every round (see :class:`~repro.federation.CacheGossiper`),
so each digest doubles as a heartbeat and the detector merely counts.

State machine, per member, evaluated fleet-wide::

    alive --k missed rounds--> suspect --m more missed--> dead
      ^                           |
      +------ any traffic --------+          (dead is terminal until
                                              an explicit restart/reset)

"Missed rounds" are counted per *observer*: every live member's gossiper
reports its own round ticks (:meth:`FailureDetector.note_round`) and every
datagram it hears from a peer (:meth:`FailureDetector.note_heard`).  The
first observer whose count crosses a threshold drives the fleet-level
transition.  All counting happens at gossip-round events in virtual time
and draws no randomness, so detection latency is deterministic and bounded
by ``(suspect_after + dead_after) * gossip_period`` from the crash.

Because gossip targets rotate round-robin, an observer in a fleet of
``n`` members normally hears any given peer at least every ``n - 1`` of
its own rounds; ``suspect_after`` must exceed that gap or a healthy fleet
would suspect itself.  :meth:`GatewayFleet.__init__` validates nothing —
the world spec does — but the chaos scenarios use ``suspect_after >= n``.

On ``dead`` the fleet self-heals (see
:meth:`~repro.federation.GatewayFleet._on_member_dead`): the dead
member's ring points are released (only *its* keys rebalance — the
consistent-hash property the shard tests pin), held elections are
invalidated, and the repair is recorded for the chaos bench's
time-to-repair metric.

Both thresholds default to ``None`` — a fleet without them never counts,
never transitions, and gossips byte-identically to one built before this
module existed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .fleet import GatewayFleet

ALIVE = "alive"
SUSPECT = "suspect"
DEAD = "dead"


class FailureDetector:
    """Piggybacked heartbeat counting for one fleet; see module docstring."""

    def __init__(
        self,
        fleet: "GatewayFleet",
        suspect_after: Optional[int] = None,
        dead_after: Optional[int] = None,
    ):
        if suspect_after is not None and suspect_after < 1:
            raise ValueError(f"suspect_after must be >= 1, got {suspect_after}")
        if dead_after is not None and dead_after < 1:
            raise ValueError(f"dead_after must be >= 1, got {dead_after}")
        if dead_after is not None and suspect_after is None:
            raise ValueError("dead_after needs suspect_after")
        self.fleet = fleet
        self.suspect_after = suspect_after
        #: Additional missed rounds (beyond ``suspect_after``) before a
        #: suspect is declared dead; defaults to ``suspect_after``.
        self.dead_after = (
            dead_after if dead_after is not None else suspect_after
        )
        #: (observer, peer) -> consecutive observer rounds without traffic.
        self._missed: dict[tuple[str, str], int] = {}
        #: member -> status; members absent from the dict are alive.
        self.status: dict[str, str] = {}
        #: Every state transition: (virtual time, member, new status).
        #: The chaos bench reads time-to-detect off the ``dead`` entries.
        self.transitions: list[tuple[int, str, str]] = []

    @property
    def enabled(self) -> bool:
        return self.suspect_after is not None

    # -- queries -------------------------------------------------------------

    def status_of(self, member_id: str) -> str:
        return self.status.get(member_id, ALIVE)

    def is_alive(self, member_id: str) -> bool:
        return self.status_of(member_id) == ALIVE

    def is_down(self, member_id: str) -> bool:
        """Suspect or dead — the states owner-gated dispatch degrades on."""
        return self.status_of(member_id) != ALIVE

    def detect_bound_us(self, gossip_period_us: int) -> int:
        """The guaranteed worst-case crash-to-``dead`` latency."""
        if not self.enabled:
            return 0
        return (self.suspect_after + self.dead_after) * gossip_period_us

    # -- event feed (called by each member's gossiper) -----------------------

    def note_heard(self, observer: str, peer: str, now_us: int) -> None:
        """Any datagram from ``peer`` resets the observer's count for it.

        A suspect that speaks again is retracted to alive; ``dead`` is
        terminal under the crash-stop model — only an explicit
        :meth:`reset` (the restart path) revives it.
        """
        if not self.enabled:
            return
        self._missed[(observer, peer)] = 0
        if self.status.get(peer) == SUSPECT:
            self._set_status(peer, ALIVE, now_us)

    def note_round(self, observer: str, now_us: int) -> None:
        """One of ``observer``'s gossip rounds fired: age every peer."""
        if not self.enabled:
            return
        for peer in self.fleet.members:
            if peer == observer:
                continue
            count = self._missed.get((observer, peer), 0) + 1
            self._missed[(observer, peer)] = count
            status = self.status.get(peer, ALIVE)
            if status == DEAD:
                continue
            if status == ALIVE and count >= self.suspect_after:
                self._set_status(peer, SUSPECT, now_us)
                status = SUSPECT
            if status == SUSPECT and count >= self.suspect_after + self.dead_after:
                self._set_status(peer, DEAD, now_us)

    def reset(self, member_id: str) -> None:
        """Forget everything about a member (the restart/rejoin path)."""
        self.status.pop(member_id, None)
        for key in [k for k in self._missed if member_id in k]:
            del self._missed[key]

    # -- transitions ---------------------------------------------------------

    def _set_status(self, member_id: str, status: str, now_us: int) -> None:
        if status == ALIVE:
            self.status.pop(member_id, None)
        else:
            self.status[member_id] = status
        self.transitions.append((now_us, member_id, status))
        self._obs_transition(member_id, status, now_us)
        if status == DEAD:
            self.fleet._on_member_dead(member_id, now_us)

    def _obs_transition(self, member_id: str, status: str, now_us: int) -> None:
        obs = self.fleet.network.obs
        if not obs.on:
            return
        obs.trace.instant(
            "fleet.member.state", now_us, 0, tid=member_id, cat="fleet",
            args={"member": member_id, "status": status},
        )
        if status == SUSPECT:
            obs.metrics.counter("fleet.suspect", member=member_id).inc()
        elif status == DEAD:
            obs.metrics.counter("fleet.dead", member=member_id).inc()


__all__ = ["FailureDetector", "ALIVE", "SUSPECT", "DEAD"]

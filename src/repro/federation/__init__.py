"""Federation layer: a fleet of INDISS gateways cooperating on a backbone.

INDISS §4.2 places gateways on network boundaries; this package makes a
set of such gateways behave like one distributed discovery system instead
of N independent translators:

* :class:`CacheGossiper` — TTL'd anti-entropy exchange of
  :class:`~repro.core.cache.ServiceCache` records between fleet members
  (delta-only in steady state), so one gateway's discovery warms the whole
  fleet;
* :class:`ShardRing` — consistent-hash ownership of normalized service
  types, consulted by the ``shard-ring`` dispatch policy so each backbone
  request is translated by exactly one owner;
* :class:`GatewayElector` — per-segment-utilization election of the one
  responder that answers backbone requests from the gossiped cache
  (extends the Fig. 6 adaptation manager's traffic threshold);
* :class:`GatewayFleet` — membership, join/leave rebalancing, aggregate
  statistics;
* :class:`FailureDetector` — crash detection piggybacked on gossip
  heartbeats (``alive -> suspect -> dead`` in missed rounds), driving
  automatic ring repair and elector exclusion so the fleet self-heals.

See ARCHITECTURE.md ("Federation layer") for the composite picture and
``examples/federated_fleet.py`` for a runnable tour.
"""

from .election import GatewayElector
from .gossip import (
    CacheGossiper,
    DEFAULT_MAX_DELTA_RECORDS,
    GOSSIP_PORT,
    GossipStats,
)
from .fleet import (
    FederatedMember,
    FederationHandle,
    FederationStats,
    GatewayFleet,
)
from .health import ALIVE, DEAD, SUSPECT, FailureDetector
from .shard import ShardRing, ring_hash

__all__ = [
    "ALIVE",
    "CacheGossiper",
    "DEAD",
    "DEFAULT_MAX_DELTA_RECORDS",
    "FailureDetector",
    "FederatedMember",
    "FederationHandle",
    "FederationStats",
    "GOSSIP_PORT",
    "GatewayElector",
    "GatewayFleet",
    "GossipStats",
    "SUSPECT",
    "ShardRing",
    "ring_hash",
]

"""Scenario registry: every configuration the paper's §4.3 measures.

Each entry constructs a fresh simulated world (so trials are independent,
like the paper's 30 successive tests) and runs its phased workload,
returning a :class:`~repro.world.ScenarioOutcome`.

Since the World API redesign, scenarios are **declarative**: the worlds
live in :mod:`repro.world.scenarios` as :class:`~repro.world.WorldSpec`
catalogs, compiled and driven by :func:`repro.world.run_world`.  This
module keeps the classic callable-per-scenario surface — one function per
scenario with the historical signature — so the harness, benchmarks and
tests keep working unchanged, and ``SCENARIOS`` keeps its role as the
registry the CLI and perf gates iterate.

Naming follows the paper's notation: ``slp_to_upnp`` means an SLP client
searching for a UPnP-hosted service; ``service``/``client``/``gateway`` is
where INDISS runs.
"""

from __future__ import annotations

from typing import Callable

from ..world import ScenarioOutcome, run_world
from ..world.scenarios import (
    campus_fanout_spec,
    churn_backbone_spec,
    crash_recovery_spec,
    district_grid_spec,
    district_sweep_spec,
    federated_campus_spec,
    gateway_chain_spec,
    media_city_spec,
    metro_backbone_spec,
    multi_segment_home_spec,
    native_slp_spec,
    native_upnp_spec,
    partitioned_campus_spec,
    serving_backbone_spec,
    serving_grid_spec,
    sharded_backbone_spec,
    slp_to_jini_gateway_spec,
    slp_to_upnp_client_side_spec,
    slp_to_upnp_gateway_spec,
    slp_to_upnp_service_side_spec,
    upnp_to_slp_client_side_spec,
    upnp_to_slp_service_side_spec,
)
from .calibration import CostModel, PAPER_TESTBED


# -- Figure 7: native baselines -------------------------------------------------


def native_slp(seed: int = 0, costs: CostModel = PAPER_TESTBED) -> ScenarioOutcome:
    """SLP client -> SLP service, no INDISS (paper: 0.7 ms)."""
    return run_world(native_slp_spec(), seed=seed, costs=costs)


def native_upnp(seed: int = 0, costs: CostModel = PAPER_TESTBED) -> ScenarioOutcome:
    """UPnP control point -> UPnP device, no INDISS (paper: 40 ms)."""
    return run_world(native_upnp_spec(), seed=seed, costs=costs)


# -- Figure 8: INDISS on the service side --------------------------------------


def slp_to_upnp_service_side(
    seed: int = 0, costs: CostModel = PAPER_TESTBED
) -> ScenarioOutcome:
    """SLP client -> [SLP-UPnP] -> UPnP service (paper: 65 ms)."""
    return run_world(slp_to_upnp_service_side_spec(), seed=seed, costs=costs)


def upnp_to_slp_service_side(
    seed: int = 0, costs: CostModel = PAPER_TESTBED
) -> ScenarioOutcome:
    """UPnP client -> [UPnP-SLP] -> SLP service (paper: 40 ms)."""
    return run_world(upnp_to_slp_service_side_spec(), seed=seed, costs=costs)


# -- Figure 9: INDISS on the client side ----------------------------------------


def slp_to_upnp_client_side(
    seed: int = 0, costs: CostModel = PAPER_TESTBED
) -> ScenarioOutcome:
    """[SLP-UPnP] client -> UPnP service across the LAN (paper: 80 ms)."""
    return run_world(slp_to_upnp_client_side_spec(), seed=seed, costs=costs)


def upnp_to_slp_client_side(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    warm_cache: bool = True,
) -> ScenarioOutcome:
    """[UPnP-SLP] client -> SLP service (paper: 0.12 ms, best case).

    The paper's figure is only reachable when INDISS already knows the SLP
    service (see DESIGN.md); ``warm_cache=True`` reproduces that by letting
    a first search populate the cache, then measuring the second, past the
    duplicate-suppression window.  ``warm_cache=False`` measures the
    cold-path variant (a network SLP round trip inside the SSDP answer).
    """
    return run_world(
        upnp_to_slp_client_side_spec(warm_cache=warm_cache), seed=seed, costs=costs
    )


# -- Gateway placement (paper §4.2's dedicated-node configuration) ---------------


def slp_to_upnp_gateway(seed: int = 0, costs: CostModel = PAPER_TESTBED) -> ScenarioOutcome:
    """SLP client -> gateway INDISS -> UPnP service (our ablation)."""
    return run_world(slp_to_upnp_gateway_spec(), seed=seed, costs=costs)


def slp_to_jini_gateway(seed: int = 0, costs: CostModel = PAPER_TESTBED) -> ScenarioOutcome:
    """SLP client -> gateway INDISS -> Jini registrar (our ablation).

    Jini is repository-based: the gateway first hears the registrar's
    announcement, then serves the SLP request with a unicast TCP lookup.
    """
    return run_world(slp_to_jini_gateway_spec(), seed=seed, costs=costs)


# -- Multi-segment internetworks (gateway placement at network boundaries) -------


def multi_segment_home(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    nodes: int = 50,
    capture: bool = False,
) -> ScenarioOutcome:
    """Two-segment home: SLP client upstairs, UPnP service in the den."""
    return run_world(
        multi_segment_home_spec(nodes=nodes), seed=seed, costs=costs, capture=capture
    )


def gateway_chain(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    segments: int = 3,
    capture: bool = False,
) -> ScenarioOutcome:
    """SLP client on the first segment, UPnP service on the last, and a
    bridged INDISS gateway on every boundary in between."""
    return run_world(
        gateway_chain_spec(segments=segments), seed=seed, costs=costs, capture=capture
    )


def campus_fanout(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    segments: int = 6,
    nodes: int = 120,
    capture: bool = False,
) -> ScenarioOutcome:
    """A campus backbone with leaf LANs, one bridged gateway per leaf."""
    return run_world(
        campus_fanout_spec(segments=segments, nodes=nodes),
        seed=seed, costs=costs, capture=capture,
    )


# -- Federated gateway fleets (gossip + shard ring + election) -------------------


def federated_campus(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    segments: int = 6,
    nodes: int = 500,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    federated: bool = True,
    capture: bool = False,
) -> ScenarioOutcome:
    """The campus backbone with the leaf gateways running as one fleet.

    Measures a cold-edge query (headline), a repeat query inside the dedup
    window, and a warm-edge query served purely from the gossip-replicated
    record; ``federated=False`` builds the identical topology with plain
    ``gateway-forward`` gateways — the baseline the benchmarks compare
    against.  See :func:`repro.world.scenarios.federated_campus_spec`.
    """
    return run_world(
        federated_campus_spec(
            segments=segments, nodes=nodes, gossip_period_us=gossip_period_us,
            warmup_us=warmup_us, federated=federated,
        ),
        seed=seed, costs=costs, capture=capture,
    )


def partitioned_campus(
    seed: int = 0, costs: CostModel = PAPER_TESTBED, **params
) -> ScenarioOutcome:
    """The federated campus across a scripted partition/heal cycle with
    every adversity knob on (lossy gossip link, silent-peer catch-up,
    wire-carried elections, cold-start escalation)."""
    return run_world(partitioned_campus_spec(**params), seed=seed, costs=costs)


def crash_recovery(
    seed: int = 0, costs: CostModel = PAPER_TESTBED, **params
) -> ScenarioOutcome:
    """The federated campus through one gateway crash-stop/restart cycle:
    heartbeat failure detection, automatic ring repair, elector exclusion,
    and a cold restart bootstrapped by a full cache transfer."""
    return run_world(crash_recovery_spec(**params), seed=seed, costs=costs)


def sharded_backbone(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    members: int = 6,
    nodes: int = 800,
    service_types: int = 4,
    gossip_period_us: int = 200_000,
    warmup_us: int = 1_500_000,
    chatter_per_leaf: int = 0,
    chatter_period_us: int = 400_000,
    capture: bool = False,
) -> ScenarioOutcome:
    """Many service types sharded across a fleet on one backbone.

    Even-indexed types announce at boot (gossip warms the fleet), odd
    types stay cold in their ring owner's leaf; ``extras["per_type"]``
    records who owned and answered each.  ``chatter_per_leaf`` adds the
    sustained edge load the core-hot-path benchmarks measure under.
    """
    return run_world(
        sharded_backbone_spec(
            members=members, nodes=nodes, service_types=service_types,
            gossip_period_us=gossip_period_us, warmup_us=warmup_us,
            chatter_per_leaf=chatter_per_leaf, chatter_period_us=chatter_period_us,
        ),
        seed=seed, costs=costs, capture=capture,
    )


# -- Metro-scale internetwork (the core hot-path stress workload) ----------------


def metro_backbone(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    districts: int = 5,
    leaves_per_district: int = 8,
    nodes: int = 5000,
    types_per_district: int = 4,
    chatter_per_leaf: int = 10,
    chatter_period_us: int = 200_000,
    gossip_period_us: int = 250_000,
    warmup_us: int = 1_200_000,
    run_us: int = 5_000_000,
    capture: bool = False,
) -> ScenarioOutcome:
    """A city-scale internetwork: chained district backbones, each with its
    own federated gateway fleet, under sustained edge query load."""
    return run_world(
        metro_backbone_spec(
            districts=districts, leaves_per_district=leaves_per_district,
            nodes=nodes, types_per_district=types_per_district,
            chatter_per_leaf=chatter_per_leaf, chatter_period_us=chatter_period_us,
            gossip_period_us=gossip_period_us, warmup_us=warmup_us, run_us=run_us,
        ),
        seed=seed, costs=costs, capture=capture,
    )


# -- Media city (the UPnP-dominated parse-once stress workload) -------------------


def media_city(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    districts: int = 3,
    leaves_per_district: int = 6,
    nodes: int = 3000,
    types_per_district: int = 4,
    devices_per_leaf: int = 8,
    cp_per_leaf: int = 5,
    cp_period_us: int = 500_000,
    notify_period_us: int = 1_200_000,
    slp_island_leaves: int = 2,
    slp_chatter_per_island: int = 5,
    slp_chatter_period_us: int = 400_000,
    jini_registrars_per_district: int = 1,
    jini_listeners_per_district: int = 3,
    gossip_period_us: int = 250_000,
    warmup_us: int = 800_000,
    run_us: int = 4_000_000,
    capture: bool = False,
    parse_once: bool = True,
) -> ScenarioOutcome:
    """A UPnP-dominated 3000+ node internetwork: the parse-once workload.

    ``parse_once=False`` runs the identical workload with the null frame
    memo (every receiver decodes), the A/B baseline the benchmarks price
    the machinery against.
    """
    return run_world(
        media_city_spec(
            districts=districts, leaves_per_district=leaves_per_district,
            nodes=nodes, types_per_district=types_per_district,
            devices_per_leaf=devices_per_leaf, cp_per_leaf=cp_per_leaf,
            cp_period_us=cp_period_us, notify_period_us=notify_period_us,
            slp_island_leaves=slp_island_leaves,
            slp_chatter_per_island=slp_chatter_per_island,
            slp_chatter_period_us=slp_chatter_period_us,
            jini_registrars_per_district=jini_registrars_per_district,
            jini_listeners_per_district=jini_listeners_per_district,
            gossip_period_us=gossip_period_us, warmup_us=warmup_us, run_us=run_us,
        ),
        seed=seed, costs=costs, capture=capture, parse_once=parse_once,
    )


# -- Spec-only scenarios (born on the World API) ---------------------------------


def churn_backbone(
    seed: int = 0, costs: CostModel = PAPER_TESTBED, **params
) -> ScenarioOutcome:
    """Sustained fleet membership churn over the sharded backbone
    (detach/rejoin cycles, ring rebalance, gossip catch-up)."""
    return run_world(churn_backbone_spec(**params), seed=seed, costs=costs)


def district_sweep(
    seed: int = 0, costs: CostModel = PAPER_TESTBED, **params
) -> ScenarioOutcome:
    """Deep-chain district sweep: one probe per gateway-forward distance."""
    return run_world(district_sweep_spec(**params), seed=seed, costs=costs)


def district_grid(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    engine: str = "single",
    record=False,
    **params,
) -> ScenarioOutcome:
    """Unbridged chained backbones — the multi-district world the
    partitioned engine shards (``engine="partitioned"`` runs the same
    spec on district-sharded event loops with conservative lookahead).
    ``record=True`` runs with the flight recorder on (the traced A/B
    row in ``bench_core_hotpaths`` measures its overhead)."""
    return run_world(district_grid_spec(**params), seed=seed, costs=costs,
                     engine=engine, record=record)


def serving_backbone(
    seed: int = 0, costs: CostModel = PAPER_TESTBED, record=False, **params
) -> ScenarioOutcome:
    """Serving tier over the federated campus: gossip-warmed types plus a
    cold fallback tail under an open-loop ``QueryLoad``."""
    return run_world(serving_backbone_spec(**params), seed=seed, costs=costs,
                     record=record)


def serving_grid(
    seed: int = 0,
    costs: CostModel = PAPER_TESTBED,
    engine: str = "single",
    record=False,
    **params,
) -> ScenarioOutcome:
    """Serving tier on the unbridged district grid: per-district frontends
    plus cross-district query rings that cross lookahead windows under
    the partitioned engines."""
    return run_world(serving_grid_spec(**params), seed=seed, costs=costs,
                     engine=engine, record=record)


#: Reduced parameters for scenarios whose defaults are sized for the perf
#: benchmarks, not the test suite; the behavioural tests apply these so
#: tier-1 stays fast while the benchmarks keep the full-scale defaults.
SMALL_SCALE_OVERRIDES: dict[str, dict] = {
    "federated_campus": {"nodes": 120},
    "partitioned_campus": {"segments": 4, "nodes": 80},
    "sharded_backbone": {"nodes": 120},
    "metro_backbone": {
        "districts": 2,
        "leaves_per_district": 3,
        "nodes": 300,
        "chatter_per_leaf": 2,
        "run_us": 2_500_000,
    },
    "media_city": {
        "districts": 2,
        "leaves_per_district": 3,
        "nodes": 250,
        "devices_per_leaf": 3,
        "cp_per_leaf": 2,
        "run_us": 2_000_000,
    },
    "churn_backbone": {
        "members": 3,
        "nodes": 80,
        "service_types": 2,
        "churn_cycles": 2,
    },
    "district_sweep": {
        "districts": 3,
        "probe_wait_us": 2_500_000,
        "run_us": 4_000_000,
    },
    "district_grid": {
        "districts": 3,
        "leaves_per_district": 2,
        "run_us": 2_000_000,
    },
    "serving_backbone": {
        "members": 3,
        "nodes": 60,
        "service_types": 3,
        "queries_per_client": 12,
        "run_us": 2_500_000,
    },
    "serving_grid": {
        "districts": 2,
        "leaves_per_district": 1,
        "queries_per_client": 6,
        "run_us": 2_000_000,
    },
}


#: Scenario registry used by the harness and benchmarks.
SCENARIOS: dict[str, Callable[..., ScenarioOutcome]] = {
    "fig7_native_slp": native_slp,
    "fig7_native_upnp": native_upnp,
    "fig8_slp_to_upnp_service_side": slp_to_upnp_service_side,
    "fig8_upnp_to_slp_service_side": upnp_to_slp_service_side,
    "fig9_slp_to_upnp_client_side": slp_to_upnp_client_side,
    "fig9_upnp_to_slp_client_side": upnp_to_slp_client_side,
    "gateway_slp_to_upnp": slp_to_upnp_gateway,
    "gateway_slp_to_jini": slp_to_jini_gateway,
    "multi_segment_home": multi_segment_home,
    "gateway_chain": gateway_chain,
    "campus_fanout": campus_fanout,
    "federated_campus": federated_campus,
    "partitioned_campus": partitioned_campus,
    "crash_recovery": crash_recovery,
    "sharded_backbone": sharded_backbone,
    "metro_backbone": metro_backbone,
    "media_city": media_city,
    "churn_backbone": churn_backbone,
    "district_sweep": district_sweep,
    "district_grid": district_grid,
    "serving_backbone": serving_backbone,
    "serving_grid": serving_grid,
}


__all__ = [
    "ScenarioOutcome",
    "SCENARIOS",
    "SMALL_SCALE_OVERRIDES",
    "native_slp",
    "native_upnp",
    "slp_to_upnp_service_side",
    "upnp_to_slp_service_side",
    "slp_to_upnp_client_side",
    "upnp_to_slp_client_side",
    "slp_to_upnp_gateway",
    "slp_to_jini_gateway",
    "multi_segment_home",
    "gateway_chain",
    "campus_fanout",
    "federated_campus",
    "partitioned_campus",
    "crash_recovery",
    "sharded_backbone",
    "metro_backbone",
    "media_city",
    "churn_backbone",
    "district_sweep",
    "district_grid",
    "serving_backbone",
    "serving_grid",
]

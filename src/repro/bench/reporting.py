"""Paper-style table rendering for benchmark output.

Every table/figure benchmark prints a paper-vs-measured block through
these helpers so EXPERIMENTS.md and the benchmark logs read the same.
"""

from __future__ import annotations

from .calibration import PAPER_TABLE2
from .harness import Measurement
from .sizing import InteropSizing, SizeReport


def format_measurements(measurements: list[Measurement], title: str) -> str:
    lines = [title, "=" * len(title)]
    header = f"{'scenario':42s} {'paper (ms)':>12s} {'measured (ms)':>14s} {'ratio':>7s}"
    lines.append(header)
    lines.append("-" * len(header))
    for m in measurements:
        paper = f"{m.paper_ms:.2f}" if m.paper_ms is not None else "-"
        ratio = f"{m.ratio_to_paper:.2f}x" if m.ratio_to_paper is not None else "-"
        lines.append(
            f"{m.name:42s} {paper:>12s} {m.median_ms:>14.3f} {ratio:>7s}"
        )
    return "\n".join(lines)


def format_table2(reports: dict[str, SizeReport], interop: InteropSizing) -> str:
    lines = [
        "Table 2: size requirements (this reproduction vs paper)",
        "========================================================",
        f"{'component':22s} {'KB':>8s} {'classes':>8s} {'NCSS':>7s}"
        f" | {'paper KB':>9s} {'cls':>5s} {'NCSS':>6s}",
    ]
    rows = [
        ("core_framework", "core_framework"),
        ("upnp_unit", "upnp_unit"),
        ("slp_unit", "slp_unit"),
        ("indiss_total", "indiss_total"),
        ("openslp", "openslp"),
        ("cyberlink", "cyberlink"),
    ]
    for ours_key, paper_key in rows:
        ours = reports[ours_key]
        paper = PAPER_TABLE2[paper_key]
        lines.append(
            f"{ours.name:22s} {ours.kb:>8.1f} {ours.classes:>8d} {ours.ncss:>7d}"
            f" | {paper['kb']:>9d} {paper['classes']:>5d} {paper['ncss']:>6d}"
        )
    lines.append("")
    lines.append("Interoperability footprints (KB):")
    lines.append(
        f"  dual stack, no INDISS : {interop.dual_stack_kb:8.1f}"
        f"   (paper {PAPER_TABLE2['dual_stack_no_indiss_kb']})"
    )
    lines.append(
        f"  UPnP stack + INDISS   : {interop.upnp_with_indiss_kb:8.1f}"
        f"   overhead {interop.upnp_overhead_pct:+5.1f}%"
        f" (paper {PAPER_TABLE2['upnp_overhead_pct']:+.1f}%)"
    )
    lines.append(
        f"  SLP stack + INDISS    : {interop.slp_with_indiss_kb:8.1f}"
        f"   overhead {interop.slp_overhead_pct:+5.1f}%"
        f" (paper {PAPER_TABLE2['slp_overhead_pct']:+.1f}%)"
    )
    return "\n".join(lines)


__all__ = ["format_measurements", "format_table2"]

"""Code-size accounting for Table 2 (KB / classes / NCSS).

The paper compares INDISS's footprint (core framework + per-SDP units)
against the native libraries (OpenSLP, CyberLink) and derives the
with/without-INDISS composites.  We measure our own source tree the same
way: bytes on disk, ``class`` definitions, and NCSS computed over the AST
(non-comment source statements: every statement node except docstring
expressions), which is the same definition the Java NCSS tools use.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

#: Repository layout anchors (relative to the installed package).
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


@dataclass
class SizeReport:
    """KB / classes / NCSS for one component (one Table 2 row)."""

    name: str
    bytes: int = 0
    classes: int = 0
    ncss: int = 0
    files: int = 0

    @property
    def kb(self) -> float:
        return self.bytes / 1024.0

    def __add__(self, other: "SizeReport") -> "SizeReport":
        return SizeReport(
            name=f"{self.name}+{other.name}",
            bytes=self.bytes + other.bytes,
            classes=self.classes + other.classes,
            ncss=self.ncss + other.ncss,
            files=self.files + other.files,
        )


def _is_docstring(node: ast.stmt, parent_body: list[ast.stmt]) -> bool:
    return (
        isinstance(node, ast.Expr)
        and isinstance(node.value, ast.Constant)
        and isinstance(node.value.value, str)
        and parent_body
        and parent_body[0] is node
    )


def count_ncss(source: str) -> int:
    """Count non-comment source statements in one module."""
    tree = ast.parse(source)
    count = 0
    # ast.walk visits every block-bearing node (including ExceptHandler),
    # so collecting each node's own body/orelse/finalbody lists covers all
    # statements exactly once.
    for parent in ast.walk(tree):
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(parent, attr, None)
            if not isinstance(block, list):
                continue
            for node in block:
                if isinstance(node, ast.stmt) and not _is_docstring(node, block):
                    count += 1
    return count


def count_classes(source: str) -> int:
    tree = ast.parse(source)
    return sum(1 for node in ast.walk(tree) if isinstance(node, ast.ClassDef))


def measure_path(name: str, *paths: "str | Path") -> SizeReport:
    """Measure every ``.py`` under the given files/directories."""
    report = SizeReport(name=name)
    for path in paths:
        path = Path(path)
        if not path.is_absolute():
            path = _PACKAGE_ROOT / path
        files = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for file in files:
            source = file.read_text()
            report.bytes += len(source.encode("utf-8"))
            report.classes += count_classes(source)
            report.ncss += count_ncss(source)
            report.files += 1
    return report


def indiss_size_reports() -> dict[str, SizeReport]:
    """Table 2's rows measured over this repository.

    Component mapping (DESIGN.md §3):

    * core framework  -> ``repro/core`` (+ the shared record helpers)
    * UPnP unit       -> ``repro/units/upnp_unit.py``
    * SLP unit        -> ``repro/units/slp_unit.py``
    * OpenSLP         -> ``repro/sdp/slp`` (our from-scratch stand-in)
    * CyberLink UPnP  -> ``repro/sdp/upnp``
    """
    core = measure_path("core_framework", "core", "units/records.py", "units/__init__.py")
    upnp_unit = measure_path("upnp_unit", "units/upnp_unit.py")
    slp_unit = measure_path("slp_unit", "units/slp_unit.py")
    jini_unit = measure_path("jini_unit", "units/jini_unit.py")
    openslp = measure_path("openslp_library", "sdp/slp")
    cyberlink = measure_path("cyberlink_library", "sdp/upnp")
    jini_library = measure_path("jini_library", "sdp/jini")

    indiss_total = SizeReport(
        name="indiss_total",
        bytes=core.bytes + upnp_unit.bytes + slp_unit.bytes,
        classes=core.classes + upnp_unit.classes + slp_unit.classes,
        ncss=core.ncss + upnp_unit.ncss + slp_unit.ncss,
        files=core.files + upnp_unit.files + slp_unit.files,
    )
    return {
        "core_framework": core,
        "upnp_unit": upnp_unit,
        "slp_unit": slp_unit,
        "jini_unit": jini_unit,
        "indiss_total": indiss_total,
        "openslp": openslp,
        "cyberlink": cyberlink,
        "jini_library": jini_library,
    }


@dataclass
class InteropSizing:
    """Table 2's bottom block: footprints with and without INDISS.

    A node without INDISS that must interoperate hosts *both* native stacks
    plus a ported client for the second protocol; a node with INDISS hosts
    its own stack plus INDISS.
    """

    dual_stack_kb: float
    upnp_with_indiss_kb: float
    slp_with_indiss_kb: float

    @property
    def upnp_overhead_pct(self) -> float:
        return 100.0 * (self.upnp_with_indiss_kb - self.dual_stack_kb) / self.dual_stack_kb

    @property
    def slp_overhead_pct(self) -> float:
        return 100.0 * (self.slp_with_indiss_kb - self.dual_stack_kb) / self.dual_stack_kb


def interop_sizing(reports: dict[str, SizeReport] | None = None) -> InteropSizing:
    reports = reports if reports is not None else indiss_size_reports()
    dual_stack = reports["openslp"].kb + reports["cyberlink"].kb
    indiss = reports["indiss_total"].kb
    return InteropSizing(
        dual_stack_kb=dual_stack,
        upnp_with_indiss_kb=reports["cyberlink"].kb + indiss,
        slp_with_indiss_kb=reports["openslp"].kb + indiss,
    )


__all__ = [
    "SizeReport",
    "InteropSizing",
    "count_ncss",
    "count_classes",
    "measure_path",
    "indiss_size_reports",
    "interop_sizing",
]
